#!/usr/bin/env python3
"""The Sec. V-E server experiment: TECfan vs OFTEC vs Oracle (Fig. 7).

Synthesizes the scaled Wikipedia utilization trace (48.6% average), runs
the four policies on the 4-core i7-class platform, and prints the
normalized comparison. Oracle/Oracle-P perform vectorized exhaustive
search over per-core TEC banks x DVFS levels x fan levels.

Run:  python examples/server_oracle_comparison.py [minutes]
      (default 10, the paper's piece length; use 2-3 for a quick look)
"""

import sys

from repro.analysis.figures import format_figure7
from repro.analysis.server_experiment import run_server_comparison


def main() -> None:
    minutes = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    print(
        f"Running the 4-core server comparison on {minutes}-minute "
        "Wikipedia trace pieces...\n"
    )
    comparison = run_server_comparison(minutes=minutes)
    d = comparison.workload.demand
    print(
        f"trace: mean utilization {d.mean():.3f} "
        f"(paper: 0.486), peak {d.max():.2f}"
    )
    print(f"threshold: {comparison.platform.t_threshold_c:.2f} degC\n")

    for name, res in comparison.results.items():
        tr = res.trace
        print(
            f"{name:9s}: mean DVFS level {tr.mean_dvfs_level.mean():.2f}, "
            f"mean fan level {tr.fan_level.mean():.2f}, "
            f"avg power {res.metrics.average_power_w:.1f} W"
        )
    print()
    print(format_figure7(comparison.normalized_to_oftec()))
    norm = comparison.normalized_to_oftec()
    print(
        f"\nTECfan consumes {100 * (1 - norm['TECfan']['energy']):.1f}% "
        "less energy than OFTEC (paper: 29%) with no completion delay, "
        "and lands within "
        f"{100 * abs(norm['TECfan']['energy'] - norm['Oracle-P']['energy']):.1f}"
        " percentage points of the performance-matched Oracle-P."
    )


if __name__ == "__main__":
    main()
