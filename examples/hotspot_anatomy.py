#!/usr/bin/env python3
"""Anatomy of a hot spot: where the heat goes and what one TEC does.

A guided tour of the thermal substrate: build the chip, apply a
cholesky-like load, and dissect the temperature field stage by stage
(component -> spreader -> sink -> ambient), then switch on the TEC array
over the hottest component and watch the local/global split — the
physical effect Sec. III of the paper builds its hierarchy on.

Run:  python examples/hotspot_anatomy.py
"""

import numpy as np

from repro import units
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.perf.splash2 import splash2_workload


def main() -> None:
    system = build_system()
    chip = system.chip
    nd = system.nodes

    wl = splash2_workload("cholesky", 16, chip)
    state = ActuatorState.initial(
        system.n_tec_devices, 16, system.dvfs.max_level, fan_level=2
    )
    act = np.full(16, wl.activity)
    p_dyn = system.power.component_power.dynamic_power_w(
        act, state.dvfs, wl.component_profile
    )
    t_nodes, p_leak = system.plant_thermal.solve(p_dyn, 2, state.tec)
    temps = system.component_temps_c(t_nodes)

    hot = int(np.argmax(temps))
    comp = chip.components[hot]
    tile = comp.tile
    print(f"chip: {chip.rows}x{chip.cols} tiles, {nd.n_nodes} thermal nodes")
    print(f"total power: {p_dyn.sum() + p_leak.sum():.1f} W "
          f"(dynamic {p_dyn.sum():.1f} + leakage {p_leak.sum():.1f})")
    print(f"\nhottest component: {comp.name} "
          f"({comp.width:.2f}x{comp.height:.2f} mm, "
          f"{p_dyn[hot] + p_leak[hot]:.2f} W)")

    t_sp = units.k_to_c(t_nodes[nd.spreader_index(tile)])
    t_sk = units.k_to_c(t_nodes[nd.sink_index(tile)])
    amb = system.package.ambient_c
    print("\ntemperature ladder (fan level 2):")
    print(f"  die hot spot   : {temps[hot]:7.2f} degC")
    print(f"  spreader tile  : {t_sp:7.2f} degC")
    print(f"  sink tile      : {t_sk:7.2f} degC")
    print(f"  ambient        : {amb:7.2f} degC")

    print("\nper-stage temperature drops:")
    print(f"  die -> spreader: {temps[hot] - t_sp:6.2f} K  (TIM + TEC layer)")
    print(f"  spreader -> sink: {t_sp - t_sk:6.2f} K")
    print(f"  sink -> ambient : {t_sk - amb:6.2f} K  (fan-dependent)")

    # Switch on the TECs over the hot spot.
    devices = system.tec.devices_over_component(hot)
    tec = np.zeros(system.n_tec_devices)
    tec[devices] = 1.0
    t2, _ = system.plant_thermal.solve(p_dyn, 2, tec)
    temps2 = system.component_temps_c(t2)
    p_tec = system.tec_power_w(tec, t2)
    print(f"\nswitching on {len(devices)} TEC device(s) over {comp.name}:")
    print(f"  hot spot: {temps[hot]:.2f} -> {temps2[hot]:.2f} degC "
          f"({temps[hot] - temps2[hot]:.2f} K of local relief)")
    print(f"  chip peak: {temps.max():.2f} -> {temps2.max():.2f} degC")
    print(f"  TEC electrical power: {p_tec:.2f} W "
          f"(vs {system.fan.power_w(1) - system.fan.power_w(2):.1f} W saved "
          "by running the fan one level slower)")

    # The global alternative: fan one level faster.
    t3, _ = system.plant_thermal.solve(p_dyn, 1, state.tec)
    temps3 = system.component_temps_c(t3)
    print(f"\nfor comparison, fan level 1 with no TECs: peak "
          f"{temps3.max():.2f} degC at {system.fan.power_w(1):.1f} W of fan")
    print(
        "\n=> local relief where it is needed beats global airflow: the"
        "\n   observation TECfan's two-level hierarchy is built on."
    )


if __name__ == "__main__":
    main()
