#!/usr/bin/env python3
"""Cooling-policy study across the SPLASH-2 suite (Figs. 5 & 6).

Runs Fan-only, Fan+TEC, Fan+DVFS, DVFS+TEC and TECfan on the four
16-thread benchmarks, each at its paper-methodology fan level, and
prints the peak-temperature / violation / delay / power / energy / EDP
comparison — the full Sec. V-C / V-D evaluation.

Run:  python examples/splash2_cooling_study.py        (~1 minute)
"""

from repro.analysis.figures import (
    figure6_averages,
    format_figure5,
    format_figure6,
    splash_comparison,
)
from repro.core.system import build_system


def main() -> None:
    system = build_system()
    print("Running 5 policies x 4 benchmarks (fan levels per paper "
          "methodology)...\n")
    comp = splash_comparison(system)

    print(format_figure5(comp))
    print()
    print(format_figure6(comp))

    avg = figure6_averages(comp)
    tecfan = avg["TECfan"]
    print(
        f"\nSummary: TECfan averages {100 * (1 - tecfan['energy']):.1f}% "
        f"energy saving at {100 * (tecfan['delay'] - 1):.1f}% delay and "
        f"the lowest EDP ({tecfan['edp']:.3f}x) of all policies."
    )


if __name__ == "__main__":
    main()
