#!/usr/bin/env python3
"""Quickstart: run TECfan on one SPLASH-2 benchmark and read the result.

Builds the paper's 16-core platform, derives the temperature threshold
from the base scenario (max DVFS + fastest fan + TECs off, Sec. V-B),
then runs the TECfan controller at the reduced fan level its own
higher-level rule picks — and prints the delay/power/energy/EDP story of
Fig. 6 for that one workload.

Run:  python examples/quickstart.py
"""

from repro.analysis.experiments import run_base_scenario, run_policy_suite
from repro.core.system import build_system
from repro.core.tecfan import TECfanController

WORKLOAD, THREADS = "cholesky", 16


def main() -> None:
    print("Building the 16-core SCC-style platform...")
    system = build_system()
    print(
        f"  {system.n_cores} cores x {system.chip.components_per_tile} "
        f"components, {system.n_tec_devices} TEC devices, "
        f"{system.fan.n_levels} fan levels, "
        f"{system.dvfs.n_levels} DVFS levels"
    )

    print(f"\nBase scenario for {WORKLOAD}/{THREADS}t (defines T_th)...")
    base = run_base_scenario(system, WORKLOAD, THREADS)
    print(
        f"  time = {base.time_ms:.2f} ms, processor power = "
        f"{base.processor_power_w:.1f} W, peak = {base.t_threshold_c:.2f} degC"
    )

    print("\nRunning TECfan (banded hardware estimator, own fan rule)...")
    _, outcomes = run_policy_suite(
        system, WORKLOAD, THREADS, policies=[TECfanController()], base=base
    )
    m = outcomes["TECfan"].chosen.metrics
    n = m.normalized_to(base.result.metrics)
    print(f"  chosen fan level : {m.fan_level}")
    print(f"  delay            : {n['delay']:.3f}x")
    print(f"  average power    : {n['power']:.3f}x")
    print(f"  energy           : {n['energy']:.3f}x"
          f"  ({100 * (1 - n['energy']):.1f}% saving)")
    print(f"  EDP              : {n['edp']:.3f}x")
    print(f"  violation rate   : {100 * m.violation_rate:.2f}%")
    print(
        "\nThe paper's headline: TECfan trades a few percent of delay for"
        "\na double-digit energy saving while keeping the peak temperature"
        "\nat the fan-only threshold — with the fan two speed levels down."
    )


if __name__ == "__main__":
    main()
