"""Thermal-substrate benchmarks and the Eq. (5) transient ablation.

* Steady-state solver throughput (the operation every controller
  candidate evaluation pays for) — a genuine micro-benchmark.
* Paper's decoupled Eq. (5) transient vs the exact matrix-exponential
  integrator on a small network: the decoupled update must track the
  exact one closely at the 2 ms control period (that is what makes it
  usable in hardware), and both must converge to the same steady state.
"""

from __future__ import annotations

import numpy as np
from conftest import save_and_print

from repro.analysis.report import render_table
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.thermal.transient import ExactTransient


def test_steady_solver_throughput(benchmark, system16):
    system = system16
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 1
    )
    p = system.power.component_power.dynamic_power_w(
        np.full(system.n_cores, 0.8), state.dvfs, None
    )
    # Warm the LU cache, then measure the cached-solve hot path.
    system.solver.solve(p, 1, state.tec)

    def solve():
        return system.solver.solve(p, 1, state.tec)

    t = benchmark(solve)
    assert np.all(np.isfinite(t))


def test_transient_eq5_vs_exact(benchmark, results_dir):
    system = build_system(rows=1, cols=2)  # small -> dense expm feasible
    exact = ExactTransient(system.cond)
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 1
    )
    p = system.power.component_power.dynamic_power_w(
        np.full(system.n_cores, 0.9), state.dvfs, None
    )
    # Start near steady state (the controller's actual regime: every
    # interval begins from the previous interval's converged field) and
    # step toward the steady state of a ~10% higher power level.
    t0 = system.solver.solve(0.9 * p, 1, state.tec)
    ts = system.solver.solve(p, 1, state.tec)

    def both(dt):
        t_paper = system.transient.step(t0, ts, dt, 1, state.tec)
        t_exact = exact.step(t0, ts, dt, 1, state.tec)
        comp = system.nodes.component_slice
        return float(np.max(np.abs(t_paper[comp] - t_exact[comp])))

    rows = []
    for dt in (0.5e-3, 2e-3, 10e-3, 0.1, 1.0, 30.0):
        rows.append([dt, both(dt)])
    benchmark.pedantic(both, args=(2e-3,), rounds=3, iterations=1)

    save_and_print(
        results_dir,
        "transient_ablation",
        render_table(
            ["dt [s]", "max |Eq.(5) - exact| [K]"],
            rows,
            floatfmt="{:.4f}",
            title=(
                "Eq. (5) decoupled transient vs exact expm integrator "
                "(one step from near-steady, +10% power)"
            ),
        ),
    )
    # At the 2 ms control period the decoupled update overshoots the
    # exact integrator by ~1 K for a 10% power step — the model error
    # TECfan's guard band (guard_band_c = 0.5 degC) absorbs in practice.
    err_2ms = dict((r[0], r[1]) for r in rows)[2e-3]
    assert err_2ms < 2.0
    # Both converge to the same steady state at long horizons.
    assert rows[-1][1] < 0.5

    # The time-constant spectrum spans the paper's scales: sub-ms die
    # nodes to tens-of-seconds sink (Sec. III-D's two-level argument).
    taus = exact.time_constants_s(1, state.tec)
    assert taus[0] < 5e-3
    assert taus[-1] > 5.0
