"""Benchmark: batched what-if evaluation vs the sequential path.

Measures the two layers this perf subsystem adds:

1. **Candidate rounds** — many-candidate ``evaluate_many`` against
   per-candidate ``evaluate`` on the 16-core chip, for both the full
   (:class:`~repro.core.estimator.NextIntervalEstimator`) and banded
   (:class:`~repro.core.local_estimator.LocalBandedEstimator`)
   estimators. Equivalence is asserted bit-exactly on every round.
2. **Experiment fan-out** — ``run_fan_sweep`` wall time, serial vs
   ``--jobs``-parallel, with identical-metrics assertion. The SPLASH-2
   runs here finish in well under a second each, so spawning worker
   processes (fresh interpreters importing numpy/scipy) dominates and
   the parallel sweep *loses* on wall time — the number is recorded
   honestly as the fan-out floor. ``--jobs`` pays off on long suites
   (oracle runs, many workloads); this stage only asserts that the
   parallel path returns bit-identical results.

Run directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_batch_eval.py
    PYTHONPATH=src python benchmarks/bench_batch_eval.py --smoke

The full run writes ``benchmarks/results/BENCH_batch_eval.json`` — the
tracked perf baseline; refresh it whenever the evaluation hot path
changes (see ``docs/PERFORMANCE.md``). ``--smoke`` is the CI
configuration: a tiny chip, correctness assertions and a printed
speedup, no timing gates and no baseline rewrite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS_DIR / "BENCH_batch_eval.json"


def _primed(cls, system, seed=0):
    from repro.core.state import ActuatorState
    from repro.perf.ips import IPSTracker

    est = cls(system=system, ips_predictor=IPSTracker(dvfs=system.dvfs))
    rng = np.random.default_rng(seed)
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 2
    )
    state = state.with_dvfs_vector(
        np.full(system.n_cores, system.dvfs.max_level // 2)
    )
    temps = 60.0 + 10.0 * rng.random(system.nodes.n_components)
    p = 1.0 + rng.random(system.nodes.n_components)
    ips = 1e9 * (1.0 + rng.random(system.n_cores))
    est.begin_interval(temps, p, ips, state, 2e-3)
    return est, state


def _round_candidates(system, state):
    """One controller round's worth of candidates: all one-level DVFS
    moves — the ``_best_raise``/``_best_lowering`` sets the controller
    hands to ``evaluate_many`` each decision interval."""
    cands = []
    for core in range(system.n_cores):
        lv = int(state.dvfs[core])
        if lv < system.dvfs.max_level:
            cands.append(state.with_dvfs(core, lv + 1))
        if lv > 0:
            cands.append(state.with_dvfs(core, lv - 1))
    return cands


def bench_candidate_rounds(system, kind: str, rounds: int) -> dict:
    """Sequential-vs-batched evaluation of identical candidate rounds."""
    from repro.core.estimator import NextIntervalEstimator
    from repro.core.local_estimator import LocalBandedEstimator

    cls = {
        "full": NextIntervalEstimator,
        "banded": LocalBandedEstimator,
    }[kind]

    est_seq, state = _primed(cls, system)
    est_bat, _ = _primed(cls, system)
    cands = _round_candidates(system, state)

    # Warm up factorization caches / core blocks outside the timed loop,
    # then clear the per-interval memo so every round actually evaluates.
    est_seq.evaluate(state)
    est_bat.evaluate(state)

    t_seq = 0.0
    t_bat = 0.0
    for _ in range(rounds):
        est_seq._cache.clear()
        t0 = time.perf_counter()
        seq = [est_seq.evaluate(c) for c in cands]
        t_seq += time.perf_counter() - t0

        est_bat._cache.clear()
        t0 = time.perf_counter()
        bat = est_bat.evaluate_many(cands)
        t_bat += time.perf_counter() - t0

        for s, b in zip(seq, bat):
            assert np.array_equal(s.t_nodes_k, b.t_nodes_k), kind
            assert s.epi == b.epi and s.peak_temp_c == b.peak_temp_c, kind

    return {
        "estimator": kind,
        "candidates_per_round": len(cands),
        "rounds": rounds,
        "sequential_ms_per_round": 1e3 * t_seq / rounds,
        "batched_ms_per_round": 1e3 * t_bat / rounds,
        "speedup": t_seq / t_bat if t_bat > 0 else float("inf"),
    }


def bench_sweep(system, jobs: int, max_time_s: float) -> dict:
    """Serial vs parallel ``run_fan_sweep`` wall time, same results."""
    from repro.core.baselines import FanTECController
    from repro.core.engine import (
        EngineConfig,
        SimulationEngine,
        run_fan_sweep,
    )
    from repro.core.problem import EnergyProblem
    from repro.perf import splash2_workload
    from repro.perf.splash2 import REF_FREQ_GHZ
    from repro.perf.workload import WorkloadRun

    wl = splash2_workload("lu", system.n_cores, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=76.0),
        EngineConfig(max_time_s=max_time_s),
    )

    def make_run():
        return WorkloadRun(wl, system.chip, REF_FREQ_GHZ)

    t0 = time.perf_counter()
    chosen_s, sweep_s = run_fan_sweep(engine, make_run, FanTECController())
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    chosen_p, sweep_p = run_fan_sweep(
        engine, make_run, FanTECController(), jobs=jobs
    )
    t_parallel = time.perf_counter() - t0

    assert sweep_p == sweep_s, "parallel sweep diverged from serial"
    assert chosen_p.metrics == chosen_s.metrics

    return {
        "fan_levels": len(sweep_s),
        "jobs": jobs,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny chip, correctness only, no baseline rewrite",
    )
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.core.system import build_system

    if args.smoke:
        system = build_system(rows=2, cols=2)
        rounds = args.rounds or 5
        max_time_s = 0.02
    else:
        system = build_system()  # the paper's 16-core platform
        rounds = args.rounds or 50
        max_time_s = 0.1

    report = {
        "mode": "smoke" if args.smoke else "full",
        "cores": system.n_cores,
        "candidate_rounds": [],
    }
    ok = True
    for kind in ("full", "banded"):
        entry = bench_candidate_rounds(system, kind, rounds)
        report["candidate_rounds"].append(entry)
        print(
            f"{kind:7s}: {entry['candidates_per_round']} candidates/round, "
            f"sequential {entry['sequential_ms_per_round']:.2f} ms, "
            f"batched {entry['batched_ms_per_round']:.2f} ms "
            f"-> {entry['speedup']:.2f}x"
        )
        if not args.smoke and entry["speedup"] < 3.0:
            print(f"FAIL: {kind} speedup {entry['speedup']:.2f}x < 3x")
            ok = False

    sweep = bench_sweep(system, args.jobs, max_time_s)
    report["fan_sweep"] = sweep
    print(
        f"fan sweep ({sweep['fan_levels']} levels): serial "
        f"{sweep['serial_s']:.2f} s, jobs={sweep['jobs']} "
        f"{sweep['parallel_s']:.2f} s -> {sweep['speedup']:.2f}x"
    )

    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[saved to {BASELINE}]")
    print("equivalence: OK (all rounds bit-identical)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
