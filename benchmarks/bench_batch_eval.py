"""Benchmark: batched what-if evaluation vs the sequential path.

Measures the two layers this perf subsystem adds:

1. **Candidate rounds** — many-candidate ``evaluate_many`` against
   per-candidate ``evaluate`` on the 16-core chip, for both the full
   (:class:`~repro.core.estimator.NextIntervalEstimator`) and banded
   (:class:`~repro.core.local_estimator.LocalBandedEstimator`)
   estimators. Equivalence is asserted bit-exactly on every round.
2. **Experiment fan-out** — a fan-sweep *matrix* (every SPLASH-2
   workload x every fan level) through the persistent
   :class:`~repro.parallel.WorkerPool`, serial vs pooled, with a
   bit-identity assertion on every cell. Pool start-up (spawn + numpy/
   scipy imports) is timed separately via ``WorkerPool.prime`` so the
   steady-state speedup is honest about what a long suite actually
   sees. The speedup gate scales with the CPUs actually available
   (``min(jobs, affinity, tasks)``): at ``--jobs 16`` on a 16-core host
   the matrix must reach >= 8x over serial; on a CPU-starved CI runner
   the pooled path must instead stay within 1.8x of serial wall time
   (the pre-pool runtime was ~12x *slower*; see the 0.086x record kept
   under ``history`` in the baseline JSON).

Run directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_batch_eval.py
    PYTHONPATH=src python benchmarks/bench_batch_eval.py --smoke

The full run writes ``benchmarks/results/BENCH_batch_eval.json`` — the
tracked perf baseline; refresh it whenever the evaluation hot path
changes (see ``docs/PERFORMANCE.md``). ``--smoke`` is the CI
configuration: a tiny chip, correctness assertions and a printed
speedup, no timing gates and no baseline rewrite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS_DIR / "BENCH_batch_eval.json"


def _primed(cls, system, seed=0):
    from repro.core.state import ActuatorState
    from repro.perf.ips import IPSTracker

    est = cls(system=system, ips_predictor=IPSTracker(dvfs=system.dvfs))
    rng = np.random.default_rng(seed)
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 2
    )
    state = state.with_dvfs_vector(
        np.full(system.n_cores, system.dvfs.max_level // 2)
    )
    temps = 60.0 + 10.0 * rng.random(system.nodes.n_components)
    p = 1.0 + rng.random(system.nodes.n_components)
    ips = 1e9 * (1.0 + rng.random(system.n_cores))
    est.begin_interval(temps, p, ips, state, 2e-3)
    return est, state


def _round_candidates(system, state):
    """One controller round's worth of candidates: all one-level DVFS
    moves — the ``_best_raise``/``_best_lowering`` sets the controller
    hands to ``evaluate_many`` each decision interval."""
    cands = []
    for core in range(system.n_cores):
        lv = int(state.dvfs[core])
        if lv < system.dvfs.max_level:
            cands.append(state.with_dvfs(core, lv + 1))
        if lv > 0:
            cands.append(state.with_dvfs(core, lv - 1))
    return cands


def bench_candidate_rounds(system, kind: str, rounds: int) -> dict:
    """Sequential-vs-batched evaluation of identical candidate rounds."""
    from repro.core.estimator import NextIntervalEstimator
    from repro.core.local_estimator import LocalBandedEstimator

    cls = {
        "full": NextIntervalEstimator,
        "banded": LocalBandedEstimator,
    }[kind]

    est_seq, state = _primed(cls, system)
    est_bat, _ = _primed(cls, system)
    cands = _round_candidates(system, state)

    # Warm up factorization caches / core blocks outside the timed loop,
    # then clear the per-interval memo so every round actually evaluates.
    est_seq.evaluate(state)
    est_bat.evaluate(state)

    t_seq = 0.0
    t_bat = 0.0
    for _ in range(rounds):
        est_seq._cache.clear()
        t0 = time.perf_counter()
        seq = [est_seq.evaluate(c) for c in cands]
        t_seq += time.perf_counter() - t0

        est_bat._cache.clear()
        t0 = time.perf_counter()
        bat = est_bat.evaluate_many(cands)
        t_bat += time.perf_counter() - t0

        for s, b in zip(seq, bat):
            assert np.array_equal(s.t_nodes_k, b.t_nodes_k), kind
            assert s.epi == b.epi and s.peak_temp_c == b.peak_temp_c, kind

    return {
        "estimator": kind,
        "candidates_per_round": len(cands),
        "rounds": rounds,
        "sequential_ms_per_round": 1e3 * t_seq / rounds,
        "batched_ms_per_round": 1e3 * t_bat / rounds,
        "speedup": t_seq / t_bat if t_bat > 0 else float("inf"),
    }


def _sweep_workloads(threads: int) -> list[str]:
    """Matrix rows: every workload with a Table I entry at this size."""
    from repro.perf.splash2 import TABLE1_TARGETS

    return [r.workload for r in TABLE1_TARGETS if r.threads == threads]

_TRACE_FIELDS = (
    "time_s",
    "dt_s",
    "peak_temp_c",
    "p_chip_w",
    "p_tec_w",
    "p_fan_w",
    "ips_chip",
    "tec_on",
    "fan_level",
    "mean_dvfs_level",
)


def _assert_cells_identical(serial, pooled) -> None:
    for i, (a, b) in enumerate(zip(serial, pooled)):
        for fld in _TRACE_FIELDS:
            assert np.array_equal(
                getattr(a.trace, fld), getattr(b.trace, fld)
            ), f"cell {i}: trace.{fld} diverged"
        assert a.metrics == b.metrics, f"cell {i}: metrics diverged"


def bench_sweep(system, jobs: int, max_time_s: float) -> dict:
    """Fan-sweep matrix through the pool: serial vs pooled, same bits.

    Every (workload, fan level) pair is one task; the engine +
    controller ship once per worker as shared pool context so the
    thermal caches warm up across a worker's cells, exactly as the
    serial loop's do.
    """
    from repro.core.baselines import FanTECController
    from repro.core.engine import (
        EngineConfig,
        SimulationEngine,
        _fan_sweep_task,
    )
    from repro.core.problem import EnergyProblem
    from repro.parallel import WorkerPool, available_cpus, parallel_map
    from repro.perf import splash2_workload
    from repro.perf.splash2 import REF_FREQ_GHZ
    from repro.perf.workload import WorkloadRun

    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=76.0),
        EngineConfig(max_time_s=max_time_s),
    )
    controller = FanTECController()
    context = (engine, controller)
    workloads = _sweep_workloads(system.n_cores)
    # Size the measured pool to the CPUs actually grantable: workers
    # beyond the affinity mask cannot run concurrently, they only
    # multiply cold caches — a deployment would use --jobs 0 (auto).
    pool_jobs = max(2, min(jobs, available_cpus()))

    def matrix():
        # Fresh runs per pass: the engine consumes each run's
        # instruction accounting.
        return [
            (WorkloadRun(splash2_workload(w, system.n_cores, system.chip),
                         system.chip, REF_FREQ_GHZ), level)
            for w in workloads
            for level in range(1, system.fan.n_levels + 1)
        ]

    t0 = time.perf_counter()
    serial = parallel_map(_fan_sweep_task, matrix(), jobs=1, context=context)
    t_serial = time.perf_counter() - t0

    with WorkerPool(pool_jobs) as pool:
        t0 = time.perf_counter()
        pool.prime()  # spawn + import, paid once per suite
        t_startup = time.perf_counter() - t0
        t0 = time.perf_counter()
        pooled = parallel_map(
            _fan_sweep_task, matrix(), context=context, pool=pool
        )
        t_pool = time.perf_counter() - t0

    _assert_cells_identical(serial, pooled)
    n_tasks = len(workloads) * system.fan.n_levels
    effective = max(1, min(pool_jobs, available_cpus(), n_tasks))
    return {
        "workloads": len(workloads),
        "fan_levels": system.fan.n_levels,
        "tasks": n_tasks,
        "jobs_requested": jobs,
        "jobs": pool_jobs,
        "effective_cpus": effective,
        "serial_s": t_serial,
        "pool_startup_s": t_startup,
        "pooled_s": t_pool,
        "speedup": t_serial / t_pool if t_pool > 0 else float("inf"),
    }


def sweep_gate(entry: dict) -> str | None:
    """The fan-out acceptance gate, scaled to the CPUs actually there.

    With ``eff`` usable CPUs the pooled matrix must reach at least
    ``eff / 2``x over serial (>= 8x at ``--jobs 16`` on a 16-core
    host). Starved of CPUs (``eff == 1``) real speedup is impossible —
    two workers timeshare one core and each re-warms its own thermal
    caches — so the gate flips to an overhead bound: the pooled path
    must stay within 1.8x of serial wall time, versus the order of
    magnitude the old per-task spawn lost (0.086x ~= 11.6x slower).
    """
    eff = entry["effective_cpus"]
    speedup = entry["speedup"]
    if eff >= 2:
        need = eff / 2.0
        if speedup < need:
            return (
                f"matrix speedup {speedup:.2f}x < {need:.1f}x "
                f"(= effective_cpus {eff} / 2)"
            )
    elif entry["pooled_s"] > 1.8 * entry["serial_s"]:
        return (
            f"pooled overhead {entry['pooled_s']:.2f} s > 1.8x serial "
            f"{entry['serial_s']:.2f} s on a single-CPU host"
        )
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny chip, correctness only, no baseline rewrite",
    )
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.core.system import build_system

    if args.smoke:
        system = build_system(rows=2, cols=2)
        rounds = args.rounds or 5
        max_time_s = 0.02
    else:
        system = build_system()  # the paper's 16-core platform
        rounds = args.rounds or 50
        max_time_s = 0.1

    report = {
        "mode": "smoke" if args.smoke else "full",
        "cores": system.n_cores,
        "candidate_rounds": [],
    }
    ok = True
    for kind in ("full", "banded"):
        entry = bench_candidate_rounds(system, kind, rounds)
        report["candidate_rounds"].append(entry)
        print(
            f"{kind:7s}: {entry['candidates_per_round']} candidates/round, "
            f"sequential {entry['sequential_ms_per_round']:.2f} ms, "
            f"batched {entry['batched_ms_per_round']:.2f} ms "
            f"-> {entry['speedup']:.2f}x"
        )
        if not args.smoke and entry["speedup"] < 3.0:
            print(f"FAIL: {kind} speedup {entry['speedup']:.2f}x < 3x")
            ok = False

    sweep = bench_sweep(system, args.jobs, max_time_s)
    report["fan_sweep"] = sweep
    print(
        f"fan-sweep matrix ({sweep['tasks']} tasks = "
        f"{sweep['workloads']} workloads x {sweep['fan_levels']} levels): "
        f"serial {sweep['serial_s']:.2f} s, jobs={sweep['jobs']} "
        f"(effective cpus {sweep['effective_cpus']}) pooled "
        f"{sweep['pooled_s']:.2f} s (+{sweep['pool_startup_s']:.2f} s "
        f"one-off pool start-up) -> {sweep['speedup']:.2f}x"
    )
    if not args.smoke:
        failure = sweep_gate(sweep)
        if failure is not None:
            print(f"FAIL: {failure}")
            ok = False

    if not args.smoke:
        # Keep prior baselines (e.g. the pre-pool 0.086x fan sweep) so
        # the regression story stays in the committed record.
        history = []
        if BASELINE.exists():
            old = json.loads(BASELINE.read_text())
            history = old.pop("history", [])
            history.append(old)
        report["history"] = history
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[saved to {BASELINE}]")
    print("equivalence: OK (all rounds bit-identical)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
