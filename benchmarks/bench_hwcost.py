"""Sec. III-E — hardware cost of the estimation datapath.

The paper's numbers: a systolic array of M x K = 18 x 3 = 54 eight-bit
fixed-point multipliers; one 16-bit multiplier is 0.057 mm^2 at 65 nm
(0.03% of a 200 mm^2 die, ~0.03 W at POWER6-FPU power density); the full
array adds "less than 1.7% extra area and power".
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.report import render_table
from repro.core.hwcost import (
    HardwareCostModel,
    paper_single_multiplier_cost,
)


def test_hardware_cost(benchmark, results_dir):
    model = benchmark.pedantic(
        HardwareCostModel, rounds=1, iterations=1
    )
    single = paper_single_multiplier_cost()
    summary = model.summary()
    rows = [[k, v] for k, v in {**summary, **{
        "single16_area_mm2": single["area_mm2"],
        "single16_area_pct": single["area_overhead_pct"],
        "single16_power_w": single["power_w"],
    }}.items()]
    save_and_print(
        results_dir,
        "hwcost",
        render_table(
            ["quantity", "value"], rows, floatfmt="{:.4f}",
            title="Sec. III-E — estimation datapath cost",
        ),
    )

    assert model.multipliers == 54  # M x K = 18 x 3
    # Single 16-bit multiplier: the paper's 0.057 mm^2 / 0.03% / 0.03 W.
    assert abs(single["area_mm2"] - 0.057) < 1e-9
    assert abs(single["area_overhead_pct"] - 0.0285) < 1e-3
    assert abs(single["power_w"] - 0.032) < 5e-3
    # Full array: below the paper's "less than 1.7%" bound.
    assert summary["area_overhead_pct"] < 1.7
    assert summary["power_overhead_pct"] < 1.7
