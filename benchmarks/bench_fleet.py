"""Benchmark: batched fleet stepper vs the sequential per-node loop.

Measures the fleet tentpole (docs/FLEET.md): advancing N servers per
control interval with one multi-RHS ``solve_many`` per actuation class
instead of N independent solve chains. Fast-forwarding is disabled so
the timing isolates stepping throughput; equivalence is asserted via
shard digests — the two runs must be bit-identical, not merely close.

Two measurements:

1. **Batched vs sequential at 64 nodes** — the acceptance gate: the
   batched stepper must be >= 4x faster on the full run.
2. **Sharded scaling** — the same fleet split across worker-pool shards
   (reported, not gated: the win depends on core count and node/shard
   ratio).

Run directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke

The full run writes ``benchmarks/results/BENCH_fleet.json`` — the
tracked perf baseline; refresh it whenever the fleet stepper changes.
``--smoke`` is the CI configuration: a small fleet, digest equivalence
asserted, printed speedups, no timing gate and no baseline rewrite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS_DIR / "BENCH_fleet.json"

SPEEDUP_GATE = 4.0


def _cfg(n_nodes: int, duration_s: int, stepper: str, shards: int = 1):
    from repro.fleet import FleetConfig

    return FleetConfig(
        n_nodes=n_nodes,
        duration_s=duration_s,
        trace="diurnal",
        router="round-robin",
        stepper=stepper,
        fast_forward=False,
        shards=shards,
    )


def bench_steppers(platform, n_nodes: int, duration_s: int) -> dict:
    """Batched vs sequential, digest-asserted bit-identical."""
    from repro.fleet import run_fleet

    timings = {}
    digests = {}
    for stepper in ("sequential", "batched"):
        t0 = time.perf_counter()
        result = run_fleet(_cfg(n_nodes, duration_s, stepper), platform=platform)
        timings[stepper] = time.perf_counter() - t0
        digests[stepper] = result.digest

    assert digests["batched"] == digests["sequential"], (
        "batched stepper diverged from sequential reference"
    )
    speedup = (
        timings["sequential"] / timings["batched"]
        if timings["batched"] > 0
        else float("inf")
    )
    return {
        "n_nodes": n_nodes,
        "sim_time_s": duration_s,
        "sequential_s": timings["sequential"],
        "batched_s": timings["batched"],
        "speedup": speedup,
        "node_sim_s_per_s": n_nodes * duration_s / timings["batched"],
    }


def bench_sharded(platform, n_nodes: int, duration_s: int, jobs: int) -> dict:
    """Batched fleet split across warm pool shards (scaling, not gated).

    Uses a primed :class:`~repro.parallel.WorkerPool` so the timing
    reflects the intended warm-cache usage, not process spawn + import.
    """
    from repro.fleet import run_fleet
    from repro.parallel import WorkerPool

    t0 = time.perf_counter()
    serial = run_fleet(
        _cfg(n_nodes, duration_s, "batched", shards=jobs), platform=platform, jobs=1
    )
    t_serial = time.perf_counter() - t0

    with WorkerPool(jobs) as pool:
        pool.prime()
        t0 = time.perf_counter()
        pooled = run_fleet(
            _cfg(n_nodes, duration_s, "batched", shards=jobs),
            platform=platform,
            pool=pool,
        )
        t_pooled = time.perf_counter() - t0

    assert serial.digest == pooled.digest, (
        "pooled shard run diverged from serial shard run"
    )
    return {
        "n_nodes": n_nodes,
        "sim_time_s": duration_s,
        "shards": jobs,
        "serial_s": t_serial,
        "pooled_s": t_pooled,
        "speedup": t_serial / t_pooled if t_pooled > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: small fleet, digest equivalence only, no baseline",
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--sim-time", type=int, default=None)
    parser.add_argument("--jobs", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.server.platform import build_server_system

    platform = build_server_system()
    if args.smoke:
        n_nodes = args.nodes or 8
        duration_s = args.sim_time or 60
    else:
        n_nodes = args.nodes or 64
        duration_s = args.sim_time or 240

    report = {"mode": "smoke" if args.smoke else "full"}
    ok = True

    st = bench_steppers(platform, n_nodes, duration_s)
    report["steppers"] = st
    print(
        f"steppers: {st['n_nodes']} nodes x {st['sim_time_s']} s, sequential "
        f"{st['sequential_s']:.2f} s, batched {st['batched_s']:.2f} s "
        f"-> {st['speedup']:.2f}x ({st['node_sim_s_per_s']:.0f} node-sim-s/s)"
    )
    if not args.smoke and st["speedup"] < SPEEDUP_GATE:
        print(f"FAIL: batched speedup {st['speedup']:.2f}x < {SPEEDUP_GATE}x")
        ok = False

    if not args.smoke:
        from repro.parallel import resolve_jobs

        cores = resolve_jobs(0)
        report["effective_cores"] = cores
        if cores >= 2:
            sh = bench_sharded(platform, n_nodes * 4, duration_s, args.jobs)
            report["sharded"] = sh
            print(
                f"sharded: {sh['n_nodes']} nodes over {sh['shards']} shards, "
                f"serial {sh['serial_s']:.2f} s, pooled {sh['pooled_s']:.2f} s "
                f"-> {sh['speedup']:.2f}x"
            )
        else:
            # Workers would timeshare a single core; the number would
            # measure the scheduler, not the sharding.
            report["sharded"] = None
            print("sharded: skipped (1 effective core)")

    if not args.smoke and ok:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[saved to {BASELINE}]")
    print("equivalence: OK (batched run digest-identical to sequential)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
