"""Sec. V-A — decision-cost scaling: TECfan vs exhaustive search.

The paper's complexities: TECfan is O(NL + N^2 M) (polynomial — at most
NL TEC toggles plus N candidate evaluations per DVFS step), while
exhaustive OFTEC is O(2^{NL}) and Oracle O(M^N 2^{NL}). We validate the
*shape*: TECfan's measured evaluations per decision grow polynomially
with the core count while the exhaustive spaces explode; and one TECfan
decision is orders of magnitude cheaper than one Oracle decision on the
same platform.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import save_and_print

from repro.analysis.report import render_table
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.perf.splash2 import splash2_workload
from repro.perf.workload import Phase, Workload, WorkloadRun


def _tecfan_cost(rows: int, cols: int) -> dict:
    """Evaluations/decision for TECfan on an rows x cols chip."""
    system = build_system(rows=rows, cols=cols)
    n = system.n_cores
    wl = Workload(
        name="synthetic",
        threads=n,
        total_instructions=50_000_000 * n,
        ff_instructions=0,
        ipc_at_ref=0.6,
        activity=0.9,
        active_tiles=tuple(range(n)),
        phases=(Phase(1.0),),
    )
    # Threshold tight enough to keep the controller busy.
    state = ActuatorState.initial(
        system.n_tec_devices, n, system.dvfs.max_level, 1
    )
    p = system.power.component_power.dynamic_power_w(
        np.full(n, 0.9), state.dvfs, None
    )
    t_nodes, _ = system.plant_thermal.solve(p, 2, state.tec)
    th = float(system.component_temps_c(t_nodes).max()) - 1.0
    problem = EnergyProblem(t_threshold_c=th)
    engine = SimulationEngine(
        system, problem, EngineConfig(max_time_s=0.03, priming_intervals=0)
    )
    ctrl = TECfanController()
    t0 = time.perf_counter()
    res = engine.run(
        WorkloadRun(wl, system.chip, 2.0),
        ctrl,
        initial_state=state.with_fan(2),
    )
    wall = time.perf_counter() - t0
    decisions = max(len(res.trace), 1)
    evals = res.estimator.n_evaluations
    m = system.dvfs.n_levels
    ell = system.tec.devices_per_tile
    return {
        "cores": n,
        "evals_per_decision": evals / decisions,
        "bound_NL_N2M": n * ell + n * n * m,
        "oracle_space": (m**n) * (2.0 ** n) * system.fan.n_levels,
        "wall_ms_per_decision": 1e3 * wall / decisions,
    }


def test_overhead_scaling(benchmark, results_dir):
    rows = benchmark.pedantic(
        lambda: [_tecfan_cost(1, 2), _tecfan_cost(2, 2), _tecfan_cost(2, 4),
                 _tecfan_cost(4, 4)],
        rounds=1,
        iterations=1,
    )
    table = [
        [
            r["cores"],
            r["evals_per_decision"],
            r["bound_NL_N2M"],
            f"{r['oracle_space']:.1e}",
            r["wall_ms_per_decision"],
        ]
        for r in rows
    ]
    save_and_print(
        results_dir,
        "overhead",
        render_table(
            ["N cores", "evals/decision", "NL+N^2M", "Oracle space",
             "ms/decision"],
            table,
            floatfmt="{:.1f}",
            title="Sec. V-A — TECfan decision cost vs exhaustive space",
        ),
    )
    for r in rows:
        # TECfan stays within its polynomial bound...
        assert r["evals_per_decision"] <= r["bound_NL_N2M"], r
    # ...while the exhaustive space grows by orders of magnitude.
    assert rows[-1]["oracle_space"] / rows[0]["oracle_space"] > 1e9
    # Polynomial vs exponential growth from 2 to 16 cores.
    eval_growth = (
        rows[-1]["evals_per_decision"]
        / max(rows[0]["evals_per_decision"], 1.0)
    )
    space_growth = rows[-1]["oracle_space"] / rows[0]["oracle_space"]
    assert eval_growth < 1e4 < space_growth
