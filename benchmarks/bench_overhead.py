"""Sec. V-A — decision-cost scaling, plus the telemetry-overhead gate.

The paper's complexities: TECfan is O(NL + N^2 M) (polynomial — at most
NL TEC toggles plus N candidate evaluations per DVFS step), while
exhaustive OFTEC is O(2^{NL}) and Oracle O(M^N 2^{NL}). We validate the
*shape*: TECfan's measured evaluations per decision grow polynomially
with the core count while the exhaustive spaces explode; and one TECfan
decision is orders of magnitude cheaper than one Oracle decision on the
same platform (the pytest-benchmark test below).

Run directly for the **telemetry-overhead gate**::

    PYTHONPATH=src python benchmarks/bench_overhead.py
    PYTHONPATH=src python benchmarks/bench_overhead.py --smoke

This times a ``--jobs``-parallel fan sweep with worker-telemetry
capture+merge against the identical sweep with telemetry off, using
interleaved min-of-N wall times. The cross-process aggregation path
must cost ≤ 3% — spawn/pickle dominate the fan-out, so capture and
merge have to disappear into the noise. Min-of-N still jitters a few
percent on loaded machines, so a gate attempt that fails is re-measured
(up to ``--attempts`` times) before it counts; every attempt is
printed. The full run writes the tracked baseline
``benchmarks/results/BENCH_obs_overhead.json``; ``--smoke`` is the CI
configuration (tiny chip, no baseline rewrite). The *serial* hook
overhead (spans/counters on the hot loop, no merge involved) is
reported as context but not gated here.

A second gate covers the **live-status sidecar** (``--status-file``,
:mod:`repro.obs.live`): an engine run snapshotting at the default
cadence against the identical run with no status file. Between due
points the per-interval cost is one ``time.monotonic()`` call and a
compare, so snapshots at the default 1 s cadence must also stay
≤ 3% — the same threshold and retry discipline as the merge gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS_DIR / "BENCH_obs_overhead.json"

from repro.analysis.report import render_table
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.perf.splash2 import splash2_workload
from repro.perf.workload import Phase, Workload, WorkloadRun


def _tecfan_cost(rows: int, cols: int) -> dict:
    """Evaluations/decision for TECfan on an rows x cols chip."""
    system = build_system(rows=rows, cols=cols)
    n = system.n_cores
    wl = Workload(
        name="synthetic",
        threads=n,
        total_instructions=50_000_000 * n,
        ff_instructions=0,
        ipc_at_ref=0.6,
        activity=0.9,
        active_tiles=tuple(range(n)),
        phases=(Phase(1.0),),
    )
    # Threshold tight enough to keep the controller busy.
    state = ActuatorState.initial(
        system.n_tec_devices, n, system.dvfs.max_level, 1
    )
    p = system.power.component_power.dynamic_power_w(
        np.full(n, 0.9), state.dvfs, None
    )
    t_nodes, _ = system.plant_thermal.solve(p, 2, state.tec)
    th = float(system.component_temps_c(t_nodes).max()) - 1.0
    problem = EnergyProblem(t_threshold_c=th)
    engine = SimulationEngine(
        system, problem, EngineConfig(max_time_s=0.03, priming_intervals=0)
    )
    ctrl = TECfanController()
    t0 = time.perf_counter()
    res = engine.run(
        WorkloadRun(wl, system.chip, 2.0),
        ctrl,
        initial_state=state.with_fan(2),
    )
    wall = time.perf_counter() - t0
    decisions = max(len(res.trace), 1)
    evals = res.estimator.n_evaluations
    m = system.dvfs.n_levels
    ell = system.tec.devices_per_tile
    return {
        "cores": n,
        "evals_per_decision": evals / decisions,
        "bound_NL_N2M": n * ell + n * n * m,
        "oracle_space": (m**n) * (2.0 ** n) * system.fan.n_levels,
        "wall_ms_per_decision": 1e3 * wall / decisions,
    }


def test_overhead_scaling(benchmark, results_dir):
    from conftest import save_and_print

    rows = benchmark.pedantic(
        lambda: [_tecfan_cost(1, 2), _tecfan_cost(2, 2), _tecfan_cost(2, 4),
                 _tecfan_cost(4, 4)],
        rounds=1,
        iterations=1,
    )
    table = [
        [
            r["cores"],
            r["evals_per_decision"],
            r["bound_NL_N2M"],
            f"{r['oracle_space']:.1e}",
            r["wall_ms_per_decision"],
        ]
        for r in rows
    ]
    save_and_print(
        results_dir,
        "overhead",
        render_table(
            ["N cores", "evals/decision", "NL+N^2M", "Oracle space",
             "ms/decision"],
            table,
            floatfmt="{:.1f}",
            title="Sec. V-A — TECfan decision cost vs exhaustive space",
        ),
    )
    for r in rows:
        # TECfan stays within its polynomial bound...
        assert r["evals_per_decision"] <= r["bound_NL_N2M"], r
    # ...while the exhaustive space grows by orders of magnitude.
    assert rows[-1]["oracle_space"] / rows[0]["oracle_space"] > 1e9
    # Polynomial vs exponential growth from 2 to 16 cores.
    eval_growth = (
        rows[-1]["evals_per_decision"]
        / max(rows[0]["evals_per_decision"], 1.0)
    )
    space_growth = rows[-1]["oracle_space"] / rows[0]["oracle_space"]
    assert eval_growth < 1e4 < space_growth


# ----------------------------------------------------------------------
# telemetry-overhead gate (standalone main, CI runs --smoke)
# ----------------------------------------------------------------------
def _sweep_setup(rows: int, cols: int, max_time_s: float):
    from repro.core.engine import EngineConfig, SimulationEngine
    from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
    from repro.perf.workload import WorkloadRun

    system = build_system(rows=rows, cols=cols)
    wl = splash2_workload("lu", system.n_cores, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=76.0),
        EngineConfig(max_time_s=max_time_s),
    )

    def make_run():
        return WorkloadRun(wl, system.chip, REF_FREQ_GHZ)

    return engine, make_run


def _sweep_once(engine, make_run, jobs, telemetry: bool) -> float:
    from repro.core.baselines import FanTECController
    from repro.core.engine import run_fan_sweep
    from repro.obs import Telemetry, telemetry_session

    t0 = time.perf_counter()
    if telemetry:
        with telemetry_session(Telemetry()) as tel:
            run_fan_sweep(engine, make_run, FanTECController(), jobs=jobs)
            if jobs:
                # The merge actually happened, or this gate measures nothing.
                merged = tel.metrics.counter("parallel.worker_sessions").value
                assert merged > 0, "no worker telemetry was merged"
    else:
        run_fan_sweep(engine, make_run, FanTECController(), jobs=jobs)
    return time.perf_counter() - t0


def measure_overhead(engine, make_run, jobs, repeats: int) -> dict:
    """Interleaved min-of-``repeats`` wall times, telemetry off vs on."""
    off = min(
        _sweep_once(engine, make_run, jobs, False) for _ in range(repeats)
    )
    on = min(
        _sweep_once(engine, make_run, jobs, True) for _ in range(repeats)
    )
    return {
        "jobs": jobs,
        "repeats": repeats,
        "off_s": off,
        "on_s": on,
        "overhead_pct": (on - off) / off * 100.0,
    }


def _status_run_once(engine, make_run) -> float:
    from repro.core.tecfan import TECfanController

    t0 = time.perf_counter()
    engine.run(make_run(), TECfanController())
    return time.perf_counter() - t0


def measure_status_overhead(
    rows: int, cols: int, max_time_s: float, repeats: int, status_path
) -> dict:
    """Min-of-``repeats`` engine-run wall times, status sidecar off vs on.

    Both engines share one system (so thermal caches warm identically);
    each gets one untimed warm-up run before measurement. The ``on``
    engine snapshots at the **default** cadence — the configuration the
    gate protects.
    """
    from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
    from repro.perf.workload import WorkloadRun

    system = build_system(rows=rows, cols=cols)
    wl = splash2_workload("lu", system.n_cores, system.chip)
    problem = EnergyProblem(t_threshold_c=76.0)

    def make_run():
        return WorkloadRun(wl, system.chip, REF_FREQ_GHZ)

    engine_off = SimulationEngine(
        system, problem, EngineConfig(max_time_s=max_time_s)
    )
    engine_on = SimulationEngine(
        system,
        problem,
        EngineConfig(max_time_s=max_time_s, status_path=str(status_path)),
    )
    _status_run_once(engine_off, make_run)  # warm-up, untimed
    _status_run_once(engine_on, make_run)
    off = min(_status_run_once(engine_off, make_run) for _ in range(repeats))
    on = min(_status_run_once(engine_on, make_run) for _ in range(repeats))
    return {
        "repeats": repeats,
        "off_s": off,
        "on_s": on,
        "overhead_pct": (on - off) / off * 100.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny chip, short runs, no baseline rewrite",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--attempts",
        type=int,
        default=3,
        help="re-measure a failing gate up to this many times "
        "(wall-clock jitter, not code, is the usual culprit)",
    )
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=3.0,
        help="maximum merged-telemetry overhead over telemetry-off",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rows, cols, max_time_s = 2, 2, 0.02
        repeats = args.repeats or 4
    else:
        rows, cols, max_time_s = 4, 4, 0.1  # the paper's 16-core chip
        repeats = args.repeats or 5

    engine, make_run = _sweep_setup(rows, cols, max_time_s)

    serial = measure_overhead(engine, make_run, None, repeats)
    print(
        f"serial sweep   : off {serial['off_s'] * 1e3:7.1f} ms, "
        f"telemetry {serial['on_s'] * 1e3:7.1f} ms "
        f"({serial['overhead_pct']:+.2f}%)  [context, not gated]"
    )

    merged = None
    for attempt in range(1, args.attempts + 1):
        merged = measure_overhead(engine, make_run, args.jobs, repeats)
        print(
            f"merged jobs={args.jobs} : off {merged['off_s'] * 1e3:7.1f} ms, "
            f"telemetry {merged['on_s'] * 1e3:7.1f} ms "
            f"({merged['overhead_pct']:+.2f}%)  "
            f"[attempt {attempt}/{args.attempts}, gate "
            f"<= {args.threshold_pct:.1f}%]"
        )
        if merged["overhead_pct"] <= args.threshold_pct:
            break

    import tempfile

    status = None
    # A very short run is dominated by the fixed first+final snapshot
    # (two fsyncs), which is not what the default 1 s cadence costs in
    # practice — give the status gate a long-enough run to amortize.
    status_time_s = max(max_time_s, 0.1)
    with tempfile.TemporaryDirectory() as tmp:
        status_path = pathlib.Path(tmp) / "status.json"
        for attempt in range(1, args.attempts + 1):
            status = measure_status_overhead(
                rows, cols, status_time_s, repeats, status_path
            )
            print(
                f"status sidecar : off {status['off_s'] * 1e3:7.1f} ms, "
                f"snapshots {status['on_s'] * 1e3:7.1f} ms "
                f"({status['overhead_pct']:+.2f}%)  "
                f"[attempt {attempt}/{args.attempts}, gate "
                f"<= {args.threshold_pct:.1f}%]"
            )
            if status["overhead_pct"] <= args.threshold_pct:
                break

    ok = (
        merged["overhead_pct"] <= args.threshold_pct
        and status["overhead_pct"] <= args.threshold_pct
    )
    report = {
        "mode": "smoke" if args.smoke else "full",
        "cores": rows * cols,
        "threshold_pct": args.threshold_pct,
        "serial": serial,
        "merged": merged,
        "status": status,
    }
    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[saved to {BASELINE}]")
    if merged["overhead_pct"] > args.threshold_pct:
        print(
            f"FAIL: merged-telemetry sweep {merged['overhead_pct']:+.2f}% "
            f"> {args.threshold_pct:.1f}% over telemetry-off"
        )
    if status["overhead_pct"] > args.threshold_pct:
        print(
            f"FAIL: status-sidecar run {status['overhead_pct']:+.2f}% "
            f"> {args.threshold_pct:.1f}% over no-status"
        )
    if ok:
        print("telemetry overhead gate: OK")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
