"""Ablations on TECfan's design choices (DESIGN.md Sec. 5).

1. **TEC-first vs DVFS-first hot iterations** — the paper orders the hot
   iteration TEC-first "to minimize the use of throttling". Inverting
   the order must cost performance (longer delay) at similar cooling.
2. **Banded hardware estimator vs idealized full-model estimator** — the
   Sec. III-E one-core-at-a-time datapath against a whole-chip solve:
   the full model should track the constraint at least as tightly; the
   banded one is what the hardware can afford.
"""

from __future__ import annotations

import pytest
from conftest import save_and_print

from repro.analysis.report import render_table
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.analysis.experiments import run_base_scenario
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun

FAN_LEVEL = 3  # deep enough that the hot iteration must work


def _run_variant(system, controller, base):
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    engine = SimulationEngine(system, problem, EngineConfig(max_time_s=2.0))
    wl = splash2_workload("cholesky", 16, system.chip)
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level,
        fan_level=FAN_LEVEL,
    )
    controller.reset()
    return engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        controller,
        initial_state=state,
    )


def test_ablations(benchmark, system16, results_dir):
    base = run_base_scenario(system16, "cholesky", 16)

    def run_all():
        return {
            "tec-first (paper)": _run_variant(
                system16, TECfanController(), base
            ),
            "dvfs-first": _run_variant(
                system16, TECfanController(tec_first=False), base
            ),
            "full-model estimator": _run_variant(
                system16, TECfanController(estimator_kind="full"), base
            ),
            "chip-level DVFS": _run_variant(
                system16, TECfanController(chip_level_dvfs=True), base
            ),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    bm = base.result.metrics
    rows = []
    for name, res in results.items():
        n = res.metrics.normalized_to(bm)
        rows.append(
            [
                name,
                n["delay"],
                n["power"],
                n["energy"],
                100.0 * res.metrics.violation_rate,
                int(res.trace.tec_on.mean()),
            ]
        )
    save_and_print(
        results_dir,
        "ablation",
        render_table(
            ["variant", "delay", "power", "energy", "viol%", "tec_on"],
            rows,
            title=f"Ablations — cholesky/16t at fixed fan level {FAN_LEVEL}",
        ),
    )

    paper = results["tec-first (paper)"].metrics
    inverted = results["dvfs-first"].metrics
    chip_lvl = results["chip-level DVFS"].metrics
    # DVFS-first throttles where TECs would have sufficed.
    assert inverted.execution_time_s >= paper.execution_time_s - 1e-9
    # Both orderings respect the constraint comparably.
    assert paper.violation_rate < 0.10
    assert inverted.violation_rate < 0.10
    # Chip-level DVFS (Sec. III-E: "can be integrated seamlessly") works
    # but is visibly coarser: every move swings all sixteen cores at
    # once, so it tracks the threshold with more violations and cannot
    # harvest per-core spin power — quantifying why the paper bothers
    # with per-core regulators at a 24% tile-area cost.
    assert chip_lvl.violation_rate < 0.35
    assert chip_lvl.violation_rate >= paper.violation_rate
    assert chip_lvl.energy_j >= paper.energy_j - 1e-9


def test_tec_drive_mode_ablation(benchmark, results_dir):
    """Switched (paper) vs current-controlled TEC drive.

    The paper declines current control because it needs a dedicated
    on-chip regulator (Sec. III). This quantifies what that decision
    costs: at equal pumping, partial-current drive wastes quadratically
    less Joule power, so the same hot-spot relief comes cheaper.
    """
    import numpy as np

    from repro.core.system import build_system

    def measure():
        out = {}
        for mode in ("switched", "current"):
            system = build_system(rows=1, cols=2, tec_drive_mode=mode)
            nd = system.nodes
            p = np.zeros(nd.n_components)
            p[5] = 1.0  # one hot component
            half = np.full(system.n_tec_devices, 0.5)
            t = system.solver.solve(p, 2, half)
            out[mode] = {
                "peak_c": float(
                    system.component_temps_c(t).max()
                ),
                "p_tec_w": system.tec_power_w(half, t),
            }
        return out

    res = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [mode, v["peak_c"], v["p_tec_w"]] for mode, v in res.items()
    ]
    save_and_print(
        results_dir,
        "ablation_tec_drive",
        render_table(
            ["drive mode", "peak [degC]", "TEC power [W]"],
            rows,
            title="TEC drive ablation — 50% activation on all devices",
        ),
    )
    # Identical pumping terms, strictly less self-heating: current drive
    # is never hotter...
    assert res["current"]["peak_c"] <= res["switched"]["peak_c"] + 0.05
    # ...at roughly half the Joule cost (s^2 vs s at s = 0.5).
    assert res["current"]["p_tec_w"] < 0.7 * res["switched"]["p_tec_w"]
