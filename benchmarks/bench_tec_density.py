"""TEC deployment-density sweep (the Long & Memik axis the paper fixes).

The paper deploys a 3 x 3 array per core, citing prior work on optimal
TEC amount/placement. This sweep re-opens the axis with the calibrated
stack: how much of the fan-level-2 cooling deficit can 1, 4, or 9
devices per core recover, and at what electrical cost?
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.report import render_table
from repro.analysis.sweeps import tec_density_sweep


def test_tec_density_sweep(benchmark, results_dir):
    points = benchmark.pedantic(
        tec_density_sweep,
        kwargs={"grids": ((1, 1), (2, 2), (3, 3))},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            f"{p.grid[0]}x{p.grid[1]}",
            p.devices_per_core,
            p.peak_temp_c,
            100.0 * p.violation_rate,
            p.tec_power_w,
        ]
        for p in points
    ]
    save_and_print(
        results_dir,
        "tec_density",
        render_table(
            ["grid", "dev/core", "peak [degC]", "viol %", "TEC power [W]"],
            rows,
            title=(
                "TEC density sweep — cholesky/16t, Fan+TEC at fan level 2"
            ),
        ),
    )
    by_density = {p.devices_per_core: p for p in points}
    # Denser coverage tracks the threshold at least as well...
    assert (
        by_density[9].violation_rate
        <= by_density[1].violation_rate + 1e-9
    )
    # ...and the paper's 3x3 choice is comfortably in the working regime.
    assert by_density[9].violation_rate <= 0.15
