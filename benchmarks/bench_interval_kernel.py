"""Benchmark: interval-kernel fast path vs the classic engine loop.

Measures the two layers the interval kernel adds (docs/PERFORMANCE.md):

1. **Quiescent fast-forwarding** — a quiescent-heavy run (single-phase
   noise-free workload, so every interval after thermal settling is
   skippable) through the classic loop and through
   ``EngineConfig(interval_kernel=True)``. Decision equivalence is
   asserted on every trace row: identical actuator decisions and
   timestamps, temperatures/powers within 1e-6. The full run gates the
   speedup at >= 3x — the acceptance floor for this subsystem.
2. **Woodbury low-rank corrections** — controller-realistic
   single-device TEC toggle walks against the steady-state solver, with
   and without ``use_woodbury``. Correctness is asserted (<= 1e-6 K vs
   full refactorization); the speedup is reported but not gated, since
   it depends on chip size and walk shape.

Run directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_interval_kernel.py
    PYTHONPATH=src python benchmarks/bench_interval_kernel.py --smoke

The full run writes ``benchmarks/results/BENCH_interval_kernel.json``
— the tracked perf baseline; refresh it whenever the interval kernel
changes. ``--smoke`` is the CI configuration: a tiny chip, decision
equivalence and correctness assertions, printed speedups, no timing
gate and no baseline rewrite.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS_DIR / "BENCH_interval_kernel.json"

TRACE_DECISION_FIELDS = ("time_s", "dt_s", "tec_on", "fan_level", "mean_dvfs_level")
TRACE_PLANT_FIELDS = ("peak_temp_c", "p_chip_w", "p_cores_w", "p_tec_w", "ips_chip")


def _quiescent_workload(n_tiles: int):
    """Single-phase, noise-free, effectively endless: the fast path's
    best case and the equivalence assertion's worst case (maximum
    skipped decisions)."""
    from repro.perf.workload import Workload

    return Workload(
        name="quiescent",
        threads=n_tiles,
        total_instructions=10**13,
        ff_instructions=0,
        ipc_at_ref=1.0,
        activity=0.5,
        active_tiles=tuple(range(n_tiles)),
        activity_noise_sigma=0.0,
    )


def _run_once(system, max_time_s: float, *, interval_kernel: bool):
    from repro.core.engine import EngineConfig, SimulationEngine
    from repro.core.problem import EnergyProblem
    from repro.core.state import ActuatorState
    from repro.core.tecfan import TECfanController
    from repro.perf.workload import WorkloadRun

    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=80.0),
        EngineConfig(max_time_s=max_time_s, interval_kernel=interval_kernel),
    )
    wl = _quiescent_workload(system.chip.n_tiles)
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, fan_level=2
    )
    t0 = time.perf_counter()
    result = engine.run(
        WorkloadRun(wl, system.chip, 2.0),
        TECfanController(),
        initial_state=state,
    )
    return result, time.perf_counter() - t0


def bench_fast_forward(system, max_time_s: float) -> dict:
    """Classic vs interval-kernel engine run, decision equivalence
    asserted row by row."""
    classic, t_classic = _run_once(system, max_time_s, interval_kernel=False)
    kernel, t_kernel = _run_once(system, max_time_s, interval_kernel=True)

    a, b = classic.trace, kernel.trace
    for f in TRACE_DECISION_FIELDS:
        assert np.array_equal(getattr(a, f), getattr(b, f)), (
            f"decision field {f} diverged"
        )
    for f in TRACE_PLANT_FIELDS:
        assert np.allclose(getattr(a, f), getattr(b, f), rtol=0, atol=1e-6), (
            f"plant field {f} drifted past 1e-6"
        )
    assert np.array_equal(classic.final_state.tec, kernel.final_state.tec)
    assert np.array_equal(classic.final_state.dvfs, kernel.final_state.dvfs)
    assert classic.final_state.fan_level == kernel.final_state.fan_level
    assert classic.metrics.instructions == kernel.metrics.instructions

    return {
        "sim_time_s": max_time_s,
        "intervals": int(a.time_s.size),
        "classic_s": t_classic,
        "kernel_s": t_kernel,
        "speedup": t_classic / t_kernel if t_kernel > 0 else float("inf"),
    }


def bench_woodbury(system, n_steps: int) -> dict:
    """Controller-realistic single-device toggle walk, exact vs
    Woodbury-corrected steady-state solves."""
    from repro.thermal.steady_state import SteadyStateSolver

    rng = np.random.default_rng(3)
    p = rng.uniform(0.5, 3.0, system.nodes.n_components)

    def walk(solver):
        v = np.zeros(solver.model.tec.n_devices)
        walk_rng = np.random.default_rng(17)
        out = []
        t0 = time.perf_counter()
        for _ in range(n_steps):
            d = walk_rng.integers(v.size)
            v = v.copy()
            v[d] = 1.0 - v[d]
            out.append(solver.solve(p, 2, v))
        return out, time.perf_counter() - t0

    exact = SteadyStateSolver(system.cond, cache_size=8)
    wb = SteadyStateSolver(system.cond, cache_size=8, use_woodbury=True)
    a, t_exact = walk(exact)
    b, t_wb = walk(wb)

    assert wb.n_woodbury_solves > 0, "no Woodbury corrections served"
    worst = max(float(np.max(np.abs(x - y))) for x, y in zip(a, b))
    assert worst <= 1e-6, f"Woodbury drift {worst:.2e} K past 1e-6"

    return {
        "steps": n_steps,
        "exact_s": t_exact,
        "woodbury_s": t_wb,
        "woodbury_solves": wb.n_woodbury_solves,
        "woodbury_fallbacks": wb.n_woodbury_fallbacks,
        "factorizations_exact": exact.n_factorizations,
        "factorizations_woodbury": wb.n_factorizations,
        "worst_drift_k": worst,
        "speedup": t_exact / t_wb if t_wb > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny chip, correctness only, no baseline rewrite",
    )
    parser.add_argument("--sim-time", type=float, default=None)
    parser.add_argument("--steps", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.core.system import build_system

    if args.smoke:
        system = build_system(rows=2, cols=2)
        max_time_s = args.sim_time or 0.2
        n_steps = args.steps or 30
    else:
        system = build_system()  # the paper's 16-core platform
        max_time_s = args.sim_time or 2.0
        n_steps = args.steps or 60

    report = {
        "mode": "smoke" if args.smoke else "full",
        "cores": system.n_cores,
    }
    ok = True

    ff = bench_fast_forward(system, max_time_s)
    report["fast_forward"] = ff
    print(
        f"fast-forward: {ff['intervals']} intervals, classic "
        f"{ff['classic_s']:.2f} s, kernel {ff['kernel_s']:.2f} s "
        f"-> {ff['speedup']:.2f}x"
    )
    if not args.smoke and ff["speedup"] < 3.0:
        print(f"FAIL: fast-forward speedup {ff['speedup']:.2f}x < 3x")
        ok = False

    wb = bench_woodbury(system, n_steps)
    report["woodbury"] = wb
    print(
        f"woodbury: {wb['steps']} toggle steps, exact {wb['exact_s']:.3f} s "
        f"({wb['factorizations_exact']} factorizations), corrected "
        f"{wb['woodbury_s']:.3f} s ({wb['factorizations_woodbury']} "
        f"factorizations, {wb['woodbury_solves']} corrections) "
        f"-> {wb['speedup']:.2f}x, drift {wb['worst_drift_k']:.1e} K"
    )

    if not args.smoke and ok:
        RESULTS_DIR.mkdir(exist_ok=True)
        BASELINE.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[saved to {BASELINE}]")
    print("equivalence: OK (decisions identical, plant within tolerance)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
