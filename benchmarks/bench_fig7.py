"""Figure 7 — TECfan vs OFTEC vs Oracle vs Oracle-P on the 4-core server.

Expected shape (Sec. V-E): TECfan and Oracle consume far less energy
than OFTEC (paper: ~29% for TECfan) because they adapt DVFS to the
demand-limited Wikipedia workload; TECfan does so without degrading
performance; Oracle may trade a little delay for the lowest energy; and
Oracle-P (performance-matched Oracle) lands approximately at TECfan.
"""

from __future__ import annotations

import os

from conftest import save_and_print

from repro.analysis.figures import format_figure7
from repro.analysis.server_experiment import run_server_comparison

#: Trace minutes per piece (paper: 10). Override for quick local runs.
MINUTES = int(os.environ.get("TECFAN_FIG7_MINUTES", "10"))


def test_figure7(benchmark, results_dir):
    comparison = benchmark.pedantic(
        run_server_comparison,
        kwargs={"minutes": MINUTES},
        rounds=1,
        iterations=1,
    )
    norm = comparison.normalized_to_oftec()
    save_and_print(results_dir, "figure7", format_figure7(norm))

    # TECfan saves substantially vs OFTEC without losing performance.
    assert norm["TECfan"]["energy"] < 0.85
    assert norm["TECfan"]["delay"] < 1.01
    # Oracle is at least as good on energy; within a small delay budget.
    assert norm["Oracle"]["energy"] <= norm["TECfan"]["energy"] + 0.01
    assert norm["Oracle"]["delay"] < 1.05
    # Oracle-P matches TECfan's operating point closely.
    assert abs(norm["Oracle-P"]["energy"] - norm["TECfan"]["energy"]) < 0.05
    assert norm["Oracle-P"]["delay"] <= norm["TECfan"]["delay"] + 0.01
    benchmark.extra_info["minutes"] = MINUTES
