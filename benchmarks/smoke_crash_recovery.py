"""Crash-recovery smoke gate: SIGKILL a run mid-flight, resume, compare.

Two phases, both driven through the real CLI in subprocesses (so the
kill hits a genuinely independent driver, exactly like a crashed job):

1. **Engine checkpoint/resume** — run ``tecfan run`` once cleanly and
   record its result digest; launch the same run with periodic
   checkpoints, SIGKILL it once the first checkpoint lands, then
   ``tecfan run --resume`` the checkpoint. The resumed digest must be
   *equal* to the clean one — bit-identity, not tolerance.
2. **Journaled sweep** — run ``tecfan sweep`` once cleanly and record
   its full-precision stdout; launch the same sweep with a journal,
   SIGKILL the driver once part of the sweep is journaled, re-run with
   the same journal, and require stdout equal to the clean run's.

Exit status is the gate: 0 on bit-identical recovery, 1 otherwise.
Accepts ``--smoke`` (the CI flag other benchmarks use) as a no-op —
this script *is* the smoke.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RUN_ARGS = ["run", "--max-time-s", "0.05"]
SWEEP_ARGS = ["sweep", "--max-time-s", "0.03", "--jobs", "2"]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _cli(args: list[str]) -> str:
    """Run the CLI to completion; returns stdout (raises on failure)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"tecfan {' '.join(args)} failed ({proc.returncode}):\n"
            f"{proc.stderr}"
        )
    return proc.stdout


def _cli_killed(args: list[str], ready) -> None:
    """Launch the CLI, SIGKILL it as soon as ``ready()`` is true."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 300.0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                return  # finished before the kill: recovery still tested
            if ready():
                break
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait()


def _digest(stdout: str) -> str:
    for line in stdout.splitlines():
        if line.startswith("digest: "):
            return line.split(" ", 1)[1]
    raise SystemExit(f"no digest line in CLI output:\n{stdout}")


def phase_engine(workdir: str) -> None:
    clean = _digest(_cli(RUN_ARGS))
    ck = os.path.join(workdir, "engine.ckpt")
    _cli_killed(
        RUN_ARGS + ["--checkpoint", ck, "--checkpoint-every-s", "0.01"],
        ready=lambda: os.path.exists(ck),
    )
    if not os.path.exists(ck):
        raise SystemExit("driver died before writing any checkpoint")
    resumed = _digest(_cli(["run", "--resume", ck]))
    if resumed != clean:
        raise SystemExit(
            f"resumed digest {resumed} != clean digest {clean}"
        )
    print(f"engine checkpoint/resume: bit-identical ({clean[:16]}...)")


def phase_sweep(workdir: str) -> None:
    clean = _cli(SWEEP_ARGS)
    journal = os.path.join(workdir, "sweep.tfj")

    def some_tasks_landed() -> bool:
        # Read-only scan: safe against the live appending driver.
        sys.path.insert(0, os.path.join(REPO, "src"))
        from repro.journal import scan_journal

        try:
            _, _, tasks, _ = scan_journal(journal)
        except FileNotFoundError:
            return False
        return len(tasks) >= 1

    _cli_killed(SWEEP_ARGS + ["--journal", journal], ready=some_tasks_landed)
    resumed = _cli(SWEEP_ARGS + ["--journal", journal])
    if resumed != clean:
        raise SystemExit(
            "journal-resumed sweep output differs from clean run:\n"
            f"--- clean ---\n{clean}\n--- resumed ---\n{resumed}"
        )
    print("journaled sweep kill/resume: output identical")
    print(clean.splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="accepted for CI symmetry"
    )
    parser.parse_args()
    with tempfile.TemporaryDirectory() as workdir:
        phase_engine(workdir)
        phase_sweep(workdir)
    print("crash recovery smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
