"""Live-observability smoke gate: watch a real run, top a real sweep.

Drives the CLI in subprocesses, exactly like a user's terminal pair:

1. **Run + watch** — launch ``tecfan run --status-file`` in the
   background, poll the sidecar until a snapshot with progress > 0
   lands (proving snapshots flow *while the run is live*), and require
   ``tecfan watch --once`` to exit 0 with a parsed progress line. After
   the run exits, the final snapshot must report done/100%.
2. **Sweep + top** — run a journaled ``tecfan sweep --status-file`` to
   completion and require ``tecfan top --once`` to exit 0 against its
   sidecar; re-run the same sweep (journal resume, every cell replayed)
   and require ``top`` to show the replayed cells.

Exit status is the gate: 0 when every view renders, 1 otherwise.
Accepts ``--smoke`` (the CI flag other benchmarks use) as a no-op —
this script *is* the smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RUN_ARGS = [
    "run", "--max-time-s", "0.5",
    "--status-every-s", "0.02",
]
SWEEP_ARGS = [
    "sweep", "--max-time-s", "0.02", "--jobs", "2",
    "--status-every-s", "0.02",
]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def _cli(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(),
        cwd=REPO,
        capture_output=True,
        text=True,
        timeout=600,
    )


def _check(ok: bool, what: str) -> None:
    if not ok:
        raise SystemExit(f"FAIL: {what}")


def _poll_status(path: str, ready, deadline_s: float = 300.0) -> dict:
    """Poll the sidecar until ``ready(status)``; returns that snapshot.

    The atomic writer guarantees any successful read is a complete
    snapshot, so a transiently missing file is the only case to
    tolerate.
    """
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with open(path, "rb") as fh:
                status = json.loads(fh.read())
        except FileNotFoundError:
            status = None
        if status is not None and ready(status):
            return status
        time.sleep(0.02)
    raise SystemExit(f"FAIL: no qualifying status snapshot in {path}")


def phase_run_watch(tmp: str) -> None:
    status_path = os.path.join(tmp, "run-status.json")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *RUN_ARGS,
         "--status-file", status_path],
        env=_env(),
        cwd=REPO,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        live = _poll_status(
            status_path,
            lambda s: (s.get("progress") or {}).get("fraction", 0) > 0,
        )
        _check(
            live["progress"]["fraction"] > 0,
            "live snapshot has no progress",
        )
        watch = _cli(["watch", status_path, "--once"])
        _check(watch.returncode == 0, f"watch --once exited {watch.returncode}")
        _check("progress" in watch.stdout, "watch output has no progress line")
        print(
            f"watch at {live['progress']['fraction'] * 100:.1f}%: OK "
            f"(seq {live['seq']})"
        )
    finally:
        rc = proc.wait(timeout=600)
    _check(rc == 0, f"tecfan run exited {rc}")
    final = _cli(["watch", status_path, "--once"])
    _check(final.returncode == 0, "watch --once failed after completion")
    _check("[done]" in final.stdout, "final snapshot not marked done")
    _check("100.0%" in final.stdout, "final snapshot not at 100%")
    print("watch after completion: OK (done, 100%)")


def phase_sweep_top(tmp: str) -> None:
    status_path = os.path.join(tmp, "sweep-status.json")
    journal_path = os.path.join(tmp, "sweep.journal")
    args = SWEEP_ARGS + [
        "--status-file", status_path, "--journal", journal_path,
    ]
    sweep = _cli(args)
    _check(sweep.returncode == 0, f"tecfan sweep exited {sweep.returncode}")
    top = _cli(["top", status_path, "--once"])
    _check(top.returncode == 0, f"top --once exited {top.returncode}")
    _check("settled" in top.stdout, "top output has no settled count")
    _check("0 replayed" in top.stdout, "fresh sweep should replay nothing")
    print("top after live sweep: OK")

    resumed = _cli(args)
    _check(resumed.returncode == 0, f"resumed sweep exited {resumed.returncode}")
    _check(
        sweep.stdout == resumed.stdout,
        "journal-resumed sweep output differs from the live sweep",
    )
    top2 = _cli(["top", status_path, "--once"])
    _check(top2.returncode == 0, "top --once failed after journal resume")
    _check("replayed cells:" in top2.stdout, "resumed top shows no replays")
    _check("0 live" in top2.stdout, "resumed sweep should re-run nothing")
    print("top after journal resume: OK (all cells replayed)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="accepted for CI symmetry; this script is the smoke",
    )
    parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        phase_run_watch(tmp)
        phase_sweep_top(tmp)
    print("live-observability smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
