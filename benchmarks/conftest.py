"""Shared fixtures for the benchmark harness.

Every paper experiment is wrapped in a pytest-benchmark case (one round
— these are simulations, not micro-benchmarks) and its formatted output
is both printed and written to ``benchmarks/results/*.txt`` so the
regenerated tables/figures survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the regenerated tables/figures."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def system16():
    """The calibrated 16-core platform (shared across benchmarks)."""
    from repro.core.system import build_system

    return build_system()


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's formatted output and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
