"""Figure 4 — importance of integrating TEC with fan.

Expected shape (Sec. V-B): the 2nd fan level alone violates the
threshold for the hot workloads; adding the reactive TECs at the 2nd
level restores close-to-level-1 cooling, at a total cooling power far
below running the fan at level 1 (14.4 W vs 3.8 W + a few W of TEC).
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.figures import (
    figure4,
    figure4_timeseries,
    format_figure4,
    format_figure4_timeseries,
)


def test_figure4(benchmark, system16, results_dir):
    rows = benchmark.pedantic(
        figure4, args=(system16,), rounds=1, iterations=1
    )
    save_and_print(results_dir, "figure4", format_figure4(rows))

    hot_cases = [r for r in rows if r.peak_fan2_c > r.t_threshold_c + 0.5]
    assert hot_cases, "expected at least one case where fan level 2 violates"
    for r in hot_cases:
        # (b): TECs recover most of the fan deficit.
        deficit = r.peak_fan2_c - r.t_threshold_c
        recovered = r.peak_fan2_c - r.peak_fantec2_c
        assert recovered > 0.5 * deficit, (r.workload, deficit, recovered)
        # (c): total cooling power at level 2 + TEC stays below level 1.
        assert r.fan2_power_w + r.tec_power_w < r.fan1_power_w, r.workload


def test_figure4_timeseries(benchmark, system16, results_dir):
    series = benchmark.pedantic(
        figure4_timeseries,
        args=(system16, "cholesky", 16),
        rounds=1,
        iterations=1,
    )
    save_and_print(
        results_dir, "figure4_timeseries",
        format_figure4_timeseries(series),
    )
    # (a): fan level 1 holds the threshold; level 2 violates repeatedly.
    assert series.fan1_peak_c.max() <= series.t_threshold_c + 1e-9
    violations_l2 = (series.fan2_peak_c > series.t_threshold_c + 0.5).sum()
    assert violations_l2 >= 3
    # (b): Fan+TEC at level 2 stays near the threshold (the paper allows
    # a couple of excursions).
    excursions = (series.fantec2_peak_c > series.t_threshold_c + 1.0).sum()
    assert excursions <= max(2, len(series.time_ms) // 8)
