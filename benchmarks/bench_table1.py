"""Table I — regenerate the base-scenario measurements.

Paper values (Table I): execution time, processor power and peak
temperature for the eight SPLASH-2 cases. The calibrated models must
land within tight tolerances (time is analytic, power/temperature come
through the thermal-leakage loop and the activity noise).
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.tables import format_table1, regenerate_table1


def test_table1(benchmark, system16, results_dir):
    comparisons = benchmark.pedantic(
        regenerate_table1, args=(system16,), rounds=1, iterations=1
    )
    save_and_print(results_dir, "table1", format_table1(comparisons))
    for c in comparisons:
        assert abs(c.time_error_pct) < 1.0, c.published
        assert abs(c.power_error_w) < 1.5, c.published
        assert abs(c.temp_error_c) < 1.5, c.published
    benchmark.extra_info["rows"] = len(comparisons)
