"""Robustness study: TECfan under degraded telemetry and injected faults.

Two experiments:

1. **Sensor noise sweep** (pytest-benchmark) — the paper assumes ideal
   per-component sensing (Sec. V-A); its hardware budget nevertheless
   implies 8-bit (0.5 degC) quantization. Additive noise on top of that
   measures how constraint tracking and energy saving degrade.
2. **Fault matrix** (:mod:`repro.analysis.faultmatrix`) — single
   actuator/sensor faults injected mid-run, each scenario executed
   unhardened (the paper's controller meets reality) and hardened
   (watchdog + health masking + sensor validation + estimator
   fallback). The hardened controller must keep the true peak within
   ``T_th + 2 degC`` for >= 99 % of the time on every scenario; the
   unhardened controller must escape that envelope (or crash) on at
   least one.

Run the fault matrix directly (no pytest-benchmark dependency)::

    PYTHONPATH=src python benchmarks/bench_robustness.py           # full chip
    PYTHONPATH=src python benchmarks/bench_robustness.py --smoke   # CI mode

``--smoke`` uses a 4-core chip and short runs: the acceptance gates are
identical, only the platform is smaller. ``--jobs N`` additionally runs
the matrix through the persistent worker pool and gates on outcome
identity with the serial matrix plus the CPU-scaled speedup bound of
``bench_batch_eval.sweep_gate`` (>= 8x at ``--jobs 16`` on a 16-core
host; a bounded-overhead check when CPU-starved).
"""

from __future__ import annotations

import argparse
import sys

from conftest import save_and_print

from repro.analysis.experiments import run_base_scenario
from repro.analysis.faultmatrix import run_fault_matrix
from repro.analysis.report import render_table
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun
from repro.thermal.sensors import TemperatureSensorBank

NOISE_SIGMAS = (0.0, 0.25, 0.5, 1.0, 2.0)
FAN_LEVEL = 2


def _run_with_noise(system, base, sigma: float):
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    sensors = (
        TemperatureSensorBank(noise_sigma_c=sigma, seed=11)
        if sigma > 0
        else TemperatureSensorBank(seed=11)  # quantization only
    )
    engine = SimulationEngine(
        system, problem, EngineConfig(max_time_s=2.0, sensors=sensors)
    )
    wl = splash2_workload("cholesky", 16, system.chip)
    ctrl = TECfanController()
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level,
        fan_level=FAN_LEVEL,
    )
    return engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        ctrl,
        initial_state=state,
    )


def test_sensor_noise_robustness(benchmark, system16, results_dir):
    base = run_base_scenario(system16, "cholesky", 16)

    def sweep():
        return {
            sigma: _run_with_noise(system16, base, sigma)
            for sigma in NOISE_SIGMAS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bm = base.result.metrics
    rows = []
    for sigma, res in results.items():
        n = res.metrics.normalized_to(bm)
        rows.append(
            [
                sigma,
                100.0 * res.metrics.violation_rate,
                n["delay"],
                n["energy"],
            ]
        )
    save_and_print(
        results_dir,
        "robustness_sensor_noise",
        render_table(
            ["sensor sigma [degC]", "viol %", "delay", "energy"],
            rows,
            title=(
                "TECfan vs sensor noise — cholesky/16t at fan level "
                f"{FAN_LEVEL} (8-bit quantization always on)"
            ),
        ),
    )

    clean = results[0.0].metrics
    noisy = results[2.0].metrics
    # Quantization-only telemetry keeps the paper behaviour.
    assert clean.violation_rate <= 0.05
    # 2 degC of noise (4x the guard band) degrades tracking but must not
    # destabilize the controller.
    assert noisy.violation_rate <= 0.5
    assert noisy.instructions == clean.instructions
    # Violations grow monotonically-ish with noise (allow plateau).
    v = [results[s].metrics.violation_rate for s in NOISE_SIGMAS]
    assert v[-1] >= v[0]


# ----------------------------------------------------------------------
# Fault matrix: hardened vs unhardened under injected faults
# ----------------------------------------------------------------------
def _format_fault_matrix(report) -> str:
    rows = []
    for oc in report.outcomes:
        rows.append(
            [
                oc.scenario,
                "hardened" if oc.hardened else "raw",
                "CRASH" if oc.crashed else f"{oc.peak_temp_c:.2f}",
                100.0 * oc.excess_frac,
                "yes" if oc.contained else "NO",
                oc.counters.get("watchdog.trips", 0),
                oc.counters.get("health.masked_actuators", 0)
                + oc.counters.get("health.masked_sensors", 0),
                oc.counters.get("controller.fallbacks", 0),
            ]
        )
    return render_table(
        [
            "scenario",
            "controller",
            "peak [degC]",
            f"time > T_th+{report.margin_c:g} [%]",
            "contained",
            "trips",
            "masked",
            "fallbacks",
        ],
        rows,
        title=(
            f"Fault matrix — {report.workload}/{report.threads}t, "
            f"T_th = {report.t_threshold_c:.2f} degC, fault target: "
            f"component {report.hot_component} (tile {report.hot_tile})"
        ),
    )


def _assert_fault_matrix_gates(report) -> None:
    """The robustness claims this study exists to defend."""
    # Gate 1: hardened runs survive every single-fault scenario inside
    # the thermal envelope (>= 99 % of time within T_th + margin).
    for oc in report.outcomes:
        if oc.hardened:
            assert not oc.crashed, f"hardened {oc.scenario}: {oc.error}"
            assert oc.contained, (
                f"hardened {oc.scenario}: "
                f"{100 * oc.excess_frac:.1f}% of time above "
                f"T_th+{report.margin_c:g}"
            )
    # Gate 2: the paper's (unhardened) controller fails at least one.
    assert report.unhardened_failures, (
        "every unhardened scenario stayed contained — faults too mild "
        "to demonstrate the hardening"
    )
    # The guards actually engaged: some fault was observed and handled.
    engaged = sum(
        oc.counters.get("watchdog.trips", 0)
        + oc.counters.get("health.masked_actuators", 0)
        + oc.counters.get("health.masked_sensors", 0)
        for oc in report.outcomes
        if oc.hardened
    )
    assert engaged > 0, "no guard ever engaged across the matrix"
    # No-fault control rows stay clean (no spurious trips/masks).
    for oc in report.outcomes:
        if oc.scenario == "none":
            assert oc.counters.get("watchdog.trips", 0) == 0
            assert oc.counters.get("health.masked_actuators", 0) == 0
            assert oc.counters.get("health.masked_sensors", 0) == 0


def test_fault_matrix(benchmark, system16, results_dir):
    report = benchmark.pedantic(
        lambda: run_fault_matrix(system16), rounds=1, iterations=1
    )
    save_and_print(
        results_dir, "robustness_fault_matrix", _format_fault_matrix(report)
    )
    _assert_fault_matrix_gates(report)


# ----------------------------------------------------------------------
# Standalone entry point (CI smoke: no pytest-benchmark needed)
# ----------------------------------------------------------------------
def _outcomes_match(serial, pooled) -> str | None:
    """First divergence between two outcome lists, or None if identical.

    Crashed cells carry NaN figures, so the frozen-dataclass ``==`` is
    checked field-wise with NaN treated as equal to itself.
    """
    import math

    if len(serial) != len(pooled):
        return "different outcome counts"
    for a, b in zip(serial, pooled):
        cell = f"{a.scenario}/{'hardened' if a.hardened else 'raw'}"
        if (a.scenario, a.hardened, a.crashed, a.error, a.counters) != (
            b.scenario, b.hardened, b.crashed, b.error, b.counters
        ):
            return f"{cell}: status/counters diverged"
        for fld in (
            "peak_temp_c", "excess_frac", "violation_rate", "energy_j"
        ):
            x, y = getattr(a, fld), getattr(b, fld)
            if x != y and not (math.isnan(x) and math.isnan(y)):
                return f"{cell}: {fld} {x!r} != {y!r}"
    return None


def _bench_pooled_cells(system, plans, jobs: int, smoke: bool) -> int:
    """Pool every plan's cells through one worker fleet and gate it.

    The serial prologue (base + reference per workload) is already
    paid inside ``plans``; what the pool accelerates — and what this
    times — is the cell fan-out, which is the dominant cost (each cell
    is a ``mission_scale``-long hardened/faulted mission). Cells from
    all workloads share one pool, so at ``--jobs 16`` the full-chip
    matrix has 28 cells to spread over 16 workers.
    """
    import time

    from bench_batch_eval import sweep_gate

    from repro.analysis.faultmatrix import _matrix_task
    from repro.parallel import WorkerPool, available_cpus, parallel_map

    cells = [c for plan in plans for c in plan.cells]
    t0 = time.perf_counter()
    serial = parallel_map(_matrix_task, cells, jobs=1, context=system)
    t_serial = time.perf_counter() - t0

    pool_jobs = max(2, min(jobs, available_cpus()))
    with WorkerPool(pool_jobs) as pool:
        t0 = time.perf_counter()
        pool.prime()
        t_startup = time.perf_counter() - t0
        t0 = time.perf_counter()
        pooled = parallel_map(_matrix_task, cells, context=system, pool=pool)
        t_pool = time.perf_counter() - t0

    diverged = _outcomes_match(serial, pooled)
    if diverged is not None:
        print(f"FAIL: pooled matrix diverged from serial — {diverged}")
        return 1
    entry = {
        "tasks": len(cells),
        "jobs": pool_jobs,
        "effective_cpus": max(
            1, min(pool_jobs, available_cpus(), len(cells))
        ),
        "serial_s": t_serial,
        "pool_startup_s": t_startup,
        "pooled_s": t_pool,
        "speedup": t_serial / t_pool if t_pool > 0 else float("inf"),
    }
    print(
        f"fault-matrix cells ({len(cells)} across {len(plans)} "
        f"workload(s)): serial {t_serial:.2f} s, jobs={pool_jobs} "
        f"(effective cpus {entry['effective_cpus']}) pooled "
        f"{t_pool:.2f} s (+{t_startup:.2f} s one-off pool start-up) "
        f"-> {entry['speedup']:.2f}x, identical outcomes"
    )
    if not smoke:
        failure = sweep_gate(entry)
        if failure is not None:
            print(f"FAIL: {failure}")
            return 1
    return 0


def main(argv=None) -> int:
    from repro.analysis.faultmatrix import plan_fault_matrix

    parser = argparse.ArgumentParser(
        description="Fault-matrix robustness study"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: 4-core chip, short runs, same acceptance gates",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="also run every workload's matrix cells through one pool "
        "of N workers and gate on serial/pooled outcome identity plus "
        "the CPU-scaled speedup bound",
    )
    args = parser.parse_args(argv)

    from repro.core.system import build_system
    from repro.perf.splash2 import TABLE1_TARGETS

    if args.smoke:
        system = build_system(rows=2, cols=2)
        kwargs = dict(
            workload="lu", threads=4, max_time_s=0.5, t_fault_s=0.004
        )
        report = run_fault_matrix(system, **kwargs)
    else:
        system = build_system()
        kwargs = {}
        report = run_fault_matrix(system)

    print(_format_fault_matrix(report))
    try:
        _assert_fault_matrix_gates(report)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(
        "gates: hardened contained on all scenarios; unhardened failed "
        f"on {report.unhardened_failures}"
    )

    if args.jobs is not None:
        if args.smoke:
            plans = [plan_fault_matrix(system, **kwargs)]
        else:
            # Every Table I workload at the full thread count: 4
            # matrices x 7 cells = 28 pooled tasks.
            plans = [
                plan_fault_matrix(system, workload=row.workload)
                for row in TABLE1_TARGETS
                if row.threads == system.n_cores
            ]
        return _bench_pooled_cells(system, plans, args.jobs, args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
