"""Robustness study: TECfan under degraded temperature telemetry.

The paper assumes ideal per-component sensing (Sec. V-A); its hardware
budget nevertheless implies 8-bit (0.5 degC) quantization. This bench
sweeps additive sensor noise on top of that quantization and measures
how TECfan's constraint tracking and energy saving degrade — the
deployment question a user of this library would ask first.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.experiments import run_base_scenario
from repro.analysis.report import render_table
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun
from repro.thermal.sensors import TemperatureSensorBank

NOISE_SIGMAS = (0.0, 0.25, 0.5, 1.0, 2.0)
FAN_LEVEL = 2


def _run_with_noise(system, base, sigma: float):
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    sensors = (
        TemperatureSensorBank(noise_sigma_c=sigma, seed=11)
        if sigma > 0
        else TemperatureSensorBank(seed=11)  # quantization only
    )
    engine = SimulationEngine(
        system, problem, EngineConfig(max_time_s=2.0, sensors=sensors)
    )
    wl = splash2_workload("cholesky", 16, system.chip)
    ctrl = TECfanController()
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level,
        fan_level=FAN_LEVEL,
    )
    return engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        ctrl,
        initial_state=state,
    )


def test_sensor_noise_robustness(benchmark, system16, results_dir):
    base = run_base_scenario(system16, "cholesky", 16)

    def sweep():
        return {
            sigma: _run_with_noise(system16, base, sigma)
            for sigma in NOISE_SIGMAS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    bm = base.result.metrics
    rows = []
    for sigma, res in results.items():
        n = res.metrics.normalized_to(bm)
        rows.append(
            [
                sigma,
                100.0 * res.metrics.violation_rate,
                n["delay"],
                n["energy"],
            ]
        )
    save_and_print(
        results_dir,
        "robustness_sensor_noise",
        render_table(
            ["sensor sigma [degC]", "viol %", "delay", "energy"],
            rows,
            title=(
                "TECfan vs sensor noise — cholesky/16t at fan level "
                f"{FAN_LEVEL} (8-bit quantization always on)"
            ),
        ),
    )

    clean = results[0.0].metrics
    noisy = results[2.0].metrics
    # Quantization-only telemetry keeps the paper behaviour.
    assert clean.violation_rate <= 0.05
    # 2 degC of noise (4x the guard band) degrades tracking but must not
    # destabilize the controller.
    assert noisy.violation_rate <= 0.5
    assert noisy.instructions == clean.instructions
    # Violations grow monotonically-ish with noise (allow plateau).
    v = [results[s].metrics.violation_rate for s in NOISE_SIGMAS]
    assert v[-1] >= v[0]
