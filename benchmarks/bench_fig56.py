"""Figures 5 & 6 — cooling performance and energy efficiency.

One full policy-suite run over the four 16-thread benchmarks feeds both
figures (exactly as in the paper). Expected shape (Secs. V-C/V-D):

* 5(a): TECfan's peak stays at/below the threshold in every case;
* 5(b): TECfan's violation rate is the smallest (paper: < 0.5%);
* 6(a): TECfan's delay is a few percent; Fan+DVFS is the slowest;
* 6(c): every knob-using policy saves energy vs the base scenario;
* 6(d): TECfan has the best (lowest) EDP; Fan+DVFS's EDP can exceed 1.
"""

from __future__ import annotations

import pytest
from conftest import save_and_print

from repro.analysis.figures import (
    figure6_averages,
    format_figure5,
    format_figure6,
    splash_comparison,
)


@pytest.fixture(scope="module")
def comparison(system16):
    return splash_comparison(system16)


def test_figures_5_and_6(benchmark, system16, results_dir):
    comp = benchmark.pedantic(
        splash_comparison, args=(system16,), rounds=1, iterations=1
    )
    save_and_print(results_dir, "figure5", format_figure5(comp))
    save_and_print(results_dir, "figure6", format_figure6(comp))

    avg = figure6_averages(comp)
    # -- Fig. 6(a): delay ordering ------------------------------------
    assert avg["TECfan"]["delay"] < 1.10
    assert avg["Fan+DVFS"]["delay"] > 1.10
    assert avg["TECfan"]["delay"] < avg["Fan+DVFS"]["delay"]
    assert abs(avg["Fan+TEC"]["delay"] - 1.0) < 1e-6
    # -- Fig. 6(c): energy savings ------------------------------------
    assert avg["TECfan"]["energy"] < 0.95
    assert avg["Fan+TEC"]["energy"] < 1.0
    assert avg["Fan+DVFS"]["energy"] < 0.95
    # -- Fig. 6(d): TECfan wins EDP -----------------------------------
    for other in ("Fan+TEC", "Fan+DVFS", "DVFS+TEC", "Fan-only"):
        assert avg["TECfan"]["edp"] <= avg[other]["edp"] + 1e-9, other

    # -- Fig. 5(b): TECfan has the fewest violations -------------------
    for (case, outcomes) in comp.outcomes.items():
        tecfan_v = outcomes["TECfan"].chosen.metrics.violation_rate
        assert tecfan_v <= 0.005 + 1e-9, case
