"""Append-only completed-task journal for crash-recoverable fan-outs.

A journal file is a sequence of self-delimiting frames::

    MAGIC(4)  length(u32 LE)  crc32(u32 LE)  payload(length bytes)

where the payload pickles one ``(kind, key, value)`` record. Three
kinds exist: one ``"header"`` record (first frame, identifies the run
so a resumed driver can't replay the wrong journal), ``"meta"``
records (e.g. a fault matrix's serialized plan), and ``"task"``
records mapping a task index to its completed result.

Crash model: the driver may be SIGKILLed mid-append. A torn tail frame
is detected by the magic/length/CRC envelope on the next open, reported
(``truncated``), counted (``journal.truncated_tails``), and truncated
away — every frame before it is intact because frames are appended with
a single buffered write + flush. Only *successful* results are ever
journaled, so replaying a journal can only skip work, never wrong
results.

:class:`TaskJournal` opens the file read-write (repairing torn tails);
:func:`scan_journal` is the read-only counterpart, safe to poll while a
live driver is still appending.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib

from repro.exceptions import CheckpointError
from repro.obs import telemetry as obs

JOURNAL_MAGIC = b"TFJ1"
_FRAME = struct.Struct("<II")
#: Version of the frame payload layout, stamped into the header record.
JOURNAL_SCHEMA = 1


def _encode_frame(record) -> bytes:
    payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        JOURNAL_MAGIC
        + _FRAME.pack(len(payload), zlib.crc32(payload))
        + payload
    )


def _scan_blob(blob: bytes, path: str):
    """Parse frames out of raw journal bytes.

    Returns ``(records, good_end, truncated)`` where ``records`` is the
    list of decoded ``(kind, key, value)`` tuples, ``good_end`` the
    offset just past the last intact frame, and ``truncated`` a report
    dict (or None) describing a torn/corrupt tail.
    """
    records = []
    offset = 0
    truncated = None
    head_len = len(JOURNAL_MAGIC) + _FRAME.size
    while offset < len(blob):
        head = blob[offset : offset + head_len]
        if len(head) < head_len or head[:4] != JOURNAL_MAGIC:
            truncated = {
                "path": path,
                "offset": offset,
                "bytes_dropped": len(blob) - offset,
                "reason": "torn frame header",
            }
            break
        length, crc = _FRAME.unpack(head[4:])
        payload = blob[offset + head_len : offset + head_len + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            truncated = {
                "path": path,
                "offset": offset,
                "bytes_dropped": len(blob) - offset,
                "reason": (
                    "torn payload"
                    if len(payload) < length
                    else "CRC mismatch"
                ),
            }
            break
        try:
            record = pickle.loads(payload)
        except Exception:
            truncated = {
                "path": path,
                "offset": offset,
                "bytes_dropped": len(blob) - offset,
                "reason": "unpicklable payload",
            }
            break
        records.append(record)
        offset += head_len + length
    return records, offset, truncated


def scan_journal(path):
    """Read-only journal scan: ``(header, metas, tasks, truncated)``.

    Never modifies the file, so it is safe to poll a journal that a
    live driver is still appending to (a mid-append tail just shows up
    as ``truncated`` until the write completes).
    """
    with open(path, "rb") as fh:
        blob = fh.read()
    records, _, truncated = _scan_blob(blob, os.fspath(path))
    header = None
    metas = {}
    tasks = {}
    for kind, key, value in records:
        if kind == "header":
            header = value
        elif kind == "meta":
            metas[key] = value
        elif kind == "task":
            tasks[key] = value
    return header, metas, tasks, truncated


class TaskJournal:
    """Append-only record of a fan-out's completed tasks.

    Parameters
    ----------
    path:
        Journal file; created if missing, resumed (and tail-repaired)
        if present.
    header:
        Identity of the run (workload, policy, task count, ...). On a
        fresh file it is written as the header record; on an existing
        file every key it carries must match the recorded header —
        a mismatch raises :class:`~repro.exceptions.CheckpointError`
        rather than silently replaying the wrong run's journal.
    fsync:
        Fsync after every appended record. Off by default: a lost
        *intact* tail record only costs re-running that task.
    """

    def __init__(self, path, header: dict | None = None, *, fsync: bool = False):
        self.path = os.fspath(path)
        self.fsync = bool(fsync)
        self.tasks: dict = {}
        self.metas: dict = {}
        self.truncated: dict | None = None
        self.header: dict | None = None

        exists = os.path.exists(self.path)
        if exists:
            with open(self.path, "rb") as fh:
                blob = fh.read()
            records, good_end, self.truncated = _scan_blob(blob, self.path)
            if self.truncated is not None:
                obs.incr("journal.truncated_tails")
            for kind, key, value in records:
                if kind == "header":
                    self.header = value
                elif kind == "meta":
                    self.metas[key] = value
                elif kind == "task":
                    self.tasks[key] = value
            if records and self.header is None:
                raise CheckpointError(
                    f"journal {self.path} has no header record"
                )
            if header is not None and self.header is not None:
                for key, want in header.items():
                    got = self.header.get(key)
                    if got != want:
                        raise CheckpointError(
                            f"journal {self.path} was written by a "
                            f"different run: {key}={got!r}, this run "
                            f"has {key}={want!r}"
                        )
            self._fh = open(self.path, "r+b")
            self._fh.seek(good_end)
            self._fh.truncate(good_end)
            if self.header is None:
                self._write_header(header)
        else:
            self._fh = open(self.path, "wb")
            self._write_header(header)

    def _write_header(self, header: dict | None) -> None:
        self.header = dict(header or {})
        self.header.setdefault("journal_schema", JOURNAL_SCHEMA)
        self._append(("header", None, self.header))

    def _append(self, record) -> None:
        self._fh.write(_encode_frame(record))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # ------------------------------------------------------------------
    def put_meta(self, name: str, value) -> None:
        """Record a named side value (idempotent on resume: last wins)."""
        self._append(("meta", name, value))
        self.metas[name] = value

    def get_meta(self, name: str, default=None):
        return self.metas.get(name, default)

    def record_task(self, key, value) -> None:
        """Journal one completed task's result."""
        self._append(("task", key, value))
        self.tasks[key] = value
        obs.incr("journal.tasks_recorded")

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "TaskJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
