"""Exception hierarchy for the ``repro`` (TECfan) package.

All library-raised errors derive from :class:`ReproError` so callers can
catch the package's failures with a single ``except`` clause while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FloorplanError(ReproError):
    """A floorplan is geometrically or topologically invalid."""


class ThermalModelError(ReproError):
    """The thermal network is ill-posed (singular G, negative C, ...)."""


class ConvergenceError(ThermalModelError):
    """An iterative solve (e.g. the leakage-temperature loop) failed to
    converge within its iteration budget."""

    def __init__(self, message: str, iterations: int, residual: float):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class ConfigurationError(ReproError):
    """An actuator or simulation configuration is out of range."""


class WorkloadError(ReproError):
    """A workload definition or trace is malformed."""


class ControlError(ReproError):
    """A controller was asked to operate on an inconsistent state."""


class FaultInjectionError(ReproError):
    """A fault model or fault script is malformed (unknown kind, bad
    actuator index, inverted time window, out-of-range parameter)."""


class ObservabilityError(ReproError):
    """The telemetry layer was misused (metric kind clash, bad buckets,
    unreadable telemetry stream)."""


class CheckpointError(ReproError):
    """A checkpoint or run journal cannot be used: unreadable payload,
    unsupported schema version, wrong snapshot kind, or a journal whose
    header does not match the run being resumed."""


class ParallelExecutionError(ReproError):
    """One or more tasks of a parallel fan-out failed in a worker.

    Carries the failing task indices and their formatted tracebacks so
    the driver can report every failure, not just the first.
    """

    def __init__(self, failures: list):
        self.failures = list(failures)
        lines = [f"{len(self.failures)} parallel task(s) failed:"]
        for index, tb in self.failures:
            lines.append(f"--- task {index} ---\n{tb}")
        super().__init__("\n".join(lines))
