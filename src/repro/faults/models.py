"""Fault model taxonomy: what can break, when, and how.

The paper evaluates TECfan with ideal actuators and sensors (Sec. V-A).
A deployed thermal controller meets none of those assumptions: TEC
elements die (high-density thin-film arrays have per-element failure
modes), fans seize or lose airflow, DVFS transitions silently fail at
the voltage regulator, and sensors stick, drop out, or drift. Each
dataclass here describes one such fault as a *timed transformation* of
either the commanded-to-effective actuation path or the sensed-reading
path; :class:`repro.faults.scheduler.FaultScheduler` applies them inside
the simulation engine.

All faults share a half-open activity window ``[t_start_s, t_end_s)``
(``t_end_s=None`` means permanent). Parameters are validated eagerly so
a malformed fault script fails at construction, not mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import FaultInjectionError

#: Sentinel for "latch whatever value is observed at fault onset".
LATCH = None


@dataclass(frozen=True)
class Fault:
    """Base class: an activity window on the simulated-run clock."""

    t_start_s: float = 0.0
    t_end_s: float | None = None

    def __post_init__(self) -> None:
        if self.t_start_s < 0.0:
            raise FaultInjectionError(
                f"fault start time {self.t_start_s} must be >= 0"
            )
        if self.t_end_s is not None and self.t_end_s <= self.t_start_s:
            raise FaultInjectionError(
                f"fault window [{self.t_start_s}, {self.t_end_s}) is empty"
            )

    def active(self, t_s: float) -> bool:
        """Is the fault present at simulated time ``t_s``?"""
        return t_s >= self.t_start_s and (
            self.t_end_s is None or t_s < self.t_end_s
        )


# ----------------------------------------------------------------------
# Actuator faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TECStuckFault(Fault):
    """One TEC device ignores commands: stuck fully off or fully on.

    ``stuck_off`` models a dead element (open drive transistor, cracked
    film): the device still sits in the heat path as a passive slab but
    pumps nothing. ``stuck_on`` models a shorted driver: full drive and
    full Joule dissipation regardless of command.
    """

    device: int = 0
    mode: str = "stuck_off"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.device < 0:
            raise FaultInjectionError(f"invalid TEC device {self.device}")
        if self.mode not in ("stuck_off", "stuck_on"):
            raise FaultInjectionError(f"unknown TEC fault mode {self.mode!r}")

    @property
    def stuck_value(self) -> float:
        """Effective activation forced while active."""
        return 0.0 if self.mode == "stuck_off" else 1.0


@dataclass(frozen=True)
class FanStuckFault(Fault):
    """The fan ignores speed commands and spins at one fixed level.

    ``level=None`` latches whatever level was commanded at fault onset
    (a seized PWM input); an explicit ``level`` pins the fan there (a
    failed tach loop defaulting to a fallback speed).
    """

    level: int | None = LATCH

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.level is not None and self.level < 1:
            raise FaultInjectionError(f"invalid fan level {self.level}")


@dataclass(frozen=True)
class FanDegradedFault(Fault):
    """Partial airflow loss: dust, a failing bearing, a blocked duct.

    The effective speed is ``levels_lost`` steps slower than commanded
    (clipped to the slowest level) — the discrete-level equivalent of a
    proportional airflow derating, so the fault stays inside the
    calibrated fan table instead of inventing new operating points.
    """

    levels_lost: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.levels_lost < 1:
            raise FaultInjectionError(
                f"levels_lost must be >= 1, got {self.levels_lost}"
            )


@dataclass(frozen=True)
class DVFSStuckFault(Fault):
    """DVFS transitions silently fail; the core stays at its onset level.

    ``core=None`` freezes every core (a dead power-management unit);
    otherwise only the given core's regulator is stuck. The controller
    still *believes* its commands took effect — detecting the
    commanded-vs-effective divergence is the health monitor's job.
    """

    core: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.core is not None and self.core < 0:
            raise FaultInjectionError(f"invalid core index {self.core}")


# ----------------------------------------------------------------------
# Sensor faults
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SensorStuckFault(Fault):
    """One component's sensor reports a frozen value.

    ``value_c=None`` latches the reading at fault onset (a stuck ADC);
    an explicit ``value_c`` pins the output (a shorted sense line).
    """

    component: int = 0
    value_c: float | None = LATCH

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.component < 0:
            raise FaultInjectionError(
                f"invalid component index {self.component}"
            )


@dataclass(frozen=True)
class SensorDropoutFault(Fault):
    """Intermittent sensor loss: the reading collapses to a rail value.

    Each interval inside the window the reading is replaced by
    ``floor_c`` with probability ``p_drop`` (drawn from the scheduler's
    seeded RNG, so runs are reproducible). ``p_drop=1`` is a hard
    dropout.
    """

    component: int = 0
    p_drop: float = 1.0
    floor_c: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.component < 0:
            raise FaultInjectionError(
                f"invalid component index {self.component}"
            )
        if not 0.0 < self.p_drop <= 1.0:
            raise FaultInjectionError(
                f"dropout probability {self.p_drop} outside (0, 1]"
            )


@dataclass(frozen=True)
class SensorDriftFault(Fault):
    """Slow calibration drift: an additive ramp on one sensor.

    The reading gains ``drift_c_per_s * (t - t_start_s)`` degrees —
    positive drift makes the controller overcool, negative drift walks
    it blind toward the thermal limit.
    """

    component: int = 0
    drift_c_per_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.component < 0:
            raise FaultInjectionError(
                f"invalid component index {self.component}"
            )
        if self.drift_c_per_s == 0.0:
            raise FaultInjectionError("drift rate must be non-zero")


#: Spec-name -> class map used by :meth:`FaultScheduler.from_spec`.
FAULT_KINDS: dict = {
    "tec_stuck": TECStuckFault,
    "fan_stuck": FanStuckFault,
    "fan_degraded": FanDegradedFault,
    "dvfs_stuck": DVFSStuckFault,
    "sensor_stuck": SensorStuckFault,
    "sensor_dropout": SensorDropoutFault,
    "sensor_drift": SensorDriftFault,
}
