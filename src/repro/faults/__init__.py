"""Fault injection and graceful-degradation guards for the control stack.

``repro.faults`` extends the reproduction beyond the paper's ideal-world
evaluation (Sec. V-A): :mod:`~repro.faults.models` defines timed
actuator and sensor fault models, :mod:`~repro.faults.scheduler` injects
them deterministically into a :class:`~repro.core.engine.SimulationEngine`
run, and :mod:`~repro.faults.guard` provides the hardening that keeps a
degraded system inside its thermal envelope — thermal watchdog, actuator
health masking, and model-based sensor validation. See
``docs/ROBUSTNESS.md`` for the taxonomy and semantics.
"""

from repro.faults.guard import (
    ActuatorHealth,
    ActuatorHealthMonitor,
    HealthConfig,
    SensorValidator,
    ThermalWatchdog,
    WatchdogConfig,
    safe_state,
)
from repro.faults.models import (
    FAULT_KINDS,
    DVFSStuckFault,
    Fault,
    FanDegradedFault,
    FanStuckFault,
    SensorDriftFault,
    SensorDropoutFault,
    SensorStuckFault,
    TECStuckFault,
)
from repro.faults.scheduler import FaultScheduler

__all__ = [
    "FAULT_KINDS",
    "ActuatorHealth",
    "ActuatorHealthMonitor",
    "DVFSStuckFault",
    "Fault",
    "FanDegradedFault",
    "FanStuckFault",
    "FaultScheduler",
    "HealthConfig",
    "SensorDriftFault",
    "SensorDropoutFault",
    "SensorStuckFault",
    "SensorValidator",
    "TECStuckFault",
    "ThermalWatchdog",
    "WatchdogConfig",
    "safe_state",
]
