"""Deterministic, seedable injection of timed faults into a run.

The :class:`FaultScheduler` owns a fault script — a list of
:mod:`repro.faults.models` instances — and transforms the engine's
commanded actuation and sensed readings interval by interval:

* ``apply_tec`` / ``apply_fan`` / ``apply_dvfs`` map *commanded*
  settings to *effective* ones (what the hardware actually does);
* ``apply_sensors`` corrupts the sensor bank's readings on the way to
  the controller.

Determinism contract: given the same script, seed, and call sequence,
every transformation is reproducible — latched values are captured at
fault onset, and the only randomness (sensor dropout) draws from one
seeded generator. :meth:`reset` restores the scheduler to its pristine
state so repeated runs of the same engine are identical; the engine
calls it at the start of every recorded run.

Every fault's first activation increments the ``faults.injected``
counter, so degraded runs are observable in any telemetry stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FaultInjectionError
from repro.faults.models import (
    FAULT_KINDS,
    DVFSStuckFault,
    Fault,
    FanDegradedFault,
    FanStuckFault,
    SensorDriftFault,
    SensorDropoutFault,
    SensorStuckFault,
    TECStuckFault,
)
from repro.obs import telemetry as obs


@dataclass
class FaultScheduler:
    """A fault script plus the run-time state needed to apply it.

    Parameters
    ----------
    faults:
        The script; extend with :meth:`add` or build from dicts with
        :meth:`from_spec`.
    seed:
        Seed of the dropout RNG; reproducible across :meth:`reset`.
    """

    faults: list = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        for f in self.faults:
            self._check(f)
        self.reset()

    @staticmethod
    def _check(fault) -> None:
        if not isinstance(fault, Fault):
            raise FaultInjectionError(
                f"not a fault model: {fault!r} (build instances from "
                "repro.faults.models or use FaultScheduler.from_spec)"
            )

    # ------------------------------------------------------------------
    def add(self, *faults) -> "FaultScheduler":
        """Append faults to the script (chainable)."""
        for f in faults:
            self._check(f)
            self.faults.append(f)
        return self

    @classmethod
    def from_spec(cls, spec: list, seed: int = 0) -> "FaultScheduler":
        """Build a scheduler from a list of dicts (JSON fault script).

        Each entry needs a ``kind`` key naming one of
        :data:`repro.faults.models.FAULT_KINDS`; remaining keys are the
        model's constructor arguments.
        """
        if not isinstance(spec, (list, tuple)):
            raise FaultInjectionError(
                f"fault script must be a list of dicts, got {type(spec).__name__}"
            )
        faults = []
        for entry in spec:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise FaultInjectionError(
                    f"fault script entry {entry!r} needs a 'kind' key"
                )
            kind = entry["kind"]
            fault_cls = FAULT_KINDS.get(kind)
            if fault_cls is None:
                raise FaultInjectionError(
                    f"unknown fault kind {kind!r}; known: "
                    f"{sorted(FAULT_KINDS)}"
                )
            kwargs = {k: v for k, v in entry.items() if k != "kind"}
            try:
                faults.append(fault_cls(**kwargs))
            except TypeError as exc:
                raise FaultInjectionError(
                    f"bad parameters for fault kind {kind!r}: {exc}"
                ) from exc
        return cls(faults=faults, seed=seed)

    def reset(self) -> None:
        """Forget latched values and announcements; reseed the RNG."""
        self._rng = np.random.default_rng(self.seed)
        self._latched: dict = {}
        self._announced: set = set()

    # ------------------------------------------------------------------
    # Pickling: Generator objects don't pickle portably, so ship the
    # bit-generator state and rebuild. A checkpointed scheduler resumes
    # its dropout stream (and latched values) exactly where it left off.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_rng"] = self._rng.bit_generator.state
        return state

    def __setstate__(self, state: dict) -> None:
        rng_state = state.pop("_rng")
        self.__dict__.update(state)
        self._rng = np.random.default_rng(self.seed)
        self._rng.bit_generator.state = rng_state

    # ------------------------------------------------------------------
    def validate(self, system) -> None:
        """Check every fault's indices against a concrete system."""
        n_dev = system.n_tec_devices
        n_cores = system.n_cores
        n_comp = system.nodes.n_components
        n_fan = system.fan.n_levels
        for f in self.faults:
            if isinstance(f, TECStuckFault) and f.device >= n_dev:
                raise FaultInjectionError(
                    f"TEC device {f.device} outside 0..{n_dev - 1}"
                )
            if isinstance(f, DVFSStuckFault) and (
                f.core is not None and f.core >= n_cores
            ):
                raise FaultInjectionError(
                    f"core {f.core} outside 0..{n_cores - 1}"
                )
            if isinstance(f, FanStuckFault) and (
                f.level is not None and f.level > n_fan
            ):
                raise FaultInjectionError(
                    f"fan level {f.level} outside 1..{n_fan}"
                )
            if isinstance(
                f, (SensorStuckFault, SensorDropoutFault, SensorDriftFault)
            ) and f.component >= n_comp:
                raise FaultInjectionError(
                    f"component {f.component} outside 0..{n_comp - 1}"
                )

    # ------------------------------------------------------------------
    def _announce(self, index: int) -> None:
        if index not in self._announced:
            self._announced.add(index)
            obs.incr("faults.injected")

    def _active(self, t_s: float, kinds) -> list:
        out = []
        for i, f in enumerate(self.faults):
            if isinstance(f, kinds) and f.active(t_s):
                self._announce(i)
                out.append((i, f))
        return out

    def any_active(self, t_s: float) -> bool:
        """Is any scripted fault active at ``t_s``?"""
        return any(f.active(t_s) for f in self.faults)

    # ------------------------------------------------------------------
    # Actuation transformations (commanded -> effective)
    # ------------------------------------------------------------------
    def apply_tec(self, t_s: float, commanded: np.ndarray) -> np.ndarray:
        """Effective TEC activations under the active TEC faults."""
        active = self._active(t_s, TECStuckFault)
        if not active:
            return commanded
        out = np.asarray(commanded, dtype=float).copy()
        for _, f in active:
            out[f.device] = f.stuck_value
        return out

    def apply_fan(
        self, t_s: float, commanded: int, n_levels: int
    ) -> int:
        """Effective fan level under the active fan faults."""
        level = int(commanded)
        for i, f in self._active(t_s, (FanStuckFault, FanDegradedFault)):
            if isinstance(f, FanStuckFault):
                if f.level is not None:
                    level = min(f.level, n_levels)
                else:
                    # Latch the level commanded at onset.
                    latched = self._latched.setdefault(i, int(commanded))
                    level = latched
            else:
                level = min(level + f.levels_lost, n_levels)
        return level

    def apply_dvfs(self, t_s: float, commanded: np.ndarray) -> np.ndarray:
        """Effective DVFS levels under the active DVFS faults."""
        active = self._active(t_s, DVFSStuckFault)
        if not active:
            return commanded
        out = np.asarray(commanded, dtype=int).copy()
        for i, f in active:
            if f.core is None:
                latched = self._latched.setdefault(
                    i, np.asarray(commanded, dtype=int).copy()
                )
                out[:] = latched
            else:
                latched = self._latched.setdefault(
                    i, int(commanded[f.core])
                )
                out[f.core] = latched
        return out

    # ------------------------------------------------------------------
    # Sensing transformation
    # ------------------------------------------------------------------
    def apply_sensors(self, t_s: float, readings: np.ndarray) -> np.ndarray:
        """Corrupted sensor readings under the active sensor faults."""
        active = self._active(
            t_s, (SensorStuckFault, SensorDropoutFault, SensorDriftFault)
        )
        if not active:
            return readings
        out = np.asarray(readings, dtype=float).copy()
        for i, f in active:
            if isinstance(f, SensorStuckFault):
                if f.value_c is not None:
                    out[f.component] = f.value_c
                else:
                    latched = self._latched.setdefault(
                        i, float(readings[f.component])
                    )
                    out[f.component] = latched
            elif isinstance(f, SensorDropoutFault):
                if f.p_drop >= 1.0 or self._rng.random() < f.p_drop:
                    out[f.component] = f.floor_c
            else:  # SensorDriftFault
                out[f.component] += f.drift_c_per_s * (t_s - f.t_start_s)
        return out
