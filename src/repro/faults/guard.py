"""Run-time guards: thermal watchdog, actuator health, sensor validation.

These are the *defensive* half of the robustness subsystem — the fault
models of :mod:`repro.faults.models` break things; the guards here keep
a hardened control loop inside its thermal envelope anyway:

* :class:`ThermalWatchdog` — a bang-bang safety net independent of the
  controller's own reasoning: K consecutive sensed intervals above
  ``T_th + margin`` trip the system into its safe state (lowest DVFS,
  every TEC on, fastest fan); hysteretic recovery releases control only
  after the die has been convincingly cool for a hold-down period.
* :class:`ActuatorHealthMonitor` — compares commanded vs effective
  actuation (the engine observes both, as real platforms do through
  tach feedback and current sense) and, after a divergence persists,
  masks the actuator so the heuristic stops wasting moves on dead
  knobs. Masks are sticky for the run: dead actuators do not resurrect.
* :class:`SensorValidator` — model-based plausibility filtering with a
  trust-hot-doubt-cold asymmetry: a reading *implausibly cooler* than
  the estimator's own one-interval-old prediction is replaced by the
  prediction immediately (and masked for good once the disagreement
  persists), so a lying-cold sensor cannot walk the controller into a
  runaway; readings hotter than the model always pass through, because
  suppressing them could blind the watchdog during genuine heating.

All state machines are engine-owned and per-run; every transition emits
an ``obs`` counter (``watchdog.trips``, ``health.masked_actuators``,
``health.masked_sensors``) so degradation is observable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.state import ActuatorState
from repro.exceptions import ConfigurationError
from repro.obs import telemetry as obs


# ----------------------------------------------------------------------
# Thermal watchdog
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WatchdogConfig:
    """Trip/recovery policy of the thermal watchdog.

    Parameters
    ----------
    margin_c:
        Trip margin above the problem's ``t_threshold_c`` [degC].
    trip_intervals:
        Consecutive over-margin intervals required to trip (debounce).
    recover_margin_c:
        Hysteresis below the threshold required for recovery [degC].
    recover_intervals:
        Consecutive cool intervals before control is handed back; the
        hold-down that prevents trip/recover chatter.
    """

    margin_c: float = 1.0
    trip_intervals: int = 2
    recover_margin_c: float = 2.0
    recover_intervals: int = 100

    def __post_init__(self) -> None:
        if self.margin_c < 0.0 or self.recover_margin_c < 0.0:
            raise ConfigurationError("watchdog margins must be >= 0")
        if self.trip_intervals < 1 or self.recover_intervals < 1:
            raise ConfigurationError(
                "watchdog interval counts must be >= 1"
            )


class ThermalWatchdog:
    """Consecutive-interval over-temperature trip with hysteresis."""

    def __init__(self, config: WatchdogConfig, t_threshold_c: float):
        self.config = config
        self.t_threshold_c = t_threshold_c
        self.tripped = False
        self.trips = 0
        self._hot = 0
        self._cool = 0

    def feed(self, max_reading_c: float) -> bool:
        """Advance one interval on the sensed peak; returns tripped."""
        cfg = self.config
        if not self.tripped:
            if max_reading_c > self.t_threshold_c + cfg.margin_c:
                self._hot += 1
                if self._hot >= cfg.trip_intervals:
                    self.tripped = True
                    self.trips += 1
                    self._cool = 0
                    obs.incr("watchdog.trips")
            else:
                self._hot = 0
        else:
            obs.incr("watchdog.active_intervals")
            if max_reading_c < self.t_threshold_c - cfg.recover_margin_c:
                self._cool += 1
                if self._cool >= cfg.recover_intervals:
                    self.tripped = False
                    self._hot = 0
            else:
                self._cool = 0
        return self.tripped


def safe_state(n_tec_devices: int, n_cores: int) -> ActuatorState:
    """The watchdog's refuge: max cooling, min heat generation.

    Every TEC on (local pumping costs no performance), every core at
    the lowest DVFS level, fan at level 1 (fastest).
    """
    return ActuatorState(
        tec=np.ones(n_tec_devices),
        dvfs=np.zeros(n_cores, dtype=int),
        fan_level=1,
    )


# ----------------------------------------------------------------------
# Actuator health
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HealthConfig:
    """Detection thresholds of the health monitor.

    Parameters
    ----------
    divergence_intervals:
        Consecutive commanded-vs-effective mismatches before an
        actuator is masked (debounces engagement transients).
    fan_divergence_intervals:
        Same, for the fan alone. Tach feedback is an exact integer
        level with no engagement transient in the model, so a single
        mismatched interval already proves the fault — and masking fast
        matters most here: until the estimator is reconciled to the
        real fan level it keeps promising cooling that never comes.
    tec_tolerance:
        Activation mismatch above which a TEC interval counts as
        divergent (0.25 absorbs PWM/duty-cycle slack).
    sensor_tolerance_c:
        How far *below* the model prediction a reading must fall to
        count as implausible [degC]; must exceed sensor noise plus the
        estimator's own one-interval model error (the banded estimator
        reaches ~8.9 degC on the 16-core platform across workload
        phase transitions, hence the 10 degC default). Readings above
        the prediction are never implausible — hiding heat is the
        dangerous failure, claiming it is merely wasteful.
    sensor_intervals:
        Consecutive implausible intervals before a sensor is masked.
    sensor_global_frac:
        When more than this fraction of sensors is implausible in the
        *same* interval, the divergence is global — a wrong model or a
        broken actuator, not a sensor fault (sensor faults are local) —
        and no masking streak advances that interval. Without this
        guard a stuck fan makes the whole die diverge from the model
        and the validator would blind the watchdog by masking every
        honest hot sensor.
    """

    divergence_intervals: int = 3
    fan_divergence_intervals: int = 1
    tec_tolerance: float = 0.25
    sensor_tolerance_c: float = 10.0
    sensor_intervals: int = 3
    sensor_global_frac: float = 0.25

    def __post_init__(self) -> None:
        if (
            self.divergence_intervals < 1
            or self.fan_divergence_intervals < 1
            or self.sensor_intervals < 1
        ):
            raise ConfigurationError("health interval counts must be >= 1")
        if not 0.0 < self.tec_tolerance < 1.0:
            raise ConfigurationError("tec_tolerance must be in (0, 1)")
        if self.sensor_tolerance_c <= 0.0:
            raise ConfigurationError("sensor tolerance must be > 0")
        if not 0.0 < self.sensor_global_frac <= 1.0:
            raise ConfigurationError(
                "sensor_global_frac must be in (0, 1]"
            )


@dataclass(frozen=True)
class ActuatorHealth:
    """Immutable health view handed to controllers each interval."""

    tec_ok: np.ndarray
    dvfs_ok: np.ndarray
    fan_ok: bool

    @property
    def all_ok(self) -> bool:
        """No actuator currently masked?"""
        return bool(self.fan_ok and self.tec_ok.all() and self.dvfs_ok.all())


class ActuatorHealthMonitor:
    """Detects dead actuators from commanded-vs-effective divergence."""

    def __init__(self, config: HealthConfig, n_devices: int, n_cores: int):
        self.config = config
        self._tec_bad = np.zeros(n_devices, dtype=bool)
        self._dvfs_bad = np.zeros(n_cores, dtype=bool)
        self._fan_bad = False
        self._tec_streak = np.zeros(n_devices, dtype=int)
        self._dvfs_streak = np.zeros(n_cores, dtype=int)
        self._fan_streak = 0
        # Last observed effective values, for reconciliation.
        self._tec_eff = np.zeros(n_devices)
        self._dvfs_eff = np.zeros(n_cores, dtype=int)
        self._fan_eff = 1
        self._view: ActuatorHealth | None = None

    # ------------------------------------------------------------------
    def observe(
        self,
        *,
        tec_cmd: np.ndarray,
        tec_eff: np.ndarray,
        dvfs_cmd: np.ndarray,
        dvfs_eff: np.ndarray,
        fan_cmd: int,
        fan_eff: int,
    ) -> None:
        """Feed one interval's commanded and effective actuation."""
        k = self.config.divergence_intervals
        self._tec_eff = np.asarray(tec_eff, dtype=float)
        self._dvfs_eff = np.asarray(dvfs_eff, dtype=int)
        self._fan_eff = int(fan_eff)

        div = (
            np.abs(np.asarray(tec_cmd) - self._tec_eff)
            > self.config.tec_tolerance
        )
        self._tec_streak = np.where(div, self._tec_streak + 1, 0)
        newly = (self._tec_streak >= k) & ~self._tec_bad
        if newly.any():
            self._tec_bad |= newly
            obs.incr("health.masked_actuators", int(newly.sum()))
            self._view = None

        div = np.asarray(dvfs_cmd) != self._dvfs_eff
        self._dvfs_streak = np.where(div, self._dvfs_streak + 1, 0)
        newly = (self._dvfs_streak >= k) & ~self._dvfs_bad
        if newly.any():
            self._dvfs_bad |= newly
            obs.incr("health.masked_actuators", int(newly.sum()))
            self._view = None

        if int(fan_cmd) != self._fan_eff:
            self._fan_streak += 1
            if (
                self._fan_streak >= self.config.fan_divergence_intervals
                and not self._fan_bad
            ):
                self._fan_bad = True
                obs.incr("health.masked_actuators")
                self._view = None
        else:
            self._fan_streak = 0

    # ------------------------------------------------------------------
    @property
    def n_masked(self) -> int:
        """Actuators currently masked (TEC devices + cores + fan)."""
        return (
            int(self._tec_bad.sum())
            + int(self._dvfs_bad.sum())
            + int(self._fan_bad)
        )

    def health(self) -> ActuatorHealth:
        """Current (cached) immutable health view."""
        if self._view is None:
            tec_ok = ~self._tec_bad
            dvfs_ok = ~self._dvfs_bad
            tec_ok.setflags(write=False)
            dvfs_ok.setflags(write=False)
            self._view = ActuatorHealth(
                tec_ok=tec_ok, dvfs_ok=dvfs_ok, fan_ok=not self._fan_bad
            )
        return self._view

    def reconcile(self, state: ActuatorState) -> ActuatorState:
        """Overwrite masked knobs with their observed effective values.

        This is the read-back step real firmware performs: once an
        actuator is known dead, the commanded state is reconciled to
        reality so the controller's estimator predicts with the truth
        instead of the wish.
        """
        if self.n_masked == 0:
            return state
        out = state
        if self._tec_bad.any() and not np.array_equal(
            out.tec[self._tec_bad], self._tec_eff[self._tec_bad]
        ):
            tec = out.tec.copy()
            tec[self._tec_bad] = self._tec_eff[self._tec_bad]
            out = out.with_tec_vector(tec)
        if self._dvfs_bad.any() and not np.array_equal(
            out.dvfs[self._dvfs_bad], self._dvfs_eff[self._dvfs_bad]
        ):
            dvfs = out.dvfs.copy()
            dvfs[self._dvfs_bad] = self._dvfs_eff[self._dvfs_bad]
            out = out.with_dvfs_vector(dvfs)
        if self._fan_bad and out.fan_level != self._fan_eff:
            out = out.with_fan(self._fan_eff)
        return out


# ----------------------------------------------------------------------
# Sensor validation
# ----------------------------------------------------------------------
class SensorValidator:
    """Model-based plausibility filter over the sensor bank.

    Each interval the engine hands in the raw (possibly faulty)
    readings and the estimator's own prediction of the same
    temperatures from the previous interval's committed candidate.
    Validation is asymmetric — *trust hot, doubt cold*:

    * A reading more than ``sensor_tolerance_c`` **below** the
      prediction is implausible. It is substituted by the prediction
      right away (provisionally), so neither the watchdog nor the
      estimator ever ingests it — a lying-cold sensor must not become
      its own alibi by dragging the model down to its value. After
      ``sensor_intervals`` consecutive implausible intervals the sensor
      is masked for good (sticky for the run).
    * A reading **above** the prediction always passes through: a
      sensor claiming heat may cost energy if it is wrong, but
      suppressing it could hide a real runaway. Hot-lying faults
      (stuck-hot, positive drift) therefore degrade efficiency, never
      safety — the direction a thermal guard must fail in.
    """

    def __init__(self, config: HealthConfig):
        self.config = config
        self._streak: np.ndarray | None = None
        self._bad: np.ndarray | None = None

    @property
    def n_masked(self) -> int:
        """Sensors currently masked."""
        return 0 if self._bad is None else int(self._bad.sum())

    def filter(
        self, readings_c: np.ndarray, predicted_c: np.ndarray | None
    ) -> np.ndarray:
        """Validated readings; masked entries come from the model."""
        if predicted_c is None:
            return readings_c  # no model yet (first interval)
        if self._streak is None:
            self._streak = np.zeros(readings_c.shape, dtype=int)
            self._bad = np.zeros(readings_c.shape, dtype=bool)
        # Positive = implausibly cool; hot readings are never doubted.
        residual = predicted_c - readings_c
        implausible = residual > self.config.sensor_tolerance_c
        globally_divergent = (
            float(implausible.mean()) > self.config.sensor_global_frac
        )
        if globally_divergent:
            # Global divergence: the model is wrong (broken actuator,
            # load step), not the sensors — sensor faults are local.
            # Hold the streaks and pass raw readings through until the
            # model re-converges; substituting model output here would
            # blind the watchdog with the very model that is wrong.
            implausible = np.zeros_like(implausible)
        else:
            self._streak = np.where(implausible, self._streak + 1, 0)
        newly = (self._streak >= self.config.sensor_intervals) & ~self._bad
        if newly.any():
            self._bad |= newly
            obs.incr("health.masked_sensors", int(newly.sum()))
        replace = self._bad | implausible
        if not replace.any():
            return readings_c
        out = readings_c.copy()
        out[replace] = predicted_c[replace]
        return out
