"""Power substrate: DVFS tables, dynamic and leakage power models.

Public API
----------
- :class:`~repro.power.dvfs.DVFSTable`, :data:`~repro.power.dvfs.SCC_DVFS`,
  :data:`~repro.power.dvfs.I7_DVFS`, :class:`~repro.power.dvfs.PerCoreDVFS`
- :class:`~repro.power.leakage.LinearLeakage` (Eq. 6, controller side),
  :class:`~repro.power.leakage.QuadraticLeakage` (plant side)
- :class:`~repro.power.component_power.ComponentPowerModel`
- :class:`~repro.power.dynamic.DynamicPowerTracker` (Eq. 7)
- :func:`~repro.power.calibration.build_power_models`
"""

from repro.power.calibration import (
    CHIP_PEAK_DYNAMIC_W,
    CalibratedPowerModels,
    LEAKAGE_SLOPE_W_PER_K,
    P_TDP_LEAK_W,
    T_TDP_C,
    build_power_models,
)
from repro.power.component_power import ComponentPowerModel
from repro.power.dvfs import DVFSTable, I7_DVFS, PerCoreDVFS, SCC_DVFS
from repro.power.dynamic import DynamicPowerTracker
from repro.power.leakage import LinearLeakage, QuadraticLeakage

__all__ = [
    "CHIP_PEAK_DYNAMIC_W",
    "CalibratedPowerModels",
    "LEAKAGE_SLOPE_W_PER_K",
    "P_TDP_LEAK_W",
    "T_TDP_C",
    "build_power_models",
    "ComponentPowerModel",
    "DVFSTable",
    "I7_DVFS",
    "PerCoreDVFS",
    "SCC_DVFS",
    "DynamicPowerTracker",
    "LinearLeakage",
    "QuadraticLeakage",
]
