"""Leakage power models.

Two models, used at different places exactly as in the paper:

* :class:`LinearLeakage` — the paper's on-line estimation model, Eq. (6):
  ``P_leak_m = (P_TDP_leak + a * (T_m - T_TDP)) * A_m / A_chip``.
  Linear-in-temperature leakage is what TECfan's controller hardware can
  evaluate (Shin et al.; Su et al. show it is accurate over the limited
  operating range).

* :class:`QuadraticLeakage` — a second-order polynomial in temperature
  (Su et al., ISLPED'03), which the paper uses on the *simulation* side,
  calibrated to the SCC leakage measurement. Using the quadratic model in
  the plant and the linear model in the controller reproduces the
  model-mismatch the real system would see.

Both distribute chip leakage to components in proportion to area and
optionally scale with supply voltage (leakage ~ V in the weak-inversion
regime; the paper holds V's effect inside the TDP constant, so the
voltage factor defaults to off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LinearLeakage:
    """Eq. (6): chip leakage linear in component temperature.

    Parameters
    ----------
    p_tdp_leak_w:
        Leakage share of TDP at ``t_tdp_c`` [W], chip-wide.
    alpha_w_per_k:
        Chip-wide leakage-temperature slope [W/K].
    t_tdp_c:
        Reference (TDP limit) temperature [degC].
    areas_mm2:
        Per-component areas; defines the ``A_m / A_chip`` split.
    """

    p_tdp_leak_w: float
    alpha_w_per_k: float
    t_tdp_c: float
    areas_mm2: np.ndarray

    def __post_init__(self) -> None:
        if self.p_tdp_leak_w <= 0:
            raise ConfigurationError("P_TDP_leak must be positive")
        if self.alpha_w_per_k < 0:
            raise ConfigurationError("leakage slope must be non-negative")
        a = np.asarray(self.areas_mm2, dtype=float)
        if np.any(a <= 0):
            raise ConfigurationError("component areas must be positive")
        object.__setattr__(self, "areas_mm2", a)

    @property
    def chip_area_mm2(self) -> float:
        """Total die area [mm^2]."""
        return float(self.areas_mm2.sum())

    @property
    def t_tdp_k(self) -> float:
        """Reference temperature [K]."""
        return units.c_to_k(self.t_tdp_c).item()

    def per_component_w(self, t_components_k: np.ndarray) -> np.ndarray:
        """Per-component leakage [W] at temperatures ``t_components_k``."""
        t = np.asarray(t_components_k, dtype=float)
        frac = self.areas_mm2 / self.chip_area_mm2
        chipwise = self.p_tdp_leak_w + self.alpha_w_per_k * (t - self.t_tdp_k)
        # Eq. (6) evaluates the chip-level expression at each component's
        # own temperature, then takes the component's area share.
        return np.clip(chipwise, 0.0, None) * frac

    def chip_total_w(self, t_components_k: np.ndarray) -> float:
        """Total chip leakage [W]."""
        return float(self.per_component_w(t_components_k).sum())


@dataclass(frozen=True)
class QuadraticLeakage:
    """Second-order leakage polynomial (plant-side model).

    ``P_leak(T) = p0 + p1 (T - T_ref) + p2 (T - T_ref)^2`` chip-wide,
    area-distributed. Calibrate with :meth:`fit_to_linear` so both models
    agree at the reference point (value and slope) while the quadratic
    term captures the convexity of subthreshold leakage.
    """

    p0_w: float
    p1_w_per_k: float
    p2_w_per_k2: float
    t_ref_c: float
    areas_mm2: np.ndarray

    def __post_init__(self) -> None:
        a = np.asarray(self.areas_mm2, dtype=float)
        if np.any(a <= 0):
            raise ConfigurationError("component areas must be positive")
        if self.p0_w <= 0:
            raise ConfigurationError("p0 must be positive")
        object.__setattr__(self, "areas_mm2", a)

    @classmethod
    def fit_to_linear(
        cls, linear: LinearLeakage, curvature_w_per_k2: float = 0.004
    ) -> "QuadraticLeakage":
        """Quadratic model tangent to ``linear`` at the TDP point."""
        return cls(
            p0_w=linear.p_tdp_leak_w,
            p1_w_per_k=linear.alpha_w_per_k,
            p2_w_per_k2=curvature_w_per_k2,
            t_ref_c=linear.t_tdp_c,
            areas_mm2=linear.areas_mm2,
        )

    @property
    def t_ref_k(self) -> float:
        """Reference temperature [K]."""
        return units.c_to_k(self.t_ref_c).item()

    def per_component_w(self, t_components_k: np.ndarray) -> np.ndarray:
        """Per-component leakage [W]."""
        t = np.asarray(t_components_k, dtype=float)
        dt = t - self.t_ref_k
        frac = self.areas_mm2 / self.areas_mm2.sum()
        chipwise = self.p0_w + self.p1_w_per_k * dt + self.p2_w_per_k2 * dt**2
        return np.clip(chipwise, 0.0, None) * frac

    def chip_total_w(self, t_components_k: np.ndarray) -> float:
        """Total chip leakage [W]."""
        return float(self.per_component_w(t_components_k).sum())
