"""Plant-side per-component dynamic power (the Wattch/CACTI stand-in).

The paper estimates per-component dynamic power with SESC+Wattch+CACTI
and calibrates the peak to the published Intel SCC measurement
(Sec. IV-B). We reproduce the quantities the controller consumes: a peak
dynamic power per component (area x power-density-weight allocation of
the calibrated chip peak) scaled by workload activity and the core's
DVFS operating point:

    P_dyn_m = P_peak_m * activity_tile(m) * profile_m * (f/f_max)(V/V_max)^2
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.floorplan.chip import ChipFloorplan
from repro.floorplan.component import ComponentCategory
from repro.power.dvfs import DVFSTable

#: Categories clocked by the chip-wide mesh/uncore domain rather than the
#: per-core DVFS domain. On the Intel SCC the routers and the L2 blocks
#: sit on the mesh's own voltage/frequency island, so per-core DVFS does
#: not scale their power — which bounds how much energy core throttling
#: can recover (a key term in the Fig. 6 trade-off).
MESH_DOMAIN_CATEGORIES: frozenset = frozenset(
    {ComponentCategory.ROUTER, ComponentCategory.L2_CACHE}
)


def core_dvfs_domain_mask(chip: ChipFloorplan) -> np.ndarray:
    """Boolean per-component mask: True = scales with the core's DVFS."""
    return np.array(
        [c.category not in MESH_DOMAIN_CATEGORIES for c in chip.components]
    )


@dataclass
class ComponentPowerModel:
    """Maps (activity, DVFS levels) -> per-component dynamic power.

    Parameters
    ----------
    chip:
        The floorplan; supplies areas, density weights, tile membership.
    dvfs:
        The DVFS table shared by all cores.
    chip_peak_dynamic_w:
        Chip dynamic power with every core at the top DVFS level and
        activity 1.0 (calibration constant; see
        :mod:`repro.power.calibration`).
    idle_activity:
        Activity floor of an idle (clock-gated) core.
    """

    chip: ChipFloorplan
    dvfs: DVFSTable
    chip_peak_dynamic_w: float
    idle_activity: float = 0.02
    _p_peak: np.ndarray = field(default=None, repr=False)
    _tile_of: np.ndarray = field(default=None, repr=False)
    _core_domain: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.chip_peak_dynamic_w <= 0:
            raise ConfigurationError("chip peak dynamic power must be > 0")
        if not 0.0 <= self.idle_activity <= 1.0:
            raise ConfigurationError("idle activity must lie in [0, 1]")
        weights = self.chip.power_weights()
        areas = self.chip.areas_mm2()
        alloc = weights * areas
        self._p_peak = self.chip_peak_dynamic_w * alloc / alloc.sum()
        self._tile_of = self.chip.tile_of()
        self._core_domain = core_dvfs_domain_mask(self.chip)

    # ------------------------------------------------------------------
    @property
    def peak_per_component_w(self) -> np.ndarray:
        """Per-component dynamic power at max DVFS, activity 1 [W]."""
        return self._p_peak

    def peak_core_power_w(self, tile: int) -> float:
        """Peak dynamic power of one core tile [W]."""
        return float(self._p_peak[self.chip.tile_slice(tile)].sum())

    def dynamic_power_w(
        self,
        core_activity: np.ndarray,
        dvfs_levels: np.ndarray,
        component_profile: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-component dynamic power [W].

        Parameters
        ----------
        core_activity:
            Per-tile activity in [0, 1]; idle cores are clamped up to the
            clock-gating floor.
        dvfs_levels:
            Per-tile DVFS level indices.
        component_profile:
            Optional per-component multiplicative shape (a workload's
            unit-utilization signature, mean ~1). Length must equal the
            component count.
        """
        act = np.asarray(core_activity, dtype=float)
        lv = np.asarray(dvfs_levels, dtype=int)
        if act.shape != (self.chip.n_tiles,) or lv.shape != (self.chip.n_tiles,):
            raise ConfigurationError(
                "activity/levels must have one entry per tile"
            )
        if np.any(act < 0.0) or np.any(act > 1.0):
            raise ConfigurationError("core activity must lie in [0, 1]")
        act = np.maximum(act, self.idle_activity)
        scale = self.dvfs.dynamic_scale(lv)
        comp_scale = np.where(
            self._core_domain, scale[self._tile_of], 1.0
        )
        per_comp = self._p_peak * act[self._tile_of] * comp_scale
        if component_profile is not None:
            prof = np.asarray(component_profile, dtype=float)
            if prof.shape != per_comp.shape:
                raise ConfigurationError(
                    "component profile length mismatches floorplan"
                )
            per_comp = per_comp * prof
        return per_comp

    def dynamic_power_many(
        self,
        core_activity: np.ndarray,
        dvfs_levels: np.ndarray,
        component_profile: np.ndarray | None = None,
    ) -> np.ndarray:
        """Batched :meth:`dynamic_power_w` over rows of nodes.

        ``core_activity`` and ``dvfs_levels`` are ``(batch, n_tiles)``
        arrays; returns ``(batch, n_components)``. Row ``b`` is
        bit-identical to ``dynamic_power_w(core_activity[b],
        dvfs_levels[b], component_profile)`` — every operation is the
        same elementwise expression broadcast over the batch axis, which
        is what lets the fleet stepper validate against the per-node
        loop exactly.
        """
        act = np.asarray(core_activity, dtype=float)
        lv = np.asarray(dvfs_levels, dtype=int)
        n_tiles = self.chip.n_tiles
        if act.ndim != 2 or act.shape[1] != n_tiles or lv.shape != act.shape:
            raise ConfigurationError(
                "activity/levels must be (batch, n_tiles) arrays"
            )
        if np.any(act < 0.0) or np.any(act > 1.0):
            raise ConfigurationError("core activity must lie in [0, 1]")
        act = np.maximum(act, self.idle_activity)
        scale = self.dvfs.dynamic_scale(lv)
        comp_scale = np.where(
            self._core_domain, scale[:, self._tile_of], 1.0
        )
        per_comp = self._p_peak * act[:, self._tile_of] * comp_scale
        if component_profile is not None:
            prof = np.asarray(component_profile, dtype=float)
            if prof.shape != (per_comp.shape[1],):
                raise ConfigurationError(
                    "component profile length mismatches floorplan"
                )
            per_comp = per_comp * prof
        # C order, not whatever layout broadcasting picked: callers
        # reduce rows with sum(axis=1), and numpy's pairwise summation
        # order follows memory layout — an F-ordered result would sum
        # in a different order than the per-node rows and break the
        # bit-identity contract by one ulp.
        return np.ascontiguousarray(per_comp)
