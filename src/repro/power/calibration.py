"""Calibration constants anchoring the models to published measurements.

The paper calibrates Wattch's peak power estimate and the leakage model
to the Intel SCC measurements (Howard et al., JSSC'11) and sets the
temperature threshold of each experiment to the base-scenario peak
temperature (Sec. V-B, Table I). The constants here encode those anchor
points; ``repro.analysis.tables`` regenerates Table I from them and the
test suite asserts the base scenario stays within tolerance of the
published rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.floorplan.chip import ChipFloorplan
from repro.power.dvfs import SCC_DVFS, DVFSTable
from repro.power.leakage import LinearLeakage, QuadraticLeakage
from repro.power.component_power import ComponentPowerModel

#: Chip dynamic power at max DVFS / activity 1.0 [W]. With the leakage
#: share below, the all-cores-busy base scenario lands at the SCC-class
#: ~126 W that Table I reports for 16-thread cholesky.
CHIP_PEAK_DYNAMIC_W: float = 112.0

#: Leakage share of TDP at the TDP temperature limit [W] (~24% of TDP).
P_TDP_LEAK_W: float = 30.0

#: TDP temperature limit used as the leakage reference [degC].
T_TDP_C: float = 90.0

#: Chip-wide leakage-temperature slope [W/K]; leakage roughly halves
#: from 90 degC to 50 degC, consistent with the SCC leakage measurement.
LEAKAGE_SLOPE_W_PER_K: float = 0.45

#: Curvature of the plant-side quadratic leakage model [W/K^2].
LEAKAGE_CURVATURE_W_PER_K2: float = 0.004


@dataclass(frozen=True)
class CalibratedPowerModels:
    """Bundle of the calibrated power models for one chip."""

    component_power: ComponentPowerModel
    controller_leakage: LinearLeakage  # linear Eq. (6), on-line model
    plant_leakage: QuadraticLeakage  # quadratic, simulation-side model


def build_power_models(
    chip: ChipFloorplan,
    dvfs: DVFSTable = SCC_DVFS,
    chip_peak_dynamic_w: float = CHIP_PEAK_DYNAMIC_W,
    p_tdp_leak_w: float = P_TDP_LEAK_W,
    t_tdp_c: float = T_TDP_C,
    leakage_slope_w_per_k: float = LEAKAGE_SLOPE_W_PER_K,
) -> CalibratedPowerModels:
    """Construct the calibrated power model set for ``chip``.

    When the chip is not the full 16-tile target (e.g. the 2 x 2 server
    floorplan), peak power and leakage are scaled by tile count so power
    density is preserved.
    """
    scale = chip.n_tiles / 16.0
    component_power = ComponentPowerModel(
        chip=chip,
        dvfs=dvfs,
        chip_peak_dynamic_w=chip_peak_dynamic_w * scale,
    )
    linear = LinearLeakage(
        p_tdp_leak_w=p_tdp_leak_w * scale,
        alpha_w_per_k=leakage_slope_w_per_k * scale,
        t_tdp_c=t_tdp_c,
        areas_mm2=chip.areas_mm2(),
    )
    quad = QuadraticLeakage.fit_to_linear(
        linear, curvature_w_per_k2=LEAKAGE_CURVATURE_W_PER_K2 * scale
    )
    return CalibratedPowerModels(
        component_power=component_power,
        controller_leakage=linear,
        plant_leakage=quad,
    )
