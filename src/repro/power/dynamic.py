"""Controller-side dynamic power estimation (paper Eq. 7).

TECfan's on-line estimator never sees the plant's activity factors; it
scales the *previous interval's measured* dynamic power by the DVFS
ratio, exactly as Eq. (7) prescribes (the previous interval's power is
what CAMP-style runtime monitoring provides — Powell et al., HPCA'09):

    P_dyn(k) = P_dyn(k-1) * (F(k)/F(k-1)) * (Vdd(k)/Vdd(k-1))^2

:class:`DynamicPowerTracker` holds the per-component history and answers
"what would the power be if core n moved to level l?" queries without
mutating state, which is what the heuristic's what-if evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ControlError
from repro.power.dvfs import DVFSTable


@dataclass
class DynamicPowerTracker:
    """Eq. (7) relative dynamic-power estimator.

    Parameters
    ----------
    dvfs:
        Shared DVFS table.
    tile_of:
        Component -> tile index map (from the floorplan).
    """

    dvfs: DVFSTable
    tile_of: np.ndarray
    #: Per-component mask: True = the component is in its core's DVFS
    #: domain (mesh-domain components do not rescale with Eq. 7).
    core_domain: np.ndarray | None = None
    _p_prev: np.ndarray = field(default=None, repr=False)
    _levels_prev: np.ndarray = field(default=None, repr=False)

    def observe(self, p_dynamic_w: np.ndarray, dvfs_levels: np.ndarray) -> None:
        """Record the measured per-component power of the last interval."""
        self._p_prev = np.asarray(p_dynamic_w, dtype=float).copy()
        self._levels_prev = np.asarray(dvfs_levels, dtype=int).copy()

    @property
    def ready(self) -> bool:
        """True once at least one interval has been observed."""
        return self._p_prev is not None

    def predict(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-component dynamic power if cores ran at ``dvfs_levels`` [W]."""
        if not self.ready:
            raise ControlError("no previous interval observed yet")
        lv = np.asarray(dvfs_levels, dtype=int)
        ratio = self.dvfs.dynamic_ratio(self._levels_prev, lv)
        comp_ratio = ratio[self.tile_of]
        if self.core_domain is not None:
            comp_ratio = np.where(self.core_domain, comp_ratio, 1.0)
        return self._p_prev * comp_ratio

    def predict_many(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-component power for a ``(batch, n_cores)`` level matrix [W].

        Row ``b`` is bit-identical to ``predict(dvfs_levels[b])`` — the
        ratio table lookup broadcasts over the leading axis and every
        per-element operation is unchanged.
        """
        if not self.ready:
            raise ControlError("no previous interval observed yet")
        lv = np.asarray(dvfs_levels, dtype=int)
        if lv.ndim != 2:
            raise ControlError(
                f"predict_many expects a (batch, n_cores) level matrix, "
                f"got shape {lv.shape}"
            )
        ratio = self.dvfs.dynamic_ratio(self._levels_prev[None, :], lv)
        comp_ratio = ratio[:, self.tile_of]
        if self.core_domain is not None:
            comp_ratio = np.where(self.core_domain[None, :], comp_ratio, 1.0)
        return self._p_prev[None, :] * comp_ratio

    def predict_single_change(self, core: int, new_level: int) -> np.ndarray:
        """Power if only ``core`` changes to ``new_level`` [W]."""
        if not self.ready:
            raise ControlError("no previous interval observed yet")
        lv = self._levels_prev.copy()
        lv[core] = new_level
        return self.predict(lv)
