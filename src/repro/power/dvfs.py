"""DVFS operating-point tables and the Eq. (7) scaling law.

Levels are indexed ``0 .. n_levels-1`` with **higher index = higher
frequency** ("raising the DVFS level" in the paper's wording improves
performance). Each level pairs a clock frequency with a supply voltage;
dynamic power scales as ``f * V^2`` between levels (Eq. 7) and IPS
scales linearly with ``f`` (Eq. 11).

Two default tables are provided:

* :data:`SCC_DVFS` — a 6-level table for the 16-core SCC-style CMP
  (Sec. IV-A): 1.0-2.0 GHz at 0.75-1.10 V, per-core regulators with
  ~100 ns transition overhead (Kim et al., JSSC'12).
* :data:`I7_DVFS` — a 6-level Core i7-3770K-style table for the 4-core
  server comparison of Sec. V-E.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DVFSTable:
    """Immutable table of (frequency, voltage) operating points."""

    freq_ghz: tuple[float, ...]
    vdd_v: tuple[float, ...]
    #: Actuation overhead per transition [s] (on-chip VR, Sec. III-D).
    transition_overhead_s: float = 100e-9

    def __post_init__(self) -> None:
        if len(self.freq_ghz) != len(self.vdd_v):
            raise ConfigurationError("freq/vdd tables differ in length")
        if len(self.freq_ghz) < 2:
            raise ConfigurationError("need at least two DVFS levels")
        f = np.asarray(self.freq_ghz)
        v = np.asarray(self.vdd_v)
        if np.any(np.diff(f) <= 0) or np.any(np.diff(v) < 0):
            raise ConfigurationError(
                "DVFS tables must be ascending in frequency and "
                "non-decreasing in voltage"
            )
        if np.any(f <= 0) or np.any(v <= 0):
            raise ConfigurationError("frequencies and voltages must be > 0")

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of operating points."""
        return len(self.freq_ghz)

    @property
    def max_level(self) -> int:
        """Index of the fastest level."""
        return self.n_levels - 1

    def _check_level(self, level) -> None:
        lv = np.asarray(level)
        if np.any(lv < 0) or np.any(lv >= self.n_levels):
            raise ConfigurationError(
                f"DVFS level {level!r} outside 0..{self.max_level}"
            )

    def frequency_ghz(self, level) -> np.ndarray:
        """Frequency at ``level`` [GHz] (vectorized over level arrays)."""
        self._check_level(level)
        return np.asarray(self.freq_ghz)[level]

    def voltage_v(self, level) -> np.ndarray:
        """Supply voltage at ``level`` [V] (vectorized)."""
        self._check_level(level)
        return np.asarray(self.vdd_v)[level]

    def dynamic_scale(self, level) -> np.ndarray:
        """Dynamic power of ``level`` relative to the max level.

        ``(f / f_max) * (V / V_max)^2`` — the per-interval form of the
        paper's Eq. (7) anchored at the top operating point.
        """
        f = np.asarray(self.freq_ghz, dtype=float)
        v = np.asarray(self.vdd_v, dtype=float)
        scale = (f / f[-1]) * (v / v[-1]) ** 2
        return scale[level]

    def dynamic_ratio(self, level_from, level_to) -> np.ndarray:
        """Eq. (7) exactly: power ratio between two operating points."""
        f = np.asarray(self.freq_ghz, dtype=float)
        v = np.asarray(self.vdd_v, dtype=float)
        return (f[level_to] / f[level_from]) * (v[level_to] / v[level_from]) ** 2

    def frequency_ratio(self, level_from, level_to) -> np.ndarray:
        """Eq. (11): IPS ratio between two operating points."""
        f = np.asarray(self.freq_ghz, dtype=float)
        return f[level_to] / f[level_from]


#: 16-core SCC-style CMP table (Sec. IV-A).
SCC_DVFS = DVFSTable(
    freq_ghz=(1.0, 1.2, 1.4, 1.6, 1.8, 2.0),
    vdd_v=(0.75, 0.80, 0.85, 0.90, 1.00, 1.10),
)

#: Core i7-3770K-style table for the server comparison (Sec. IV-B/V-E).
I7_DVFS = DVFSTable(
    freq_ghz=(1.6, 2.0, 2.4, 2.8, 3.2, 3.5),
    vdd_v=(0.85, 0.90, 0.95, 1.00, 1.05, 1.10),
)


@dataclass
class PerCoreDVFS:
    """Mutable per-core DVFS state over a shared table."""

    table: DVFSTable
    n_cores: int
    levels: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.levels is None:
            self.levels = np.full(self.n_cores, self.table.max_level, dtype=int)
        else:
            self.levels = np.asarray(self.levels, dtype=int).copy()
            self._check(self.levels)

    def _check(self, levels: np.ndarray) -> None:
        if levels.shape != (self.n_cores,):
            raise ConfigurationError(
                f"levels shape {levels.shape} != ({self.n_cores},)"
            )
        if np.any(levels < 0) or np.any(levels >= self.table.n_levels):
            raise ConfigurationError("DVFS level out of table range")

    def set_level(self, core: int, level: int) -> None:
        """Set one core's operating point."""
        if not 0 <= level < self.table.n_levels:
            raise ConfigurationError(f"DVFS level {level} out of range")
        self.levels[core] = level

    def frequencies_ghz(self) -> np.ndarray:
        """Per-core frequency vector [GHz]."""
        return self.table.frequency_ghz(self.levels)

    def dynamic_scales(self) -> np.ndarray:
        """Per-core ``f V^2`` scale relative to the max level."""
        return self.table.dynamic_scale(self.levels)
