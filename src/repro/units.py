"""Physical constants and unit helpers.

All internal computation is in SI units; temperatures are handled in
**Kelvin** inside the thermal solvers (the Peltier pumping term ``α·I·T``
needs an absolute temperature) and exposed in **degrees Celsius** at the
public API boundary, matching how the paper reports temperatures.
"""

from __future__ import annotations

import numpy as np

#: Offset between Kelvin and degrees Celsius.
KELVIN_OFFSET: float = 273.15

#: Default ambient temperature used throughout the paper's setup [°C].
DEFAULT_AMBIENT_C: float = 40.0


def c_to_k(temp_c):
    """Convert Celsius to Kelvin (scalar or ndarray)."""
    return np.asarray(temp_c, dtype=float) + KELVIN_OFFSET


def k_to_c(temp_k):
    """Convert Kelvin to Celsius (scalar or ndarray)."""
    return np.asarray(temp_k, dtype=float) - KELVIN_OFFSET


def mm2_to_m2(area_mm2: float) -> float:
    """Convert an area in square millimetres to square metres."""
    return area_mm2 * 1e-6


def mm_to_m(length_mm: float) -> float:
    """Convert a length in millimetres to metres."""
    return length_mm * 1e-3


def cfm_to_m3s(cfm: float) -> float:
    """Convert an airflow in cubic feet per minute to m^3/s."""
    return cfm * 0.000471947443


# --- Material properties (bulk values at ~350 K) -------------------------

#: Thermal conductivity of silicon [W/(m·K)].
K_SILICON: float = 130.0

#: Volumetric heat capacity of silicon [J/(m^3·K)].
CV_SILICON: float = 1.75e6

#: Thermal conductivity of copper (heat spreader / sink base) [W/(m·K)].
K_COPPER: float = 400.0

#: Volumetric heat capacity of copper [J/(m^3·K)].
CV_COPPER: float = 3.55e6

#: Thermal conductivity of a typical thermal interface material [W/(m·K)].
K_TIM: float = 4.0

#: Volumetric heat capacity of TIM [J/(m^3·K)].
CV_TIM: float = 2.0e6

#: Thermal conductivity of Bi2Te3 superlattice film (TEC body) [W/(m·K)].
K_BI2TE3: float = 1.2
