"""Chip-level floorplan: a grid of core tiles (Intel SCC-style).

The paper's 16-core target is a 4 x 4 array of 2.6 mm x 3.6 mm tiles,
giving a 10.4 mm x 14.4 mm die (Sec. III-E, Fig. 3). The 4-core server
setup of Sec. V-E uses a 2 x 2 array built with the same machinery.

Besides geometry, :class:`ChipFloorplan` precomputes everything the
thermal network assembly needs:

* the flat component list (tile-major order) and name -> index map,
* the lateral adjacency list with shared edge lengths and centroid
  distances (computed across tile boundaries too, so heat spreads between
  neighbouring cores),
* per-tile component index slices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import FloorplanError
from repro.floorplan.component import Component, ComponentSpec
from repro.floorplan.core_tile import (
    CORE_TILE_SPECS,
    TILE_HEIGHT_MM,
    TILE_WIDTH_MM,
)


@dataclass(frozen=True)
class Adjacency:
    """One lateral thermal contact between two components."""

    i: int  # flat component index
    j: int  # flat component index, j > i
    shared_edge_mm: float
    center_distance_mm: float


@dataclass
class ChipFloorplan:
    """A rows x cols array of core tiles.

    Use :func:`build_chip` to construct one; the constructor assumes the
    component list is already consistent.
    """

    rows: int
    cols: int
    tile_width_mm: float
    tile_height_mm: float
    components: list[Component]
    adjacencies: list[Adjacency] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        """Number of core tiles on the chip."""
        return self.rows * self.cols

    @property
    def n_components(self) -> int:
        """Number of thermally-modelled die components."""
        return len(self.components)

    @property
    def components_per_tile(self) -> int:
        """Components per tile (the paper's 18)."""
        return self.n_components // self.n_tiles

    @property
    def chip_width_mm(self) -> float:
        """Die width [mm]."""
        return self.cols * self.tile_width_mm

    @property
    def chip_height_mm(self) -> float:
        """Die height [mm]."""
        return self.rows * self.tile_height_mm

    @property
    def chip_area_mm2(self) -> float:
        """Die area [mm^2]."""
        return self.chip_width_mm * self.chip_height_mm

    def tile_origin(self, tile: int) -> tuple[float, float]:
        """Lower-left corner [mm] of tile ``tile`` (row-major numbering)."""
        r, c = divmod(tile, self.cols)
        return c * self.tile_width_mm, r * self.tile_height_mm

    def tile_bounds(self, tile: int) -> tuple[float, float, float, float]:
        """(x, y, x2, y2) bounds [mm] of tile ``tile``."""
        x, y = self.tile_origin(tile)
        return x, y, x + self.tile_width_mm, y + self.tile_height_mm

    def tile_slice(self, tile: int) -> slice:
        """Flat-index slice of the components belonging to ``tile``."""
        per = self.components_per_tile
        return slice(tile * per, (tile + 1) * per)

    def tile_neighbours(self, tile: int) -> list[int]:
        """Indices of tiles sharing an edge with ``tile`` in the grid."""
        r, c = divmod(tile, self.cols)
        out = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            rr, cc = r + dr, c + dc
            if 0 <= rr < self.rows and 0 <= cc < self.cols:
                out.append(rr * self.cols + cc)
        return out

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def index_of(self, name: str) -> int:
        """Flat index of the component called ``name``."""
        try:
            return self._name_index[name]
        except AttributeError:
            object.__setattr__(
                self,
                "_name_index",
                {comp.name: i for i, comp in enumerate(self.components)},
            )
            return self._name_index[name]

    def areas_mm2(self) -> np.ndarray:
        """Vector of component areas [mm^2], flat order."""
        return np.array([c.area_mm2 for c in self.components])

    def power_weights(self) -> np.ndarray:
        """Vector of relative dynamic power-density weights, flat order."""
        return np.asarray(self._power_weights, dtype=float)

    def tile_of(self) -> np.ndarray:
        """Vector mapping each flat component index to its tile index."""
        return np.array([c.tile for c in self.components], dtype=np.intp)

    # internal: filled by build_chip
    _power_weights: list[float] = field(default_factory=list, repr=False)


def _compute_adjacencies(components: list[Component]) -> list[Adjacency]:
    """All pairs of components sharing an edge of positive length.

    O(n^2) over a few hundred rectangles — negligible, and only done once
    at floorplan construction.
    """
    adj: list[Adjacency] = []
    n = len(components)
    for i in range(n):
        ci = components[i]
        for j in range(i + 1, n):
            cj = components[j]
            edge = ci.shared_edge_length(cj)
            if edge > 0.0:
                adj.append(Adjacency(i, j, edge, ci.center_distance(cj)))
    return adj


def build_chip(
    rows: int = 4,
    cols: int = 4,
    tile_specs: tuple[ComponentSpec, ...] = CORE_TILE_SPECS,
    tile_width_mm: float = TILE_WIDTH_MM,
    tile_height_mm: float = TILE_HEIGHT_MM,
) -> ChipFloorplan:
    """Instantiate a chip floorplan from per-tile component specs.

    Parameters
    ----------
    rows, cols:
        Tile grid shape. The paper's main target is 4 x 4; the server
        comparison (Sec. V-E) uses 2 x 2.
    tile_specs:
        Tile-local component placement, defaulting to the 18-component
        Alpha-21264-style tile.
    """
    if rows < 1 or cols < 1:
        raise FloorplanError(f"invalid tile grid {rows} x {cols}")

    components: list[Component] = []
    weights: list[float] = []
    for tile in range(rows * cols):
        r, c = divmod(tile, cols)
        ox, oy = c * tile_width_mm, r * tile_height_mm
        for spec in tile_specs:
            components.append(
                Component(
                    name=f"tile{tile}.{spec.name}",
                    x=ox + spec.x,
                    y=oy + spec.y,
                    width=spec.width,
                    height=spec.height,
                    category=spec.category,
                    tile=tile,
                )
            )
            weights.append(spec.power_weight)

    chip = ChipFloorplan(
        rows=rows,
        cols=cols,
        tile_width_mm=tile_width_mm,
        tile_height_mm=tile_height_mm,
        components=components,
    )
    chip._power_weights = weights
    chip.adjacencies = _compute_adjacencies(components)
    return chip
