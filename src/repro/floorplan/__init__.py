"""Chip floorplans: component geometry, core tiles, tile arrays.

Public API
----------
- :class:`~repro.floorplan.component.Component`,
  :class:`~repro.floorplan.component.ComponentCategory`,
  :class:`~repro.floorplan.component.ComponentSpec`
- :data:`~repro.floorplan.core_tile.CORE_TILE_SPECS` — the paper's
  18-component Alpha-21264-style tile
- :func:`~repro.floorplan.chip.build_chip` /
  :class:`~repro.floorplan.chip.ChipFloorplan`
- :func:`~repro.floorplan.validate.validate_floorplan`
"""

from repro.floorplan.component import (
    Component,
    ComponentCategory,
    ComponentSpec,
)
from repro.floorplan.core_tile import (
    COMPONENT_NAMES,
    COMPONENTS_PER_TILE,
    CORE_TILE_SPECS,
    TILE_HEIGHT_MM,
    TILE_WIDTH_MM,
    tile_area_mm2,
)
from repro.floorplan.chip import Adjacency, ChipFloorplan, build_chip
from repro.floorplan.validate import validate_floorplan

__all__ = [
    "Component",
    "ComponentCategory",
    "ComponentSpec",
    "COMPONENT_NAMES",
    "COMPONENTS_PER_TILE",
    "CORE_TILE_SPECS",
    "TILE_WIDTH_MM",
    "TILE_HEIGHT_MM",
    "tile_area_mm2",
    "Adjacency",
    "ChipFloorplan",
    "build_chip",
    "validate_floorplan",
]
