"""Floorplan consistency checks.

A thermal RC network built from a floorplan with overlaps or coverage
holes silently mis-assigns conductances, so we validate geometry eagerly.
"""

from __future__ import annotations

from repro.exceptions import FloorplanError
from repro.floorplan.chip import ChipFloorplan

#: Relative tolerance on area bookkeeping.
_AREA_RTOL = 1e-9


def validate_floorplan(chip: ChipFloorplan) -> None:
    """Raise :class:`FloorplanError` unless the floorplan is sound.

    Checks:

    1. every component lies inside its tile's bounds;
    2. no two components overlap (pairwise intersection area is zero);
    3. the component areas of each tile sum to the full tile area
       (no coverage holes);
    4. every component has at least one lateral neighbour (the network
       would otherwise contain a laterally isolated node);
    5. component names are unique.
    """
    names = [c.name for c in chip.components]
    if len(set(names)) != len(names):
        raise FloorplanError("duplicate component names in floorplan")

    for comp in chip.components:
        x, y, x2, y2 = chip.tile_bounds(comp.tile)
        eps = 1e-9
        if not (
            comp.x >= x - eps
            and comp.y >= y - eps
            and comp.x2 <= x2 + eps
            and comp.y2 <= y2 + eps
        ):
            raise FloorplanError(
                f"component {comp.name!r} escapes tile {comp.tile} bounds"
            )

    n = chip.n_components
    comps = chip.components
    for i in range(n):
        for j in range(i + 1, n):
            a = comps[i]
            b = comps[j]
            if a.overlap_area(b.x, b.y, b.x2, b.y2) > 1e-12:
                raise FloorplanError(
                    f"components {a.name!r} and {b.name!r} overlap"
                )

    tile_area = chip.tile_width_mm * chip.tile_height_mm
    for tile in range(chip.n_tiles):
        s = chip.tile_slice(tile)
        covered = sum(c.area_mm2 for c in comps[s])
        if abs(covered - tile_area) > _AREA_RTOL * tile_area + 1e-9:
            raise FloorplanError(
                f"tile {tile} covered area {covered:.6f} mm^2 != "
                f"tile area {tile_area:.6f} mm^2"
            )

    touched = set()
    for adj in chip.adjacencies:
        touched.add(adj.i)
        touched.add(adj.j)
    missing = set(range(n)) - touched
    if missing:
        isolated = ", ".join(comps[i].name for i in sorted(missing))
        raise FloorplanError(f"laterally isolated components: {isolated}")
