"""The 18-component core tile used throughout the paper (Fig. 3).

The tile is 2.6 mm x 3.6 mm — half of the dual-core tile on the Intel
Single-chip Cloud Computer — and its component placement and relative
sizes follow the Alpha 21264 floorplan, exactly the combination the paper
describes in Sec. IV-A. The private 256 KB L2 and the NoC router occupy
the bottom of the tile; the quasi-parallel on-chip voltage regulator is a
block of its own (Sec. IV-A budgets 2.2 mm^2 for it; our slightly smaller
block reflects the off-/on-chip hybrid design delivering only part of the
power on-die).

Every row spans the full 2.6 mm tile width, so the 18 rectangles tile the
core exactly: :func:`repro.floorplan.validate.validate_floorplan` asserts
full coverage with no overlap.
"""

from __future__ import annotations

from repro.floorplan.component import ComponentCategory, ComponentSpec

#: Core tile width [mm] (Sec. IV-A / Fig. 3).
TILE_WIDTH_MM: float = 2.6

#: Core tile height [mm].
TILE_HEIGHT_MM: float = 3.6

# Tile-local placement. Rows bottom-to-top; each row spans the tile width.
# power_weight is the relative dynamic power *density* of the block; the
# calibration pass (repro.power.calibration) scales absolute powers so the
# all-cores-peak chip power matches the SCC-derived target.
_C = ComponentCategory
CORE_TILE_SPECS: tuple[ComponentSpec, ...] = (
    # --- bottom: NoC router -------------------------------------------------
    ComponentSpec("Router", 0.00, 0.00, 2.60, 0.55, _C.ROUTER, 0.90),
    # --- private L2 ---------------------------------------------------------
    ComponentSpec("L2", 0.00, 0.55, 2.60, 0.75, _C.L2_CACHE, 0.35),
    # --- L1 caches + on-chip voltage regulator ------------------------------
    ComponentSpec("Icache", 0.00, 1.30, 1.20, 0.65, _C.L1_CACHE, 1.00),
    ComponentSpec("Dcache", 1.20, 1.30, 0.90, 0.65, _C.L1_CACHE, 1.10),
    ComponentSpec("VReg", 2.10, 1.30, 0.50, 0.65, _C.REGULATOR, 0.70),
    # --- front-end / FP add row ---------------------------------------------
    ComponentSpec("FPAdd", 0.00, 1.95, 0.80, 0.40, _C.FP_LOGIC, 1.50),
    ComponentSpec("Bpred", 0.80, 1.95, 0.70, 0.40, _C.FETCH, 1.60),
    ComponentSpec("ITB", 1.50, 1.95, 0.55, 0.40, _C.FETCH, 1.50),
    ComponentSpec("DTB", 2.05, 1.95, 0.55, 0.40, _C.FETCH, 1.50),
    # --- execution row -------------------------------------------------------
    ComponentSpec("FPReg", 0.00, 2.35, 0.70, 0.50, _C.FP_LOGIC, 1.40),
    ComponentSpec("FP_Q", 0.70, 2.35, 0.60, 0.50, _C.FP_LOGIC, 1.30),
    ComponentSpec("LdSt_Q", 1.30, 2.35, 0.60, 0.50, _C.INT_LOGIC, 2.20),
    ComponentSpec("IntExec", 1.90, 2.35, 0.70, 0.50, _C.INT_LOGIC, 3.00),
    # --- FP multiplier strip -------------------------------------------------
    ComponentSpec("FPMul", 0.00, 2.85, 2.60, 0.25, _C.FP_LOGIC, 1.60),
    # --- top: rename / issue -------------------------------------------------
    ComponentSpec("FPMap", 0.00, 3.10, 0.55, 0.50, _C.FP_LOGIC, 1.20),
    ComponentSpec("IntMap", 0.55, 3.10, 0.55, 0.50, _C.INT_LOGIC, 1.80),
    ComponentSpec("Int_Q", 1.10, 3.10, 0.55, 0.50, _C.INT_LOGIC, 2.00),
    ComponentSpec("IntReg", 1.65, 3.10, 0.95, 0.50, _C.INT_LOGIC, 2.60),
)

#: Number of thermally-modelled components per core tile (paper: 18).
COMPONENTS_PER_TILE: int = len(CORE_TILE_SPECS)

#: Component names in tile order, for quick index lookups.
COMPONENT_NAMES: tuple[str, ...] = tuple(s.name for s in CORE_TILE_SPECS)


def tile_area_mm2() -> float:
    """Total tile area [mm^2] (should equal 2.6 x 3.6 = 9.36)."""
    return sum(s.width * s.height for s in CORE_TILE_SPECS)


def spec_by_name(name: str) -> ComponentSpec:
    """Return the tile-local spec for ``name`` (raises ``KeyError``)."""
    for spec in CORE_TILE_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(name)
