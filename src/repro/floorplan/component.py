"""Floorplan primitives: axis-aligned rectangular components.

A :class:`Component` is one thermally-lumped block on the die (an adder,
a cache bank, a router, ...). Geometry is kept in millimetres, matching
the dimensions published for the Intel SCC tile and the Alpha 21264
floorplan the paper bases its core tile on (Sec. IV-A, Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import FloorplanError

#: Geometric tolerance [mm] used when testing adjacency / containment.
GEOM_EPS: float = 1e-9


class ComponentCategory(enum.Enum):
    """Coarse functional category, used to assign power-density weights."""

    INT_LOGIC = "int_logic"  # integer execution / registers / queues
    FP_LOGIC = "fp_logic"  # floating point units
    FETCH = "fetch"  # branch predictor, TLBs, mappers
    L1_CACHE = "l1_cache"
    L2_CACHE = "l2_cache"
    ROUTER = "router"
    REGULATOR = "regulator"  # on-chip voltage regulator (quasi-parallel VR)


@dataclass(frozen=True)
class Component:
    """One rectangular floorplan block.

    Parameters
    ----------
    name:
        Unique (per chip) identifier, e.g. ``"tile5.IntExec"``.
    x, y:
        Lower-left corner in chip coordinates [mm].
    width, height:
        Rectangle extents [mm]; must be strictly positive.
    category:
        Functional category used by the power model.
    tile:
        Index of the core tile this component belongs to.
    """

    name: str
    x: float
    y: float
    width: float
    height: float
    category: ComponentCategory
    tile: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise FloorplanError(
                f"component {self.name!r} has non-positive size "
                f"{self.width} x {self.height}"
            )

    @property
    def area_mm2(self) -> float:
        """Component area [mm^2]."""
        return self.width * self.height

    @property
    def x2(self) -> float:
        """Right edge [mm]."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge [mm]."""
        return self.y + self.height

    @property
    def center(self) -> tuple[float, float]:
        """Rectangle centroid [mm]."""
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)

    def shared_edge_length(self, other: "Component") -> float:
        """Length [mm] of the boundary segment shared with ``other``.

        Two rectangles are thermally adjacent when they touch along a
        segment of positive length (corner contact does not count).
        """
        # Vertical contact: our right edge on their left edge (or vice versa)
        if (
            abs(self.x2 - other.x) < GEOM_EPS
            or abs(other.x2 - self.x) < GEOM_EPS
        ):
            overlap = min(self.y2, other.y2) - max(self.y, other.y)
            if overlap > GEOM_EPS:
                return overlap
        # Horizontal contact
        if (
            abs(self.y2 - other.y) < GEOM_EPS
            or abs(other.y2 - self.y) < GEOM_EPS
        ):
            overlap = min(self.x2, other.x2) - max(self.x, other.x)
            if overlap > GEOM_EPS:
                return overlap
        return 0.0

    def overlap_area(self, x: float, y: float, x2: float, y2: float) -> float:
        """Area [mm^2] of intersection with the rectangle (x, y)-(x2, y2)."""
        w = min(self.x2, x2) - max(self.x, x)
        h = min(self.y2, y2) - max(self.y, y)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def center_distance(self, other: "Component") -> float:
        """Euclidean centroid distance [mm]."""
        cx, cy = self.center
        ox, oy = other.center
        return ((cx - ox) ** 2 + (cy - oy) ** 2) ** 0.5


@dataclass
class ComponentSpec:
    """Relative placement of a component inside one core tile.

    Coordinates are tile-local [mm]; :func:`repro.floorplan.chip.build_chip`
    translates these into chip coordinates for each tile.
    """

    name: str
    x: float
    y: float
    width: float
    height: float
    category: ComponentCategory
    #: Relative dynamic power-density weight (dimensionless). Calibration
    #: normalizes these so the full-chip peak power matches the target.
    power_weight: float = field(default=1.0)
