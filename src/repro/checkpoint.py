"""Deterministic checkpoint/restore of mid-flight simulations.

A checkpoint is one pickled payload dict: the engine's plant state
(temperature field, row clocks via the trace, TEC engagement memory),
the controller and estimator, the fault scheduler with its latched
values and RNG stream, the sensor bank's noise stream, rebuild recipes
for the solver's warm LU/Woodbury cache, and the telemetry counters.
Pickling every piece in a single payload preserves object-identity
sharing (``config.faults`` is the same object the guards hold, the
estimator references the same ``CMPSystem``), so a restored run wires
up exactly like the live one.

Determinism contract: resuming from a checkpoint written at any
interval boundary produces a :class:`~repro.core.engine.SimulationResult`
bit-identical, field by field, to the uninterrupted run — on the
classic, interval-kernel, and hardened engines. Taking checkpoints is
side-effect-free (RNG states are copied, never advanced), so the
checkpoint cadence itself cannot perturb a run.

Writes are crash-safe: the payload lands in ``<path>.tmp``, is fsynced,
and renamed over the final path, so a kill mid-write leaves either the
previous complete checkpoint or none — never a torn file.
"""

from __future__ import annotations

import hashlib
import os
import pickle

import numpy as np

from repro import __version__
from repro.exceptions import CheckpointError
from repro.obs import telemetry as obs

#: Version of the snapshot payload layout. Bump on any incompatible
#: change to the keys or their meaning; loaders reject other versions.
CHECKPOINT_SCHEMA = 1


def atomic_write_bytes(path, blob: bytes) -> str:
    """Crash-safe byte write: ``<path>.tmp`` + fsync + rename.

    A reader polling ``path`` concurrently sees either the previous
    complete file or the new one — never a torn intermediate. Shared by
    checkpoints and the live status sidecar
    (:mod:`repro.obs.live`).
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def write_checkpoint(path, payload: dict) -> str:
    """Atomically write one checkpoint payload; returns the final path.

    The caller provides the payload dict; this function stamps the
    schema version and package version, pickles once (protocol
    HIGHEST), and performs the write-tmp/fsync/rename dance so readers
    never observe a partial file.
    """
    path = os.fspath(path)
    payload = dict(payload)
    payload.setdefault("schema", CHECKPOINT_SCHEMA)
    payload.setdefault("repro_version", __version__)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    atomic_write_bytes(path, blob)
    obs.incr("checkpoint.writes")
    obs.incr("checkpoint.bytes", len(blob))
    return path


def load_checkpoint(path, kind: str | None = None) -> dict:
    """Load and validate a checkpoint payload.

    Raises :class:`~repro.exceptions.CheckpointError` when the file is
    unreadable, carries an unsupported schema version, or (when
    ``kind`` is given) snapshots something other than the expected
    kind.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint at {path}") from None
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint {path} is not a snapshot payload"
        )
    schema = payload.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {path} has schema {schema!r}; this build "
            f"supports {CHECKPOINT_SCHEMA}"
        )
    if kind is not None and payload.get("kind") != kind:
        raise CheckpointError(
            f"checkpoint {path} snapshots {payload.get('kind')!r}, "
            f"expected {kind!r}"
        )
    return payload


def resume_engine_run(path):
    """Resume an interrupted engine run from its latest checkpoint.

    Returns the completed :class:`~repro.core.engine.SimulationResult`,
    bit-identical to what the uninterrupted run would have produced.
    """
    from repro.core.engine import SimulationEngine

    ck = load_checkpoint(path, kind="engine-run")
    engine = SimulationEngine(
        system=ck["system"], problem=ck["problem"], config=ck["config"]
    )
    return engine.resume(ck)


def result_digest(result) -> str:
    """Stable hex digest of every field of a ``SimulationResult``.

    Hashes the raw bytes of all trace columns, the metrics repr, and
    the final actuator state — two runs digest equal iff they are
    bit-identical field by field. Used by the crash-recovery smoke
    gate to compare a resumed run against an uninterrupted one across
    process boundaries.
    """
    h = hashlib.sha256()
    for name in (
        "time_s",
        "dt_s",
        "peak_temp_c",
        "p_chip_w",
        "p_cores_w",
        "p_tec_w",
        "p_fan_w",
        "ips_chip",
        "tec_on",
        "fan_level",
        "mean_dvfs_level",
    ):
        h.update(name.encode())
        h.update(np.ascontiguousarray(getattr(result.trace, name)).tobytes())
    h.update(repr(result.metrics).encode())
    st = result.final_state
    h.update(np.ascontiguousarray(st.tec, dtype=float).tobytes())
    h.update(np.ascontiguousarray(st.dvfs, dtype=int).tobytes())
    h.update(str(int(st.fan_level)).encode())
    h.update(np.ascontiguousarray(result.avg_p_components_w).tobytes())
    h.update(np.ascontiguousarray(result.avg_tec).tobytes())
    return h.hexdigest()
