"""Controller-side IPS estimation (paper Eq. 10-11).

The chip's computational performance metric is instructions per second;
TECfan predicts the next interval's per-core IPS by scaling the previous
interval's *measured* IPS with the frequency ratio:

    IPS_n(k) = IPS_n(k-1) * F_n(k) / F_n(k-1)        (Eq. 11)
    IPS_chip(k) = sum_n IPS_n(k)                     (Eq. 10)

:class:`IPSTracker` mirrors :class:`repro.power.dynamic.DynamicPowerTracker`
so the heuristic's what-if queries stay side-effect free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ControlError
from repro.power.dvfs import DVFSTable


@dataclass
class IPSTracker:
    """Eq. (11) relative IPS estimator over a shared DVFS table."""

    dvfs: DVFSTable
    _ips_prev: np.ndarray = field(default=None, repr=False)
    _levels_prev: np.ndarray = field(default=None, repr=False)

    def observe(self, ips: np.ndarray, dvfs_levels: np.ndarray) -> None:
        """Record the measured per-core IPS of the last interval."""
        self._ips_prev = np.asarray(ips, dtype=float).copy()
        self._levels_prev = np.asarray(dvfs_levels, dtype=int).copy()

    @property
    def ready(self) -> bool:
        """True once at least one interval has been observed."""
        return self._ips_prev is not None

    def predict(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-core IPS if cores ran at ``dvfs_levels``."""
        if not self.ready:
            raise ControlError("no previous interval observed yet")
        lv = np.asarray(dvfs_levels, dtype=int)
        return self._ips_prev * self.dvfs.frequency_ratio(self._levels_prev, lv)

    def predict_many(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-core IPS for a ``(batch, n_cores)`` level matrix.

        Row ``b`` is bit-identical to ``predict(dvfs_levels[b])``.
        """
        if not self.ready:
            raise ControlError("no previous interval observed yet")
        lv = np.asarray(dvfs_levels, dtype=int)
        if lv.ndim != 2:
            raise ControlError(
                f"predict_many expects a (batch, n_cores) level matrix, "
                f"got shape {lv.shape}"
            )
        return self._ips_prev[None, :] * self.dvfs.frequency_ratio(
            self._levels_prev[None, :], lv
        )

    def predict_chip(self, dvfs_levels: np.ndarray) -> float:
        """Eq. (10): total chip IPS for a candidate level vector."""
        return float(self.predict(dvfs_levels).sum())
