"""Synthetic SPLASH-2 suite calibrated to the paper's Table I.

The paper runs cholesky, fmm, volrend, water and lu under SESC with 16 or
4 threads on the 16-core CMP (16-thread water and 4-thread volrend
suspend before completing, so Table I — and we — report the other eight
rows). We cannot run SESC; instead, each benchmark is summarized by the
observables the control stack consumes — IPC, activity, per-component
utilization shape, phase structure — with values chosen so the **base
scenario** (max DVFS, max fan, TECs off) reproduces Table I's execution
time, average power and peak temperature.

``TABLE1_TARGETS`` stores the published rows; the test suite and
``benchmarks/bench_table1.py`` compare our regenerated base scenario
against them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.floorplan.chip import ChipFloorplan
from repro.floorplan.component import ComponentCategory
from repro.perf.workload import Phase, Workload

#: Reference frequency for IPC calibration [GHz] (SCC_DVFS top level).
REF_FREQ_GHZ: float = 2.0

#: Tiles hosting the 4-thread runs (central 2x2 block of the 4x4 array,
#: which concentrates heat the way a scheduler packing threads would).
FOUR_THREAD_TILES: tuple[int, ...] = (5, 6, 9, 10)


@dataclass(frozen=True)
class Table1Row:
    """One published row of the paper's Table I (base scenario)."""

    workload: str
    input_file: str
    ff_inst: int
    threads: int
    instructions: int
    time_ms: float
    power_w: float
    peak_temp_c: float


#: Table I of the paper, verbatim.
TABLE1_TARGETS: tuple[Table1Row, ...] = (
    Table1Row("cholesky", "tk29.0", 200_000_000, 16, 1_000_000_000, 48.0, 125.9, 90.07),
    Table1Row("cholesky", "tk29.0", 200_000_000, 4, 250_000_000, 57.2, 42.0, 74.8),
    Table1Row("fmm", "fmm.in", 300_000_000, 16, 1_000_000_000, 59.68, 74.9, 69.69),
    Table1Row("fmm", "fmm.in", 300_000_000, 4, 250_000_000, 72.66, 32.5, 62.15),
    Table1Row("volrend", "head", 300_000_000, 16, 800_000_000, 41.42, 85.4, 71.79),
    Table1Row("water", "water.in", 300_000_000, 4, 250_000_000, 38.1, 43.7, 68.7),
    Table1Row("lu", "no input", 300_000_000, 16, 400_000_000, 20.34, 109.9, 84.49),
    Table1Row("lu", "no input", 300_000_000, 4, 100_000_000, 19.6, 42.1, 70.75),
)


def table1_row(workload: str, threads: int) -> Table1Row:
    """Published Table I row for ``(workload, threads)``."""
    for row in TABLE1_TARGETS:
        if row.workload == workload and row.threads == threads:
            return row
    raise WorkloadError(f"no Table I row for {workload}/{threads}t")


# ---------------------------------------------------------------------------
# Calibrated behavioural parameters
# ---------------------------------------------------------------------------
# ipc: per-core committed IPC at 2 GHz, from Table I's inst/time.
# activity: per-tile dynamic activity, from Table I's power after
#   subtracting the leakage estimate at the reported temperature.
# category multipliers shape *where* the dynamic power lands; "uniform"
# flattens power density (the paper singles volrend out as having a
# relatively uniform power-density distribution).
_C = ComponentCategory
_PROFILES: dict[str, dict] = {
    "cholesky": {
        "mults": {
            _C.FP_LOGIC: 1.30, _C.INT_LOGIC: 1.00, _C.FETCH: 0.90,
            _C.L1_CACHE: 1.10, _C.L2_CACHE: 1.20, _C.ROUTER: 1.10,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        "contrast": 0.900,
    },
    "cholesky:4": {
        "mults": {
            _C.FP_LOGIC: 1.30, _C.INT_LOGIC: 1.00, _C.FETCH: 0.90,
            _C.L1_CACHE: 1.10, _C.L2_CACHE: 1.20, _C.ROUTER: 1.10,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        # The 4-thread run is anomalously hot for its 42 W (Table I);
        # with fewer threads sharing the working set the integer core
        # stays far busier per instruction.
        "contrast": 1.574,
    },
    "fmm": {
        "mults": {
            _C.FP_LOGIC: 1.50, _C.INT_LOGIC: 0.80, _C.FETCH: 0.90,
            _C.L1_CACHE: 0.90, _C.L2_CACHE: 0.80, _C.ROUTER: 1.20,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        "contrast": 1.330,
    },
    "fmm:4": {
        "mults": {
            _C.FP_LOGIC: 1.50, _C.INT_LOGIC: 0.80, _C.FETCH: 0.90,
            _C.L1_CACHE: 0.90, _C.L2_CACHE: 0.80, _C.ROUTER: 1.20,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        "contrast": 2.052,
    },
    # The paper singles volrend out as having high power but a
    # "relatively uniform power density distribution"; ``uniformity``
    # blends the floorplan-flattening profile with the nominal one.
    "volrend": {"mults": {}, "uniformity": 0.65, "contrast": 1.522},
    "water": {
        "mults": {
            _C.FP_LOGIC: 1.40, _C.INT_LOGIC: 0.90, _C.FETCH: 1.00,
            _C.L1_CACHE: 1.00, _C.L2_CACHE: 0.80, _C.ROUTER: 0.90,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        "contrast": 0.434,
    },
    "lu": {
        "mults": {
            _C.FP_LOGIC: 1.10, _C.INT_LOGIC: 1.30, _C.FETCH: 1.00,
            _C.L1_CACHE: 1.00, _C.L2_CACHE: 0.90, _C.ROUTER: 1.00,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        "contrast": 0.724,
    },
    "lu:4": {
        "mults": {
            _C.FP_LOGIC: 1.10, _C.INT_LOGIC: 1.30, _C.FETCH: 1.00,
            _C.L1_CACHE: 1.00, _C.L2_CACHE: 0.90, _C.ROUTER: 1.00,
            _C.REGULATOR: 1.00,
        },
        "uniformity": 0.0,
        "contrast": 0.668,
    },
}

# (ipc_at_2GHz, activity) per (workload, threads): calibrated against
# Table I (see tests/test_table1_calibration.py for the check).
_BEHAVIOUR: dict[tuple[str, int], tuple[float, float]] = {
    ("cholesky", 16): (0.651, 0.908),
    ("cholesky", 4): (0.546, 0.778),
    ("fmm", 16): (0.524, 0.489),
    ("fmm", 4): (0.430, 0.449),
    ("volrend", 16): (0.604, 0.575),
    ("water", 4): (0.820, 0.836),
    ("lu", 16): (0.615, 0.782),
    ("lu", 4): (0.638, 0.782),
}

# Relative load-imbalance spread per benchmark: thread weights are
# 1 +/- spread (linspace), permuted so laggards scatter across the die.
# SPLASH-2's cholesky (supernode elimination), lu (2D blocks) and
# volrend (view-dependent rays) are markedly imbalanced; fmm and water
# are near-balanced. Threads that finish early spin at the barrier —
# the power TECfan's performance-neutral DVFS decreases recover.
_IMBALANCE: dict[str, float] = {
    "cholesky": 0.40,
    "fmm": 0.15,
    "volrend": 0.30,
    "water": 0.12,
    "lu": 0.35,
}

#: Deterministic permutation pattern scattering slow threads spatially.
_WEIGHT_PERMUTATION_STRIDE: int = 5


def thread_weights(name: str, threads: int) -> tuple[float, ...]:
    """Normalized (mean 1) per-thread instruction-share weights."""
    spread = _IMBALANCE[name]
    base = 1.0 + spread * np.linspace(-1.0, 1.0, threads)
    # Fixed stride permutation: deterministic, spatially scattered.
    order = [(i * _WEIGHT_PERMUTATION_STRIDE) % threads for i in range(threads)]
    if len(set(order)) != threads:  # stride shares a factor with threads
        order = list(range(threads))
    w = base[order]
    return tuple(float(x) for x in w / w.mean())


# Mild temporal variation so transient traces (Fig. 4) show structure.
# Amplitudes are a few percent: SPLASH-2 kernels are phase-stable, and
# the Eq. (7) one-interval-lag estimator (like the paper's) can only
# track gradual activity drift.
_PHASES: dict[str, tuple[Phase, ...]] = {
    "cholesky": (Phase(0.25, 1.00), Phase(0.35, 1.03), Phase(0.25, 0.96),
                 Phase(0.15, 1.01)),
    "fmm": (Phase(0.30, 0.975), Phase(0.40, 1.035), Phase(0.30, 0.985)),
    "volrend": (Phase(0.50, 1.02), Phase(0.50, 0.98)),
    "water": (Phase(0.40, 1.00), Phase(0.30, 0.975), Phase(0.30, 1.00)),
    "lu": (Phase(0.20, 0.97), Phase(0.60, 1.025), Phase(0.20, 0.97)),
}

#: Benchmarks in Table I order without duplicates.
BENCHMARKS: tuple[str, ...] = ("cholesky", "fmm", "volrend", "water", "lu")

#: The (workload, threads) pairs of Table I.
TABLE1_CASES: tuple[tuple[str, int], ...] = tuple(
    (r.workload, r.threads) for r in TABLE1_TARGETS
)

#: The four benchmarks used in Figs. 5-6 (16-thread where available).
FIGURE_CASES: tuple[tuple[str, int], ...] = (
    ("cholesky", 16),
    ("fmm", 16),
    ("volrend", 16),
    ("lu", 16),
)


def component_profile(
    chip: ChipFloorplan, name: str, threads: int | None = None
) -> np.ndarray:
    """Per-component utilization shape for benchmark ``name``.

    Normalized so the power-weighted mean is 1: the profile moves heat
    around without changing calibrated chip power. A thread-count
    specific override (key ``"name:threads"``) wins over the benchmark
    default — e.g. 4-thread cholesky concentrates more heat per core
    than the 16-thread run (Table I shows it unusually hot for its
    power).
    """
    spec = _PROFILES.get(f"{name}:{threads}", _PROFILES.get(name))
    if spec is None:
        raise WorkloadError(f"no profile for benchmark {name!r}")
    weights = chip.power_weights()
    areas = chip.areas_mm2()
    alloc = weights * areas  # proportional to per-component peak power
    if spec["mults"]:
        raw = np.array([spec["mults"][c.category] for c in chip.components])
    else:
        raw = np.ones_like(weights)
    uniformity = spec.get("uniformity", 0.0)
    if uniformity > 0.0:
        # Flatten power *density* toward uniform: profile ~ 1 / weight.
        raw = (1.0 - uniformity) * raw + uniformity / weights
    contrast = spec.get("contrast", 1.0)
    if contrast != 1.0:
        # Sharpen (>1) or flatten (<1) the utilization signature around
        # its mean; the single scalar fitted against Table I's peak
        # temperature for this (benchmark, threads) case.
        density = raw * weights  # power-density shape
        mean = (density * areas).sum() / areas.sum()
        density = np.clip(mean + contrast * (density - mean), 0.05, None)
        raw = density / weights
    scale = alloc.sum() / (alloc * raw).sum()
    return raw * scale


def splash2_workload(
    name: str, threads: int, chip: ChipFloorplan
) -> Workload:
    """Build the calibrated :class:`Workload` for ``(name, threads)``."""
    row = table1_row(name, threads)
    try:
        ipc, activity = _BEHAVIOUR[(name, threads)]
    except KeyError as exc:
        raise WorkloadError(f"no calibration for {name}/{threads}t") from exc
    if threads == chip.n_tiles:
        tiles = tuple(range(chip.n_tiles))
    elif threads == 4 and chip.n_tiles == 16:
        tiles = FOUR_THREAD_TILES
    else:
        tiles = tuple(range(threads))
    weights = thread_weights(name, threads)
    # Table I's execution time is set by the slowest thread; keep it by
    # scaling the (time-derived) IPC with the critical-path weight.
    w_max = max(weights) / (sum(weights) / threads)
    return Workload(
        name=name,
        threads=threads,
        total_instructions=row.instructions,
        ff_instructions=row.ff_inst,
        ipc_at_ref=ipc * w_max,
        activity=activity,
        active_tiles=tiles,
        phases=_PHASES[name],
        component_profile=component_profile(chip, name, threads),
        thread_weights=weights,
        input_file=row.input_file,
    )
