"""Performance substrate: IPS models and calibrated workloads.

Public API
----------
- :class:`~repro.perf.ips.IPSTracker` — Eq. (10-11) on-line estimator
- :class:`~repro.perf.workload.Workload` /
  :class:`~repro.perf.workload.WorkloadRun` / :class:`~repro.perf.workload.Phase`
- :func:`~repro.perf.splash2.splash2_workload` and the Table I targets
"""

from repro.perf.ips import IPSTracker
from repro.perf.splash2 import (
    BENCHMARKS,
    FIGURE_CASES,
    FOUR_THREAD_TILES,
    REF_FREQ_GHZ,
    TABLE1_CASES,
    TABLE1_TARGETS,
    Table1Row,
    component_profile,
    splash2_workload,
    table1_row,
)
from repro.perf.workload import Phase, Workload, WorkloadRun

__all__ = [
    "IPSTracker",
    "BENCHMARKS",
    "FIGURE_CASES",
    "FOUR_THREAD_TILES",
    "REF_FREQ_GHZ",
    "TABLE1_CASES",
    "TABLE1_TARGETS",
    "Table1Row",
    "component_profile",
    "splash2_workload",
    "table1_row",
    "Phase",
    "Workload",
    "WorkloadRun",
]
