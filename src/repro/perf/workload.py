"""Workload abstraction: calibrated multi-threaded instruction streams.

The paper's SESC runs give it, per benchmark: the thread count, the
instruction budget, and (implicitly, through Wattch) per-component
activity. A :class:`Workload` captures exactly those observables —
per-core IPC at the reference frequency, a per-tile activity level, a
per-component utilization *profile* shaping where the heat lands, and a
phase list providing temporal variation. :class:`WorkloadRun` is the
executable state: it advances instruction counts at the frequencies the
controller chose and reports when the benchmark completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WorkloadError
from repro.floorplan.chip import ChipFloorplan


@dataclass(frozen=True)
class Phase:
    """One execution phase: a fraction of instructions at scaled activity."""

    inst_fraction: float
    activity_mult: float = 1.0
    ipc_mult: float = 1.0


@dataclass(frozen=True)
class Workload:
    """A calibrated multi-threaded benchmark.

    Parameters
    ----------
    name:
        Benchmark identifier (e.g. ``"cholesky"``).
    threads:
        Number of worker threads (one per active tile).
    total_instructions:
        Committed instructions across all threads (after fast-forward).
    ff_instructions:
        Fast-forwarded instructions (Table I's ``FF Inst``; bookkeeping
        only — not simulated).
    ipc_at_ref:
        Per-core committed IPC at the reference frequency.
    activity:
        Per-tile dynamic activity in [0, 1] at the reference point.
    active_tiles:
        Tile indices hosting threads.
    phases:
        Temporal phases; fractions must sum to 1.
    component_profile:
        Optional per-component multiplicative utilization shape
        (power-weighted mean must be ~1 so chip power stays calibrated).
    thread_weights:
        Relative instruction share per thread (mean 1), matching
        ``active_tiles`` order. SPLASH-2 kernels are load-imbalanced:
        threads that finish early *spin* at the barrier, burning
        near-compute power while retiring no useful instructions — the
        headroom TECfan's performance-neutral DVFS decreases harvest.
    spin_activity_frac:
        Dynamic activity of a spinning core relative to its computing
        activity (busy-wait loops hammer fetch/issue/branch units).
    input_file:
        Table I's input-file column (provenance bookkeeping).
    """

    name: str
    threads: int
    total_instructions: int
    ff_instructions: int
    ipc_at_ref: float
    activity: float
    active_tiles: tuple[int, ...]
    phases: tuple[Phase, ...] = (Phase(1.0),)
    component_profile: np.ndarray | None = None
    thread_weights: tuple[float, ...] | None = None
    spin_activity_frac: float = 0.85
    #: Std-dev of the chip-wide AR(1) activity fluctuation. Real codes
    #: jitter interval to interval (cache misses, lock contention); the
    #: one-interval-lag Eq. (7) estimator cannot foresee it, so slower
    #: fan levels (less thermal headroom) accumulate violations — the
    #: mechanism behind the paper's per-policy fan-level selection.
    activity_noise_sigma: float = 0.025
    #: AR(1) correlation of the activity fluctuation per control step
    #: (rho = 0.9 at 2 ms gives a ~20 ms drift the controllers chase).
    activity_noise_rho: float = 0.9
    input_file: str = ""

    def __post_init__(self) -> None:
        if self.threads != len(self.active_tiles):
            raise WorkloadError(
                f"{self.name}: {self.threads} threads but "
                f"{len(self.active_tiles)} active tiles"
            )
        if self.total_instructions <= 0:
            raise WorkloadError(f"{self.name}: non-positive instruction count")
        if not 0.0 < self.ipc_at_ref:
            raise WorkloadError(f"{self.name}: IPC must be positive")
        if not 0.0 < self.activity <= 1.0:
            raise WorkloadError(f"{self.name}: activity must lie in (0, 1]")
        total = sum(p.inst_fraction for p in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"{self.name}: phase fractions sum to {total}, expected 1"
            )
        if self.thread_weights is not None:
            if len(self.thread_weights) != self.threads:
                raise WorkloadError(
                    f"{self.name}: {len(self.thread_weights)} weights for "
                    f"{self.threads} threads"
                )
            if any(w <= 0 for w in self.thread_weights):
                raise WorkloadError(f"{self.name}: non-positive thread weight")
        if not 0.0 <= self.spin_activity_frac <= 1.0:
            raise WorkloadError(
                f"{self.name}: spin activity fraction must lie in [0, 1]"
            )

    @property
    def instructions_per_thread(self) -> int:
        """Mean instruction budget per worker thread."""
        return self.total_instructions // self.threads

    def thread_budget(self, slot: int) -> float:
        """Instruction budget of the ``slot``-th thread (weighted)."""
        base = self.total_instructions / self.threads
        if self.thread_weights is None:
            return base
        mean = sum(self.thread_weights) / self.threads
        return base * self.thread_weights[slot] / mean

    @property
    def max_thread_weight(self) -> float:
        """Largest normalized thread weight (sets the critical path)."""
        if self.thread_weights is None:
            return 1.0
        mean = sum(self.thread_weights) / self.threads
        return max(self.thread_weights) / mean


@dataclass
class WorkloadRun:
    """Executable state of one workload on one chip.

    Tracks per-core progress; the engine calls :meth:`advance` once per
    control interval with the frequencies the policy selected.
    """

    workload: Workload
    chip: ChipFloorplan
    ref_freq_ghz: float
    executed: np.ndarray = field(default=None)
    elapsed_s: float = 0.0
    #: Noise seed; deterministic per workload name unless overridden.
    seed: int | None = None

    def __post_init__(self) -> None:
        for t in self.workload.active_tiles:
            if not 0 <= t < self.chip.n_tiles:
                raise WorkloadError(
                    f"active tile {t} outside chip with {self.chip.n_tiles}"
                )
        if self.executed is None:
            self.executed = np.zeros(self.chip.n_tiles, dtype=float)
        # Per-tile instruction budget (weighted threads; 0 = no thread).
        self._budget = np.zeros(self.chip.n_tiles)
        for slot, t in enumerate(self.workload.active_tiles):
            self._budget[t] = self.workload.thread_budget(slot)
        if self.seed is None:
            self.seed = sum(ord(c) for c in self.workload.name) * 7919
        self._rng = np.random.default_rng(self.seed)
        self._noise = 0.0  # current AR(1) activity deviation

    @property
    def noise_multiplier(self) -> float:
        """Current chip-wide activity fluctuation multiplier."""
        return 1.0 + self._noise

    def _step_noise(self) -> None:
        sigma = self.workload.activity_noise_sigma
        if sigma <= 0.0:
            return
        rho = self.workload.activity_noise_rho
        eps = self._rng.normal(0.0, sigma * np.sqrt(1.0 - rho**2))
        self._noise = float(
            np.clip(rho * self._noise + eps, -3.0 * sigma, 3.0 * sigma)
        )

    # ------------------------------------------------------------------
    @property
    def active_mask(self) -> np.ndarray:
        """Boolean per-tile mask of cores hosting threads."""
        mask = np.zeros(self.chip.n_tiles, dtype=bool)
        mask[list(self.workload.active_tiles)] = True
        return mask

    def _progress_fraction(self) -> float:
        """Instruction progress of the least-advanced active thread."""
        return min(
            self.executed[t] / self._budget[t]
            for t in self.workload.active_tiles
        )

    def _phase_multipliers(self) -> tuple[float, float]:
        """(activity_mult, ipc_mult) with smooth phase transitions.

        Real benchmark phases drift rather than step; multipliers are
        piecewise-linearly interpolated between phase midpoints so the
        one-interval-lag Eq. (7) estimator faces realistic ramps.
        """
        phases = self.workload.phases
        if len(phases) == 1:
            return phases[0].activity_mult, phases[0].ipc_mult
        frac = self._progress_fraction()
        mids: list[float] = []
        acc = 0.0
        for ph in phases:
            mids.append(acc + 0.5 * ph.inst_fraction)
            acc += ph.inst_fraction
        acts = [ph.activity_mult for ph in phases]
        ipcs = [ph.ipc_mult for ph in phases]
        return (
            float(np.interp(frac, mids, acts)),
            float(np.interp(frac, mids, ipcs)),
        )

    def activity_vector(self) -> np.ndarray:
        """Per-tile dynamic activity for the current instant.

        Computing threads run at the workload's (phase-modulated)
        activity; threads that retired their share but whose peers have
        not — SPLASH barrier semantics — busy-wait at
        ``spin_activity_frac`` of it. Once every thread is done the run
        is over and activity is zero.
        """
        act_mult, _ = self._phase_multipliers()
        act = np.zeros(self.chip.n_tiles)
        level = min(
            self.workload.activity * act_mult * self.noise_multiplier, 1.0
        )
        spin = level * self.workload.spin_activity_frac
        for t in self.workload.active_tiles:
            act[t] = level if self.executed[t] < self._budget[t] else spin
        return act

    def ips_vector(self, freqs_ghz: np.ndarray) -> np.ndarray:
        """Per-core IPS at ``freqs_ghz`` (Eq. 11: linear in frequency)."""
        _, ipc_mult = self._phase_multipliers()
        ipc = self.workload.ipc_at_ref * ipc_mult
        ips = np.zeros(self.chip.n_tiles)
        for t in self.workload.active_tiles:
            # Spinning cores retire no *useful* (committed benchmark)
            # instructions; hardware counters filtered the way SESC
            # counts simulated instructions report ~0 for them.
            if self.executed[t] < self._budget[t]:
                ips[t] = ipc * freqs_ghz[t] * 1e9
        return ips

    def time_to_completion_s(self, freqs_ghz: np.ndarray) -> float:
        """Time for the slowest unfinished thread to retire its budget
        at the current phase's IPS (infinite if any active core has
        zero IPS)."""
        ips = self.ips_vector(np.asarray(freqs_ghz, dtype=float))
        worst = 0.0
        for t in self.workload.active_tiles:
            remaining = self._budget[t] - self.executed[t]
            if remaining <= 0:
                continue
            if ips[t] <= 0:
                return np.inf
            worst = max(worst, remaining / ips[t])
        return worst

    def advance(self, dt_s: float, freqs_ghz: np.ndarray) -> np.ndarray:
        """Execute ``dt_s`` seconds; returns instructions retired per core."""
        if dt_s <= 0:
            raise WorkloadError(f"non-positive step {dt_s}")
        ips = self.ips_vector(np.asarray(freqs_ghz, dtype=float))
        done_inst = np.minimum(
            ips * dt_s, np.maximum(self._budget - self.executed, 0)
        )
        self.executed += done_inst
        self.elapsed_s += dt_s
        self._step_noise()
        return done_inst

    @property
    def finished(self) -> bool:
        """True when every thread has retired its budget."""
        return all(
            self.executed[t] >= self._budget[t] - 0.5
            for t in self.workload.active_tiles
        )

    @property
    def progress(self) -> float:
        """Fraction of the total instruction budget retired."""
        total = sum(self._budget[t] for t in self.workload.active_tiles)
        done = sum(
            min(self.executed[t], self._budget[t])
            for t in self.workload.active_tiles
        )
        return done / total
