"""Fault-matrix robustness study: hardened vs unhardened TECfan.

The paper assumes ideal actuators and sensors. This study asks the
deployment question instead: *what happens when one thing breaks mid
run?* Three single-fault scenarios target the three hardware layers —

* ``fan_stuck`` — the fan latches at its slowest level while the
  controller keeps commanding a faster one;
* ``tec_tile_dead`` — every TEC device over the hottest tile goes
  stuck-off (one dead driver channel in Sec. III-E's array);
* ``sensor_stuck`` — the hottest component's sensor latches at a
  plausible-but-cool value, hiding the hot spot from the controller.

Each scenario runs twice on identical plants and fault scripts:
**unhardened** (faults only — the paper's controller meets reality) and
**hardened** (faults + thermal watchdog + actuator-health masking +
sensor validation + estimator fallback). The figure of merit is the
*excess fraction*: the share of simulated time the true peak exceeds
``T_th + margin``. A hardened run must stay within the margin at least
99 % of the time; the unhardened controller is expected to violate (or
crash) on at least one scenario — that contrast is what
``benchmarks/bench_robustness.py`` asserts.

The methodology mirrors the repo's SPLASH-2 flow: the base scenario
(fastest fan, peak DVFS, no TEC) defines ``T_th``, then the policy runs
one fan level slower so it must actively manage temperature — the
regime where a dead actuator or lying sensor actually matters.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.experiments import run_base_scenario
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem
from repro.core.tecfan import TECfanController
from repro.core.trace import TraceRecorder
from repro.exceptions import ReproError
from repro.faults import (
    FanStuckFault,
    FaultScheduler,
    HealthConfig,
    SensorStuckFault,
    TECStuckFault,
    WatchdogConfig,
)
from repro.obs import Telemetry, telemetry_session
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun

#: Tolerated exceedance above the threshold for the robustness claim
#: [degC]: transients within ``T_th + 2`` still count as contained.
VIOLATION_MARGIN_C = 2.0

#: Minimum time share the hardened controller must keep the true peak
#: within the margin, per scenario.
CONTAINMENT_TARGET = 0.99

#: Failures that count as "the unhardened run crashed" rather than
#: propagating out of the study (singular solves surface as
#: ``RuntimeError``/``LinAlgError`` from the native layers).
_RUN_CRASHES = (ReproError, np.linalg.LinAlgError, RuntimeError)


def excess_fraction(
    trace: TraceRecorder,
    t_threshold_c: float,
    margin_c: float = VIOLATION_MARGIN_C,
) -> float:
    """Share of simulated time the true peak exceeded ``T_th + margin``."""
    dt = np.asarray(trace.dt_s, dtype=float)
    peak = np.asarray(trace.peak_temp_c, dtype=float)
    total = float(dt.sum())
    if total <= 0.0:
        return 0.0
    return float(dt[peak > t_threshold_c + margin_c].sum() / total)


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (scenario, hardened?) run of the matrix."""

    scenario: str
    hardened: bool
    crashed: bool
    error: str | None
    peak_temp_c: float
    excess_frac: float
    violation_rate: float
    energy_j: float
    counters: dict = field(default_factory=dict)

    @property
    def contained(self) -> bool:
        """Did the run keep the true peak inside ``T_th + margin``
        for at least :data:`CONTAINMENT_TARGET` of the time?"""
        return not self.crashed and (
            1.0 - self.excess_frac
        ) >= CONTAINMENT_TARGET


@dataclass(frozen=True)
class FaultMatrixReport:
    """Everything one matrix run produces."""

    workload: str
    threads: int
    t_threshold_c: float
    margin_c: float
    hot_component: int
    hot_tile: int
    outcomes: list

    def outcome(self, scenario: str, hardened: bool) -> ScenarioOutcome:
        for oc in self.outcomes:
            if oc.scenario == scenario and oc.hardened == hardened:
                return oc
        raise KeyError(f"{scenario}/{'hardened' if hardened else 'raw'}")

    @property
    def hardened_all_contained(self) -> bool:
        """Acceptance gate 1: every hardened run stays in envelope."""
        return all(oc.contained for oc in self.outcomes if oc.hardened)

    @property
    def unhardened_failures(self) -> list:
        """Scenario names where the plain controller crashed or
        escaped the envelope (excludes the no-fault control row)."""
        return [
            oc.scenario
            for oc in self.outcomes
            if not oc.hardened
            and oc.scenario != "none"
            and not oc.contained
        ]


def hot_spot(system: CMPSystem, result) -> tuple[int, int]:
    """Hottest component and its tile under the run's average load.

    Solves the steady field at the run's time-averaged power and TEC
    state — the same estimate the fan controller uses — and takes the
    argmax component. Faults aimed here maximally stress the policy.
    """
    t = system.solver.solve(
        result.avg_p_components_w,
        int(result.final_state.fan_level),
        result.avg_tec,
    )
    comp = int(np.argmax(t[system.nodes.component_slice]))
    tile = int(system.chip.tile_of()[comp])
    return comp, tile


def default_scenarios(
    system: CMPSystem,
    hot_component: int,
    hot_tile: int,
    t_threshold_c: float,
    t_fault_s: float,
) -> dict:
    """The single-fault scripts of the matrix, keyed by scenario name."""
    dead_tile = [
        TECStuckFault(device=int(d), mode="stuck_off", t_start_s=t_fault_s)
        for d in np.flatnonzero(system.tec.device_tile == hot_tile)
    ]
    return {
        "none": [],
        "fan_stuck": [
            FanStuckFault(level=system.fan.n_levels, t_start_s=t_fault_s)
        ],
        "tec_tile_dead": dead_tile,
        "sensor_stuck": [
            SensorStuckFault(
                component=hot_component,
                # Plausibly cool: far enough below T_th that the
                # controller sees headroom and speeds the hot tile up.
                value_c=t_threshold_c - 20.0,
                t_start_s=t_fault_s,
            )
        ],
    }


_COUNTER_KEYS = (
    "faults.injected",
    "watchdog.trips",
    "health.masked_actuators",
    "health.masked_sensors",
    "controller.fallbacks",
    "temp.violations",
)


def _run_one(
    system: CMPSystem,
    problem: EnergyProblem,
    wl,
    fan_level: int,
    max_time_s: float,
    faults: list,
    hardened: bool,
    margin_c: float,
    scenario: str,
) -> ScenarioOutcome:
    cfg = EngineConfig(
        max_time_s=max_time_s,
        faults=FaultScheduler(list(faults)) if faults else None,
        # The study senses without noise, so the watchdog's debounce
        # (there to reject single noisy readings) only delays the trip:
        # one over-margin interval is already proof. Recovery is
        # deliberately reluctant (deep cool-down, long hold-down):
        # whatever tripped the watchdog is still broken, and every
        # probing re-entry costs an overshoot transient — the banded
        # estimator evaluates one core at a time, so the simultaneous
        # all-core ramp out of the refuge underestimates thermal
        # coupling exactly when headroom is scarcest. Limp-home beats
        # trip/recover chatter that burns the containment budget one
        # re-entry at a time.
        watchdog=(
            WatchdogConfig(
                trip_intervals=1,
                recover_margin_c=5.0,
                recover_intervals=500,
            )
            if hardened
            else None
        ),
        health=HealthConfig() if hardened else None,
        estimator_fallback=hardened,
    )
    engine = SimulationEngine(system, problem, cfg)
    state = ActuatorState.initial(
        system.n_tec_devices,
        system.n_cores,
        system.dvfs.max_level,
        fan_level=fan_level,
    )
    run = WorkloadRun(wl, system.chip, REF_FREQ_GHZ)
    tel = Telemetry()
    try:
        with telemetry_session(tel):
            result = engine.run(
                run, TECfanController(), initial_state=state
            )
    except _RUN_CRASHES as exc:
        return ScenarioOutcome(
            scenario=scenario,
            hardened=hardened,
            crashed=True,
            error=f"{type(exc).__name__}: {exc}",
            peak_temp_c=float("nan"),
            excess_frac=1.0,
            violation_rate=1.0,
            energy_j=float("nan"),
        )
    counters = tel.metrics.snapshot()["counters"]
    return ScenarioOutcome(
        scenario=scenario,
        hardened=hardened,
        crashed=False,
        error=None,
        peak_temp_c=result.metrics.peak_temp_c,
        excess_frac=excess_fraction(
            result.trace, problem.t_threshold_c, margin_c
        ),
        violation_rate=result.metrics.violation_rate,
        energy_j=result.metrics.energy_j,
        counters={
            k: int(counters.get(k, 0)) for k in _COUNTER_KEYS
        },
    )


@dataclass(frozen=True)
class MatrixCell:
    """One runnable (scenario, hardened?) cell of a fault matrix.

    Self-contained and picklable: everything a worker needs except the
    (heavy, cache-bearing) system, which travels separately as shared
    pool context. Cells from *different* matrices — e.g. one per
    workload — can therefore share one worker pool and its warm caches,
    which is how ``bench_robustness.py`` reaches real parallel speedup.
    """

    scenario: str
    hardened: bool
    problem: EnergyProblem
    wl: object
    fan_level: int
    max_time_s: float
    margin_c: float
    faults: tuple = ()


@dataclass(frozen=True)
class MatrixPlan:
    """A planned fault matrix: serial prologue done, cells ready to run.

    Produced by :func:`plan_fault_matrix` (base scenario -> threshold,
    reference run -> hot spot, fault scripts); consumed by
    :func:`run_fault_matrix` or any driver that wants to pool cells
    from several plans together.
    """

    workload: str
    threads: int
    t_threshold_c: float
    margin_c: float
    hot_component: int
    hot_tile: int
    reference: ScenarioOutcome
    cells: tuple

    def report(self, outcomes: list) -> FaultMatrixReport:
        """Assemble the report from this plan's cell ``outcomes``."""
        return FaultMatrixReport(
            workload=self.workload,
            threads=self.threads,
            t_threshold_c=self.t_threshold_c,
            margin_c=self.margin_c,
            hot_component=self.hot_component,
            hot_tile=self.hot_tile,
            outcomes=[self.reference] + list(outcomes),
        )


def _matrix_task(system: CMPSystem, cell: MatrixCell) -> ScenarioOutcome:
    """Run one :class:`MatrixCell` (module-level: spawn-picklable).

    ``system`` is the shared pool context, so a worker's solver (and
    its factorization caches) stays warm across the cells it runs.
    """
    return _run_one(
        system, cell.problem, cell.wl, cell.fan_level, cell.max_time_s,
        faults=list(cell.faults), hardened=cell.hardened,
        margin_c=cell.margin_c, scenario=cell.scenario,
    )


def plan_fault_matrix(
    system: CMPSystem,
    workload: str = "cholesky",
    threads: int = 16,
    fan_level: int = 2,
    max_time_s: float = 2.0,
    t_fault_s: float = 0.01,
    margin_c: float = VIOLATION_MARGIN_C,
    mission_scale: int = 6,
) -> MatrixPlan:
    """Plan a fault matrix: run the serial prologue, script the cells.

    ``t_fault_s`` is when (in recorded simulated time) each fault
    switches on — a few control intervals in, so every run starts from
    identical healthy behaviour and the divergence is attributable to
    the fault alone.

    ``mission_scale`` multiplies the workload's instruction count. A
    step fault always costs one uncontrollable over-margin interval
    (the interval in which it lands — no causal controller can undo
    it); the containment criterion is a *time share*, so the mission
    must be long enough that detection-latency transients are priced
    as transients rather than dominating a toy-length run.

    The base scenario (-> threshold) and reference run (-> hot spot)
    execute here, serially — every cell depends on what they produce.
    The returned plan's cells are then embarrassingly parallel.
    """
    base = run_base_scenario(system, workload, threads)
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    wl = splash2_workload(workload, threads, system.chip)
    if mission_scale > 1:
        wl = dataclasses.replace(
            wl, total_instructions=wl.total_instructions * mission_scale
        )

    # Reference run locates the hot spot the faults will target.
    reference = _run_one(
        system, problem, wl, fan_level, max_time_s,
        faults=[], hardened=False, margin_c=margin_c, scenario="none",
    )
    if reference.crashed:  # the baseline must run; surface loudly
        raise ReproError(
            f"fault-matrix reference run crashed: {reference.error}"
        )
    ref_engine = SimulationEngine(
        system, problem, EngineConfig(max_time_s=max_time_s)
    )
    ref_state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level,
        fan_level=fan_level,
    )
    ref_result = ref_engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        TECfanController(),
        initial_state=ref_state,
    )
    hot_component, hot_tile = hot_spot(system, ref_result)

    scenarios = default_scenarios(
        system, hot_component, hot_tile, base.t_threshold_c, t_fault_s
    )
    cells = tuple(
        MatrixCell(
            scenario=name,
            hardened=hardened,
            problem=problem,
            wl=wl,
            fan_level=fan_level,
            max_time_s=max_time_s,
            margin_c=margin_c,
            faults=tuple(script),
        )
        for name, script in scenarios.items()
        for hardened in (False, True)
        # The (none, unhardened) cell already ran as the reference.
        if not (name == "none" and not hardened)
    )
    return MatrixPlan(
        workload=workload,
        threads=threads,
        t_threshold_c=base.t_threshold_c,
        margin_c=margin_c,
        hot_component=hot_component,
        hot_tile=hot_tile,
        reference=reference,
        cells=cells,
    )


def run_fault_matrix(
    system: CMPSystem,
    workload: str = "cholesky",
    threads: int = 16,
    fan_level: int = 2,
    max_time_s: float = 2.0,
    t_fault_s: float = 0.01,
    margin_c: float = VIOLATION_MARGIN_C,
    mission_scale: int = 6,
    jobs: int | None = None,
    journal_path=None,
) -> FaultMatrixReport:
    """Run every scenario hardened and unhardened; collect the matrix.

    :func:`plan_fault_matrix` documents the knobs. ``jobs`` fans the
    matrix cells out across pooled worker processes
    (:func:`repro.parallel.parallel_map`) with the system — and its
    solver caches — shipped once per worker as shared context; each
    cell builds its own engine and fault script, so pooled outcomes
    equal serial ones exactly. The planning prologue stays serial.

    ``journal_path`` makes the matrix crash-recoverable
    (:mod:`repro.journal`): the serialized plan — prologue included —
    is cached as a journal meta record and cell outcomes are appended
    as they complete, so a killed driver re-launched with the same
    path skips the prologue, replays the journaled cells, and runs
    only the missing ones. The assembled report is bit-identical to an
    uninterrupted run's.
    """
    from repro.parallel import parallel_map

    journal = None
    plan = None
    if journal_path is not None:
        from repro.journal import TaskJournal

        journal = TaskJournal(
            journal_path,
            header={
                "kind": "fault-matrix",
                "workload": workload,
                "threads": threads,
            },
        )
        plan = journal.get_meta("plan")
    try:
        if plan is None:
            plan = plan_fault_matrix(
                system, workload, threads, fan_level, max_time_s,
                t_fault_s, margin_c, mission_scale,
            )
            if journal is not None:
                journal.put_meta("plan", plan)
        outcomes = parallel_map(
            _matrix_task, plan.cells, jobs, context=system,
            journal=journal,
        )
    finally:
        if journal is not None:
            journal.close()
    return plan.report(outcomes)
