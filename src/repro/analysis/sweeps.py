"""Parameter sweeps beyond the paper's headline experiments.

The paper fixes the TEC deployment at a 3 x 3 array per core, citing
Long & Memik (DAC'10) for the device model and the observation that the
amount/placement of TECs is itself an optimization problem. These sweeps
expose that axis (and the fan-level axis) through the same calibrated
stack, so a user can size a TEC deployment for their own thermal budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import FanTECController
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem, build_system
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun


@dataclass(frozen=True)
class TECDensityPoint:
    """Outcome of one TEC-array-density configuration."""

    grid: tuple[int, int]
    devices_per_core: int
    #: Peak temperature at fan level 2 with the reactive TEC policy.
    peak_temp_c: float
    #: Average TEC electrical power over the run [W].
    tec_power_w: float
    #: Time-weighted violation rate against the dense-grid threshold.
    violation_rate: float


def _density_point(task: tuple) -> TECDensityPoint:
    """One grid density end to end (module-level: must pickle to workers)."""
    grid, workload, threads, fan_level, t_threshold_c = task
    system = build_system(tec_grid=grid)
    problem = EnergyProblem(t_threshold_c=t_threshold_c)
    engine = SimulationEngine(system, problem, EngineConfig(max_time_s=2.0))
    wl = splash2_workload(workload, threads, system.chip)
    state = ActuatorState.initial(
        system.n_tec_devices,
        system.n_cores,
        system.dvfs.max_level,
        fan_level=fan_level,
    )
    res = engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        FanTECController(),
        initial_state=state,
    )
    tr = res.trace
    dur = float(tr.dt_s.sum())
    return TECDensityPoint(
        grid=grid,
        devices_per_core=grid[0] * grid[1],
        peak_temp_c=res.metrics.peak_temp_c,
        tec_power_w=float((tr.p_tec_w * tr.dt_s).sum() / dur),
        violation_rate=res.metrics.violation_rate,
    )


def tec_density_sweep(
    workload: str = "cholesky",
    threads: int = 16,
    grids: tuple = ((1, 1), (2, 2), (3, 3)),
    fan_level: int = 2,
    t_threshold_c: float | None = None,
    jobs: int | None = None,
    journal_path=None,
) -> list[TECDensityPoint]:
    """How much TEC coverage does hot-spot recovery need?

    Each grid density gets its own system build (the TEC bodies change
    the passive heat path too); the threshold defaults to the
    3x3-system's base-scenario peak so all densities chase the same
    target. Densities are independent, so ``jobs`` fans them out across
    pooled worker processes (results and order identical to serial;
    worker telemetry merges back into the installed session). Each
    point builds its own system, so no shared pool context is shipped —
    the win here is amortizing worker start-up, not cache warmth.

    ``journal_path`` appends each completed grid to a crash-recovery
    journal (:mod:`repro.journal`); re-running with the same path
    re-executes only the densities a killed driver never finished.
    """
    # Threshold from the paper-standard platform.
    if t_threshold_c is None:
        from repro.analysis.experiments import run_base_scenario

        reference = build_system()
        t_threshold_c = run_base_scenario(
            reference, workload, threads
        ).t_threshold_c

    from repro.parallel import parallel_map

    tasks = [
        (grid, workload, threads, fan_level, t_threshold_c)
        for grid in grids
    ]
    journal = None
    if journal_path is not None:
        from repro.journal import TaskJournal

        journal = TaskJournal(
            journal_path,
            header={
                "kind": "tec-density-sweep",
                "workload": workload,
                "n_tasks": len(tasks),
            },
        )
    try:
        return parallel_map(_density_point, tasks, jobs, journal=journal)
    finally:
        if journal is not None:
            journal.close()


@dataclass(frozen=True)
class FanLevelPoint:
    """Steady-state consequences of one fan level at a given load."""

    level: int
    fan_power_w: float
    peak_temp_c: float
    chip_power_w: float  # with the temperature-leakage coupling


def fan_level_sweep(
    system: CMPSystem,
    core_activity: float = 0.9,
) -> list[FanLevelPoint]:
    """Peak temperature and chip power across fan levels (steady state).

    Exposes the leakage-cooling feedback: a faster fan costs fan power
    but *saves* leakage power — the trade the higher-level loop walks.
    """
    state = ActuatorState.initial(
        system.n_tec_devices,
        system.n_cores,
        system.dvfs.max_level,
        fan_level=1,
    )
    act = np.full(system.n_cores, core_activity)
    p_dyn = system.power.component_power.dynamic_power_w(
        act, state.dvfs, None
    )
    out: list[FanLevelPoint] = []
    for level in range(1, system.fan.n_levels + 1):
        t, p_leak = system.plant_thermal.solve(p_dyn, level, state.tec)
        out.append(
            FanLevelPoint(
                level=level,
                fan_power_w=system.fan.power_w(level),
                peak_temp_c=float(system.component_temps_c(t).max()),
                chip_power_w=float(
                    p_dyn.sum() + p_leak.sum() + system.fan.power_w(level)
                ),
            )
        )
    return out
