"""Offline analysis of telemetry streams: diff, flame, anomalies.

The ``tecfan trace`` CLI family works purely on exported JSONL streams
(:func:`repro.obs.read_jsonl` form), so regression analysis needs no
live run — the same discipline HotSpot-style thermal tooling applies to
its run logs:

* :func:`diff_streams` — span/counter deltas between two streams with
  configurable regression thresholds; ``tecfan trace diff`` exits
  nonzero when anything regresses, making it a CI gate;
* :func:`flame_folded` — folded-stack (Brendan Gregg ``flamegraph.pl``)
  output reconstructed from the aggregated ``span_edge`` records, self
  time distributed over call paths by edge-count fractions;
* :func:`detect_anomalies` — thermal-excursion, fan/TEC-oscillation and
  EPI-drift detection over the per-interval event records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table

__all__ = [
    "DiffRow",
    "TraceDiff",
    "diff_streams",
    "format_trace_diff",
    "flame_folded",
    "Anomaly",
    "detect_anomalies",
    "format_anomalies",
]


# ----------------------------------------------------------------------
# trace diff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffRow:
    """One span or counter compared across two streams."""

    kind: str  # "span" | "counter"
    name: str
    a: float
    b: float
    #: Relative change (b - a) / a; +inf when a == 0 and b > 0.
    rel: float
    regressed: bool

    @property
    def pct(self) -> float:
        """Relative change in percent (for display)."""
        return self.rel * 100.0


@dataclass
class TraceDiff:
    """Outcome of one stream-vs-stream comparison."""

    rows: list = field(default_factory=list)
    #: Names present in exactly one stream (informational, never gating).
    only_a: list = field(default_factory=list)
    only_b: list = field(default_factory=list)

    @property
    def regressions(self) -> list:
        return [r for r in self.rows if r.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_streams(
    a: dict,
    b: dict,
    *,
    span_threshold_pct: float = 10.0,
    counter_threshold_pct: float = 10.0,
    min_total_ms: float = 1.0,
) -> TraceDiff:
    """Compare two parsed telemetry streams (A = baseline, B = candidate).

    Spans compare on total wall time and regress when B exceeds A by
    more than ``span_threshold_pct`` (spans below ``min_total_ms`` in
    both streams are noise and never gate). Counters compare on value
    and regress on the same one-sided rule — counting *more* hot
    iterations / evaluations / violations is the regression; improving
    is free. Names present in only one stream are reported but never
    gate (a new instrument is not a regression).
    """
    out = TraceDiff()
    spans_a = a.get("spans") or {}
    spans_b = b.get("spans") or {}
    for name in sorted(set(spans_a) & set(spans_b)):
        ta = float(spans_a[name]["total_s"]) * 1e3
        tb = float(spans_b[name]["total_s"]) * 1e3
        rel = _rel(ta, tb)
        big_enough = max(ta, tb) >= min_total_ms
        regressed = big_enough and rel * 100.0 > span_threshold_pct
        out.rows.append(
            DiffRow(kind="span", name=name, a=ta, b=tb, rel=rel,
                    regressed=regressed)
        )
    counters_a = a.get("counters") or {}
    counters_b = b.get("counters") or {}
    for name in sorted(set(counters_a) & set(counters_b)):
        va, vb = float(counters_a[name]), float(counters_b[name])
        rel = _rel(va, vb)
        # A counter springing from zero has no meaningful relative
        # change; report it, gate only on the threshold rule when a > 0.
        regressed = va > 0 and rel * 100.0 > counter_threshold_pct
        out.rows.append(
            DiffRow(kind="counter", name=name, a=va, b=vb, rel=rel,
                    regressed=regressed)
        )
    out.only_a = sorted(
        (set(spans_a) - set(spans_b)) | (set(counters_a) - set(counters_b))
    )
    out.only_b = sorted(
        (set(spans_b) - set(spans_a)) | (set(counters_b) - set(counters_a))
    )
    return out


def _rel(a: float, b: float) -> float:
    if a == 0.0:
        return 0.0 if b == 0.0 else float("inf")
    return (b - a) / a


def format_trace_diff(diff: TraceDiff, title: str = "trace diff") -> str:
    """Human-readable diff: changed rows first, regressions marked."""
    changed = [r for r in diff.rows if r.rel != 0.0]
    blocks: list[str] = []
    if changed:
        rows = [
            [
                "REGRESSED" if r.regressed else "",
                r.kind,
                r.name,
                r.a,
                r.b,
                "+inf" if r.rel == float("inf") else f"{r.pct:+.1f}%",
            ]
            for r in sorted(
                changed, key=lambda r: (not r.regressed, -abs(r.rel))
            )
        ]
        blocks.append(
            render_table(
                ["", "kind", "name", "A", "B", "delta"],
                rows,
                title=f"{title} — changes (spans in ms)",
            )
        )
    else:
        blocks.append(f"{title}: no span/counter changes")
    if diff.only_a:
        blocks.append("only in A: " + ", ".join(diff.only_a))
    if diff.only_b:
        blocks.append("only in B: " + ", ".join(diff.only_b))
    n = len(diff.regressions)
    blocks.append(
        f"{n} regression(s)" if n else "no regressions past thresholds"
    )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# trace flame
# ----------------------------------------------------------------------
def flame_folded(parsed: dict) -> str:
    """Folded-stack output reconstructed from ``span_edge`` records.

    The tracker exports per-name aggregates plus parent->child edge
    counts, not individual stacks, so reconstruction distributes each
    span's *self* time over the call paths that reach it, weighted by
    edge-count fractions (every span start records exactly one incoming
    edge, so a span's total incoming edge count equals its occurrence
    count). Each output line is ``frame;frame;... <microseconds>`` —
    the format ``flamegraph.pl`` and speedscope ingest directly. Merged
    streams keep their ``worker=N`` labels as root frames.
    """
    spans = parsed.get("spans") or {}
    children: dict = {}
    incoming: dict = {}
    for rec in parsed.get("span_edges") or []:
        parent, child, count = rec["parent"], rec["child"], rec["count"]
        if parent == child:  # folded recursion: one frame, no new path
            continue
        children.setdefault(parent, []).append((child, count))
        incoming[child] = incoming.get(child, 0) + count

    lines: dict[str, float] = {}

    def visit(name: str, stack: tuple, weight: float) -> None:
        stack = stack + (name,)
        self_s = float(spans.get(name, {}).get("self_s", 0.0))
        if self_s * weight > 0.0:
            key = ";".join(stack)
            lines[key] = lines.get(key, 0.0) + self_s * weight
        for child, count in children.get(name, []):
            if child in stack:  # merged-edge cycles: cut, don't recurse
                continue
            visit(child, stack, count * weight / incoming[child])

    for child, count in children.get(None, []):
        visit(child, (), count / incoming[child])

    out = []
    for key in sorted(lines):
        micros = int(round(lines[key] * 1e6))
        if micros > 0:
            out.append(f"{key} {micros}")
    return "\n".join(out) + ("\n" if out else "")


# ----------------------------------------------------------------------
# trace anomalies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Anomaly:
    """One detected misbehavior over a stream's interval events."""

    kind: str  # "thermal_excursion" | "oscillation" | "epi_drift"
    t_start_s: float
    t_end_s: float
    value: float
    detail: str


def detect_anomalies(
    parsed: dict,
    *,
    threshold_c: float | None = None,
    margin_c: float = 0.5,
    osc_window: int = 20,
    osc_reversals: int = 6,
    epi_drift_pct: float = 10.0,
) -> list[Anomaly]:
    """Scan a stream's interval events for control-loop misbehavior.

    * **Thermal excursion** — a maximal run of consecutive intervals
      whose peak exceeds ``threshold_c + margin_c``; the threshold
      defaults to the ``t_threshold_c`` the engine annotated into the
      manifest (skipped, not guessed, when neither is available).
    * **Oscillation** — within any ``osc_window``-interval window, the
      fan level (or TEC on-count) reverses direction at least
      ``osc_reversals`` times: the limit-cycle signature of a control
      loop fighting itself rather than settling.
    * **EPI drift** — energy per instruction (chip power / chip IPS)
      drifts between the first and last quarter of the run by more than
      ``epi_drift_pct`` percent; needs the ``ips_chip`` event field
      (schema 2 streams).
    """
    events = [
        e for e in parsed.get("events") or [] if e.get("kind") == "interval"
    ]
    if not events:
        return []
    anomalies: list[Anomaly] = []

    if threshold_c is None:
        manifest = parsed.get("manifest") or {}
        context = manifest.get("context") or {}
        threshold_c = context.get("t_threshold_c")
    if threshold_c is not None:
        limit = float(threshold_c) + margin_c
        run_start = None
        peak = -float("inf")
        for ev in events + [None]:  # sentinel flushes a trailing run
            hot = ev is not None and ev["peak_temp_c"] > limit
            if hot:
                if run_start is None:
                    run_start = ev["time_s"]
                    peak = ev["peak_temp_c"]
                else:
                    peak = max(peak, ev["peak_temp_c"])
                last_t = ev["time_s"]
            elif run_start is not None:
                anomalies.append(
                    Anomaly(
                        kind="thermal_excursion",
                        t_start_s=run_start,
                        t_end_s=last_t,
                        value=peak,
                        detail=(
                            f"peak {peak:.2f} degC over threshold "
                            f"{float(threshold_c):.2f}+{margin_c:g} degC"
                        ),
                    )
                )
                run_start = None
                peak = -float("inf")

    for signal, label in (("fan_level", "fan"), ("tec_on", "TEC")):
        anomalies.extend(
            _oscillations(events, signal, label, osc_window, osc_reversals)
        )

    epi = [
        (e["time_s"], e["p_chip_w"] / e["ips_chip"])
        for e in events
        if e.get("ips_chip")
    ]
    if len(epi) >= 8:
        quarter = max(len(epi) // 4, 1)
        head = sum(v for _, v in epi[:quarter]) / quarter
        tail = sum(v for _, v in epi[-quarter:]) / quarter
        if head > 0:
            drift_pct = (tail - head) / head * 100.0
            if abs(drift_pct) > epi_drift_pct:
                anomalies.append(
                    Anomaly(
                        kind="epi_drift",
                        t_start_s=epi[0][0],
                        t_end_s=epi[-1][0],
                        value=drift_pct,
                        detail=(
                            f"EPI drifted {drift_pct:+.1f}% from first to "
                            f"last quarter ({head:.3e} -> {tail:.3e} J/inst)"
                        ),
                    )
                )

    anomalies.sort(key=lambda a: (a.t_start_s, a.kind))
    return anomalies


def _oscillations(
    events: list,
    signal: str,
    label: str,
    window: int,
    reversals: int,
) -> list[Anomaly]:
    """Direction-reversal clusters of one actuator signal."""
    times = [e["time_s"] for e in events]
    values = [e[signal] for e in events]
    # Indices where a nonzero move reverses the previous nonzero move.
    rev: list[int] = []
    last_dir = 0
    for i in range(1, len(values)):
        delta = values[i] - values[i - 1]
        if delta == 0:
            continue
        direction = 1 if delta > 0 else -1
        if last_dir and direction != last_dir:
            rev.append(i)
        last_dir = direction
    out: list[Anomaly] = []
    i = 0
    while i < len(rev):
        j = i
        # Grow the cluster while successive reversals stay within one
        # window of each other (in interval counts).
        while j + 1 < len(rev) and rev[j + 1] - rev[j] <= window:
            j += 1
        count = j - i + 1
        if count >= reversals:
            out.append(
                Anomaly(
                    kind="oscillation",
                    t_start_s=times[rev[i]],
                    t_end_s=times[rev[j]],
                    value=float(count),
                    detail=(
                        f"{label} level reversed direction {count} times "
                        f"within {rev[j] - rev[i] + 1} intervals"
                    ),
                )
            )
        i = j + 1
    return out


def format_anomalies(
    anomalies: list, title: str = "trace anomalies"
) -> str:
    """Render detected anomalies as a table (or an all-clear line)."""
    if not anomalies:
        return f"{title}: none detected"
    rows = [
        [a.kind, a.t_start_s * 1e3, a.t_end_s * 1e3, a.detail]
        for a in anomalies
    ]
    return render_table(
        ["kind", "start_ms", "end_ms", "detail"],
        rows,
        title=f"{title} — {len(anomalies)} finding(s)",
    )
