"""Data-series generators for the paper's Figures 4-7.

Each ``figure*`` function returns plain data structures (and a
``format_*`` twin renders them as text) so the benchmark harness can
print exactly the rows/series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.experiments import (
    BaseScenario,
    PolicyOutcome,
    run_base_scenario,
    run_policy_suite,
)
from repro.analysis.report import render_normalized, render_table
from repro.core.baselines import FanTECController
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem
from repro.perf.splash2 import (
    FIGURE_CASES,
    TABLE1_CASES,
    REF_FREQ_GHZ,
    splash2_workload,
)
from repro.perf.workload import WorkloadRun

# ---------------------------------------------------------------------------
# Figure 4 — importance of integrating TEC with fan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure4Row:
    """One workload case of Fig. 4's three panels."""

    workload: str
    threads: int
    t_threshold_c: float
    peak_fan1_c: float  # Fan-only, fastest fan (a)
    peak_fan2_c: float  # Fan-only, 2nd fan level (a)
    peak_fantec2_c: float  # Fan+TEC at the 2nd level (b)
    fan1_power_w: float  # (c)
    fan2_power_w: float
    tec_power_w: float  # average TEC power of the Fan+TEC run


def figure4(
    system: CMPSystem, cases: tuple = TABLE1_CASES
) -> list[Figure4Row]:
    """Regenerate Fig. 4: Fan-only L1 vs L2 vs Fan+TEC at L2."""
    rows: list[Figure4Row] = []
    for workload, threads in cases:
        base: BaseScenario = run_base_scenario(system, workload, threads)
        problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
        engine = SimulationEngine(
            system, problem, EngineConfig(max_time_s=2.0)
        )
        wl = splash2_workload(workload, threads, system.chip)

        def run_at(level: int, controller):
            state = ActuatorState.initial(
                system.n_tec_devices,
                system.n_cores,
                system.dvfs.max_level,
                fan_level=level,
            )
            return engine.run(
                WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
                controller,
                initial_state=state,
            )

        from repro.core.baselines import FanOnlyController

        fan2 = run_at(2, FanOnlyController())
        fantec2 = run_at(2, FanTECController())
        tr = fantec2.trace
        dur = float(tr.dt_s.sum())
        rows.append(
            Figure4Row(
                workload=workload,
                threads=threads,
                t_threshold_c=base.t_threshold_c,
                peak_fan1_c=base.result.metrics.peak_temp_c,
                peak_fan2_c=fan2.metrics.peak_temp_c,
                peak_fantec2_c=fantec2.metrics.peak_temp_c,
                fan1_power_w=system.fan.power_w(1),
                fan2_power_w=system.fan.power_w(2),
                tec_power_w=float((tr.p_tec_w * tr.dt_s).sum() / dur),
            )
        )
    return rows


def format_figure4(rows: list[Figure4Row]) -> str:
    """Render the Fig. 4 comparison."""
    table = [
        [
            r.workload,
            r.threads,
            r.t_threshold_c,
            r.peak_fan1_c,
            r.peak_fan2_c,
            r.peak_fantec2_c,
            r.fan2_power_w + r.tec_power_w,
        ]
        for r in rows
    ]
    header = (
        "Figure 4 — peak temperature: Fan-only@L1 vs Fan-only@L2 vs "
        "Fan+TEC@L2;\ncooling power: fan L1 = "
        f"{rows[0].fan1_power_w:.1f} W vs fan L2 + TEC (last column)"
    )
    return render_table(
        ["workload", "thr", "T_th", "fan L1", "fan L2", "F+T L2", "cool[W]"],
        table,
        floatfmt="{:.2f}",
        title=header,
    )


@dataclass(frozen=True)
class Figure4Series:
    """Peak-temperature time series for one workload (Fig. 4(a)/(b))."""

    workload: str
    threads: int
    t_threshold_c: float
    time_ms: np.ndarray
    fan1_peak_c: np.ndarray  # Fan-only at level 1
    fan2_peak_c: np.ndarray  # Fan-only at level 2
    fantec2_peak_c: np.ndarray  # Fan+TEC at level 2


def figure4_timeseries(
    system: CMPSystem, workload: str = "cholesky", threads: int = 16
) -> Figure4Series:
    """The temperature-vs-time traces Fig. 4(a)/(b) actually plot."""
    from repro.core.baselines import FanOnlyController

    base = run_base_scenario(system, workload, threads)
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    engine = SimulationEngine(system, problem, EngineConfig(max_time_s=2.0))
    wl = splash2_workload(workload, threads, system.chip)

    def run_at(level, controller):
        state = ActuatorState.initial(
            system.n_tec_devices,
            system.n_cores,
            system.dvfs.max_level,
            fan_level=level,
        )
        return engine.run(
            WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
            controller,
            initial_state=state,
        )

    fan2 = run_at(2, FanOnlyController())
    fantec2 = run_at(2, FanTECController())
    n = min(
        len(base.result.trace),
        len(fan2.trace),
        len(fantec2.trace),
    )
    return Figure4Series(
        workload=workload,
        threads=threads,
        t_threshold_c=base.t_threshold_c,
        time_ms=base.result.trace.time_s[:n] * 1e3,
        fan1_peak_c=base.result.trace.peak_temp_c[:n],
        fan2_peak_c=fan2.trace.peak_temp_c[:n],
        fantec2_peak_c=fantec2.trace.peak_temp_c[:n],
    )


def format_figure4_timeseries(series: Figure4Series, stride: int = 2) -> str:
    """Render the Fig. 4(a)/(b) traces as an aligned table."""
    rows = [
        [
            series.time_ms[i],
            series.fan1_peak_c[i],
            series.fan2_peak_c[i],
            series.fantec2_peak_c[i],
        ]
        for i in range(0, len(series.time_ms), stride)
    ]
    return render_table(
        ["t [ms]", "fan L1", "fan L2", "Fan+TEC L2"],
        rows,
        floatfmt="{:.2f}",
        title=(
            f"Figure 4(a)/(b) time series — {series.workload}/"
            f"{series.threads}t, T_th = {series.t_threshold_c:.2f} degC"
        ),
    )


# ---------------------------------------------------------------------------
# Figures 5 & 6 — cooling performance and energy efficiency
# ---------------------------------------------------------------------------


@dataclass
class SplashComparison:
    """All policy outcomes for the Figs. 5-6 benchmark set."""

    cases: tuple
    bases: dict = field(default_factory=dict)
    outcomes: dict = field(default_factory=dict)  # (case) -> {policy: ...}

    def policies(self) -> list[str]:
        """Policy names in run order."""
        first = next(iter(self.outcomes.values()))
        return list(first.keys())


def splash_comparison(
    system: CMPSystem,
    cases: tuple = FIGURE_CASES,
    jobs: int | None = None,
) -> SplashComparison:
    """Run the full policy suite on the Figs. 5-6 benchmark set.

    ``jobs`` parallelizes each case's per-policy simulations (see
    :func:`repro.analysis.experiments.run_policy_suite`).
    """
    comp = SplashComparison(cases=cases)
    for workload, threads in cases:
        base, outcomes = run_policy_suite(
            system, workload, threads, jobs=jobs
        )
        comp.bases[(workload, threads)] = base
        comp.outcomes[(workload, threads)] = outcomes
    return comp


def figure5(comp: SplashComparison) -> dict[str, dict[str, float]]:
    """Fig. 5 series: peak temperature (a) and violation rate (b)."""
    out: dict[str, dict[str, float]] = {}
    for (workload, threads), outcomes in comp.outcomes.items():
        label = f"{workload}"
        out[label] = {}
        for name, oc in outcomes.items():
            m = oc.chosen.metrics
            out[label][f"{name}.peak_c"] = m.peak_temp_c
            out[label][f"{name}.violation_pct"] = 100.0 * m.violation_rate
    return out


def format_figure5(comp: SplashComparison) -> str:
    """Render Fig. 5(a) peaks and 5(b) violation rates."""
    policies = comp.policies()
    rows_a, rows_b = [], []
    for (workload, threads), outcomes in comp.outcomes.items():
        base = comp.bases[(workload, threads)]
        rows_a.append(
            [workload, base.t_threshold_c]
            + [outcomes[p].chosen.metrics.peak_temp_c for p in policies]
        )
        rows_b.append(
            [workload]
            + [
                100.0 * outcomes[p].chosen.metrics.violation_rate
                for p in policies
            ]
        )
    a = render_table(
        ["workload", "T_th", *policies],
        rows_a,
        floatfmt="{:.2f}",
        title="Figure 5(a) — peak temperature per policy [degC]",
    )
    b = render_table(
        ["workload", *policies],
        rows_b,
        floatfmt="{:.2f}",
        title="Figure 5(b) — temperature violation rate [%]",
    )
    return a + "\n\n" + b


def figure6(comp: SplashComparison) -> dict[str, dict[str, dict[str, float]]]:
    """Fig. 6 series: normalized delay/power/energy/EDP per benchmark."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for (workload, threads), outcomes in comp.outcomes.items():
        base_metrics = comp.bases[(workload, threads)].result.metrics
        out[workload] = {
            name: oc.chosen.metrics.normalized_to(base_metrics)
            for name, oc in outcomes.items()
        }
    return out


def figure6_averages(comp: SplashComparison) -> dict[str, dict[str, float]]:
    """Across-benchmark averages (the numbers quoted in Sec. V-D)."""
    per_bench = figure6(comp)
    policies = comp.policies()
    metrics = ("delay", "power", "energy", "edp")
    return {
        p: {
            m: float(
                np.mean([per_bench[b][p][m] for b in per_bench])
            )
            for m in metrics
        }
        for p in policies
    }


def format_figure6(comp: SplashComparison) -> str:
    """Render Fig. 6(a-d), per benchmark plus the average."""
    blocks = []
    for bench, series in figure6(comp).items():
        blocks.append(
            render_normalized(
                f"Figure 6 — {bench} (normalized to base scenario)", series
            )
        )
    blocks.append(
        render_normalized(
            "Figure 6 — AVERAGE across benchmarks", figure6_averages(comp)
        )
    )
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Figure 7 — comparison with OFTEC and Oracle
# ---------------------------------------------------------------------------


def format_figure7(normalized: dict[str, dict[str, float]]) -> str:
    """Render Fig. 7 (normalized to OFTEC)."""
    return render_normalized(
        "Figure 7 — 4-core server, normalized to OFTEC", normalized
    )
