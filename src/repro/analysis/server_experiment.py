"""The Sec. V-E comparison: TECfan vs OFTEC vs Oracle vs Oracle-P (Fig. 7).

Protocol (Sec. IV-B / V-E):

* 4-core server platform (i7-3770K-class), Wikipedia trace scaled to a
  48.6% average utilization;
* the first 40 minutes of the trace are cut into four 10-minute pieces,
  one per core; each simulation runs the full 10 minutes so the fan's
  impact stabilizes;
* OFTEC minimizes cooling power (no DVFS), Oracle minimizes EPI by
  exhaustive search, Oracle-P is Oracle constrained to TECfan's exact
  per-interval performance; results are normalized to OFTEC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineConfig, SimulationEngine, SimulationResult
from repro.core.oracle import make_oftec, make_oracle
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.server.platform import ServerPlatform, build_server_system
from repro.server.trace_workload import (
    ServerIPSPredictor,
    ServerTraceRun,
    ServerWorkload,
)
from repro.fleet.traces import cached_wikipedia_trace

#: Lower-level control period for the server loop [s]. Second-scale is
#: ample: the trace moves minute to minute and the die settles in ms.
SERVER_DT_S: float = 1.0

#: Higher-level (fan) period [s].
SERVER_FAN_PERIOD_S: float = 10.0


@dataclass
class ServerComparison:
    """All four policies' results plus the platform."""

    platform: ServerPlatform
    workload: ServerWorkload
    results: dict[str, SimulationResult]

    def normalized_to_oftec(self) -> dict[str, dict[str, float]]:
        """Fig. 7's format: metrics normalized to OFTEC."""
        base = self.results["OFTEC"].metrics
        return {
            name: res.metrics.normalized_to(base)
            for name, res in self.results.items()
        }


def build_server_workload(
    platform: ServerPlatform, seed: int = 2009, minutes: int = 10
) -> ServerWorkload:
    """The paper's trace protocol on the platform's core count.

    The trace comes from the fleet-level memoized cache
    (:func:`repro.fleet.traces.cached_wikipedia_trace`) so repeated
    workload builds — N fleet nodes, pooled workers, the four-policy
    comparison — synthesize the 7-day series once per process.
    """
    trace = cached_wikipedia_trace(seed=seed)
    pieces = [p[: minutes * 60] for p in trace.experiment_pieces()]
    demand = np.stack(pieces[: platform.system.n_cores])
    return ServerWorkload(
        name="wikipedia",
        demand=demand,
        peak_ips=platform.params.peak_ips,
    )


def _engine(
    platform: ServerPlatform, minutes: int, **engine_kwargs
) -> SimulationEngine:
    problem = EnergyProblem(t_threshold_c=platform.t_threshold_c)
    return SimulationEngine(
        platform.system,
        problem,
        EngineConfig(
            dt_lower_s=SERVER_DT_S,
            fan_period_s=SERVER_FAN_PERIOD_S,
            dynamic_fan=True,
            max_time_s=minutes * 60 * 3.0,  # room for backlog drain
            priming_intervals=5,
            **engine_kwargs,
        ),
    )


def _run(
    platform: ServerPlatform,
    workload: ServerWorkload,
    controller,
    minutes: int,
    **engine_kwargs,
) -> SimulationResult:
    system = platform.system
    engine = _engine(platform, minutes, **engine_kwargs)
    controller.reset()
    state = ActuatorState.initial(
        system.n_tec_devices,
        system.n_cores,
        system.dvfs.max_level,
        fan_level=1,
    )
    run = ServerTraceRun(workload, system.chip, ref_freq_ghz=3.5)
    predictor = ServerIPSPredictor(
        dvfs=system.dvfs,
        peak_ips=workload.peak_ips,
        perf=workload.perf,
    )
    return engine.run(
        run, controller, initial_state=state, ips_predictor=predictor
    )


def run_server_comparison(
    seed: int = 2009,
    minutes: int = 10,
    platform: ServerPlatform | None = None,
) -> ServerComparison:
    """Run all four policies on the server setup (Fig. 7).

    ``minutes`` shrinks the trace for quick tests; the paper uses 10.
    """
    if platform is None:
        platform = build_server_system()
    workload = build_server_workload(platform, seed=seed, minutes=minutes)

    results: dict[str, SimulationResult] = {}
    results["OFTEC"] = _run(platform, workload, make_oftec(), minutes)
    results["TECfan"] = _run(
        platform, workload, TECfanController(), minutes
    )
    results["Oracle"] = _run(platform, workload, make_oracle(), minutes)
    # Oracle-P: constrain each decision to TECfan's achieved chip IPS.
    floor = results["TECfan"].trace.ips_chip
    results["Oracle-P"] = _run(
        platform, workload, make_oracle(perf_floor=floor), minutes
    )
    return ServerComparison(
        platform=platform, workload=workload, results=results
    )
