"""Analysis layer: regenerate the paper's tables and figures.

Public API
----------
- :mod:`~repro.analysis.experiments` — base scenario, policy suites,
  TECfan's hierarchical fan-level rule
- :mod:`~repro.analysis.tables` — Table I regeneration
- :mod:`~repro.analysis.figures` — Figs. 4-6 series + formatting
- :mod:`~repro.analysis.server_experiment` — the Fig. 7 comparison
- :mod:`~repro.analysis.report` — text table rendering
"""

from repro.analysis.experiments import (
    BaseScenario,
    PolicyOutcome,
    make_policies,
    run_base_scenario,
    run_policy_suite,
)
from repro.analysis.figures import (
    SplashComparison,
    figure4,
    figure4_timeseries,
    figure5,
    figure6,
    figure6_averages,
    format_figure4,
    format_figure4_timeseries,
    format_figure5,
    format_figure6,
    format_figure7,
    splash_comparison,
)
from repro.analysis.report import render_normalized, render_table
from repro.analysis.sweeps import (
    FanLevelPoint,
    TECDensityPoint,
    fan_level_sweep,
    tec_density_sweep,
)
from repro.analysis.server_experiment import (
    ServerComparison,
    run_server_comparison,
)
from repro.analysis.tables import (
    Table1Comparison,
    format_table1,
    regenerate_table1,
)

__all__ = [
    "BaseScenario",
    "PolicyOutcome",
    "make_policies",
    "run_base_scenario",
    "run_policy_suite",
    "SplashComparison",
    "figure4",
    "figure4_timeseries",
    "figure5",
    "figure6",
    "figure6_averages",
    "format_figure4",
    "format_figure4_timeseries",
    "format_figure5",
    "format_figure6",
    "format_figure7",
    "splash_comparison",
    "render_normalized",
    "render_table",
    "FanLevelPoint",
    "TECDensityPoint",
    "fan_level_sweep",
    "tec_density_sweep",
    "ServerComparison",
    "run_server_comparison",
    "Table1Comparison",
    "format_table1",
    "regenerate_table1",
]
