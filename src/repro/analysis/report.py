"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are formatted with ``floatfmt``; everything else with
    ``str``. Returns the table as one string (callers print it).
    """
    def fmt(cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def render_normalized(
    label: str,
    series: dict[str, dict[str, float]],
    metrics: Sequence[str] = ("delay", "power", "energy", "edp"),
) -> str:
    """Render a {policy: {metric: value}} map (Figs. 6-7 style)."""
    rows = [
        [name] + [values.get(m, float("nan")) for m in metrics]
        for name, values in series.items()
    ]
    return render_table(["policy", *metrics], rows, title=label)
