"""Plain-text table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.3f}",
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Numbers are formatted with ``floatfmt``; everything else with
    ``str``. Returns the table as one string (callers print it).
    """
    def fmt(cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return floatfmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def render_normalized(
    label: str,
    series: dict[str, dict[str, float]],
    metrics: Sequence[str] = ("delay", "power", "energy", "edp"),
) -> str:
    """Render a {policy: {metric: value}} map (Figs. 6-7 style)."""
    rows = [
        [name] + [values.get(m, float("nan")) for m in metrics]
        for name, values in series.items()
    ]
    return render_table(["policy", *metrics], rows, title=label)


def render_profile(profile: dict, title: str = "telemetry profile") -> str:
    """Render one telemetry session's aggregates as summary tables.

    ``profile`` is the grouped form produced by
    :func:`repro.obs.exporters.read_jsonl` or
    :meth:`repro.obs.Telemetry.snapshot`: ``spans`` (name -> stats),
    ``counters``, ``gauges``, and ``histograms``. Sections with no data
    are omitted; the result is the ``repro profile`` output. When the
    session (or the loaded stream's manifest) records dropped events,
    the tables are preceded by a loud truncation warning — a silently
    truncated event stream reads as a complete one otherwise.
    """
    blocks: list[str] = []
    dropped = profile.get("events_dropped") or (
        (profile.get("manifest") or {}).get("events_dropped")
    )
    if dropped:
        blocks.append(
            f"!!! WARNING: {dropped} telemetry event(s) were DROPPED "
            "(event retention cap hit) — aggregates below are complete, "
            "but the event stream is truncated; use the streaming "
            "exporter for long runs !!!"
        )
    spans = profile.get("spans") or {}
    if spans:
        rows = [
            [
                name,
                st["count"],
                st["total_s"] * 1e3,
                st["mean_s"] * 1e3,
                st.get("self_s", 0.0) * 1e3,
                st["max_s"] * 1e3,
            ]
            for name, st in sorted(spans.items())
        ]
        blocks.append(
            render_table(
                ["span", "count", "total_ms", "mean_ms", "self_ms", "max_ms"],
                rows,
                title=f"{title} — spans",
            )
        )
    counters = profile.get("counters") or {}
    gauges = profile.get("gauges") or {}
    scalars = [["counter", name, value] for name, value in sorted(counters.items())]
    scalars += [["gauge", name, value] for name, value in sorted(gauges.items())]
    if scalars:
        blocks.append(
            render_table(
                ["kind", "metric", "value"],
                scalars,
                title=f"{title} — counters/gauges",
            )
        )
    histograms = profile.get("histograms") or {}
    if histograms:
        rows = [
            [name, h["count"], h["mean"], h["min"], h["max"],
             h["counts"][-1]]
            for name, h in sorted(histograms.items())
        ]
        blocks.append(
            render_table(
                ["histogram", "count", "mean", "min", "max", "overflow"],
                rows,
                title=f"{title} — histograms",
            )
        )
    if not blocks:
        return f"{title}: (no telemetry recorded)"
    return "\n\n".join(blocks)
