"""Standardized experiment flows shared by benchmarks, tests, examples.

The paper's SPLASH-2 methodology (Secs. IV-C, V-B..V-D):

1. **Base scenario** — all cores at peak DVFS, fan at its highest speed,
   all TECs off. Its execution time / processor power / peak temperature
   regenerate Table I, and its peak temperature becomes the threshold
   ``T_th`` for every policy run of that workload.
2. **Policy runs** — each policy is simulated at every fan speed level;
   the slowest level that keeps the violation rate within tolerance is
   selected (:func:`repro.core.engine.run_fan_sweep`).

:func:`run_base_scenario` and :func:`run_policy_suite` encode those two
steps so every figure regenerates from the same flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import (
    DVFSTECController,
    FanDVFSController,
    FanOnlyController,
    FanTECController,
)
from repro.core.controller import Controller
from repro.core.engine import (
    EngineConfig,
    SimulationEngine,
    SimulationResult,
    run_fan_sweep,
)
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem, build_system
from repro.core.tecfan import TECfanController
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun

#: Default lower-level control period (Sec. III-D).
DT_LOWER_S: float = 2e-3

#: Generous wall-clock cap per simulated run [simulated seconds]; the
#: SPLASH-2 runs finish in tens of milliseconds even fully throttled.
MAX_SIM_TIME_S: float = 2.0


def make_policies() -> list[Controller]:
    """The paper's policy set for Figs. 5-6, in plotting order."""
    return [
        FanOnlyController(),
        FanTECController(),
        FanDVFSController(),
        DVFSTECController(),
        TECfanController(),
    ]


@dataclass
class BaseScenario:
    """Outcome of the base-scenario run for one (workload, threads)."""

    workload: str
    threads: int
    result: SimulationResult
    #: The measured base peak, which becomes T_th (Sec. V-B).
    t_threshold_c: float

    @property
    def time_ms(self) -> float:
        """Execution time [ms] (Table I column)."""
        return self.result.metrics.execution_time_s * 1e3

    @property
    def processor_power_w(self) -> float:
        """Average processor (cores-only) power [W] (Table I column).

        Table I comes from SESC/Wattch and excludes the cooling system;
        subtract the fan's constant draw from the recorded chip power.
        """
        trace = self.result.trace
        fan_energy = float((trace.p_fan_w * trace.dt_s).sum())
        t = float(trace.dt_s.sum())
        return (trace.energy_j() - fan_energy) / t


def run_base_scenario(
    system: CMPSystem,
    workload: str,
    threads: int,
    dt_s: float = DT_LOWER_S,
) -> BaseScenario:
    """Run the base scenario and derive the temperature threshold."""
    wl = splash2_workload(workload, threads, system.chip)
    # The threshold only gates the metrics here; use a placeholder that
    # the base scenario never violates.
    problem = EnergyProblem(t_threshold_c=125.0)
    engine = SimulationEngine(
        system, problem, EngineConfig(dt_lower_s=dt_s, max_time_s=MAX_SIM_TIME_S)
    )
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, fan_level=1
    )
    run = WorkloadRun(wl, system.chip, REF_FREQ_GHZ)
    result = engine.run(run, FanOnlyController(), initial_state=state)
    return BaseScenario(
        workload=workload,
        threads=threads,
        result=result,
        t_threshold_c=result.metrics.peak_temp_c,
    )


@dataclass
class PolicyOutcome:
    """One policy's selected run plus its full fan sweep."""

    policy: str
    chosen: SimulationResult
    sweep: list = field(default_factory=list)


def _policy_suite_task(common: tuple, payload: tuple) -> tuple:
    """One policy's simulation of a suite (module-level: spawn-picklable).

    ``common`` is ``(engine, wl, problem)`` — the pool's shared context,
    unpickled once per worker so the engine's thermal caches stay warm
    across the policies a worker runs. ``payload`` is
    ``(policy, violation_tolerance)``. The ``make_run`` closure a fan
    sweep needs is rebuilt here, inside the worker, because closures do
    not pickle.
    """
    engine, wl, problem = common
    policy, violation_tolerance = payload
    if isinstance(policy, TECfanController):
        return run_tecfan_with_own_fan_rule(engine, wl, policy, problem)
    system = engine.system
    return run_fan_sweep(
        engine,
        lambda: WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
        policy,
        violation_tolerance=violation_tolerance,
    )


def run_policy_suite(
    system: CMPSystem,
    workload: str,
    threads: int,
    policies: list[Controller] | None = None,
    dt_s: float = DT_LOWER_S,
    violation_tolerance: float = 0.10,
    base: BaseScenario | None = None,
    jobs: int | None = None,
) -> tuple[BaseScenario, dict[str, PolicyOutcome]]:
    """Base scenario + fan-swept policy runs for one workload case.

    ``jobs`` fans the per-policy simulations out across worker processes
    (see :func:`repro.parallel.parallel_map`); each policy's runs are
    independent, so the outcomes match serial execution exactly.
    """
    from repro.parallel import parallel_map

    if base is None:
        base = run_base_scenario(system, workload, threads, dt_s)
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    engine = SimulationEngine(
        system, problem, EngineConfig(dt_lower_s=dt_s, max_time_s=MAX_SIM_TIME_S)
    )
    wl = splash2_workload(workload, threads, system.chip)
    policy_list = list(policies if policies is not None else make_policies())
    # Fan-only *is* the base scenario (Sec. V-A): the fastest fan,
    # because any slower level already violates without knobs.
    simulated = [
        p for p in policy_list if not isinstance(p, FanOnlyController)
    ]
    payloads = [(policy, violation_tolerance) for policy in simulated]
    pairs = parallel_map(
        _policy_suite_task, payloads, jobs, context=(engine, wl, problem)
    )
    by_name = {p.name: pair for p, pair in zip(simulated, pairs)}
    outcomes: dict[str, PolicyOutcome] = {}
    for policy in policy_list:
        if isinstance(policy, FanOnlyController):
            outcomes[policy.name] = PolicyOutcome(
                policy=policy.name,
                chosen=base.result,
                sweep=[base.result.metrics],
            )
        else:
            chosen, sweep = by_name[policy.name]
            outcomes[policy.name] = PolicyOutcome(
                policy=policy.name, chosen=chosen, sweep=sweep
            )
    return base, outcomes


def run_tecfan_with_own_fan_rule(
    engine: SimulationEngine,
    wl,
    policy: TECfanController,
    problem: EnergyProblem,
    max_rounds: int = 4,
    violation_tol: float = 0.05,
    delay_tol: float = 0.05,
) -> tuple[SimulationResult, list]:
    """Fixed-point of TECfan's *own* higher-level fan rule (Sec. III-D).

    The benchmarks are far shorter than the heat sink's 15-30 s time
    constant, so — exactly like the paper — the fan level cannot be
    adapted inside a run. Instead we iterate the hierarchy at run
    granularity: simulate at the current level, feed the run's average
    component power and average (fractional) TEC state to the higher
    level's estimate, and move one level at a time until it reaches a
    fixed point. Crucially, the higher level evaluates the chip's
    *current* power draw (performance priority keeps DVFS near the top);
    it does not search the throttled configurations an offline
    energy-minimizing sweep would find — that is the hierarchical
    decomposition the paper describes.
    """
    system = engine.system
    level = 1
    history: list = []
    seen: dict[int, SimulationResult] = {}
    result = None
    # Performance reference: critical-path time at the top DVFS level.
    probe = WorkloadRun(wl, system.chip, REF_FREQ_GHZ)
    ideal_time_s = probe.time_to_completion_s(
        system.dvfs.frequency_ghz(
            np.full(system.n_cores, system.dvfs.max_level)
        )
    )
    for _ in range(max_rounds + system.fan.n_levels):
        if level in seen:
            result = seen[level]
            break
        policy.reset()
        state = ActuatorState.initial(
            system.n_tec_devices,
            system.n_cores,
            system.dvfs.max_level,
            fan_level=level,
        )
        result = engine.run(
            WorkloadRun(wl, system.chip, REF_FREQ_GHZ),
            policy,
            initial_state=state,
        )
        seen[level] = result
        history.append(result.metrics)
        # Performance priority: the fan only stays slow / slows further
        # if the lower level is holding the threshold *without* leaning
        # on DVFS throttling (Sec. III-D's division of labour).
        delay_ratio = result.metrics.execution_time_s / ideal_time_s
        struggling = (
            result.metrics.violation_rate > violation_tol
            or delay_ratio > 1.0 + delay_tol
        )
        if struggling:
            if level <= 1:
                break
            level -= 1
            continue
        # Higher-level estimate from the run's true averages (Sec. III-D:
        # "the average power ... and the average TEC on/off state", which
        # "means we can have intermediate state"), counting on TEC assist
        # for the would-be hot spots.
        slower_ok = level < system.fan.n_levels and (
            fan_level_feasible_with_tec_assist(
                system,
                result.avg_p_components_w,
                level + 1,
                problem,
                start_tec=result.avg_tec,
            )
        )
        if slower_ok:
            level += 1
            continue
        break
    return result, history


def fan_level_feasible_with_tec_assist(
    system: CMPSystem,
    avg_p_components_w: np.ndarray,
    fan_level: int,
    problem: EnergyProblem,
    start_tec: np.ndarray | None = None,
) -> bool:
    """Higher-level feasibility of a fan level, counting on TEC help.

    The whole point of the hierarchy (Sec. III) is that the fan "no
    longer needs to be set at a high speed to cool down local hot
    spots" because the lower level's TECs will absorb them. The fan
    loop therefore asks: at this level and the period's average power,
    can the steady state be brought below T_th by switching TECs on
    over whatever runs hot? (DVFS is deliberately *not* consulted —
    performance has priority, so the fan never banks on throttling.)
    """
    from repro import units as _units

    tec = (
        np.clip(np.asarray(start_tec, dtype=float), 0.0, 1.0).copy()
        if start_tec is not None
        else np.zeros(system.n_tec_devices)
    )
    for _ in range(system.n_tec_devices):
        t = system.solver.solve(avg_p_components_w, fan_level, tec)
        temps_c = _units.k_to_c(t[system.nodes.component_slice])
        if problem.satisfied(float(temps_c.max())):
            return True
        hot = np.flatnonzero(temps_c > problem.t_threshold_c)
        turned_on = False
        for ci in hot:
            for dev in system.tec.devices_over_component(int(ci)):
                if tec[dev] < 1.0:
                    tec[dev] = 1.0
                    turned_on = True
        if not turned_on:
            return False
    return False


def default_system() -> CMPSystem:
    """The paper's 16-core platform with calibrated defaults."""
    return build_system()
