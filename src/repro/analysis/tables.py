"""Table I regeneration (base-scenario measurements vs published rows)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import BaseScenario, run_base_scenario
from repro.analysis.report import render_table
from repro.core.system import CMPSystem
from repro.perf.splash2 import TABLE1_CASES, Table1Row, table1_row


@dataclass(frozen=True)
class Table1Comparison:
    """One regenerated row next to the published one."""

    published: Table1Row
    measured_time_ms: float
    measured_power_w: float
    measured_peak_c: float

    @property
    def time_error_pct(self) -> float:
        """Relative execution-time error [%]."""
        return 100.0 * (
            self.measured_time_ms / self.published.time_ms - 1.0
        )

    @property
    def power_error_w(self) -> float:
        """Absolute power error [W]."""
        return self.measured_power_w - self.published.power_w

    @property
    def temp_error_c(self) -> float:
        """Absolute peak-temperature error [degC]."""
        return self.measured_peak_c - self.published.peak_temp_c


def regenerate_table1(
    system: CMPSystem,
    cases: tuple = TABLE1_CASES,
) -> list[Table1Comparison]:
    """Run the base scenario for every Table I case."""
    out: list[Table1Comparison] = []
    for workload, threads in cases:
        base: BaseScenario = run_base_scenario(system, workload, threads)
        out.append(
            Table1Comparison(
                published=table1_row(workload, threads),
                measured_time_ms=base.time_ms,
                measured_power_w=base.processor_power_w,
                measured_peak_c=base.t_threshold_c,
            )
        )
    return out


def format_table1(comparisons: list[Table1Comparison]) -> str:
    """Render the regenerated Table I next to the published values."""
    rows = []
    for c in comparisons:
        p = c.published
        rows.append(
            [
                p.workload,
                p.threads,
                f"{p.instructions/1e6:.0f}M",
                c.measured_time_ms,
                p.time_ms,
                c.measured_power_w,
                p.power_w,
                c.measured_peak_c,
                p.peak_temp_c,
            ]
        )
    return render_table(
        [
            "workload",
            "thr",
            "inst",
            "time[ms]",
            "paper",
            "power[W]",
            "paper",
            "peak[C]",
            "paper",
        ],
        rows,
        floatfmt="{:.2f}",
        title="Table I — base scenario, measured vs published",
    )
