"""Persistent worker-pool fan-out for experiment sweeps.

Sweeps, policy suites and fault matrices run many *independent*
simulations — one per fan level, one per policy, one per scenario. Each
is CPU-bound in LAPACK/SuperLU calls, so processes (not threads) are the
right isolation. Historically every ``parallel_map`` call paid the full
cold-start bill: spawned interpreters re-imported numpy/scipy, every
task received its own pickled engine whose ``PropagatorCache``/LU/
Woodbury structures arrive empty (SuperLU objects cannot pickle), and
full temperature/power traces were pickled back through a pipe. For
sub-second tasks that made ``--jobs`` a *slowdown* (the recorded 0.086x
fan-sweep baseline).

The runtime here is a **persistent process pool** (:class:`WorkerPool`)
with a different lifecycle and cache-reuse contract:

* **Workers live across a whole sweep** (and across ``map`` calls when
  the pool is shared): one spawn + import per worker, amortized over
  every task it runs. ``spawn`` start method always — fork would
  duplicate parent state (telemetry sessions, factorization caches) and
  is unavailable on some platforms.
* **Warm shared context**: a task function may be split into
  ``fn(context, payload)``. The context (typically the engine + system,
  whose thermal caches key on the quantized actuator keys of
  :mod:`repro.thermal.keys`) ships to each worker **once** and is
  reused, object-identical, by every subsequent task on that worker —
  so propagator/LU/Woodbury caches stay warm between tasks exactly as
  they do across a serial loop. Context mutations must therefore be
  result-invariant (memoization only); that is the same contract the
  serial path already imposes, which shares one context object across
  all tasks.
* **Shared-memory results**: workers serialize results with pickle
  protocol 5; the out-of-band numpy buffers (temperature/power traces)
  travel through :mod:`multiprocessing.shared_memory` blocks instead of
  being pickled through the pipe when they exceed
  :data:`SHM_MIN_BYTES`. The parent copies them out into writable
  buffers and unlinks the block, so reconstructed results are
  bit-identical and fully owned. ``parallel.shm_bytes`` accounts the
  bytes moved this way.
* Results come back **in payload order** regardless of completion
  order, and serial (``jobs=1``) results are bit-identical to pooled
  results — the drop-in-replacement contract every driver relies on.
* Worker exceptions are captured as formatted tracebacks and re-raised
  in the parent as one :class:`ParallelExecutionError` naming every
  failing task — a custom exception type from a worker may itself fail
  to unpickle, a traceback string never does.
* ``jobs=None`` or ``jobs=1`` runs serially in-process (no pool, no
  pickling) so the flag can be threaded through unconditionally.
* Resilience is built into the pool scheduler: ``timeout_s`` kills an
  attempt at its deadline and **replaces the worker** (the pool keeps
  its capacity; other tasks are unaffected), ``retries`` re-dispatches
  failed/timed-out attempts with exponential backoff, and
  ``on_error="collect"`` returns :class:`TaskFailure` placeholders so a
  100-run sweep survives one bad point. ``parallel.retries`` and
  ``parallel.timeouts`` counters make degraded sweeps observable.

Telemetry: when the parent has an active session, each worker keeps one
long-lived session object reused across tasks
(:class:`repro.obs.merge.PersistentWorkerSession`) and ships per-task
aggregate captures back alongside results; the parent folds them in
deterministically, in task-index order, under ``worker=<task index>``
labels (:mod:`repro.obs.merge`). A ``--jobs N`` sweep's merged counters
equal the serial run's exactly for every deterministic counter. Worker
*events* are not shipped (aggregates only); they are accounted in
``parallel.worker_events_dropped``, and each merged capture increments
``parallel.worker_sessions``. The pool itself counts
``parallel.pool_tasks`` (tasks settled by a pool),
``parallel.worker_cache_warm_hits`` (tasks that found their context
already materialized on the worker) and ``parallel.shm_bytes``.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import multiprocessing.connection
import os
import pickle
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exceptions import ParallelExecutionError
from repro.obs import telemetry as obs

__all__ = [
    "ParallelExecutionError",
    "TaskFailure",
    "WorkerPool",
    "parallel_map",
    "plan_shards",
    "resolve_jobs",
]

#: Environment override for the default worker count (CLI ``--jobs 0``
#: and drivers called with ``jobs=0`` resolve through this, then the
#: process's CPU affinity mask).
JOBS_ENV_VAR = "TECFAN_JOBS"

#: Environment defaults for the resilience knobs, so deep drivers that
#: only thread ``jobs`` through still honor a sweep-wide policy (the CLI
#: ``--job-timeout-s`` / ``--job-retries`` flags set these).
TIMEOUT_ENV_VAR = "TECFAN_JOB_TIMEOUT_S"
RETRIES_ENV_VAR = "TECFAN_JOB_RETRIES"

#: Results whose out-of-band numpy payload reaches this many bytes move
#: through a shared-memory block instead of the result pipe.
SHM_MIN_BYTES = 1 << 16


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one task under ``on_error="collect"``.

    Placed at the task's index in the result list so callers can keep
    the surviving results and report the rest. ``kind`` is ``"error"``
    (the task raised), ``"timeout"`` (every attempt exceeded the
    deadline) or ``"died"`` (the worker process vanished mid-task).
    """

    index: int
    kind: str
    detail: str
    attempts: int

    def __bool__(self) -> bool:  # `.filter`-style truthiness: failed
        return False


def _resolve_timeout(timeout_s: float | None) -> float | None:
    if timeout_s is not None:
        return float(timeout_s)
    env = os.environ.get(TIMEOUT_ENV_VAR)
    if env is not None and env.strip():
        value = float(env)
        return value if value > 0 else None
    return None


def _resolve_retries(retries: int | None) -> int:
    if retries is not None:
        return max(0, int(retries))
    env = os.environ.get(RETRIES_ENV_VAR)
    if env is not None and env.strip():
        return max(0, int(env))
    return 0


def available_cpus() -> int:
    """CPUs this *process* may use: the affinity mask where the OS has
    one (cgroup/container-limited CI included), else ``os.cpu_count()``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux platforms
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to an effective worker count.

    ``None`` or ``1`` mean serial (returns 1). ``0`` means "auto": the
    ``TECFAN_JOBS`` environment variable if set, else the process's CPU
    affinity mask (:func:`available_cpus` — not raw ``os.cpu_count()``,
    so a cgroup-limited container never oversubscribes the pool).
    Negative values are a configuration error.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ParallelExecutionError([(-1, f"invalid jobs value {jobs}")])
    if jobs == 0:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None and env.strip():
            return max(1, int(env))
        return available_cpus()
    return jobs


def plan_shards(n_items: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard plan covering ``n_items``.

    The naive ``n_items // n_shards`` split silently drops the trailing
    remainder (or double-counts it when callers pad with a ``+1``-sized
    last shard), which is exactly the bug class this helper removes:

    * every index in ``range(n_items)`` appears in exactly one shard;
    * shards are contiguous, in order, and never empty;
    * shard sizes differ by at most one (the first ``n_items %
      n_shards`` shards carry the extra item);
    * when ``n_shards > n_items`` only ``n_items`` shards are returned —
      never zero-length placeholders that would dispatch empty tasks.

    ``n_items == 0`` yields an empty plan. The plan is a pure function
    of its arguments, so serial and pooled fleet runs that fix the shard
    count see identical node groupings.
    """
    n_items = int(n_items)
    n_shards = int(n_shards)
    if n_items < 0:
        raise ParallelExecutionError([(-1, f"invalid item count {n_items}")])
    if n_shards < 1:
        raise ParallelExecutionError([(-1, f"invalid shard count {n_shards}")])
    if n_items == 0:
        return []
    n_shards = min(n_shards, n_items)
    base, extra = divmod(n_items, n_shards)
    plan = []
    start = 0
    for shard in range(n_shards):
        stop = start + base + (1 if shard < extra else 0)
        plan.append((start, stop))
        start = stop
    return plan


# ----------------------------------------------------------------------
# Result transport: pickle-5 out-of-band buffers, shared memory for bulk
# ----------------------------------------------------------------------
def _encode_result(value) -> tuple[tuple, int]:
    """Worker-side: serialize ``value``; bulk arrays go to shared memory.

    Returns ``(descriptor, shm_bytes)``. The descriptor is either
    ``("inline", data, [raw bytes...])`` or
    ``("shm", name, [lengths...], data)`` where ``data`` is the
    protocol-5 pickle whose out-of-band buffers were extracted.
    """
    buffers: list = []
    data = pickle.dumps(value, protocol=5, buffer_callback=buffers.append)
    raws = [b.raw() for b in buffers]
    total = sum(len(r) for r in raws)
    if total >= SHM_MIN_BYTES:
        shm = _create_shm(total)
        if shm is not None:
            offset = 0
            lengths = []
            for r in raws:
                n = len(r)
                shm.buf[offset : offset + n] = r
                lengths.append(n)
                offset += n
            name = shm.name
            shm.close()
            return ("shm", name, lengths, data), total
    return ("inline", data, [bytes(r) for r in raws]), 0


def _create_shm(size: int):
    """Create a shared-memory block the *parent* will own and unlink.

    Returns ``None`` when shared memory is unavailable (the caller
    falls back to inline pipe transport). The creating worker
    unregisters the block from its resource tracker — ownership
    transfers to the parent, which unlinks after copying out.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - always present on CPython
        return None
    try:
        shm = shared_memory.SharedMemory(create=True, size=max(1, size))
    except OSError:  # /dev/shm missing or full: degrade gracefully
        return None
    try:  # the parent takes ownership; silence this process's tracker
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return shm


def _unlink_shm(name: str) -> bool:
    """Best-effort unlink of a shared-memory block by name.

    Used on the leak-window paths: a worker whose reply could not be
    sent, or a parent retiring a worker whose reply (with its shm
    descriptor) was never read. Returns True when a block was actually
    reclaimed.
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
    except Exception:
        return False
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        return False
    return True


def _drain_and_reclaim(conn) -> int:
    """Read unconsumed replies off a worker pipe; unlink their blocks.

    A worker that finished a task the parent never collected (retired
    on timeout-kill of a *different* in-flight attempt, pool shutdown,
    KeyboardInterrupt mid-``map``) leaves its reply — possibly carrying
    a shared-memory descriptor the parent was supposed to own — sitting
    in the pipe. Draining before close turns that orphaned segment back
    into accounted cleanup (``parallel.shm_leaks_reclaimed``).
    """
    reclaimed = 0
    try:
        while conn.poll(0):
            msg = conn.recv()
            if (
                isinstance(msg, tuple)
                and msg
                and msg[0] == "ok"
                and isinstance(msg[2], tuple)
                and msg[2][0] == "shm"
                and _unlink_shm(msg[2][1])
            ):
                reclaimed += 1
    except (EOFError, OSError):
        pass
    if reclaimed:
        obs.incr("parallel.shm_leaks_reclaimed", reclaimed)
    return reclaimed


def _decode_result(desc: tuple):
    """Parent-side inverse of :func:`_encode_result`.

    Out-of-band buffers are copied into parent-owned ``bytearray``
    storage before unpickling, so reconstructed arrays are writable and
    independent of the (immediately unlinked) shared-memory block.
    """
    kind = desc[0]
    if kind == "inline":
        _, data, raws = desc
        return pickle.loads(data, buffers=[bytearray(r) for r in raws])
    _, name, lengths, data = desc
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        buffers = []
        offset = 0
        for n in lengths:
            buffers.append(bytearray(shm.buf[offset : offset + n]))
            offset += n
        return pickle.loads(data, buffers=buffers)
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


# ----------------------------------------------------------------------
# Worker process body
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:
    """Long-lived worker loop: recv tasks, keep context + session warm.

    Protocol (parent -> worker):

    - ``("ctx", token, blob)`` — install a shared context (unpickled
      once, reused by every subsequent task carrying ``token``);
    - ``("task", task_id, fn, payload, token, capture)`` — run one task
      (``fn(context, payload)`` when ``token`` is not None, else
      ``fn(payload)``); ``capture`` asks for a telemetry capture;
    - ``("stop",)`` — exit cleanly.

    Worker -> parent:

    - ``("ok", task_id, descriptor, wtel, warm, shm_bytes)``;
    - ``("err", task_id, traceback_text, warm)``.
    """
    from repro.obs.merge import PersistentWorkerSession

    session = PersistentWorkerSession()
    ctx_token = None
    ctx_obj = None
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        op = msg[0]
        if op == "stop":
            break
        if op == "ctx":
            ctx_token = msg[1]
            ctx_obj = pickle.loads(msg[2])
            continue
        _, task_id, fn, payload, token, capture = msg
        warm = token is not None and token == ctx_token
        try:
            if token is not None and token != ctx_token:
                raise RuntimeError(
                    f"pool protocol error: context {token} not installed"
                )
            if token is not None:
                bound_fn, bound_payload = fn, payload

                def call(f=bound_fn, p=bound_payload, c=ctx_obj):
                    return f(c, p)

            else:

                def call(f=fn, p=payload):
                    return f(p)

            if capture:
                result, wtel = session.run(call)
            else:
                result, wtel = call(), None
            desc, shm_bytes = _encode_result(result)
            reply = ("ok", task_id, desc, wtel, warm, shm_bytes)
        except BaseException:
            reply = ("err", task_id, traceback.format_exc(), warm)
        try:
            conn.send(reply)
        except BaseException:
            # Parent went away (or the reply is unsendable): the shm
            # block whose ownership was about to transfer would be
            # orphaned — reclaim it here, where its name is still known.
            if reply[0] == "ok" and reply[2][0] == "shm":
                _unlink_shm(reply[2][1])
            break
    conn.close()


def _prime_task(_payload) -> None:
    """No-op task used by :meth:`WorkerPool.prime` to force imports."""
    return None


def _merge_worker(index: int, wtel) -> None:
    """Fold one worker capture into the parent's active session."""
    tel = obs.get_telemetry()
    if tel is None or wtel is None:
        return
    tel.merge(wtel, label=f"worker={index}")
    tel.metrics.counter("parallel.worker_sessions").inc(1)
    tel.metrics.counter("parallel.worker_events_dropped").inc(
        wtel.events_discarded
    )


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
@dataclass
class _PoolWorker:
    """One live worker process and its dispatch state."""

    proc: mp.process.BaseProcess
    conn: mp.connection.Connection
    #: Context token currently materialized in the worker.
    ctx_token: int | None = None
    #: In-flight dispatch: ``(task_id, index, attempt, deadline)``.
    task: tuple | None = field(default=None)


class WorkerPool:
    """Persistent spawn-process pool with warm context reuse.

    Workers are spawned lazily (at most ``jobs``), live until
    :meth:`close`, and keep both their interpreter (imports) and any
    installed shared context — with all its thermal caches — warm
    between tasks and between :meth:`map` calls. Use as a context
    manager, or pass an instance to :func:`parallel_map` via ``pool=``
    to share one fleet across several batches::

        with WorkerPool(16) as pool:
            pool.prime()                     # spawn + import now
            a = pool.map(fn, batch_a, context=engine_a)
            b = pool.map(fn, batch_b, context=engine_b)
    """

    def __init__(self, jobs: int = 0):
        self.jobs = resolve_jobs(jobs if jobs != 1 else 1)
        self._mp = mp.get_context("spawn")
        self._idle: list[_PoolWorker] = []
        self._busy: list[_PoolWorker] = []
        self._ctx_tokens = itertools.count(1)
        self._task_ids = itertools.count()
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def n_workers(self) -> int:
        """Live worker processes (idle + busy)."""
        return len(self._idle) + len(self._busy)

    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        proc = self._mp.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _PoolWorker(proc=proc, conn=parent_conn)

    def _ensure_workers(self, want: int) -> None:
        while self.n_workers < min(want, self.jobs):
            self._idle.append(self._spawn())

    def _retire(self, worker: _PoolWorker, kill: bool = False) -> None:
        """Remove a worker from the pool (killing it if asked).

        A reply sitting unread in the pipe may carry a shared-memory
        descriptor whose block the parent now owns; it is drained and
        unlinked before the pipe closes, so retiring a worker never
        strands a segment.
        """
        if worker in self._busy:
            self._busy.remove(worker)
        if worker in self._idle:
            self._idle.remove(worker)
        if kill:
            worker.proc.kill()
        worker.proc.join()
        if not worker.conn.closed:
            _drain_and_reclaim(worker.conn)
            worker.conn.close()

    def prime(self) -> int:
        """Spawn every worker now and round-trip a no-op task through
        each, so interpreter start-up and package imports are paid
        before the first real batch. Returns the worker count."""
        self._ensure_workers(self.jobs)
        self.map(_prime_task, list(range(self.n_workers)), capture=False)
        return self.n_workers

    def close(self) -> None:
        """Stop every worker. Idle workers get a polite stop and a
        join-with-timeout; stragglers (and any still-busy worker) are
        killed. Pending replies are drained and their shared-memory
        blocks unlinked, and each pipe closes exactly once — so a
        mid-sweep ``KeyboardInterrupt`` arriving through ``__exit__``
        leaves no orphaned segments and no ``resource_tracker``
        warnings. Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        busy = list(self._busy)
        idle = list(self._idle)
        self._busy.clear()
        self._idle.clear()
        for worker in busy:
            worker.proc.kill()
        for worker in idle:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in busy + idle:
            worker.proc.join(timeout=5.0)
            if worker.proc.is_alive():  # pragma: no cover - defensive
                worker.proc.kill()
                worker.proc.join()
            if not worker.conn.closed:
                _drain_and_reclaim(worker.conn)
                worker.conn.close()

    # -- scheduling ----------------------------------------------------
    def map(
        self,
        fn: Callable,
        payloads: Sequence,
        *,
        context=None,
        timeout_s: float | None = None,
        retries: int | None = None,
        backoff_s: float = 0.1,
        on_error: str = "raise",
        capture: bool | None = None,
        on_result: Callable | None = None,
        status=None,
    ) -> list:
        """``[fn(p) for p in payloads]`` (or ``fn(context, p)``) across
        the pool's workers; results in payload order.

        See :func:`parallel_map` for parameter semantics — this is its
        pooled engine. ``capture`` overrides the telemetry-capture
        decision (default: capture iff the parent has a session).
        ``on_result(index, value)`` fires the moment each task's result
        is decoded — in *completion* order, not payload order — so a
        journal can persist progress before the batch finishes.

        ``status`` is an optional
        :class:`repro.obs.live.PoolStatusReporter`; its heartbeats
        piggyback the pipes the scheduler already watches (every
        dispatch and every reply feeds the per-worker rows — no extra
        protocol messages), and the scheduler's wait is capped at the
        status cadence so a heartbeat lands even while every worker is
        deep in a long task.
        """
        if self._closed:
            raise ParallelExecutionError([(-1, "pool is closed")])
        if on_error not in ("raise", "collect"):
            raise ParallelExecutionError(
                [(-1, f"invalid on_error value {on_error!r}")]
            )
        payloads = list(payloads)
        timeout_s = _resolve_timeout(timeout_s)
        retries = _resolve_retries(retries)
        if capture is None:
            capture = obs.get_telemetry() is not None

        token = None
        ctx_blob = None
        if context is not None:
            token = next(self._ctx_tokens)
            ctx_blob = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)

        results: list = [None] * len(payloads)
        failures: list[tuple[int, str]] = []
        # Captures keyed by task index: completion order is
        # nondeterministic, so merging is deferred to task-index order.
        captured: dict[int, object] = {}
        # (index, attempt, not_before) — FIFO except for backoff holds.
        queue: deque = deque((i, 0, 0.0) for i in range(len(payloads)))
        pending = len(payloads)

        def settle(index: int, attempt: int, kind: str, detail: str) -> None:
            """A failed attempt: schedule a retry or record the failure."""
            nonlocal pending
            if attempt < retries:
                obs.incr("parallel.retries")
                if status is not None:
                    status.note_retry()
                not_before = time.monotonic() + backoff_s * (2.0**attempt)
                queue.append((index, attempt + 1, not_before))
                return
            pending -= 1
            obs.incr("parallel.pool_tasks")
            if status is not None:
                status.note_failure(kind)
            if on_error == "collect":
                results[index] = TaskFailure(
                    index=index,
                    kind=kind,
                    detail=detail,
                    attempts=attempt + 1,
                )
            else:
                failures.append((index, f"[{kind}] {detail}"))

        def dispatch(worker: _PoolWorker, index: int, attempt: int) -> bool:
            """Send one task; False (and re-queue) if the worker died."""
            try:
                if token is not None and worker.ctx_token != token:
                    worker.conn.send(("ctx", token, ctx_blob))
                    worker.ctx_token = token
                task_id = next(self._task_ids)
                worker.conn.send(
                    ("task", task_id, fn, payloads[index], token, capture)
                )
            except (BrokenPipeError, OSError):
                if status is not None:
                    status.worker_retired(worker.proc.pid)
                self._retire(worker, kill=True)
                queue.appendleft((index, attempt, 0.0))
                return False
            worker.task = (
                task_id,
                index,
                attempt,
                time.monotonic() + timeout_s if timeout_s is not None else None,
            )
            self._busy.append(worker)
            if status is not None:
                status.worker_dispatch(worker.proc.pid, index)
            return True

        try:
            while pending > 0:
                self._ensure_workers(len(queue) + len(self._busy))
                now = time.monotonic()
                held = []
                while queue and self._idle:
                    index, attempt, not_before = queue.popleft()
                    if not_before > now:
                        held.append((index, attempt, not_before))
                        continue
                    dispatch(self._idle.pop(), index, attempt)
                queue.extend(held)

                if status is not None:
                    status.maybe_report(
                        in_flight=len(self._busy), queued=len(queue)
                    )

                if not self._busy:
                    if not queue:  # pragma: no cover - settled via retire
                        break
                    # Everything pending is in a backoff hold.
                    next_up = min(nb for _, _, nb in queue)
                    time.sleep(max(0.0, next_up - time.monotonic()))
                    continue

                deadlines = [
                    w.task[3] for w in self._busy if w.task[3] is not None
                ]
                holds = [
                    nb for _, _, nb in queue if nb > time.monotonic()
                ]
                wake = (
                    min(deadlines + holds) if (deadlines or holds) else None
                )
                wait_s = (
                    max(0.0, wake - time.monotonic())
                    if wake is not None
                    else None
                )
                if status is not None:
                    # Cap the block so a heartbeat still lands while
                    # every worker is deep inside a long task.
                    wait_s = (
                        status.cadence.every_s
                        if wait_s is None
                        else min(wait_s, status.cadence.every_s)
                    )
                ready = mp.connection.wait(
                    [w.conn for w in self._busy], timeout=wait_s
                )

                now = time.monotonic()
                for worker in list(self._busy):
                    task_id, index, attempt, deadline = worker.task
                    if worker.conn in ready:
                        try:
                            msg = worker.conn.recv()
                        except (EOFError, OSError):
                            msg = None
                        if msg is None:
                            if status is not None:
                                status.worker_retired(worker.proc.pid)
                            self._retire(worker)
                            settle(
                                index,
                                attempt,
                                "died",
                                f"worker exited with code "
                                f"{worker.proc.exitcode} before reporting "
                                "a result",
                            )
                            continue
                        worker.task = None
                        self._busy.remove(worker)
                        self._idle.append(worker)
                        if status is not None:
                            status.worker_reply(worker.proc.pid)
                        if msg[0] == "ok":
                            _, _, desc, wtel, warm, shm_bytes = msg
                            results[index] = _decode_result(desc)
                            if on_result is not None:
                                on_result(index, results[index])
                            pending -= 1
                            obs.incr("parallel.pool_tasks")
                            if status is not None:
                                status.note_success()
                                if shm_bytes:
                                    status.add_shm(shm_bytes)
                            if warm:
                                obs.incr("parallel.worker_cache_warm_hits")
                            if shm_bytes:
                                obs.incr("parallel.shm_bytes", shm_bytes)
                            if wtel is not None:
                                captured[index] = wtel
                        else:
                            settle(index, attempt, "error", msg[2])
                    elif deadline is not None and now >= deadline:
                        obs.incr("parallel.timeouts")
                        if status is not None:
                            status.note_timeout()
                            status.worker_retired(worker.proc.pid)
                        self._retire(worker, kill=True)
                        settle(
                            index,
                            attempt,
                            "timeout",
                            f"attempt exceeded {timeout_s:g} s deadline",
                        )
        except BaseException:
            # Unexpected escape: drop in-flight workers so a stale reply
            # can never leak into a later map() on a reused pool.
            for worker in list(self._busy):
                self._retire(worker, kill=True)
            raise

        for index in sorted(captured):
            _merge_worker(index, captured[index])
        if failures:
            failures.sort(key=lambda f: f[0])
            raise ParallelExecutionError(failures)
        return results


# ----------------------------------------------------------------------
# The drop-in map front end
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable,
    payloads: Sequence,
    jobs: int | None = None,
    *,
    context=None,
    timeout_s: float | None = None,
    retries: int | None = None,
    backoff_s: float = 0.1,
    on_error: str = "raise",
    pool: WorkerPool | None = None,
    on_result: Callable | None = None,
    journal=None,
    status_path=None,
    status_every_s: float = 1.0,
    status_meta: dict | None = None,
    _status=None,
) -> list:
    """``[fn(p) for p in payloads]`` across persistent worker processes.

    Parameters
    ----------
    fn:
        A module-level (spawn-picklable) function. Called ``fn(payload)``
        without a context, ``fn(context, payload)`` with one.
    payloads:
        Picklable task inputs; one worker call each.
    jobs:
        Worker count: ``None``/``1`` serial in-process, ``0`` auto
        (``TECFAN_JOBS`` env var, else the CPU affinity mask), ``N > 1``
        that many pooled workers.
    context:
        Optional shared input shipped to each worker **once** and
        reused warm across its tasks (see the module docstring's
        cache-reuse contract). The serial path shares the same context
        object across all tasks, so semantics match exactly.
    timeout_s:
        Per-attempt wall-clock deadline measured from dispatch; an
        attempt still running at the deadline is killed with its worker
        (``parallel.timeouts`` counter) — the pool replaces the worker
        and carries on. ``None`` defers to ``TECFAN_JOB_TIMEOUT_S``
        (unset or <= 0 means no deadline). Serial runs cannot be
        interrupted, so the deadline only applies with ``jobs > 1``.
    retries:
        Extra attempts per task after the first fails or times out, with
        exponential backoff (``backoff_s * 2**attempt``); each
        re-dispatch increments ``parallel.retries``. ``None`` defers to
        ``TECFAN_JOB_RETRIES`` (default 0).
    backoff_s:
        Base delay before a retry attempt [s].
    on_error:
        ``"raise"`` (default): raise :class:`ParallelExecutionError`
        naming every task that exhausted its attempts, after all other
        tasks finish. ``"collect"``: never raise; terminally-failed
        tasks yield a :class:`TaskFailure` (falsy) at their index so the
        surviving results are usable.
    pool:
        An existing :class:`WorkerPool` to run on (kept open, so its
        workers — and their warm contexts — survive for the next call).
        Without one, a private pool is created and closed around this
        call.
    on_result:
        ``on_result(index, value)`` callback fired as each task
        *succeeds* (completion order). Failures never fire it.
    journal:
        A :class:`repro.journal.TaskJournal`. Payload indices already
        present in the journal are skipped (their journaled results are
        returned directly, ``journal.tasks_skipped`` counts them) and
        every fresh success is journaled the moment it lands — so a
        driver killed mid-sweep re-runs only the missing tasks, and a
        worker that died mid-task simply never journaled it. Only
        successful results are journaled; :class:`TaskFailure` partials
        are not, and re-run on resume.
    status_path:
        Optional live-status sidecar for ``tecfan top``
        (:mod:`repro.obs.live`): the fan-out writes heartbeat snapshots
        there every ``status_every_s`` wall-seconds — per-worker rows,
        settled/in-flight/queued counts, shm bytes, and (with a
        journal) which cells were replayed rather than re-run.
        ``status_meta`` annotates the snapshot (e.g. a display label
        and the journal path). ``_status`` is internal: the recursed
        journal-resume call passes the outer reporter down so replayed
        cells and the sub-batch's live dispatches land in one file.

    Returns
    -------
    Results in payload order — bit-identical to the serial run.

    Raises
    ------
    ParallelExecutionError
        If any task exhausted its attempts and ``on_error="raise"``.
    """
    if on_error not in ("raise", "collect"):
        raise ParallelExecutionError(
            [(-1, f"invalid on_error value {on_error!r}")]
        )
    payloads = list(payloads)
    own_status = False
    if _status is None and status_path is not None:
        from repro.obs.live import PoolStatusReporter

        _status = PoolStatusReporter(
            status_path,
            every_s=status_every_s,
            total=len(payloads),
            meta=status_meta,
        )
        own_status = True
    if journal is not None:
        done = {
            k: v
            for k, v in journal.tasks.items()
            if isinstance(k, int) and 0 <= k < len(payloads)
        }
        todo = [i for i in range(len(payloads)) if i not in done]
        obs.incr("journal.tasks_skipped", len(payloads) - len(todo))
        if _status is not None:
            # The recursed call dispatches sub-batch indices; map them
            # back to the caller's cell numbering for display, and
            # surface the journal-replayed cells separately from live.
            _status.note_replayed(done.keys())
            _status.index_map = todo

        def _record(sub_index: int, value, _todo=todo) -> None:
            index = _todo[sub_index]
            journal.record_task(index, value)
            if on_result is not None:
                on_result(index, value)

        sub = parallel_map(
            fn,
            [payloads[i] for i in todo],
            jobs,
            context=context,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            on_error=on_error,
            pool=pool,
            on_result=_record,
            _status=_status,
        )
        results = [None] * len(payloads)
        for index, value in done.items():
            results[index] = value
        for j, index in enumerate(todo):
            results[index] = sub[j]
        if own_status:
            _status.finish()
        return results

    n = pool.jobs if pool is not None else resolve_jobs(jobs)
    timeout_s = _resolve_timeout(timeout_s)
    retries = _resolve_retries(retries)

    try:
        if n <= 1 or len(payloads) <= 1:
            return _serial_map(
                fn, payloads, retries, backoff_s, on_error, context,
                on_result, _status,
            )
        kwargs = dict(
            context=context,
            timeout_s=timeout_s,
            retries=retries,
            backoff_s=backoff_s,
            on_error=on_error,
            on_result=on_result,
            status=_status,
        )
        if pool is not None:
            return pool.map(fn, payloads, **kwargs)
        with WorkerPool(n) as private:
            return private.map(fn, payloads, **kwargs)
    finally:
        if own_status:
            _status.finish()


def _serial_map(
    fn: Callable,
    payloads: list,
    retries: int,
    backoff_s: float,
    on_error: str,
    context=None,
    on_result: Callable | None = None,
    status=None,
) -> list:
    """In-process execution: retries apply, deadlines cannot.

    With a ``status`` reporter the parent process itself shows up as
    the single "worker" row, so ``tecfan top`` works identically on
    serial and pooled fan-outs.
    """
    pid = os.getpid()
    results: list = []
    failures: list = []
    for i, p in enumerate(payloads):
        if status is not None:
            status.worker_dispatch(pid, i)
            status.maybe_report(
                in_flight=1, queued=len(payloads) - i - 1
            )
        for attempt in range(retries + 1):
            try:
                results.append(
                    fn(p) if context is None else fn(context, p)
                )
                if status is not None:
                    status.worker_reply(pid)
                    status.note_success()
                if on_result is not None:
                    on_result(i, results[-1])
                break
            except Exception:
                if attempt < retries:
                    obs.incr("parallel.retries")
                    if status is not None:
                        status.note_retry()
                    time.sleep(backoff_s * (2.0**attempt))
                    continue
                if status is not None:
                    status.worker_reply(pid)
                    status.note_failure("error")
                if on_error == "raise" and retries == 0:
                    raise  # classic serial contract: original exception
                detail = traceback.format_exc()
                if on_error == "raise":
                    failures.append((i, detail))
                    results.append(None)
                else:
                    results.append(
                        TaskFailure(
                            index=i,
                            kind="error",
                            detail=detail,
                            attempts=retries + 1,
                        )
                    )
                break
    if failures:
        raise ParallelExecutionError(failures)
    return results
