"""Process-parallel experiment fan-out.

Sweeps and policy suites run many *independent* simulations — one per
fan level, one per policy. Each simulation is CPU-bound in LAPACK/SuperLU
calls that hold the GIL for only part of their time, so processes (not
threads) are the right isolation, and the payloads the drivers ship
(systems, workload runs, controllers) are plain dataclasses + numpy
arrays that pickle cleanly. The one exception — SuperLU factorization
objects — is handled by :class:`repro.thermal.steady_state.SteadyStateSolver`
dropping its LU cache on pickling; workers refactorize lazily.

Design rules:

* **spawn** start method always: fork would duplicate whatever state the
  parent process has accumulated (telemetry sessions, factorization
  caches) and is unavailable on some platforms; spawn keeps workers
  deterministic and identical everywhere.
* Results come back **in payload order** regardless of completion order,
  so parallel runs are drop-in replacements for serial loops.
* Worker exceptions are captured as formatted tracebacks and re-raised
  in the parent as one :class:`ParallelExecutionError` naming every
  failing task — a custom exception type from a worker may itself fail
  to unpickle, a traceback string never does.
* ``jobs=None`` or ``jobs=1`` runs serially in-process (no pool, no
  pickling) so the flag can be threaded through unconditionally.

Telemetry note: worker processes see the module-level no-op telemetry
hooks unless they install their own session; counters incremented inside
workers do **not** aggregate into the parent's session.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.exceptions import ParallelExecutionError

__all__ = ["ParallelExecutionError", "parallel_map", "resolve_jobs"]

#: Environment override for the default worker count (CLI ``--jobs 0``
#: and drivers called with ``jobs=0`` resolve through this, then the
#: machine's CPU count).
JOBS_ENV_VAR = "TECFAN_JOBS"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to an effective worker count.

    ``None`` or ``1`` mean serial (returns 1). ``0`` means "auto": the
    ``TECFAN_JOBS`` environment variable if set, else ``os.cpu_count()``.
    Negative values are a configuration error.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ParallelExecutionError([(-1, f"invalid jobs value {jobs}")])
    if jobs == 0:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None and env.strip():
            return max(1, int(env))
        return os.cpu_count() or 1
    return jobs


def _invoke(fn: Callable, index: int, payload) -> tuple:
    """Worker-side wrapper: never lets an exception escape unpickled."""
    try:
        return (index, True, fn(payload))
    except BaseException:
        return (index, False, traceback.format_exc())


def parallel_map(
    fn: Callable,
    payloads: Sequence,
    jobs: int | None = None,
) -> list:
    """``[fn(p) for p in payloads]`` across worker processes.

    Parameters
    ----------
    fn:
        A module-level (spawn-picklable) function of one argument.
    payloads:
        Picklable task inputs; one worker call each.
    jobs:
        Worker count: ``None``/``1`` serial in-process, ``0`` auto
        (``TECFAN_JOBS`` env var, else CPU count), ``N > 1`` that many
        processes.

    Returns
    -------
    Results in payload order.

    Raises
    ------
    ParallelExecutionError
        If any task raised; lists every failing index with its worker
        traceback. Remaining tasks still run to completion first.
    """
    payloads = list(payloads)
    n = resolve_jobs(jobs)
    if n <= 1 or len(payloads) <= 1:
        return [fn(p) for p in payloads]

    results: list = [None] * len(payloads)
    failures: list = []
    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(n, len(payloads)), mp_context=ctx
    ) as pool:
        futures = [
            pool.submit(_invoke, fn, i, p) for i, p in enumerate(payloads)
        ]
        for fut in futures:
            index, ok, value = fut.result()
            if ok:
                results[index] = value
            else:
                failures.append((index, value))
    if failures:
        failures.sort(key=lambda f: f[0])
        raise ParallelExecutionError(failures)
    return results
