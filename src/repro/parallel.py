"""Process-parallel experiment fan-out.

Sweeps and policy suites run many *independent* simulations — one per
fan level, one per policy. Each simulation is CPU-bound in LAPACK/SuperLU
calls that hold the GIL for only part of their time, so processes (not
threads) are the right isolation, and the payloads the drivers ship
(systems, workload runs, controllers) are plain dataclasses + numpy
arrays that pickle cleanly. The one exception — SuperLU factorization
objects — is handled by :class:`repro.thermal.steady_state.SteadyStateSolver`
dropping its LU cache on pickling; workers refactorize lazily.

Design rules:

* **spawn** start method always: fork would duplicate whatever state the
  parent process has accumulated (telemetry sessions, factorization
  caches) and is unavailable on some platforms; spawn keeps workers
  deterministic and identical everywhere.
* Results come back **in payload order** regardless of completion order,
  so parallel runs are drop-in replacements for serial loops.
* Worker exceptions are captured as formatted tracebacks and re-raised
  in the parent as one :class:`ParallelExecutionError` naming every
  failing task — a custom exception type from a worker may itself fail
  to unpickle, a traceback string never does.
* ``jobs=None`` or ``jobs=1`` runs serially in-process (no pool, no
  pickling) so the flag can be threaded through unconditionally.
* Resilience is **opt-in** and orthogonal: ``timeout_s`` kills attempts
  that hang (a worker stuck in a native solve cannot be cancelled any
  other way), ``retries`` re-runs failed/timed-out attempts with
  exponential backoff, and ``on_error="collect"`` returns
  :class:`TaskFailure` placeholders instead of raising so a 100-run
  sweep survives one bad point. With none of these engaged the classic
  pool fast path runs unchanged. ``parallel.retries`` and
  ``parallel.timeouts`` counters make degraded sweeps observable.

Telemetry note: when the parent has an active telemetry session, every
worker installs its own :class:`repro.obs.Telemetry` around its task and
ships the session's aggregates back alongside the result
(:mod:`repro.obs.merge`); the parent folds them in via
:meth:`Telemetry.merge` under a ``worker=<task index>`` span-edge label.
Counters incremented inside workers therefore **do** aggregate into the
parent's session — a ``--jobs N`` sweep's merged counters equal the
serial run's exactly for every deterministic counter. Worker *events*
are not shipped (aggregates only); they are accounted in the
``parallel.worker_events_dropped`` counter, and each merged session
increments ``parallel.worker_sessions``.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.exceptions import ParallelExecutionError
from repro.obs import telemetry as obs

__all__ = [
    "ParallelExecutionError",
    "TaskFailure",
    "parallel_map",
    "resolve_jobs",
]

#: Environment override for the default worker count (CLI ``--jobs 0``
#: and drivers called with ``jobs=0`` resolve through this, then the
#: machine's CPU count).
JOBS_ENV_VAR = "TECFAN_JOBS"

#: Environment defaults for the resilience knobs, so deep drivers that
#: only thread ``jobs`` through still honor a sweep-wide policy (the CLI
#: ``--job-timeout-s`` / ``--job-retries`` flags set these).
TIMEOUT_ENV_VAR = "TECFAN_JOB_TIMEOUT_S"
RETRIES_ENV_VAR = "TECFAN_JOB_RETRIES"


@dataclass(frozen=True)
class TaskFailure:
    """Terminal failure of one task under ``on_error="collect"``.

    Placed at the task's index in the result list so callers can keep
    the surviving results and report the rest. ``kind`` is ``"error"``
    (the task raised), ``"timeout"`` (every attempt exceeded the
    deadline) or ``"died"`` (the worker process vanished mid-task).
    """

    index: int
    kind: str
    detail: str
    attempts: int

    def __bool__(self) -> bool:  # `.filter`-style truthiness: failed
        return False


def _resolve_timeout(timeout_s: float | None) -> float | None:
    if timeout_s is not None:
        return float(timeout_s)
    env = os.environ.get(TIMEOUT_ENV_VAR)
    if env is not None and env.strip():
        value = float(env)
        return value if value > 0 else None
    return None


def _resolve_retries(retries: int | None) -> int:
    if retries is not None:
        return max(0, int(retries))
    env = os.environ.get(RETRIES_ENV_VAR)
    if env is not None and env.strip():
        return max(0, int(env))
    return 0


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value to an effective worker count.

    ``None`` or ``1`` mean serial (returns 1). ``0`` means "auto": the
    ``TECFAN_JOBS`` environment variable if set, else ``os.cpu_count()``.
    Negative values are a configuration error.
    """
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs < 0:
        raise ParallelExecutionError([(-1, f"invalid jobs value {jobs}")])
    if jobs == 0:
        env = os.environ.get(JOBS_ENV_VAR)
        if env is not None and env.strip():
            return max(1, int(env))
        return os.cpu_count() or 1
    return jobs


def _invoke(fn: Callable, index: int, payload, capture: bool) -> tuple:
    """Worker-side wrapper: never lets an exception escape unpickled.

    With ``capture`` (the parent had an active telemetry session), the
    task runs under its own worker session and the fourth slot carries
    the picklable aggregate capture; otherwise it is ``None``.
    """
    try:
        if capture:
            from repro.obs.merge import run_captured

            result, wtel = run_captured(fn, payload)
            return (index, True, result, wtel)
        return (index, True, fn(payload), None)
    except BaseException:
        return (index, False, traceback.format_exc(), None)


def _merge_worker(index: int, wtel) -> None:
    """Fold one worker capture into the parent's active session."""
    tel = obs.get_telemetry()
    if tel is None or wtel is None:
        return
    tel.merge(wtel, label=f"worker={index}")
    tel.metrics.counter("parallel.worker_sessions").inc(1)
    tel.metrics.counter("parallel.worker_events_dropped").inc(
        wtel.events_discarded
    )


def parallel_map(
    fn: Callable,
    payloads: Sequence,
    jobs: int | None = None,
    *,
    timeout_s: float | None = None,
    retries: int | None = None,
    backoff_s: float = 0.1,
    on_error: str = "raise",
) -> list:
    """``[fn(p) for p in payloads]`` across worker processes.

    Parameters
    ----------
    fn:
        A module-level (spawn-picklable) function of one argument.
    payloads:
        Picklable task inputs; one worker call each.
    jobs:
        Worker count: ``None``/``1`` serial in-process, ``0`` auto
        (``TECFAN_JOBS`` env var, else CPU count), ``N > 1`` that many
        processes.
    timeout_s:
        Per-attempt wall-clock deadline; an attempt still running at the
        deadline is killed (``parallel.timeouts`` counter) and counts as
        a failed attempt. ``None`` defers to ``TECFAN_JOB_TIMEOUT_S``
        (unset or <= 0 means no deadline). Serial runs cannot be
        interrupted, so the deadline only applies with ``jobs > 1``.
    retries:
        Extra attempts per task after the first fails or times out, with
        exponential backoff (``backoff_s * 2**attempt``); each re-launch
        increments ``parallel.retries``. ``None`` defers to
        ``TECFAN_JOB_RETRIES`` (default 0).
    backoff_s:
        Base delay before a retry attempt [s].
    on_error:
        ``"raise"`` (default): raise :class:`ParallelExecutionError`
        naming every task that exhausted its attempts, after all other
        tasks finish. ``"collect"``: never raise; terminally-failed
        tasks yield a :class:`TaskFailure` (falsy) at their index so the
        surviving results are usable.

    Returns
    -------
    Results in payload order.

    Raises
    ------
    ParallelExecutionError
        If any task exhausted its attempts and ``on_error="raise"``.
    """
    if on_error not in ("raise", "collect"):
        raise ParallelExecutionError(
            [(-1, f"invalid on_error value {on_error!r}")]
        )
    payloads = list(payloads)
    n = resolve_jobs(jobs)
    timeout_s = _resolve_timeout(timeout_s)
    retries = _resolve_retries(retries)

    if n <= 1 or len(payloads) <= 1:
        return _serial_map(fn, payloads, retries, backoff_s, on_error)

    # Worker telemetry capture: only when the parent has a session to
    # merge into (otherwise workers skip the wrapper entirely).
    capture = obs.get_telemetry() is not None
    if timeout_s is None and retries == 0 and on_error == "raise":
        # Classic fast path: one long-lived pool, no per-task process.
        return _pool_map(fn, payloads, n, capture)
    return _resilient_map(
        fn, payloads, n, timeout_s, retries, backoff_s, on_error, capture
    )


def _serial_map(
    fn: Callable,
    payloads: list,
    retries: int,
    backoff_s: float,
    on_error: str,
) -> list:
    """In-process execution: retries apply, deadlines cannot."""
    results: list = []
    failures: list = []
    for i, p in enumerate(payloads):
        for attempt in range(retries + 1):
            try:
                results.append(fn(p))
                break
            except Exception:
                if attempt < retries:
                    obs.incr("parallel.retries")
                    time.sleep(backoff_s * (2.0**attempt))
                    continue
                if on_error == "raise" and retries == 0:
                    raise  # classic serial contract: original exception
                detail = traceback.format_exc()
                if on_error == "raise":
                    failures.append((i, detail))
                    results.append(None)
                else:
                    results.append(
                        TaskFailure(
                            index=i,
                            kind="error",
                            detail=detail,
                            attempts=retries + 1,
                        )
                    )
                break
    if failures:
        raise ParallelExecutionError(failures)
    return results


def _pool_map(fn: Callable, payloads: list, n: int, capture: bool) -> list:
    """The zero-resilience fast path (original pool semantics)."""
    results: list = [None] * len(payloads)
    failures: list = []
    ctx = mp.get_context("spawn")
    with ProcessPoolExecutor(
        max_workers=min(n, len(payloads)), mp_context=ctx
    ) as pool:
        futures = [
            pool.submit(_invoke, fn, i, p, capture)
            for i, p in enumerate(payloads)
        ]
        # Iterating in submission order also merges worker telemetry in
        # task order, keeping last-writer gauge merges deterministic.
        for fut in futures:
            index, ok, value, wtel = fut.result()
            if ok:
                results[index] = value
                _merge_worker(index, wtel)
            else:
                failures.append((index, value))
    if failures:
        failures.sort(key=lambda f: f[0])
        raise ParallelExecutionError(failures)
    return results


def _pipe_invoke(conn, fn: Callable, payload, capture: bool) -> None:
    """Resilient-path worker body: report through the pipe, then exit."""
    try:
        if capture:
            from repro.obs.merge import run_captured

            value, wtel = run_captured(fn, payload)
            result = (True, value, wtel)
        else:
            result = (True, fn(payload), None)
    except BaseException:
        result = (False, traceback.format_exc(), None)
    try:
        conn.send(result)
    except BaseException:
        pass  # parent killed us or result unpicklable; exit code tells
    finally:
        conn.close()


@dataclass
class _Attempt:
    """One in-flight worker attempt of the resilient path."""

    index: int
    attempt: int
    proc: mp.process.BaseProcess
    conn: mp.connection.Connection
    deadline: float | None


def _resilient_map(
    fn: Callable,
    payloads: list,
    n: int,
    timeout_s: float | None,
    retries: int,
    backoff_s: float,
    on_error: str,
    capture: bool,
) -> list:
    """Per-task processes with deadline kill, retry, partial results.

    A hung worker cannot be cancelled through ``ProcessPoolExecutor``
    (it only abandons queued futures), so every attempt gets its own
    spawn process the parent can ``kill()`` at the deadline. Start-up
    costs one interpreter per attempt — acceptable for simulation tasks
    that run seconds each, which is what this path exists for.
    """
    ctx = mp.get_context("spawn")
    results: list = [None] * len(payloads)
    failures: list[tuple[int, str]] = []
    # Worker captures keyed by task index: completion order is
    # nondeterministic, so merging is deferred and done in index order.
    captured: dict[int, object] = {}
    # (index, attempt, not_before) — FIFO except for backoff holds.
    queue: deque = deque(
        (i, 0, 0.0) for i in range(len(payloads))
    )
    active: list[_Attempt] = []

    def settle(index: int, attempt: int, kind: str, detail: str) -> None:
        """A failed attempt: schedule a retry or record the failure."""
        if attempt < retries:
            obs.incr("parallel.retries")
            not_before = time.monotonic() + backoff_s * (2.0**attempt)
            queue.append((index, attempt + 1, not_before))
            return
        if on_error == "collect":
            results[index] = TaskFailure(
                index=index,
                kind=kind,
                detail=detail,
                attempts=attempt + 1,
            )
        else:
            failures.append((index, f"[{kind}] {detail}"))

    try:
        while queue or active:
            # Launch while there is capacity and a ready task.
            now = time.monotonic()
            held = []
            while queue and len(active) < n:
                index, attempt, not_before = queue.popleft()
                if not_before > now:
                    held.append((index, attempt, not_before))
                    continue
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_pipe_invoke,
                    args=(child_conn, fn, payloads[index], capture),
                )
                proc.start()
                child_conn.close()
                active.append(
                    _Attempt(
                        index=index,
                        attempt=attempt,
                        proc=proc,
                        conn=parent_conn,
                        deadline=(
                            now + timeout_s if timeout_s is not None else None
                        ),
                    )
                )
            queue.extend(held)

            if not active:
                # Everything pending is in a backoff hold.
                next_up = min(nb for _, _, nb in queue)
                time.sleep(max(0.0, next_up - time.monotonic()))
                continue

            deadlines = [a.deadline for a in active if a.deadline is not None]
            holds = [nb for _, _, nb in queue if nb > time.monotonic()]
            wake = min(deadlines + holds) if (deadlines or holds) else None
            wait_s = (
                max(0.0, wake - time.monotonic()) if wake is not None else None
            )
            ready = mp.connection.wait(
                [a.conn for a in active], timeout=wait_s
            )

            still_active: list[_Attempt] = []
            now = time.monotonic()
            for a in active:
                if a.conn in ready:
                    try:
                        ok, value, wtel = a.conn.recv()
                    except (EOFError, OSError):
                        ok, value, wtel = False, None, None
                    a.conn.close()
                    a.proc.join()
                    if ok:
                        results[a.index] = value
                        if wtel is not None:
                            captured[a.index] = wtel
                    elif value is not None:
                        settle(a.index, a.attempt, "error", value)
                    else:
                        settle(
                            a.index,
                            a.attempt,
                            "died",
                            f"worker exited with code {a.proc.exitcode} "
                            "before reporting a result",
                        )
                elif a.deadline is not None and now >= a.deadline:
                    obs.incr("parallel.timeouts")
                    a.proc.kill()
                    a.proc.join()
                    a.conn.close()
                    settle(
                        a.index,
                        a.attempt,
                        "timeout",
                        f"attempt exceeded {timeout_s:g} s deadline",
                    )
                else:
                    still_active.append(a)
            active = still_active
    finally:
        for a in active:  # only on an unexpected escape
            a.proc.kill()
            a.proc.join()
            a.conn.close()

    for index in sorted(captured):
        _merge_worker(index, captured[index])
    if failures:
        failures.sort(key=lambda f: f[0])
        raise ParallelExecutionError(failures)
    return results
