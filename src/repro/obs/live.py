"""Live-run observability: status snapshots, watch/top views, Prometheus.

Until now every run was a black box until it exited — telemetry is
post-hoc (an in-memory session or a streamed JSONL file read after the
fact). This module is the *in-flight* plane, in three layers:

1. **Status snapshots.** The engine (:class:`RunStatusReporter`) and the
   worker pool (:class:`PoolStatusReporter`) periodically serialize a
   compact, versioned status record — sim-time progress, wall-clock ETA
   from recent throughput, per-core temperatures and headroom vs
   ``t_threshold_c``, the EPI running average, cache hit rates,
   checkpoint age, per-worker dispatch state — to a single sidecar file.
   Writes reuse ``checkpoint.py``'s tmp+fsync+rename dance
   (:func:`write_status`), so a polling reader always sees either the
   previous or the next *complete* snapshot, never a torn one.
   Snapshots are pure reads of loop state: a run with a status file is
   bit-identical (same ``result_digest``) to the same run without one.

2. **Consumers.** :func:`render_watch` / :func:`render_top` turn a
   snapshot into the ``tecfan watch`` / ``tecfan top`` terminal views
   (progress bar, ETA, headroom sparkline over the snapshot history,
   anomaly flags reusing the ``tracetools`` thresholds; one row per
   worker for pools, replayed-vs-live cell counts for journal-resumed
   sweeps). Both degrade to ``--once`` plain text for CI and piping.

3. **Exposition.** :class:`MetricsServer` serves the active
   :class:`~repro.obs.metrics.MetricsRegistry` plus live status gauges
   in Prometheus text format over a stdlib ``http.server`` thread
   (``tecfan ... --metrics-port N``), so a long simulation can be
   scraped like any production service.

Cadence is wall-clock (``every_s``): the per-interval cost when due is
one ``time.monotonic()`` call and a compare, and the measured overhead
of snapshotting at the default cadence is gated at <= 3% by
``benchmarks/bench_overhead.py``. Counters: ``live.snapshots_written``,
``live.snapshot_bytes``, and ``parallel.heartbeats`` (pool snapshots).
"""

from __future__ import annotations

import json
import os
import time
from collections import deque

from repro.exceptions import ObservabilityError
from repro.obs import telemetry as obs

__all__ = [
    "STATUS_SCHEMA",
    "FleetStatusReporter",
    "MetricsServer",
    "PoolStatusReporter",
    "RunStatusReporter",
    "prometheus_text",
    "read_status",
    "render_fleet",
    "render_status",
    "render_top",
    "render_watch",
    "status_anomalies",
    "write_status",
]

#: Version of the status-record layout. Bump on any incompatible change
#: to the keys or their meaning; :func:`read_status` rejects others.
STATUS_SCHEMA = 1

#: Snapshots retained in the in-file history ring (the watch sparkline
#: and anomaly scan read these, so consumers stay stateless).
HISTORY_LEN = 64

#: (wall, progress) samples used for the recent-throughput ETA.
RATE_WINDOW = 16

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


# ----------------------------------------------------------------------
# The sidecar file: atomic write, validated read
# ----------------------------------------------------------------------
def write_status(path, status: dict) -> str:
    """Atomically write one status snapshot as JSON; returns the path.

    Same crash-safety contract as a checkpoint (tmp + fsync + rename via
    :func:`repro.checkpoint.atomic_write_bytes`): a reader polling the
    file mid-write sees either the previous complete snapshot or the new
    one — never a torn file. JSON (not pickle) on purpose: ``tecfan
    watch``, Prometheus relabeling, and foreign tooling all read it.
    """
    from repro.checkpoint import atomic_write_bytes

    from repro.obs.manifest import jsonable

    status = dict(status)
    status.setdefault("schema", STATUS_SCHEMA)
    blob = (json.dumps(jsonable(status)) + "\n").encode()
    atomic_write_bytes(path, blob)
    obs.incr("live.snapshots_written")
    obs.incr("live.snapshot_bytes", len(blob))
    return os.fspath(path)


def read_status(path) -> dict:
    """Load and validate one status snapshot.

    Raises :class:`~repro.exceptions.ObservabilityError` when the file
    is missing, unparsable, or carries an unknown schema version. Thanks
    to the atomic writer there is no torn-file case to tolerate — a
    parse failure means the file is not a status sidecar at all.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        raise ObservabilityError(f"no status file at {path}") from None
    except OSError as exc:
        raise ObservabilityError(
            f"status file {path} is unreadable: {exc}"
        ) from exc
    try:
        status = json.loads(blob)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"status file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(status, dict):
        raise ObservabilityError(f"status file {path} is not a snapshot")
    schema = status.get("schema")
    if schema != STATUS_SCHEMA:
        raise ObservabilityError(
            f"status file {path} has schema {schema!r}; this build "
            f"supports {STATUS_SCHEMA}"
        )
    return status


class _Cadence:
    """Wall-clock due-time bookkeeping shared by both reporters.

    The first call is always due (so watchers latch on immediately);
    afterwards snapshots fire at most once per ``every_s`` seconds of
    wall time. The hot-path cost between due points is one
    ``time.monotonic()`` call and a compare.
    """

    __slots__ = ("every_s", "_next_due")

    def __init__(self, every_s: float):
        every_s = float(every_s)
        if every_s <= 0:
            raise ObservabilityError("status cadence must be positive")
        self.every_s = every_s
        self._next_due = 0.0

    def due(self, now: float) -> bool:
        return now >= self._next_due

    def advance(self, now: float) -> None:
        self._next_due = now + self.every_s


# ----------------------------------------------------------------------
# Engine-side reporter
# ----------------------------------------------------------------------
class RunStatusReporter:
    """Periodic status snapshots of one live engine run.

    Built by :meth:`SimulationEngine.run`/``resume`` when
    ``EngineConfig.status_path`` is set, and called from the simulate
    loop top — which every iteration (including the one right after a
    fast-forwarded chunk) passes through, so snapshots also land on
    fast-forward boundaries. Reporting is side-effect-free: it reads
    loop state, trace rows and (when a session is active) telemetry
    counters, and never touches the plant, the RNGs, or the trace — the
    run's ``result_digest`` is identical with or without it.
    """

    def __init__(
        self,
        path,
        *,
        every_s: float = 1.0,
        max_time_s: float = 0.0,
        t_threshold_c: float | None = None,
        system=None,
        workload: str = "?",
        policy: str = "?",
        checkpoint=None,
    ):
        self.path = os.fspath(path)
        self.cadence = _Cadence(every_s)
        self.max_time_s = float(max_time_s)
        self.t_threshold_c = t_threshold_c
        self.system = system
        self.workload = workload
        self.policy = policy
        #: The run's ``_Checkpointer`` (or None); its ``last_write_unix``
        #: stamp feeds the checkpoint-age field.
        self.checkpoint = checkpoint
        self.seq = 0
        # Incremental trace accumulation: O(new rows) per snapshot.
        self._row_pos = 0
        self._energy_j = 0.0
        self._run_peak_c = float("-inf")
        self._last_row = None
        self._history: deque = deque(maxlen=HISTORY_LEN)
        self._rate: deque = deque(maxlen=RATE_WINDOW)

    # -- throughput ----------------------------------------------------
    def _eta(self, now: float, time_s: float) -> tuple[float | None, float | None]:
        """(sim-seconds per wall-second, seconds to ``max_time_s``)."""
        self._rate.append((now, time_s))
        if len(self._rate) < 2:
            return None, None
        (w0, s0), (w1, s1) = self._rate[0], self._rate[-1]
        if w1 <= w0 or s1 <= s0:
            return None, None
        rate = (s1 - s0) / (w1 - w0)
        remaining = max(0.0, self.max_time_s - time_s)
        return rate, remaining / rate

    # -- the hook ------------------------------------------------------
    def maybe_report(
        self,
        *,
        time_s: float,
        t_nodes,
        trace,
        intervals: int,
        total_instructions: float,
        state,
        done: bool = False,
        force: bool = False,
    ) -> bool:
        """Write a snapshot if one is due; returns whether it was."""
        now = time.monotonic()
        if not force and not self.cadence.due(now):
            return False
        self.cadence.advance(now)
        write_status(self.path, self._build(now, time_s, t_nodes, trace,
                                            intervals, total_instructions,
                                            state, done))
        self.seq += 1
        return True

    def _build(
        self, now, time_s, t_nodes, trace, intervals,
        total_instructions, state, done,
    ) -> dict:
        # Fold the trace rows grown since the last snapshot.
        if trace is not None:
            rows = trace.rows_since(self._row_pos)
            for r in rows:
                # columns: time_s, dt_s, peak_temp_c, p_chip_w, ...
                self._energy_j += r[3] * r[1]
                if r[2] > self._run_peak_c:
                    self._run_peak_c = r[2]
            self._row_pos += len(rows)
            if rows:
                self._last_row = rows[-1]

        thermal = None
        if self.system is not None and t_nodes is not None:
            t_comp = self.system.component_temps_c(t_nodes)
            current_peak = float(t_comp.max())
            thermal = {
                "core_temps_c": [round(float(t), 4) for t in t_comp],
                "peak_temp_c": current_peak,
                "run_peak_c": (
                    self._run_peak_c
                    if self._run_peak_c > float("-inf")
                    else current_peak
                ),
                "t_threshold_c": self.t_threshold_c,
                "headroom_c": (
                    self.t_threshold_c - current_peak
                    if self.t_threshold_c is not None
                    else None
                ),
            }

        rate, eta_s = self._eta(now, time_s)
        fraction = (
            min(1.0, time_s / self.max_time_s) if self.max_time_s > 0 else 0.0
        )
        if done:
            fraction = 1.0
            eta_s = 0.0

        counters = {}
        tel = obs.get_telemetry()
        if tel is not None:
            counters = {
                n: c.value for n, c in sorted(tel.metrics._counters.items())
            }
        cache = None
        hits = counters.get("thermal.propagator_hits")
        misses = counters.get("thermal.propagator_misses")
        if hits is not None and misses is not None and hits + misses > 0:
            cache = {
                "propagator_hits": hits,
                "propagator_misses": misses,
                "propagator_hit_rate": hits / (hits + misses),
            }
        ff = counters.get("engine.fast_forwarded_intervals")
        if ff is not None and intervals > 0:
            cache = dict(cache or {})
            cache["fast_forwarded_intervals"] = ff
            cache["fast_forward_fraction"] = ff / intervals

        checkpoint = None
        if self.checkpoint is not None:
            last = getattr(self.checkpoint, "last_write_unix", None)
            checkpoint = {
                "path": self.checkpoint.path,
                "age_s": (time.time() - last) if last is not None else None,
            }

        if self._last_row is not None:
            r = self._last_row
            self._history.append({
                "time_s": r[0],
                "peak_temp_c": r[2],
                "p_chip_w": r[3],
                "ips_chip": r[7],
                "tec_on": r[8],
                "fan_level": r[9],
                "headroom_c": (
                    self.t_threshold_c - r[2]
                    if self.t_threshold_c is not None
                    else None
                ),
            })

        return {
            "schema": STATUS_SCHEMA,
            "kind": "engine-run",
            "seq": self.seq,
            "pid": os.getpid(),
            "written_unix": time.time(),
            "done": bool(done),
            "workload": self.workload,
            "policy": self.policy,
            "t_threshold_c": self.t_threshold_c,
            "progress": {
                "sim_time_s": time_s,
                "max_time_s": self.max_time_s,
                "fraction": fraction,
                "intervals": intervals,
                "instructions": total_instructions,
                "rate_sim_per_wall": rate,
                "eta_s": eta_s,
            },
            "thermal": thermal,
            "energy": {
                "energy_j": self._energy_j,
                "instructions": total_instructions,
                "epi_j": (
                    self._energy_j / total_instructions
                    if total_instructions > 0
                    else None
                ),
                "avg_power_w": self._energy_j / time_s if time_s > 0 else None,
            },
            "cache": cache,
            "counters": counters,
            "checkpoint": checkpoint,
            "fan_level": int(state.fan_level) if state is not None else None,
            "history": list(self._history),
        }


# ----------------------------------------------------------------------
# Pool-side reporter (heartbeats)
# ----------------------------------------------------------------------
class PoolStatusReporter:
    """Periodic status snapshots of one pool/sweep fan-out.

    The heartbeats piggyback the existing duplex pipes: the parent-side
    scheduler already observes every dispatch and every reply, so the
    per-worker rows (state, current cell, tasks done, last-reply age)
    are maintained from those messages alone — workers never send
    unsolicited traffic. Journal-resumed fan-outs report replayed cells
    separately from live ones (``tasks.replayed`` and
    ``replayed_indices``), so ``tecfan top`` can show what was skipped.
    Each snapshot increments ``parallel.heartbeats``.
    """

    def __init__(self, path, *, every_s: float = 1.0, total: int = 0,
                 meta: dict | None = None):
        self.path = os.fspath(path)
        self.cadence = _Cadence(every_s)
        self.total = int(total)
        self.meta = dict(meta or {})
        #: Outer payload indices for journal-resumed sub-batches: the
        #: recursed ``parallel_map`` dispatches sub-indices, this maps
        #: them back to the caller's cell numbering for display.
        self.index_map: list | None = None
        self.replayed: list = []
        self.done = 0
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.shm_bytes = 0
        self.seq = 0
        self._workers: dict = {}
        self._rate: deque = deque(maxlen=RATE_WINDOW)
        self._history: deque = deque(maxlen=HISTORY_LEN)

    # -- bookkeeping fed by the scheduler ------------------------------
    def _display_index(self, index: int) -> int:
        if self.index_map is not None and 0 <= index < len(self.index_map):
            return self.index_map[index]
        return index

    def note_replayed(self, indices) -> None:
        self.replayed = sorted(int(i) for i in indices)

    def worker_dispatch(self, pid: int, index: int) -> None:
        entry = self._workers.setdefault(
            pid, {"pid": pid, "tasks_done": 0, "last_reply_unix": None}
        )
        entry["state"] = "busy"
        entry["index"] = self._display_index(index)

    def worker_reply(self, pid: int) -> None:
        entry = self._workers.get(pid)
        if entry is not None:
            entry["state"] = "idle"
            entry["index"] = None
            entry["tasks_done"] += 1
            entry["last_reply_unix"] = time.time()

    def worker_retired(self, pid: int) -> None:
        self._workers.pop(pid, None)

    def note_success(self) -> None:
        self.done += 1

    def note_failure(self, kind: str) -> None:
        self.failed += 1

    def note_retry(self) -> None:
        self.retries += 1

    def note_timeout(self) -> None:
        self.timeouts += 1

    def add_shm(self, nbytes: int) -> None:
        self.shm_bytes += int(nbytes)

    # -- reporting -----------------------------------------------------
    def maybe_report(self, *, in_flight: int = 0, queued: int = 0,
                     done: bool = False, force: bool = False) -> bool:
        """Write a heartbeat snapshot if one is due."""
        now = time.monotonic()
        if not force and not self.cadence.due(now):
            return False
        self.cadence.advance(now)
        write_status(self.path, self._build(now, in_flight, queued, done))
        obs.incr("parallel.heartbeats")
        self.seq += 1
        return True

    def finish(self) -> None:
        """Force the final (``done``) snapshot after the fan-out."""
        self.maybe_report(in_flight=0, queued=0, done=True, force=True)

    def _build(self, now, in_flight, queued, done) -> dict:
        settled = self.done + self.failed + len(self.replayed)
        self._rate.append((now, self.done))
        rate = eta_s = None
        if len(self._rate) >= 2:
            (w0, d0), (w1, d1) = self._rate[0], self._rate[-1]
            if w1 > w0 and d1 > d0:
                rate = (d1 - d0) / (w1 - w0)
                eta_s = max(0, self.total - settled) / rate
        now_unix = time.time()
        workers = []
        for pid in sorted(self._workers):
            w = self._workers[pid]
            last = w.get("last_reply_unix")
            workers.append({
                "pid": pid,
                "state": w.get("state", "idle"),
                "index": w.get("index"),
                "tasks_done": w["tasks_done"],
                "last_reply_age_s": (
                    now_unix - last if last is not None else None
                ),
            })
        self._history.append({"done": settled})
        return {
            "schema": STATUS_SCHEMA,
            "kind": "pool",
            "seq": self.seq,
            "pid": os.getpid(),
            "written_unix": now_unix,
            "done": bool(done),
            "meta": self.meta,
            "tasks": {
                "total": self.total,
                "replayed": len(self.replayed),
                "done": self.done,
                "failed": self.failed,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "in_flight": int(in_flight),
                "queued": int(queued),
            },
            "progress": {
                "fraction": (
                    1.0 if done
                    else min(1.0, settled / self.total) if self.total else 0.0
                ),
                "rate_per_s": rate,
                "eta_s": 0.0 if done else eta_s,
            },
            "shm_bytes": self.shm_bytes,
            "workers": workers,
            "replayed_indices": self.replayed[:HISTORY_LEN],
            "history": list(self._history),
        }


class FleetStatusReporter:
    """Periodic ``fleet``-kind snapshots of one live fleet shard.

    Written from the :class:`repro.fleet.sim.FleetSim` loop top (serial
    single-shard runs; pooled shard fan-outs report ``pool``-kind
    heartbeats through ``parallel_map`` instead). Same contract as the
    engine reporter: side-effect-free reads of loop state, so a run's
    digest is identical with or without a status file attached.
    """

    def __init__(
        self,
        path,
        *,
        every_s: float = 1.0,
        n_nodes: int = 0,
        max_time_s: float = 0.0,
        t_threshold_c: float | None = None,
        router: str = "?",
        stepper: str = "?",
    ):
        self.path = os.fspath(path)
        self.cadence = _Cadence(every_s)
        self.n_nodes = int(n_nodes)
        self.max_time_s = float(max_time_s)
        self.t_threshold_c = t_threshold_c
        self.router = router
        self.stepper = stepper
        self.seq = 0
        self._history: deque = deque(maxlen=HISTORY_LEN)
        self._rate: deque = deque(maxlen=RATE_WINDOW)

    def _eta(self, now: float, time_s: float):
        self._rate.append((now, time_s))
        if len(self._rate) < 2:
            return None, None
        (w0, s0), (w1, s1) = self._rate[0], self._rate[-1]
        if w1 <= w0 or s1 <= s0:
            return None, None
        rate = (s1 - s0) / (w1 - w0)
        return rate, max(0.0, self.max_time_s - time_s) / rate

    def maybe_report(self, *, force: bool = False, done: bool = False,
                     **fields) -> bool:
        """Write a snapshot if one is due; returns whether it was."""
        now = time.monotonic()
        if not force and not self.cadence.due(now):
            return False
        self.cadence.advance(now)
        write_status(self.path, self._build(now, done, fields))
        self.seq += 1
        return True

    def final(self, **fields) -> None:
        """Force the terminal (``done``) snapshot."""
        self.maybe_report(force=True, done=True, **fields)

    def _build(self, now, done, f) -> dict:
        time_s = float(f.get("time_s", 0.0))
        rate, eta_s = self._eta(now, time_s)
        fraction = (
            min(1.0, time_s / self.max_time_s) if self.max_time_s > 0 else 0.0
        )
        if done:
            fraction, eta_s = 1.0, 0.0
        peaks = f.get("node_peak_c")
        nodes = []
        if peaks is not None:
            fans = f.get("fan_levels")
            tec_on = f.get("tec_on")
            order = sorted(
                range(len(peaks)), key=lambda i: -float(peaks[i])
            )[:8]
            for i in order:
                nodes.append({
                    "node": i,
                    "peak_temp_c": round(float(peaks[i]), 3),
                    "fan_level": int(fans[i]) if fans is not None else None,
                    "tec_on": float(tec_on[i]) if tec_on is not None else None,
                })
        last_peak = f.get("last_peak_c")
        self._history.append({
            "time_s": time_s,
            "peak_temp_c": last_peak,
            "power_w": f.get("power_w"),
            "p99_s": f.get("p99_s"),
            "headroom_c": (
                self.t_threshold_c - last_peak
                if self.t_threshold_c is not None and last_peak is not None
                else None
            ),
        })
        counters = {}
        tel = obs.get_telemetry()
        if tel is not None:
            counters = {
                n: c.value
                for n, c in sorted(tel.metrics._counters.items())
                if n.startswith(("fleet.", "server."))
            }
        return {
            "schema": STATUS_SCHEMA,
            "kind": "fleet",
            "seq": self.seq,
            "pid": os.getpid(),
            "written_unix": time.time(),
            "done": bool(done),
            "router": self.router,
            "stepper": self.stepper,
            "t_threshold_c": self.t_threshold_c,
            "fleet": {
                "n_nodes": self.n_nodes,
                "peak_temp_c": f.get("peak_temp_c"),
                "last_peak_c": last_peak,
                "power_w": f.get("power_w"),
                "energy_j": f.get("energy_j"),
                "backlog_inst": f.get("backlog_inst"),
                "p99_latency_s": f.get("p99_s"),
                "utilization": f.get("utilization"),
                "class_groups": f.get("class_groups"),
            },
            "progress": {
                "sim_time_s": time_s,
                "max_time_s": self.max_time_s,
                "fraction": fraction,
                "intervals": f.get("intervals"),
                "ff_intervals": f.get("ff_intervals"),
                "rate_sim_per_wall": rate,
                "eta_s": eta_s,
            },
            "counters": counters,
            "nodes": nodes,
            "history": list(self._history),
        }


# ----------------------------------------------------------------------
# Renderers (tecfan watch / tecfan top)
# ----------------------------------------------------------------------
def _bar(fraction: float, width: int = 30) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _sparkline(values: list) -> str:
    vals = [float(v) for v in values if v is not None]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(vals)
    return "".join(
        _SPARK_BLOCKS[
            min(len(_SPARK_BLOCKS) - 1,
                int((v - lo) / span * len(_SPARK_BLOCKS)))
        ]
        for v in vals
    )


def _fmt(value, spec: str = "{:.2f}", missing: str = "?") -> str:
    if value is None:
        return missing
    return spec.format(value)


def status_anomalies(status: dict) -> list:
    """Anomaly flags over the snapshot history ring.

    History entries are shaped like interval events on purpose, so this
    reuses :func:`repro.analysis.tracetools.detect_anomalies` — same
    thresholds as ``tecfan trace anomalies`` (excursion margin 0.5 degC,
    6 reversals / 20 samples, 10% EPI drift) — just at snapshot rather
    than interval granularity.
    """
    from repro.analysis import tracetools

    history = [
        dict(h, kind="interval") for h in status.get("history") or []
    ]
    if not history:
        return []
    return tracetools.detect_anomalies(
        {"events": history}, threshold_c=status.get("t_threshold_c")
    )


def render_watch(status: dict) -> str:
    """Single-run plain-text view of one ``engine-run`` snapshot."""
    lines = []
    state = "done" if status.get("done") else "running"
    lines.append(
        f"tecfan watch — {status.get('workload', '?')} / "
        f"{status.get('policy', '?')} (pid {status.get('pid', '?')}) "
        f"[{state}] seq={status.get('seq', 0)}"
    )
    prog = status.get("progress") or {}
    fraction = prog.get("fraction") or 0.0
    lines.append(
        f"progress {_bar(fraction)} {fraction * 100:5.1f}%  "
        f"sim {_fmt(prog.get('sim_time_s'), '{:.3f}')}"
        f"/{_fmt(prog.get('max_time_s'), '{:.3f}')} s  "
        f"intervals {prog.get('intervals', 0)}"
    )
    lines.append(
        f"rate {_fmt(prog.get('rate_sim_per_wall'), '{:.3g}')} sim-s/s  "
        f"eta {_fmt(prog.get('eta_s'), '{:.1f}')} s"
    )
    thermal = status.get("thermal")
    if thermal:
        headroom = thermal.get("headroom_c")
        flag = "  !! OVER THRESHOLD" if (
            headroom is not None and headroom < 0
        ) else ""
        lines.append(
            f"peak {_fmt(thermal.get('peak_temp_c'))} degC  "
            f"(run max {_fmt(thermal.get('run_peak_c'))})  "
            f"threshold {_fmt(thermal.get('t_threshold_c'))}  "
            f"headroom {_fmt(headroom, '{:+.2f}')} degC{flag}"
        )
    history = status.get("history") or []
    spark = _sparkline([h.get("headroom_c") for h in history])
    if spark:
        lines.append(f"headroom  {spark}  (last {len(history)} snapshots)")
    energy = status.get("energy") or {}
    lines.append(
        f"EPI {_fmt(energy.get('epi_j'), '{:.3e}')} J/inst  "
        f"power {_fmt(energy.get('avg_power_w'), '{:.1f}')} W  "
        f"energy {_fmt(energy.get('energy_j'), '{:.1f}')} J"
    )
    cache = status.get("cache")
    if cache:
        parts = []
        hr = cache.get("propagator_hit_rate")
        if hr is not None:
            parts.append(f"propagator {hr * 100:.1f}% hit")
        ff = cache.get("fast_forward_fraction")
        if ff is not None:
            parts.append(f"fast-forwarded {ff * 100:.1f}% of intervals")
        if parts:
            lines.append("cache: " + "  ".join(parts))
    ckpt = status.get("checkpoint")
    if ckpt:
        lines.append(
            f"checkpoint: {ckpt.get('path')} "
            f"(age {_fmt(ckpt.get('age_s'), '{:.1f}')} s)"
        )
    anomalies = status_anomalies(status)
    if anomalies:
        lines.append(f"anomalies: !! {len(anomalies)} finding(s)")
        for a in anomalies[:4]:
            lines.append(f"  - {a.kind}: {a.detail}")
    else:
        lines.append("anomalies: none detected")
    return "\n".join(lines)


def render_top(status: dict) -> str:
    """Pool/sweep plain-text view of one ``pool`` snapshot."""
    lines = []
    state = "done" if status.get("done") else "running"
    meta = status.get("meta") or {}
    label = meta.get("label", "pool")
    lines.append(
        f"tecfan top — {label} (pid {status.get('pid', '?')}) "
        f"[{state}] seq={status.get('seq', 0)}"
    )
    tasks = status.get("tasks") or {}
    total = tasks.get("total", 0)
    settled = (
        tasks.get("done", 0) + tasks.get("failed", 0)
        + tasks.get("replayed", 0)
    )
    lines.append(
        f"cells {settled}/{total} settled "
        f"({tasks.get('replayed', 0)} replayed, "
        f"{tasks.get('done', 0)} live, {tasks.get('failed', 0)} failed)  "
        f"in-flight {tasks.get('in_flight', 0)}  "
        f"queued {tasks.get('queued', 0)}  "
        f"retries {tasks.get('retries', 0)}  "
        f"timeouts {tasks.get('timeouts', 0)}"
    )
    prog = status.get("progress") or {}
    fraction = prog.get("fraction") or 0.0
    lines.append(
        f"progress {_bar(fraction)} {fraction * 100:5.1f}%  "
        f"rate {_fmt(prog.get('rate_per_s'), '{:.3g}')} cells/s  "
        f"eta {_fmt(prog.get('eta_s'), '{:.1f}')} s  "
        f"shm {status.get('shm_bytes', 0) / 2**20:.2f} MiB"
    )
    workers = status.get("workers") or []
    if workers:
        lines.append(f"{'worker':>8}  {'state':<5} {'cell':>5} "
                     f"{'done':>5}  last-reply")
        for w in workers:
            cell = w.get("index")
            lines.append(
                f"{w.get('pid', '?'):>8}  {w.get('state', '?'):<5} "
                f"{'-' if cell is None else cell:>5} "
                f"{w.get('tasks_done', 0):>5}  "
                f"{_fmt(w.get('last_reply_age_s'), '{:.1f}', '-')} s"
            )
    replayed = status.get("replayed_indices") or []
    if replayed:
        shown = ", ".join(str(i) for i in replayed[:16])
        more = f", … ({len(replayed)} total)" if len(replayed) > 16 else ""
        lines.append(f"replayed cells: {shown}{more}")
    journal = meta.get("journal")
    if journal:
        lines.append(f"journal: {journal}")
    return "\n".join(lines)


def render_fleet(status: dict) -> str:
    """Fleet plain-text view of one ``fleet`` snapshot."""
    lines = []
    state = "done" if status.get("done") else "running"
    fleet = status.get("fleet") or {}
    lines.append(
        f"tecfan top — fleet x{fleet.get('n_nodes', '?')} "
        f"({status.get('router', '?')}/{status.get('stepper', '?')}, "
        f"pid {status.get('pid', '?')}) [{state}] seq={status.get('seq', 0)}"
    )
    prog = status.get("progress") or {}
    fraction = prog.get("fraction") or 0.0
    lines.append(
        f"progress {_bar(fraction)} {fraction * 100:5.1f}%  "
        f"sim {_fmt(prog.get('sim_time_s'), '{:.0f}')}"
        f"/{_fmt(prog.get('max_time_s'), '{:.0f}')} s  "
        f"intervals {prog.get('intervals', 0)} "
        f"(+{prog.get('ff_intervals', 0)} fast-forwarded)  "
        f"rate {_fmt(prog.get('rate_sim_per_wall'), '{:.3g}')} sim-s/s  "
        f"eta {_fmt(prog.get('eta_s'), '{:.1f}')} s"
    )
    thr = status.get("t_threshold_c")
    last_peak = fleet.get("last_peak_c")
    headroom = (
        thr - last_peak if thr is not None and last_peak is not None else None
    )
    flag = "  !! OVER THRESHOLD" if (
        headroom is not None and headroom < 0
    ) else ""
    lines.append(
        f"peak {_fmt(last_peak)} degC (run max "
        f"{_fmt(fleet.get('peak_temp_c'))})  threshold {_fmt(thr)}  "
        f"headroom {_fmt(headroom, '{:+.2f}')} degC{flag}"
    )
    lines.append(
        f"power {_fmt(fleet.get('power_w'), '{:.0f}')} W  "
        f"energy {_fmt(fleet.get('energy_j'), '{:.3g}')} J  "
        f"p99 {_fmt(fleet.get('p99_latency_s'), '{:.3g}')} s  "
        f"backlog {_fmt(fleet.get('backlog_inst'), '{:.3g}')} inst  "
        f"util {_fmt(fleet.get('utilization'), '{:.2f}')}  "
        f"classes {fleet.get('class_groups', '?')}"
    )
    history = status.get("history") or []
    spark = _sparkline([h.get("headroom_c") for h in history])
    if spark:
        lines.append(f"headroom  {spark}  (last {len(history)} snapshots)")
    nodes = status.get("nodes") or []
    if nodes:
        lines.append(f"{'node':>6}  {'peak degC':>9}  {'fan':>3}  {'tec-on':>6}")
        for nd in nodes:
            lines.append(
                f"{nd.get('node', '?'):>6}  "
                f"{_fmt(nd.get('peak_temp_c')):>9}  "
                f"{_fmt(nd.get('fan_level'), '{:.0f}'):>3}  "
                f"{_fmt(nd.get('tec_on'), '{:.0f}'):>6}"
            )
    counters = status.get("counters") or {}
    if counters:
        parts = [f"{k}={int(v)}" for k, v in sorted(counters.items())]
        lines.append("counters: " + "  ".join(parts))
    return "\n".join(lines)


def render_status(status: dict) -> str:
    """Dispatch to the kind-appropriate renderer."""
    if status.get("kind") == "pool":
        return render_top(status)
    if status.get("kind") == "fleet":
        return render_fleet(status)
    return render_watch(status)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch in "_:") else "_")
    sanitized = "".join(out)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return "tecfan_" + sanitized


def _prom_number(value) -> str:
    v = float(value)
    if v == float("inf"):
        return "+Inf"
    return repr(v) if v != int(v) else str(int(v))


def prometheus_text(snapshot: dict | None, status: dict | None = None) -> str:
    """Render a metrics snapshot (+ live status gauges) in Prometheus
    text exposition format (version 0.0.4).

    Counters get the conventional ``_total`` suffix; histograms emit
    cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
    Dots and dashes in instrument names become underscores, and
    everything is prefixed ``tecfan_``.
    """
    lines: list[str] = []
    snapshot = snapshot or {}
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        pname = _prom_name(name) + "_total"
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_prom_number(value)}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_prom_number(value)}")
    for name, hist in sorted((snapshot.get("histograms") or {}).items()):
        pname = _prom_name(name)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        for edge, count in zip(hist["edges"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{pname}_bucket{{le="{_prom_number(edge)}"}} {cumulative}'
            )
        lines.append(f'{pname}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{pname}_sum {_prom_number(hist['total'])}")
        lines.append(f"{pname}_count {hist['count']}")
    if status is not None:
        live: list[tuple[str, object]] = [("live_up", 1)]
        live.append(("live_done", 1 if status.get("done") else 0))
        live.append(("live_snapshot_seq", status.get("seq", 0)))
        prog = status.get("progress") or {}
        live.append(("live_progress_fraction", prog.get("fraction")))
        live.append(("live_eta_seconds", prog.get("eta_s")))
        if status.get("kind") == "engine-run":
            live.append(("live_sim_time_seconds", prog.get("sim_time_s")))
            thermal = status.get("thermal") or {}
            live.append(("live_peak_temp_celsius",
                         thermal.get("peak_temp_c")))
            live.append(("live_headroom_celsius", thermal.get("headroom_c")))
            energy = status.get("energy") or {}
            live.append(("live_epi_joules", energy.get("epi_j")))
        elif status.get("kind") == "fleet":
            fleet = status.get("fleet") or {}
            live.append(("live_sim_time_seconds", prog.get("sim_time_s")))
            live.append(("fleet_nodes", fleet.get("n_nodes")))
            live.append(("fleet_peak_temp_celsius", fleet.get("last_peak_c")))
            live.append(("fleet_power_watts", fleet.get("power_w")))
            live.append(("fleet_p99_latency_seconds",
                         fleet.get("p99_latency_s")))
            live.append(("fleet_backlog_instructions",
                         fleet.get("backlog_inst")))
        else:
            tasks = status.get("tasks") or {}
            for key in ("total", "done", "failed", "replayed", "in_flight",
                        "queued"):
                live.append((f"pool_tasks_{key}", tasks.get(key)))
            live.append(("pool_workers", len(status.get("workers") or [])))
            live.append(("pool_shm_bytes", status.get("shm_bytes")))
        for name, value in live:
            if value is None:
                continue
            pname = "tecfan_" + name
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_number(value)}")
    return "\n".join(lines) + "\n"


def _snapshot_safely(tel) -> dict:
    """Metrics snapshot tolerant of the single mutator thread.

    The registry has no locks (the simulator is single-threaded); the
    exposition thread only *reads*, but a new instrument created while
    the snapshot iterates can raise ``RuntimeError: dictionary changed
    size``. Retrying a handful of times makes a scrape effectively
    always succeed without adding a lock to the hot path.
    """
    for _ in range(8):
        try:
            return tel.metrics.snapshot()
        except RuntimeError:
            continue
    return {"counters": {}, "gauges": {}, "histograms": {}}


class MetricsServer:
    """Prometheus scrape endpoint over a stdlib ``http.server`` thread.

    Serves the *currently active* telemetry session's registry (so a
    scrape mid-run sees live counters) plus, when ``status_path`` is
    given, the latest status snapshot's gauges. ``port=0`` binds an
    ephemeral port (see :attr:`port`). The server thread is a daemon and
    only ever reads, so it cannot perturb the simulation.
    """

    def __init__(self, port: int = 0, *, host: str = "",
                 status_path=None, telemetry_getter=None):
        import http.server

        self.status_path = (
            os.fspath(status_path) if status_path is not None else None
        )
        self._get_tel = telemetry_getter or obs.get_telemetry
        server_self = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - http.server API
                body = server_self._render().encode()
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-scrape stderr
                pass

        self._server = http.server.ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        import threading

        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="tecfan-metrics",
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def _render(self) -> str:
        tel = self._get_tel()
        snapshot = _snapshot_safely(tel) if tel is not None else None
        status = None
        if self.status_path is not None:
            try:
                status = read_status(self.status_path)
            except ObservabilityError:
                status = None
        return prometheus_text(snapshot, status)

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
