"""Run manifests: the reproducibility header of a telemetry export.

A manifest answers "what produced this data": package version, git
commit, Python/platform, when the session ran, the run context the
engine and CLI annotated (engine config, workload, policy, metrics), and
a full aggregate snapshot of the session's spans and metrics. It is the
first record of every JSONL telemetry stream and can also be exported
standalone as JSON (:func:`repro.core.export.manifest_to_json`).
"""

from __future__ import annotations

import dataclasses
import platform
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.obs.telemetry import Telemetry

#: Bumped whenever the manifest/JSONL record layout changes.
#: Schema 2 added streaming (``stream_header`` records, ``events_streamed``)
#: and the merged-worker fields (``worker=N`` span-edge labels,
#: ``parallel.worker_*`` counters, ``*.max`` gauge companions).
MANIFEST_SCHEMA: int = 2

#: Stream schema versions this build can read back.
SUPPORTED_SCHEMAS: tuple[int, ...] = (1, 2)


def git_sha(cwd: str | Path | None = None) -> str | None:
    """Current git commit hash, or ``None`` outside a work tree.

    Defaults to the package's own checkout so installed copies and
    subprocess-less platforms degrade to ``None`` instead of failing.
    """
    if cwd is None:
        cwd = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def jsonable(value):
    """Best-effort conversion of run objects to JSON-safe values.

    Dataclasses become dicts, numpy scalars/arrays become Python
    numbers/lists, containers recurse, and anything else that the JSON
    encoder would reject is captured as ``repr(value)`` — a manifest
    must never fail because a config embeds a rich object (e.g. a
    sensor bank).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else repr(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return jsonable(float(value))
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [jsonable(v) for v in value]
    return repr(value)


def build_manifest(tel: Telemetry, extra: dict | None = None) -> dict:
    """Assemble the run manifest for one telemetry session.

    Parameters
    ----------
    tel:
        The session to snapshot (context + spans + metrics).
    extra:
        Additional top-level entries (e.g. the CLI command line).
    """
    from repro import __version__

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "repro_version": __version__,
        "git_sha": git_sha(),
        "created_unix": tel.created_unix,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "context": jsonable(tel.context),
        "events_recorded": len(tel.events),
        "events_streamed": tel.events_streamed,
        "events_dropped": tel.events_dropped,
        "telemetry": tel.snapshot(),
    }
    if extra:
        manifest.update(jsonable(extra))
    return manifest
