"""The telemetry facade and the process-global active instance.

Hot paths never hold a :class:`Telemetry` reference; they call the
module-level hooks (:func:`span`, :func:`incr`, :func:`observe`,
:func:`event`, :func:`annotate`), which dispatch to the *active*
telemetry — or do nothing when none is installed. The disabled path is a
single global load plus an ``is None`` check, so leaving the hooks wired
into the per-interval loops costs effectively nothing for ordinary runs
and benchmarks.

Typical use::

    from repro.obs import Telemetry, telemetry_session

    tel = Telemetry()
    with telemetry_session(tel):
        result = engine.run(run, controller)
    print(tel.metrics.snapshot()["counters"])

The active instance is process-global (not thread-local): the simulator
is single-threaded, and a global keeps the disabled fast path to one
dict-free check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import DEFAULT_MS_BUCKETS, MetricsRegistry
from repro.obs.spans import SpanTracker

#: Upper bound on retained structured events; beyond it events are
#: counted as dropped rather than stored (a 10-minute server run at 2 ms
#: intervals emits ~300k interval events — well under this).
MAX_EVENTS: int = 1_000_000


class _NullSpan:
    """Shared no-op context manager returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager recording one span occurrence on exit."""

    __slots__ = ("_tel", "_name", "_hist_ms")

    def __init__(self, tel: "Telemetry", name: str, hist_ms: str | None):
        self._tel = tel
        self._name = name
        self._hist_ms = hist_ms

    def __enter__(self) -> "_Span":
        self._tel.spans.start(self._name)
        return self

    def __exit__(self, *exc) -> bool:
        _, duration_s = self._tel.spans.stop()
        if self._hist_ms is not None:
            self._tel.metrics.histogram(
                self._hist_ms, DEFAULT_MS_BUCKETS
            ).observe(duration_s * 1e3)
        return False


@dataclass
class Telemetry:
    """One observation session: spans + metrics + events + context.

    Parameters
    ----------
    record_events:
        Whether :meth:`event` retains structured records (the JSONL
        interval stream). Aggregates are always kept.
    """

    record_events: bool = True
    spans: SpanTracker = field(default_factory=SpanTracker)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: Structured event records (dicts), in emission order.
    events: list = field(default_factory=list)
    #: Free-form run context merged into the manifest (engine config,
    #: workload/policy names, run metrics, ...).
    context: dict = field(default_factory=dict)
    events_dropped: int = 0
    #: Optional event consumer (e.g. a
    #: :class:`repro.obs.streaming.StreamingExporter`'s ``write_event``).
    #: When set, events are handed to the sink instead of retained, so
    #: memory stays bounded for arbitrarily long runs; ``MAX_EVENTS``
    #: does not apply on the sink path.
    event_sink: object = None
    #: Events handed to ``event_sink`` (not retained in ``events``).
    events_streamed: int = 0
    created_unix: float = field(default_factory=time.time)
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    # ------------------------------------------------------------------
    def span(self, name: str, hist_ms: str | None = None) -> _Span:
        """Context manager timing one region; nests under open spans.

        ``hist_ms`` additionally feeds each duration (in milliseconds)
        into the named histogram.
        """
        return _Span(self, name, hist_ms)

    def event(self, kind: str, **fields) -> None:
        """Record one structured event (if event recording is on).

        Past ``MAX_EVENTS`` retained records (sink-less sessions only),
        events are dropped: one loud ``warnings.warn`` fires at drop
        onset — a silently truncated event stream reads as a complete
        one otherwise — and every drop feeds both the
        ``events_dropped`` attribute (already in the manifest) and the
        ``obs.events_dropped`` counter, so the truncation survives into
        merged/exported aggregates too.
        """
        if not self.record_events:
            return
        if self.event_sink is None and len(self.events) >= MAX_EVENTS:
            if self.events_dropped == 0:
                import warnings

                warnings.warn(
                    f"telemetry event retention cap MAX_EVENTS="
                    f"{MAX_EVENTS} hit: further events will be DROPPED "
                    "(aggregates stay complete, the event stream is "
                    "truncated) — use the streaming exporter "
                    "(--telemetry-stream) for long runs",
                    RuntimeWarning,
                    stacklevel=3,
                )
            self.events_dropped += 1
            self.metrics.counter("obs.events_dropped").inc()
            return
        record = {"kind": kind, "t_rel_s": time.perf_counter() - self._t0}
        record.update(fields)
        if self.event_sink is not None:
            self.event_sink(record)
            self.events_streamed += 1
        else:
            self.events.append(record)

    def annotate(self, key: str, value) -> None:
        """Attach one context entry (reported in the run manifest)."""
        self.context[key] = value

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe aggregate view: spans, edges, and all metrics."""
        out = {
            "spans": self.spans.snapshot(),
            "span_edges": self.spans.edge_snapshot(),
        }
        out.update(self.metrics.snapshot())
        return out

    def merge(self, worker, label: str | None = None) -> "Telemetry":
        """Fold a worker session's aggregates into this session.

        ``worker`` is a :class:`repro.obs.merge.WorkerTelemetry` capture
        (or another :class:`Telemetry`, captured on the fly). Counters
        sum, gauges take the last writer with a ``*.max`` companion,
        histograms require identical edges, and span stats sum — with
        the worker's root spans re-parented under ``label`` (the
        ``worker=N`` tag) so the merged call tree keeps per-worker
        subtrees. Worker events are *not* merged (aggregates only ship
        across the process boundary); they are accounted in the
        ``parallel.worker_events_dropped`` counter by the fan-out.
        Returns ``self`` so merges chain.
        """
        from repro.obs.merge import WorkerTelemetry, capture_worker_telemetry

        if isinstance(worker, Telemetry):
            worker = capture_worker_telemetry(worker)
        if not isinstance(worker, WorkerTelemetry):
            raise TypeError(
                f"cannot merge {type(worker).__name__!r} into a Telemetry "
                "session (expected WorkerTelemetry or Telemetry)"
            )
        self.spans.merge(worker.spans, worker.span_edges, label=label)
        self.metrics.merge(
            {
                "counters": worker.counters,
                "gauges": worker.gauges,
                "histograms": worker.histograms,
            }
        )
        if worker.context:
            workers = self.context.setdefault("workers", {})
            key = label if label is not None else f"worker={len(workers)}"
            workers[key] = worker.context
        return self

    def reset(self) -> None:
        """Drop every recording (aggregates, events, context)."""
        self.spans.reset()
        self.metrics.reset()
        self.events.clear()
        self.context.clear()
        self.events_dropped = 0
        self.events_streamed = 0


# ----------------------------------------------------------------------
# The active instance and the hot-path hooks.
# ----------------------------------------------------------------------

_ACTIVE: Telemetry | None = None


def get_telemetry() -> Telemetry | None:
    """The currently installed telemetry, or ``None`` when disabled."""
    return _ACTIVE


def set_telemetry(tel: Telemetry | None) -> Telemetry | None:
    """Install ``tel`` as the active instance; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tel
    return previous


@contextmanager
def telemetry_session(tel: Telemetry | None = None):
    """Install a telemetry instance for the duration of a ``with`` block.

    Yields the installed instance (a fresh one if none is given); the
    previously active instance is restored on exit, so sessions nest.
    """
    if tel is None:
        tel = Telemetry()
    previous = set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(previous)


def span(name: str, hist_ms: str | None = None):
    """Hot-path span hook: no-op context manager when telemetry is off."""
    tel = _ACTIVE
    if tel is None:
        return _NULL_SPAN
    return tel.span(name, hist_ms=hist_ms)


def incr(name: str, n: int = 1) -> None:
    """Hot-path counter hook."""
    tel = _ACTIVE
    if tel is not None:
        tel.metrics.counter(name).inc(n)


def observe(name: str, value: float, edges: tuple = DEFAULT_MS_BUCKETS) -> None:
    """Hot-path histogram hook."""
    tel = _ACTIVE
    if tel is not None:
        tel.metrics.histogram(name, edges).observe(value)


def gauge(name: str, value: float) -> None:
    """Hot-path gauge hook."""
    tel = _ACTIVE
    if tel is not None:
        tel.metrics.gauge(name).set(value)


def event(kind: str, **fields) -> None:
    """Hot-path structured-event hook."""
    tel = _ACTIVE
    if tel is not None:
        tel.event(kind, **fields)


def annotate(key: str, value) -> None:
    """Attach run context to the active telemetry, if any."""
    tel = _ACTIVE
    if tel is not None:
        tel.annotate(key, value)
