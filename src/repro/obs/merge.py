"""Cross-process telemetry capture for the parallel fan-out.

A :func:`repro.parallel.parallel_map` worker is a spawned interpreter:
the parent's active :class:`~repro.obs.telemetry.Telemetry` session does
not exist there, so — before this module — every span and counter a
worker incurred was silently lost. The fix is the classic map-side
aggregation discipline: each worker installs its *own* session around
the task, condenses it to a picklable :class:`WorkerTelemetry` of plain
aggregates (span stats + edges, counters, gauges, histograms), and
ships that back alongside the result. The parent folds each capture
into its session via :meth:`Telemetry.merge` — counters sum, gauges
take the last writer with a ``*.max`` companion, histograms require
identical bucket edges, and span stats sum with the worker's root spans
re-parented under a ``worker=N`` label.

Worker *events* (the per-interval JSONL stream) deliberately do not
ship: a long sweep would pickle hundreds of thousands of dicts through
the result pipe. They are counted instead — each capture carries
``events_discarded`` and the parent accumulates it into the
``parallel.worker_events_dropped`` counter, so a merged manifest is
honest about what the fleet recorded but did not retain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.manifest import jsonable
from repro.obs.telemetry import Telemetry, telemetry_session

__all__ = [
    "PersistentWorkerSession",
    "WorkerTelemetry",
    "capture_worker_telemetry",
    "run_captured",
]


@dataclass
class WorkerTelemetry:
    """Picklable aggregate condensate of one worker's telemetry session.

    Every field is the JSON-safe snapshot form (the same shapes
    :func:`repro.obs.read_jsonl` groups a stream into), so a capture
    pickles in microseconds and never drags live instrument objects —
    or anything unpicklable they might reference — across the process
    boundary.
    """

    #: ``{span_name: stats}`` (:meth:`SpanTracker.snapshot` form).
    spans: dict = field(default_factory=dict)
    #: ``[{"parent": ..., "child": ..., "count": ...}]`` nesting edges.
    span_edges: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    #: Run context the worker annotated (JSON-safe).
    context: dict = field(default_factory=dict)
    #: Events the worker emitted but that do not ship (plus any the
    #: worker itself dropped at the ``MAX_EVENTS`` cap).
    events_discarded: int = 0

    @property
    def empty(self) -> bool:
        """Did the worker record nothing at all?"""
        return not (
            self.spans
            or self.span_edges
            or self.counters
            or self.gauges
            or self.histograms
            or self.events_discarded
        )


def capture_worker_telemetry(tel: Telemetry) -> WorkerTelemetry:
    """Condense a live session to its picklable aggregate form."""
    snap = tel.snapshot()
    return WorkerTelemetry(
        spans=snap["spans"],
        span_edges=snap["span_edges"],
        counters=snap["counters"],
        gauges=snap["gauges"],
        histograms=snap["histograms"],
        context=jsonable(tel.context),
        events_discarded=len(tel.events)
        + tel.events_streamed
        + tel.events_dropped,
    )


def run_captured(fn: Callable, payload) -> tuple:
    """Run ``fn(payload)`` under a fresh session; return both halves.

    The worker-side half of the aggregation: installs a fresh
    :class:`Telemetry` whose events go to a counting no-op sink (so the
    task's instrumentation behaves exactly as under the parent's session
    while retaining nothing), and returns
    ``(result, WorkerTelemetry)``. Exceptions propagate to the caller's
    usual handling — a failed attempt's telemetry is discarded with it.
    """
    tel = Telemetry(event_sink=_discard_event)
    with telemetry_session(tel):
        result = fn(payload)
    return result, capture_worker_telemetry(tel)


class PersistentWorkerSession:
    """One reusable worker-side session for a pool worker's lifetime.

    A persistent :class:`~repro.parallel.WorkerPool` worker runs many
    tasks back to back; allocating a fresh :class:`Telemetry` per task
    (as :func:`run_captured` does) is wasted churn there. This keeps a
    single session object — events to the counting no-op sink, exactly
    like :func:`run_captured` — and :meth:`Telemetry.reset`\\ s it
    between tasks, so each capture still covers exactly one task and the
    parent's task-index-order merge semantics are unchanged.
    """

    def __init__(self) -> None:
        self._tel = Telemetry(event_sink=_discard_event)

    def run(self, fn: Callable) -> tuple:
        """Run ``fn()`` under the recycled session.

        Returns ``(result, WorkerTelemetry)``; exceptions propagate (the
        failed attempt's telemetry is discarded with it, and the next
        task starts from a reset session either way).
        """
        self._tel.reset()
        with telemetry_session(self._tel):
            result = fn()
        return result, capture_worker_telemetry(self._tel)


def _discard_event(record: dict) -> None:
    """Event sink for workers: drop the record (the count survives)."""
