"""Incremental JSONL telemetry export with bounded memory.

:func:`repro.obs.write_jsonl` serializes a session *after* the run — it
needs every event resident, which is exactly wrong for production-scale
runs (hours of 2 ms intervals blow straight past ``MAX_EVENTS``). The
:class:`StreamingExporter` inverts that: it plugs into a
:class:`~repro.obs.telemetry.Telemetry` as the ``event_sink``, flushes
interval events to disk in small batches as they are emitted, and
appends the manifest plus all span/metric aggregates when the session
closes. Memory stays O(``flush_every``) regardless of run length, and a
crashed run still leaves every flushed event on disk behind a
``stream_header`` record identifying the schema.

Optional size-based rotation splits the stream into numbered part
files (``run.jsonl``, ``run.part001.jsonl``, ...): each part re-opens
with its own header, and the final part carries the manifest and
aggregates. :func:`repro.obs.read_jsonl` accepts any part (records are
typed, not positional); :func:`read_stream_parts` re-groups the whole
set.

Usage::

    from repro.obs import Telemetry, telemetry_session
    from repro.obs.streaming import StreamingExporter

    with StreamingExporter("run.jsonl", rotate_bytes=64 << 20) as exp:
        tel = exp.attach(Telemetry())
        with telemetry_session(tel):
            engine.run(run, controller)   # events stream to disk
    # exp.close() ran on exit: manifest + aggregates appended.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.exceptions import ObservabilityError
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest
from repro.obs.telemetry import Telemetry

__all__ = ["StreamingExporter", "read_stream_parts"]


class StreamingExporter:
    """Flush telemetry events to a JSONL stream as they happen.

    Parameters
    ----------
    path:
        The stream path (first part; rotation derives sibling names).
    flush_every:
        Events buffered between writes. Small enough that a crash loses
        at most a batch, large enough to amortize the encode+write.
    rotate_bytes:
        Rotate to a new part once the current file passes this size
        (``None`` disables rotation). Checked at flush granularity, so
        parts overshoot by at most one batch.
    atomic_parts:
        Write each part at ``<name>.tmp`` and rename it into place only
        when it is *complete* (rotation or close) — so readers polling
        the directory never observe a half-written part, and a crash
        leaves the in-progress part clearly marked as ``.tmp``.
        :func:`read_stream_parts` falls back to the ``.tmp`` sibling
        when the final name is missing, so crashed streams stay
        readable. Off by default: the plain mode lets a live part be
        tailed at its final path.
    fsync:
        Durability policy: ``"never"`` (default — the OS flushes),
        ``"rotate"`` (fsync each part as it completes) or ``"always"``
        (fsync after every batch write; the crash-durable but slowest
        option).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        flush_every: int = 256,
        rotate_bytes: int | None = None,
        atomic_parts: bool = False,
        fsync: str = "never",
    ):
        if flush_every < 1:
            raise ObservabilityError("flush_every must be >= 1")
        if rotate_bytes is not None and rotate_bytes < 1:
            raise ObservabilityError("rotate_bytes must be >= 1 (or None)")
        if fsync not in ("never", "rotate", "always"):
            raise ObservabilityError(
                f"fsync policy must be 'never', 'rotate' or 'always', "
                f"got {fsync!r}"
            )
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.rotate_bytes = rotate_bytes
        self.atomic_parts = bool(atomic_parts)
        self.fsync = fsync
        self._active_tmp: Path | None = None
        #: Every part written, in order (``paths[0]`` is ``path``).
        self.paths: list[Path] = []
        self.events_written = 0
        self.bytes_written = 0
        self._pending: list[str] = []
        self._part_bytes = 0
        self._fh = None
        self._tel: Telemetry | None = None
        self._closed = False
        self._open_part()

    # ------------------------------------------------------------------
    def attach(self, tel: Telemetry) -> Telemetry:
        """Wire a session's events into this stream; returns the session."""
        tel.event_sink = self.write_event
        self._tel = tel
        return tel

    def write_event(self, record: dict) -> None:
        """Buffer one event record; flushes every ``flush_every`` events."""
        if self._closed:
            raise ObservabilityError(
                f"telemetry stream {self.path} is closed"
            )
        self._pending.append(
            json.dumps({"type": "event", **record}, sort_keys=True)
        )
        self.events_written += 1
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered events out; rotate first if the part is full."""
        if not self._pending:
            return
        if (
            self.rotate_bytes is not None
            and self._part_bytes >= self.rotate_bytes
        ):
            self._next_part()
        self._write_lines(self._pending)
        self._pending = []

    def close(self, tel: Telemetry | None = None, extra: dict | None = None):
        """Flush, append the manifest + aggregates, and close the file.

        ``tel`` defaults to the :meth:`attach`-ed session; with no
        session at all only the buffered events are flushed. ``extra``
        merges into the manifest (e.g. the CLI command line). Returns
        the list of part paths. Idempotent.
        """
        if self._closed:
            return self.paths
        self.flush()
        tel = tel if tel is not None else self._tel
        if tel is not None:
            stream_extra = {
                "events_streamed": self.events_written,
                "stream_parts": [str(p) for p in self.paths],
            }
            if extra:
                stream_extra.update(extra)
            manifest = build_manifest(tel, extra=stream_extra)
            # Local import: exporters imports nothing from here, but
            # keeping the record layout in one place matters more than
            # the top-level import aesthetics.
            from repro.obs.exporters import telemetry_records

            records = telemetry_records(
                tel, manifest=manifest, include_events=False
            )
            self._write_lines(
                json.dumps(rec, sort_keys=True) for rec in records
            )
            if getattr(tel.event_sink, "__self__", None) is self:
                tel.event_sink = None
        self._finalize_part()
        self._fh = None
        self._closed = True
        return self.paths

    # ------------------------------------------------------------------
    def __enter__(self) -> "StreamingExporter":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def _open_part(self) -> None:
        if self.paths:
            n = len(self.paths)
            part = self.path.with_name(
                f"{self.path.stem}.part{n:03d}{self.path.suffix}"
            )
        else:
            part = self.path
        self.paths.append(part)
        if self.atomic_parts:
            self._active_tmp = part.with_name(part.name + ".tmp")
            self._fh = open(self._active_tmp, "w")
        else:
            self._fh = open(part, "w")
        self._part_bytes = 0
        header = json.dumps(
            {
                "type": "stream_header",
                "schema": MANIFEST_SCHEMA,
                "part": len(self.paths) - 1,
                "created_unix": time.time(),
            },
            sort_keys=True,
        )
        self._write_lines([header])

    def _next_part(self) -> None:
        self._finalize_part()
        self._open_part()

    def _finalize_part(self) -> None:
        """Complete the active part: flush, fsync per policy, close —
        and, under ``atomic_parts``, rename the ``.tmp`` into place so
        the final name only ever holds a complete part."""
        self._fh.flush()
        if self.fsync in ("rotate", "always"):
            os.fsync(self._fh.fileno())
        self._fh.close()
        if self._active_tmp is not None:
            os.replace(self._active_tmp, self.paths[-1])
            self._active_tmp = None

    def _write_lines(self, lines) -> None:
        text = "\n".join(lines) + "\n"
        self._fh.write(text)
        self._fh.flush()
        if self.fsync == "always":
            os.fsync(self._fh.fileno())
        self._part_bytes += len(text)
        self.bytes_written += len(text)


def _empty_group() -> dict:
    return {
        "manifest": None,
        "stream_header": None,
        "spans": {},
        "span_edges": [],
        "counters": {},
        "gauges": {},
        "histograms": {},
        "events": [],
    }


def _read_part(path) -> tuple[dict, dict | None]:
    """Parse one part tolerantly: ``(group, truncation_report | None)``.

    Crash model: a SIGKILL mid-write can leave (a) an ``atomic_parts``
    stream's in-progress part only at its ``.tmp`` name — resolved by
    falling back to the sibling — and (b) a torn *final* line. The torn
    tail is dropped and reported rather than raised; corruption
    anywhere but the tail is outside the crash model and still raises
    ``ObservabilityError`` via :func:`repro.obs.read_jsonl`.
    """
    from repro.obs.exporters import read_jsonl

    path = Path(path)
    actual = path
    if not path.exists():
        tmp = path.with_name(path.name + ".tmp")
        if tmp.exists():
            actual = tmp
    text = actual.read_text()
    lines = text.splitlines()
    truncation = None
    if lines:
        try:
            json.loads(lines[-1])
        except json.JSONDecodeError:
            torn = lines.pop()
            truncation = {
                "path": str(actual),
                "line": len(lines) + 1,
                "bytes_dropped": len(torn),
                "snippet": torn[:120],
            }
    if not lines:
        return _empty_group(), truncation
    return read_jsonl("\n".join(lines) + "\n"), truncation


def read_stream_parts(paths) -> dict:
    """Group a rotated part set back into one aggregate view.

    ``paths`` is an iterable of part paths (any order; sorted by the
    header's part index). Events concatenate in stream order; the
    manifest and aggregates come from whichever part carries them (the
    final one, for a cleanly closed stream).

    Tolerates a crashed stream: a part whose final record was torn
    mid-write is read up to the tear, and the tear is *reported* in the
    returned ``"truncations"`` list (path, line, bytes dropped) instead
    of raising; a missing part with a ``.tmp`` sibling (an
    ``atomic_parts`` stream killed before rename) is read from the
    sibling. ``"truncations"`` is empty for a cleanly closed stream.
    """
    reads = [_read_part(p) for p in paths]
    reads.sort(
        key=lambda r: (r[0].get("stream_header") or {}).get("part", 0)
    )
    out: dict = _empty_group()
    out["truncations"] = [t for _, t in reads if t is not None]
    for group, _ in reads:
        out["events"].extend(group["events"])
        if out["stream_header"] is None:
            out["stream_header"] = group.get("stream_header")
        if group["manifest"] is not None:
            out["manifest"] = group["manifest"]
            for key in ("spans", "counters", "gauges", "histograms"):
                out[key] = group[key]
            out["span_edges"] = group["span_edges"]
    return out
