"""Hierarchical wall-time spans with lightweight aggregation.

A *span* names one timed region of the control loop — ``engine.step``,
``thermal.solve``, ``controller.decide`` — and spans nest: whatever is
open when a new span starts becomes its parent. Rather than retaining
every individual timing (the engine runs thousands of 2 ms intervals per
second of simulated time), the tracker keeps one :class:`SpanStats`
aggregate per span name: call count, total/min/max wall time, and *self*
time (total minus time attributed to child spans). Parent->child call
edges are counted separately so exporters can reconstruct the call tree.

The tracker is deliberately observation-only: it never influences the
simulation, and it is cheap enough to leave wired into the hot paths
(one ``perf_counter`` pair and a dict update per span entry).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SpanStats:
    """Aggregate of every completed occurrence of one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    #: Wall time not attributed to child spans.
    self_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        """Mean wall time per call [s]."""
        return self.total_s / self.count if self.count else 0.0

    def add(self, duration_s: float, child_s: float) -> None:
        """Fold one completed occurrence into the aggregate."""
        self.count += 1
        self.total_s += duration_s
        self.self_s += max(0.0, duration_s - child_s)
        self.min_s = min(self.min_s, duration_s)
        self.max_s = max(self.max_s, duration_s)

    def to_dict(self) -> dict:
        """JSON-safe snapshot of the aggregate."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "self_s": self.self_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


@dataclass
class SpanTracker:
    """Aggregating span recorder with an explicit open-span stack.

    Parameters
    ----------
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    clock: callable = time.perf_counter
    stats: dict = field(default_factory=dict)
    #: ``(parent_name, child_name) -> call count`` nesting edges; the
    #: parent of a top-level span is recorded as ``None``.
    edges: dict = field(default_factory=dict)
    # Open spans: [name, start_time, accumulated_child_time].
    _stack: list = field(default_factory=list, repr=False)

    def start(self, name: str) -> None:
        """Open a span; it becomes the parent of spans started inside."""
        parent = self._stack[-1][0] if self._stack else None
        edge = (parent, name)
        self.edges[edge] = self.edges.get(edge, 0) + 1
        self._stack.append([name, self.clock(), 0.0])

    def stop(self) -> tuple[str, float]:
        """Close the innermost span; returns ``(name, duration_s)``."""
        name, t0, child_s = self._stack.pop()
        duration = self.clock() - t0
        stats = self.stats.get(name)
        if stats is None:
            stats = self.stats[name] = SpanStats(name=name)
        stats.add(duration, child_s)
        if self._stack:
            self._stack[-1][2] += duration
        return name, duration

    @property
    def depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def merge(
        self,
        stats: dict,
        edges: list[dict] | None = None,
        label: str | None = None,
    ) -> None:
        """Fold another tracker's snapshot into this one.

        ``stats`` is the :meth:`snapshot` form (name -> aggregate dict)
        and ``edges`` the :meth:`edge_snapshot` form. Per-name aggregates
        sum (count/total/self; min/max fold). When ``label`` is given —
        the ``worker=N`` tag of a fan-out merge — the incoming *root*
        edges are re-parented under a synthetic ``label`` node, so the
        reconstructed call tree keeps each worker's subtree separable
        while the per-name stats still aggregate fleet-wide.
        """
        for name, st in stats.items():
            mine = self.stats.get(name)
            if mine is None:
                mine = self.stats[name] = SpanStats(name=name)
            count = int(st["count"])
            mine.count += count
            mine.total_s += float(st["total_s"])
            mine.self_s += float(st.get("self_s", 0.0))
            if count:
                mine.min_s = min(mine.min_s, float(st["min_s"]))
                mine.max_s = max(mine.max_s, float(st["max_s"]))
        relabelled = 0
        for rec in edges or []:
            parent, child, count = rec["parent"], rec["child"], rec["count"]
            if parent is None and label is not None:
                parent = label
                relabelled += count
            edge = (parent, child)
            self.edges[edge] = self.edges.get(edge, 0) + count
        if label is not None and relabelled:
            root = (None, label)
            self.edges[root] = self.edges.get(root, 0) + relabelled

    def snapshot(self) -> dict:
        """``{name: aggregate-dict}`` for every completed span."""
        return {name: st.to_dict() for name, st in sorted(self.stats.items())}

    def edge_snapshot(self) -> list[dict]:
        """Nesting edges as JSON-safe records (parent may be ``None``)."""
        return [
            {"parent": parent, "child": child, "count": count}
            for (parent, child), count in sorted(
                self.edges.items(), key=lambda kv: (kv[0][0] or "", kv[0][1])
            )
        ]

    def reset(self) -> None:
        """Drop all aggregates and open spans."""
        self.stats.clear()
        self.edges.clear()
        self._stack.clear()
