"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is the numeric side of the telemetry layer: where spans
answer "where did the wall time go", metrics answer "what did the
control loop do" — how many hot iterations the heuristic ran, how often
TEC devices switched, how many intervals violated the threshold, how the
solver's latency distributes. All instruments are plain Python objects
with no locking (the simulator is single-threaded); snapshots are
JSON-safe dicts consumed by the exporters.

Naming convention (see ``docs/OBSERVABILITY.md``): dotted
``subsystem.quantity`` names, with units suffixed when not obvious
(``thermal.solver_ms``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

from repro.exceptions import ObservabilityError

#: Default latency bucket upper edges [ms] for solver/step histograms:
#: sub-100 us resolution at the bottom (one steady solve is tens of us)
#: up to one second for pathological factorizations.
DEFAULT_MS_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    1000.0,
)


@dataclass
class Counter:
    """Monotonically increasing event count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        if n < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {n})"
            )
        self.value += n


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket histogram of a nonnegative quantity.

    ``edges`` are ascending bucket *upper* edges; an observation lands in
    the first bucket whose edge is >= the value, or in the implicit
    overflow bucket beyond the last edge. Bucket counts therefore have
    ``len(edges) + 1`` entries.
    """

    name: str
    edges: tuple = DEFAULT_MS_BUCKETS
    counts: list = None
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def __post_init__(self) -> None:
        edges = tuple(float(e) for e in self.edges)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ObservabilityError(
                f"histogram {self.name!r} needs strictly increasing edges"
            )
        self.edges = edges
        if self.counts is None:
            self.counts = [0] * (len(edges) + 1)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations beyond the last bucket edge."""
        return self.counts[-1]

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        self.counts[bisect_left(self.edges, v)] += 1
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def merge(self, other: dict) -> None:
        """Fold another histogram's snapshot (same edges) into this one.

        ``other`` is the :meth:`to_dict` form. Bucket-wise sums are only
        meaningful over identical edges, so any mismatch is an
        :class:`ObservabilityError` rather than a silent re-bucketing.
        """
        edges = tuple(float(e) for e in other["edges"])
        if edges != self.edges:
            raise ObservabilityError(
                f"histogram {self.name!r} merge with different edges: "
                f"{edges} vs {self.edges}"
            )
        for i, c in enumerate(other["counts"]):
            self.counts[i] += int(c)
        count = int(other["count"])
        self.count += count
        self.total += float(other["total"])
        if count:
            self.min = min(self.min, float(other["min"]))
            self.max = max(self.max, float(other["max"]))


@dataclass
class MetricsRegistry:
    """Name-keyed collection of counters, gauges, and histograms.

    Instruments are created on first use (``registry.counter("x").inc()``)
    so call sites never need a separate registration step; a name is
    bound to one instrument kind for the registry's lifetime.
    """

    _counters: dict = field(default_factory=dict)
    _gauges: dict = field(default_factory=dict)
    _histograms: dict = field(default_factory=dict)

    def _check_kind(self, name: str, kind: dict) -> None:
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ObservabilityError(
                    f"metric name {name!r} already bound to another kind"
                )

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_kind(name, self._counters)
            c = self._counters[name] = Counter(name=name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_kind(name, self._gauges)
            g = self._gauges[name] = Gauge(name=name)
        return g

    def histogram(self, name: str, edges: tuple = DEFAULT_MS_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_kind(name, self._histograms)
            h = self._histograms[name] = Histogram(name=name, edges=edges)
        elif tuple(float(e) for e in edges) != h.edges:
            raise ObservabilityError(
                f"histogram {name!r} re-registered with different edges: "
                f"{tuple(float(e) for e in edges)} vs {h.edges}"
            )
        return h

    # ------------------------------------------------------------------
    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation semantics (``docs/OBSERVABILITY.md``):

        * **counters sum** — the merged count is the fleet-wide total;
        * **gauges take the last writer**, and a ``<name>.max`` companion
          gauge keeps the maximum ever merged so a transient extreme in
          one worker is not erased by the next merge (incoming ``*.max``
          gauges fold by max, so merges nest);
        * **histograms require identical bucket edges** and sum
          bucket-wise (:meth:`Histogram.merge`).

        Merging is associative and, for counters and histograms,
        commutative — the properties the worker fan-out relies on.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in sorted(snapshot.get("gauges", {}).items()):
            if name.endswith(".max"):
                base = self._gauges.get(name)
                peak = value if base is None else max(base.value, value)
                self.gauge(name).set(peak)
                continue
            companion = f"{name}.max"
            previous = self._gauges.get(name)
            peak = value
            if previous is not None:
                peak = max(peak, previous.value)
            existing_max = self._gauges.get(companion)
            if existing_max is not None:
                peak = max(peak, existing_max.value)
            self.gauge(name).set(value)
            self.gauge(companion).set(peak)
        for name, hist in snapshot.get("histograms", {}).items():
            edges = tuple(float(e) for e in hist["edges"])
            self.histogram(name, edges).merge(hist)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe snapshot of every instrument, grouped by kind."""
        return {
            "counters": {
                n: c.value for n, c in sorted(self._counters.items())
            },
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
