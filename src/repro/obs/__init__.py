"""Observability: structured tracing, metrics, manifests, exporters.

The ``repro.obs`` package is the reproduction's telemetry substrate
(see ``docs/OBSERVABILITY.md``):

- :mod:`~repro.obs.spans` — hierarchical wall-time spans with
  call-count/self-time aggregation (``engine.step``, ``thermal.solve``);
- :mod:`~repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms (``controller.hot_iterations``, ``thermal.solver_ms``);
- :mod:`~repro.obs.telemetry` — the :class:`Telemetry` session facade
  and the zero-overhead module hooks the hot paths call;
- :mod:`~repro.obs.manifest` — run manifests (version, git SHA, config,
  timing/metric snapshot);
- :mod:`~repro.obs.exporters` — JSONL stream writer/reader and the
  profile summary renderer;
- :mod:`~repro.obs.merge` — picklable worker-session capture for the
  parallel fan-out (aggregates merge back via :meth:`Telemetry.merge`);
- :mod:`~repro.obs.streaming` — :class:`StreamingExporter`, incremental
  JSONL export with bounded memory and optional rotation;
- :mod:`~repro.obs.live` — the in-flight plane: atomic status-snapshot
  sidecars (``tecfan watch`` / ``tecfan top``) and the Prometheus
  scrape endpoint (``--metrics-port``).

Telemetry is **off by default**: every hook degrades to a global
``is None`` check, so instrumented hot paths behave identically — and
produce byte-identical results — when no session is installed.

Quickstart
----------
>>> from repro.obs import Telemetry, telemetry_session, write_jsonl
>>> tel = Telemetry()
>>> with telemetry_session(tel):
...     result = engine.run(run, controller)   # doctest: +SKIP
>>> text = write_jsonl(tel)
"""

from repro.obs.exporters import (
    profile_summary,
    read_jsonl,
    telemetry_records,
    write_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    SUPPORTED_SCHEMAS,
    build_manifest,
    git_sha,
    jsonable,
)
from repro.obs.merge import (
    PersistentWorkerSession,
    WorkerTelemetry,
    capture_worker_telemetry,
)
from repro.obs.live import (
    STATUS_SCHEMA,
    MetricsServer,
    PoolStatusReporter,
    RunStatusReporter,
    prometheus_text,
    read_status,
    render_status,
    render_top,
    render_watch,
    status_anomalies,
    write_status,
)
from repro.obs.streaming import StreamingExporter, read_stream_parts
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import SpanStats, SpanTracker
from repro.obs.telemetry import (
    MAX_EVENTS,
    Telemetry,
    annotate,
    event,
    gauge,
    get_telemetry,
    incr,
    observe,
    set_telemetry,
    span,
    telemetry_session,
)

__all__ = [
    "profile_summary",
    "read_jsonl",
    "telemetry_records",
    "write_jsonl",
    "MANIFEST_SCHEMA",
    "SUPPORTED_SCHEMAS",
    "build_manifest",
    "git_sha",
    "jsonable",
    "PersistentWorkerSession",
    "WorkerTelemetry",
    "capture_worker_telemetry",
    "STATUS_SCHEMA",
    "MetricsServer",
    "PoolStatusReporter",
    "RunStatusReporter",
    "prometheus_text",
    "read_status",
    "render_status",
    "render_top",
    "render_watch",
    "status_anomalies",
    "write_status",
    "StreamingExporter",
    "read_stream_parts",
    "DEFAULT_MS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanStats",
    "SpanTracker",
    "MAX_EVENTS",
    "Telemetry",
    "annotate",
    "event",
    "gauge",
    "get_telemetry",
    "incr",
    "observe",
    "set_telemetry",
    "span",
    "telemetry_session",
]
