"""Telemetry serialization: JSONL streams and profile summaries.

One telemetry session exports as a JSON-Lines stream with typed records:

* line 1 — ``{"type": "manifest", ...}`` (see :mod:`repro.obs.manifest`);
* one ``{"type": "span", "name": ..., ...}`` record per span aggregate;
* one ``{"type": "counter" | "gauge" | "histogram", ...}`` per metric;
* one ``{"type": "event", ...}`` per retained structured event (the
  engine emits one per recorded control interval).

:func:`read_jsonl` groups a stream back into a dict equivalent to the
live session's snapshot, so ``repro profile --load`` renders the same
summary table from a file that a live run prints.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import ObservabilityError
from repro.obs.manifest import SUPPORTED_SCHEMAS, build_manifest
from repro.obs.telemetry import Telemetry


def telemetry_records(
    tel: Telemetry,
    manifest: dict | None = None,
    include_events: bool = True,
) -> list[dict]:
    """The typed record sequence of one session (manifest first).

    ``include_events=False`` emits aggregates only — the tail a
    :class:`~repro.obs.streaming.StreamingExporter` appends after having
    already flushed the events incrementally.
    """
    if manifest is None:
        manifest = build_manifest(tel)
    records: list[dict] = [{"type": "manifest", **manifest}]
    snap = tel.snapshot()
    for name, stats in snap["spans"].items():
        records.append({"type": "span", "name": name, **stats})
    for edge in snap["span_edges"]:
        records.append({"type": "span_edge", **edge})
    for name, value in snap["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in snap["gauges"].items():
        records.append({"type": "gauge", "name": name, "value": value})
    for name, hist in snap["histograms"].items():
        records.append({"type": "histogram", "name": name, **hist})
    if include_events:
        for ev in tel.events:
            records.append({"type": "event", **ev})
    return records


def write_jsonl(
    tel: Telemetry,
    path: str | Path | None = None,
    manifest: dict | None = None,
) -> str:
    """Serialize a session to JSONL; optionally write it to ``path``.

    Returns the JSONL text either way (mirrors
    :func:`repro.core.export.trace_to_csv`).
    """
    lines = [
        json.dumps(rec, sort_keys=True)
        for rec in telemetry_records(tel, manifest=manifest)
    ]
    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text)
    return text


def read_jsonl(source: str | Path) -> dict:
    """Parse a telemetry stream back into grouped aggregates.

    ``source`` is a path or raw JSONL text. Returns::

        {"manifest": dict | None,
         "spans": {name: stats}, "span_edges": [...],
         "counters": {name: value}, "gauges": {name: value},
         "histograms": {name: hist}, "events": [...]}
    """
    if isinstance(source, Path) or "\n" not in str(source):
        text = Path(source).read_text()
    else:
        text = str(source)
    out: dict = {
        "manifest": None,
        "stream_header": None,
        "spans": {},
        "span_edges": [],
        "counters": {},
        "gauges": {},
        "histograms": {},
        "events": [],
    }
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"telemetry stream line {lineno} is not valid JSON"
            ) from exc
        kind = rec.pop("type", None)
        if kind in ("manifest", "stream_header"):
            _check_schema(rec, kind, lineno)
            out[kind] = rec
        elif kind == "span":
            out["spans"][rec.pop("name")] = rec
        elif kind == "span_edge":
            out["span_edges"].append(rec)
        elif kind == "counter":
            out["counters"][rec["name"]] = rec["value"]
        elif kind == "gauge":
            out["gauges"][rec["name"]] = rec["value"]
        elif kind == "histogram":
            out["histograms"][rec.pop("name")] = rec
        elif kind == "event":
            out["events"].append(rec)
        else:
            raise ObservabilityError(
                f"telemetry stream line {lineno} has unknown type {kind!r}"
            )
    return out


def _check_schema(rec: dict, kind: str, lineno: int) -> None:
    """Reject streams this build cannot interpret, loudly and early.

    A missing or unknown ``schema`` in a manifest/header means the
    stream was written by an incompatible (likely newer) build; raising
    :class:`ObservabilityError` here is what turns the raw ``KeyError``
    a consumer would hit into the clean CLI message the profile/trace
    commands print.
    """
    schema = rec.get("schema")
    if schema is None:
        raise ObservabilityError(
            f"telemetry stream line {lineno}: {kind} record has no "
            "schema version (truncated or foreign stream?)"
        )
    if schema not in SUPPORTED_SCHEMAS:
        supported = ", ".join(str(s) for s in SUPPORTED_SCHEMAS)
        raise ObservabilityError(
            f"telemetry stream line {lineno}: {kind} schema version "
            f"{schema!r} is not supported by this build (reads: {supported})"
        )


def profile_summary(source: Telemetry | dict) -> str:
    """Human-readable profile of a session or a parsed JSONL stream.

    Renders the span table (count, total/mean/self wall time), the
    counters, and histogram summaries — the ``repro profile`` output.
    """
    # Local import: analysis sits above obs in the layering (it pulls in
    # the whole core package), so only the formatting entry point may
    # reach up into it.
    from repro.analysis.report import render_profile

    if isinstance(source, Telemetry):
        snap = source.snapshot()
        grouped = {
            "spans": snap["spans"],
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
            "events_dropped": source.events_dropped,
        }
    else:
        grouped = source
    return render_profile(grouped)
