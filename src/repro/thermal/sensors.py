"""On-die temperature sensor model.

The paper assumes a temperature sensor at every component (Sec. V-A,
following Long & Memik and Chaparro et al.) and notes that 8-bit encoding
is sufficient for the hardware temperature comparisons (Sec. III-E).
This module models that reading path: quantization to a configurable
resolution over a sensing range, plus optional zero-mean Gaussian noise,
so controllers can be evaluated against non-ideal telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class TemperatureSensorBank:
    """Per-component sensor array with quantization and noise.

    Parameters
    ----------
    range_c:
        (low, high) sensing range [degC]; readings clip to it.
    bits:
        Encoder resolution; the paper's hardware estimate uses 8 bits.
    noise_sigma_c:
        Standard deviation of additive Gaussian noise [degC]. Zero by
        default — the paper assumes ideal sensing.
    seed:
        RNG seed for reproducible noise.
    """

    range_c: tuple[float, float] = (0.0, 127.5)
    bits: int = 8
    noise_sigma_c: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        lo, hi = self.range_c
        if hi <= lo:
            raise ConfigurationError("sensor range must satisfy high > low")
        if not 1 <= self.bits <= 16:
            raise ConfigurationError("sensor bits must be within 1..16")
        if self.noise_sigma_c < 0:
            raise ConfigurationError("noise sigma must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    # Pickling contract: a clone must continue the *exact* noise stream
    # of its source at the moment of pickling, so a bank shipped to a
    # spawn worker reads the same values a serial run would have read.
    # The generator itself is replaced by its bit-generator state dict —
    # explicit, version-stable, and independent of how numpy pickles
    # Generator objects.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_rng"] = self._rng.bit_generator.state
        return state

    def __setstate__(self, state: dict) -> None:
        rng_state = state.pop("_rng")
        self.__dict__.update(state)
        self._rng = np.random.default_rng(self.seed)
        self._rng.bit_generator.state = rng_state

    @property
    def step_c(self) -> float:
        """Quantization step [degC]."""
        lo, hi = self.range_c
        return (hi - lo) / (2**self.bits - 1)

    def read_c(self, true_temps_c: np.ndarray) -> np.ndarray:
        """Quantized (and optionally noisy) sensor readings [degC]."""
        t = np.asarray(true_temps_c, dtype=float)
        if self.noise_sigma_c > 0.0:
            t = t + self._rng.normal(0.0, self.noise_sigma_c, t.shape)
        lo, hi = self.range_c
        t = np.clip(t, lo, hi)
        codes = np.round((t - lo) / self.step_c)
        return lo + codes * self.step_c
