"""Shared actuator keying and propagator caching for the thermal stack.

Every cache in the thermal layer — the steady-state LU cache, the
Eq. (5) relaxation-factor (beta) cache, the dense matrix-exponential
propagator cache — keys on the same physical fact: ``G(fan, tec)``
depends only on the fan level and the TEC activation vector. The
quantized key (:func:`tec_key`) collapses that pair into something
hashable; :class:`ActuatorKeyer` adds fast paths for the two activation
vectors that dominate real control traces (all-off during DVFS rounds,
all-on under full TEC assist).

Quantization to 1/256 is exact for on/off activations and fine for the
fan controller's fractional "average state" — but it is a *hash
accelerator*, not an identity. :class:`PropagatorCache` therefore
carries an optional exact-vector guard: a hit is served only when the
stored activation compares ``np.array_equal`` to the query, so a
quantization collision degrades to a miss instead of silently serving a
propagator for a different G. That is what keeps cached results
bit-identical to the uncached computation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.obs import telemetry as obs


def tec_key(tec_activation: np.ndarray) -> bytes:
    """Hashable quantized activation vector (1/256 resolution)."""
    q = np.round(np.asarray(tec_activation, dtype=float) * 256.0)
    return np.asarray(q, dtype=np.int16).tobytes()


def exact_actuator_key(fan_level: int, tec_activation: np.ndarray) -> tuple:
    """Exact (unquantized) grouping key for one actuator setting.

    Used where correctness demands *identity*, not proximity — e.g.
    grouping batched what-if candidates that may legally share one
    factorization / one beta vector.
    """
    return (fan_level, np.asarray(tec_activation).tobytes())


class ActuatorKeyer:
    """Quantized ``(fan_level, tec_key)`` keying with common-case fast paths.

    The all-off and all-on activation keys are computed once on first
    use; those two vectors cover the overwhelming majority of control
    decisions, and the fast path skips the round-and-tobytes
    quantization entirely.
    """

    def __init__(self) -> None:
        self._all_off: bytes | None = None
        self._all_on: bytes | None = None

    def key(self, fan_level: int, tec_activation: np.ndarray) -> tuple:
        t = np.asarray(tec_activation)
        if self._all_off is None:
            n = t.shape[0]
            self._all_off = tec_key(np.zeros(n))
            self._all_on = tec_key(np.ones(n))
        if not t.any():
            return (fan_level, self._all_off)
        if np.all(t == 1.0):
            return (fan_level, self._all_on)
        return (fan_level, tec_key(t))


@dataclass
class PropagatorCache:
    """LRU cache for actuator-keyed thermal operators.

    Entries pair the cached value with the exact activation vector it
    was computed for; :meth:`lookup` refuses to serve an entry whose
    stored activation differs from the query even when the quantized
    keys collide. Hit/miss/eviction totals are kept both as instance
    stats and as obs counters under ``<counter_prefix>_hits`` /
    ``_misses`` / ``_evictions`` (shared by every propagator cache in a
    process, mirroring ``thermal.factorizations``).
    """

    max_entries: int = 128
    counter_prefix: str = "thermal.propagator"
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    n_hits: int = 0
    n_misses: int = 0
    n_evictions: int = 0

    # Like the LU cache, entries are pure memoization: pickling for a
    # worker process ships an empty cache and the worker re-derives on
    # demand (keeps spawn payloads small and SuperLU-style semantics
    # uniform across the thermal caches).
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_entries"] = OrderedDict()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple, exact: np.ndarray | None = None):
        """Cached value for ``key``, or None on miss / guard mismatch."""
        entry = self._entries.get(key)
        if entry is not None:
            guard, value = entry
            if (
                exact is None
                or guard is None
                or np.array_equal(guard, exact)
            ):
                self._entries.move_to_end(key)
                self.n_hits += 1
                obs.incr(f"{self.counter_prefix}_hits")
                return value
        self.n_misses += 1
        obs.incr(f"{self.counter_prefix}_misses")
        return None

    def insert(self, key: tuple, value, exact: np.ndarray | None = None):
        """Store ``value``; a colliding key is overwritten (LRU refresh)."""
        guard = None if exact is None else np.array(exact, copy=True)
        self._entries[key] = (guard, value)
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.n_evictions += 1
            obs.incr(f"{self.counter_prefix}_evictions")
        return value

    def clear(self) -> None:
        """Drop every cached operator (stats are kept)."""
        self._entries.clear()
