"""Transient temperature models.

Two integrators are provided:

* :class:`PaperTransient` — the paper's Eq. (5): every node relaxes
  exponentially toward its *steady-state* value with its own RC time
  constant, ``T(k) = (1 - beta) Ts + beta T(k-1)``,
  ``beta = exp(-dt / (R C))``. We take ``R_i = 1 / G_ii`` (the total
  conductance incident on node ``i``), which reduces exactly to the
  scalar RC model of Eq. (3)-(4) for a single node. This decoupled
  update is what TECfan's on-line estimator can afford in hardware.

* :class:`ExactTransient` — the exact solution of the full linear ODE
  ``C dT/dt = P - G T``, i.e. ``T(t) = Ts + expm(-C^-1 G t)(T0 - Ts)``,
  used to validate the decoupled approximation (see
  ``benchmarks/bench_thermal_solver.py``). Dense; intended for small
  networks or occasional cross-checks.

Both integrators memoize their propagators through
:class:`~repro.thermal.keys.PropagatorCache`: under piecewise-constant
actuation — thousands of 2 ms intervals per fan decision — the G
diagonal, the beta vector, and the dense ``expm`` factor are all
functions of ``(dt, fan_level, tec)`` alone, so repeated steps reduce to
one cached lookup plus a vector multiply. Cache hits are bit-identical
to the uncached computation: the cached quantity is the *final* operator
(no re-ordered floating-point arithmetic on the hit path) and the
exact-activation guard in the cache demotes quantized-key collisions to
misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.exceptions import ThermalModelError
from repro.obs import telemetry as obs
from repro.thermal.conductance import ConductanceModel
from repro.thermal.keys import ActuatorKeyer, PropagatorCache


@dataclass
class PaperTransient:
    """Eq. (5) decoupled exponential relaxation toward steady state."""

    model: ConductanceModel
    #: Retained ``(dt, fan, tec)`` beta vectors / ``(fan, tec)`` G
    #: diagonals (LRU).
    cache_size: int = 128
    _keyer: ActuatorKeyer = field(default_factory=ActuatorKeyer, repr=False)
    _diag_cache: PropagatorCache = field(default=None, repr=False)
    _beta_cache: PropagatorCache = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._diag_cache is None:
            self._diag_cache = PropagatorCache(max_entries=self.cache_size)
        if self._beta_cache is None:
            self._beta_cache = PropagatorCache(max_entries=self.cache_size)

    def _diag(self, fan_level: int, tec: np.ndarray) -> np.ndarray:
        """Cached ``G_ii`` for one actuator setting (read-only view)."""
        key = self._keyer.key(fan_level, tec)
        diag = self._diag_cache.lookup(key, exact=tec)
        if diag is None:
            diag = self.model.diag(fan_level, tec)
            diag.setflags(write=False)
            self._diag_cache.insert(key, diag, exact=tec)
        return diag

    def betas(
        self, dt_s: float, fan_level: int, tec_activation: np.ndarray
    ) -> np.ndarray:
        """Per-node relaxation factor ``beta = exp(-dt G_ii / C_i)``.

        Returned arrays are cached and marked read-only; callers use
        them in elementwise arithmetic only.
        """
        if dt_s <= 0:
            raise ThermalModelError(f"non-positive time step {dt_s}")
        t = np.asarray(tec_activation, dtype=float)
        key = (dt_s, *self._keyer.key(fan_level, t))
        beta = self._beta_cache.lookup(key, exact=t)
        if beta is None:
            diag = self._diag(fan_level, t)
            c = self.model.nodes.capacities
            beta = np.exp(-dt_s * diag / c)
            beta.setflags(write=False)
            self._beta_cache.insert(key, beta, exact=t)
        return beta

    def step(
        self,
        t_prev_k: np.ndarray,
        t_steady_k: np.ndarray,
        dt_s: float,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Advance one interval: ``(1 - beta) Ts + beta T_prev`` [K]."""
        with obs.span("thermal.step"):
            beta = self.betas(dt_s, fan_level, tec_activation)
            return (1.0 - beta) * t_steady_k + beta * t_prev_k

    def interpolate(
        self,
        t_initial_k: np.ndarray,
        t_steady_k: np.ndarray,
        times_s: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Eq. (4) continuous-time form: the trajectory at many instants.

        Returns an array of shape ``(len(times_s), n_nodes)`` [K] — the
        per-node exponential relaxation from ``t_initial_k`` toward
        ``t_steady_k`` evaluated at each requested time, exactly the
        interpolation the paper derives before discretizing into Eq. (5).
        """
        times = np.asarray(times_s, dtype=float)
        if np.any(times < 0):
            raise ThermalModelError("interpolation times must be >= 0")
        t = np.asarray(tec_activation, dtype=float)
        diag = self._diag(fan_level, t)
        rate = diag / self.model.nodes.capacities  # 1 / (R C) per node
        beta = np.exp(-np.outer(times, rate))
        return (1.0 - beta) * t_steady_k[None, :] + beta * t_initial_k[None, :]


@dataclass
class ExactTransient:
    """Exact matrix-exponential integrator for the full linear network."""

    model: ConductanceModel
    #: Retained dense-G / expm propagators. Dense ``n_nodes**2`` blocks
    #: are heavy, so the default is deliberately small.
    cache_size: int = 16
    _keyer: ActuatorKeyer = field(default_factory=ActuatorKeyer, repr=False)
    _dense_cache: PropagatorCache = field(default=None, repr=False)
    _phi_cache: PropagatorCache = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self._dense_cache is None:
            self._dense_cache = PropagatorCache(max_entries=self.cache_size)
        if self._phi_cache is None:
            self._phi_cache = PropagatorCache(max_entries=self.cache_size)

    def _dense_g(self, fan_level: int, tec: np.ndarray) -> np.ndarray:
        """Cached dense ``G(fan, tec)`` (read-only) — densify once, not
        per step."""
        key = self._keyer.key(fan_level, tec)
        g = self._dense_cache.lookup(key, exact=tec)
        if g is None:
            g = self.model.matrix(fan_level, tec).toarray()
            g.setflags(write=False)
            self._dense_cache.insert(key, g, exact=tec)
        return g

    def step(
        self,
        t_prev_k: np.ndarray,
        t_steady_k: np.ndarray,
        dt_s: float,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Advance one interval with ``expm(-C^-1 G dt)`` [K].

        ``t_steady_k`` must be the steady state of the *same* actuator
        setting and power vector (it defines the affine offset).
        """
        if dt_s <= 0:
            raise ThermalModelError(f"non-positive time step {dt_s}")
        with obs.span("thermal.exact_step"):
            t = np.asarray(tec_activation, dtype=float)
            key = (dt_s, *self._keyer.key(fan_level, t))
            phi = self._phi_cache.lookup(key, exact=t)
            if phi is None:
                g = self._dense_g(fan_level, t)
                c_inv = 1.0 / self.model.nodes.capacities
                a = -c_inv[:, None] * g
                phi = scipy.linalg.expm(a * dt_s)
                phi.setflags(write=False)
                self._phi_cache.insert(key, phi, exact=t)
            return t_steady_k + phi @ (t_prev_k - t_steady_k)

    def time_constants_s(
        self, fan_level: int, tec_activation: np.ndarray
    ) -> np.ndarray:
        """Eigen time constants of the network (sorted ascending) [s].

        Useful to verify the paper's claims about the separation between
        TEC/DVFS (sub-ms) and fan/heat-sink (tens of seconds) scales.
        """
        g = self._dense_g(fan_level, np.asarray(tec_activation, dtype=float))
        c_inv = 1.0 / self.model.nodes.capacities
        eig = np.linalg.eigvals(c_inv[:, None] * g)
        real = np.real(eig)
        if np.any(real <= 0):
            raise ThermalModelError("network has non-decaying thermal modes")
        return np.sort(1.0 / real)
