"""Transient temperature models.

Two integrators are provided:

* :class:`PaperTransient` — the paper's Eq. (5): every node relaxes
  exponentially toward its *steady-state* value with its own RC time
  constant, ``T(k) = (1 - beta) Ts + beta T(k-1)``,
  ``beta = exp(-dt / (R C))``. We take ``R_i = 1 / G_ii`` (the total
  conductance incident on node ``i``), which reduces exactly to the
  scalar RC model of Eq. (3)-(4) for a single node. This decoupled
  update is what TECfan's on-line estimator can afford in hardware.

* :class:`ExactTransient` — the exact solution of the full linear ODE
  ``C dT/dt = P - G T``, i.e. ``T(t) = Ts + expm(-C^-1 G t)(T0 - Ts)``,
  used to validate the decoupled approximation (see
  ``benchmarks/bench_thermal_solver.py``). Dense; intended for small
  networks or occasional cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.exceptions import ThermalModelError
from repro.obs import telemetry as obs
from repro.thermal.conductance import ConductanceModel


@dataclass
class PaperTransient:
    """Eq. (5) decoupled exponential relaxation toward steady state."""

    model: ConductanceModel

    def betas(
        self, dt_s: float, fan_level: int, tec_activation: np.ndarray
    ) -> np.ndarray:
        """Per-node relaxation factor ``beta = exp(-dt G_ii / C_i)``."""
        if dt_s <= 0:
            raise ThermalModelError(f"non-positive time step {dt_s}")
        delta = self.model.diag_delta(fan_level, tec_activation)
        diag = self.model._g0.data[self.model._diag_pos] + delta
        c = self.model.nodes.capacities
        return np.exp(-dt_s * diag / c)

    def step(
        self,
        t_prev_k: np.ndarray,
        t_steady_k: np.ndarray,
        dt_s: float,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Advance one interval: ``(1 - beta) Ts + beta T_prev`` [K]."""
        with obs.span("thermal.step"):
            beta = self.betas(dt_s, fan_level, tec_activation)
            return (1.0 - beta) * t_steady_k + beta * t_prev_k

    def interpolate(
        self,
        t_initial_k: np.ndarray,
        t_steady_k: np.ndarray,
        times_s: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Eq. (4) continuous-time form: the trajectory at many instants.

        Returns an array of shape ``(len(times_s), n_nodes)`` [K] — the
        per-node exponential relaxation from ``t_initial_k`` toward
        ``t_steady_k`` evaluated at each requested time, exactly the
        interpolation the paper derives before discretizing into Eq. (5).
        """
        times = np.asarray(times_s, dtype=float)
        if np.any(times < 0):
            raise ThermalModelError("interpolation times must be >= 0")
        delta = self.model.diag_delta(fan_level, tec_activation)
        diag = self.model._g0.data[self.model._diag_pos] + delta
        rate = diag / self.model.nodes.capacities  # 1 / (R C) per node
        beta = np.exp(-np.outer(times, rate))
        return (1.0 - beta) * t_steady_k[None, :] + beta * t_initial_k[None, :]


@dataclass
class ExactTransient:
    """Exact matrix-exponential integrator for the full linear network."""

    model: ConductanceModel

    def step(
        self,
        t_prev_k: np.ndarray,
        t_steady_k: np.ndarray,
        dt_s: float,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Advance one interval with ``expm(-C^-1 G dt)`` [K].

        ``t_steady_k`` must be the steady state of the *same* actuator
        setting and power vector (it defines the affine offset).
        """
        if dt_s <= 0:
            raise ThermalModelError(f"non-positive time step {dt_s}")
        with obs.span("thermal.exact_step"):
            g = self.model.matrix(fan_level, tec_activation).toarray()
            c_inv = 1.0 / self.model.nodes.capacities
            a = -c_inv[:, None] * g
            phi = scipy.linalg.expm(a * dt_s)
            return t_steady_k + phi @ (t_prev_k - t_steady_k)

    def time_constants_s(
        self, fan_level: int, tec_activation: np.ndarray
    ) -> np.ndarray:
        """Eigen time constants of the network (sorted ascending) [s].

        Useful to verify the paper's claims about the separation between
        TEC/DVFS (sub-ms) and fan/heat-sink (tens of seconds) scales.
        """
        g = self.model.matrix(fan_level, tec_activation).toarray()
        c_inv = 1.0 / self.model.nodes.capacities
        eig = np.linalg.eigvals(c_inv[:, None] * g)
        real = np.real(eig)
        if np.any(real <= 0):
            raise ThermalModelError("network has non-decaying thermal modes")
        return np.sort(1.0 / real)
