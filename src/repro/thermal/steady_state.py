"""Steady-state thermal solve: ``G(fan, tec) Ts = P`` (paper Eq. 1).

The solver caches sparse LU factorizations keyed by actuator setting:
controllers evaluate many candidate DVFS levels against the *same* G (a
DVFS change only moves the power vector), so the common case is a cached
triangular solve rather than a refactorization. TEC activations are
quantized to 1/256 for the cache key (see :mod:`repro.thermal.keys`) —
exact for on/off states and more than fine enough for the fan
controller's fractional "average state".

Candidate screening goes one step further: :meth:`SteadyStateSolver.solve_many`
pushes a whole batch of power vectors through one multi-RHS triangular
solve against the cached factorization. SuperLU back-substitutes each
column independently, so every column is bit-identical to the
corresponding single-RHS :meth:`~SteadyStateSolver.solve` — the batched
controller path produces exactly the same decisions as the sequential
one, just without B round trips through Python and the RHS assembly.

Low-rank updates (opt-in, ``use_woodbury``): a TEC on/off toggle changes
``G`` only on the diagonal entries its device touches, so a cache miss
whose diagonal differs from a cached *exact* factorization in at most
``woodbury_max_rank`` entries is served by a Sherman–Morrison–Woodbury
rank-k correction instead of a fresh ``splu``. Every corrected solve is
validated against the true residual ``|G x - P|``; if it exceeds
``woodbury_rtol`` (relative to the RHS scale) the solver falls back to a
full refactorization, replaces the corrected operator in the cache, and
re-solves exactly — accuracy degrades to *never*, only speed does.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg
import scipy.sparse.linalg as spla

from repro.exceptions import ThermalModelError
from repro.obs import telemetry as obs
from repro.thermal.conductance import ConductanceModel
from repro.thermal.keys import ActuatorKeyer, tec_key

# Backwards-compatible alias: the quantization helper began life here
# and moved to repro.thermal.keys when the transient caches started
# sharing it.
_tec_key = tec_key


class _WoodburyOperator:
    """Sherman–Morrison–Woodbury diagonal rank-k correction.

    Solves ``(A + E diag(d) E^T) x = b`` through the cached base
    ``A = LU``: with ``y = A^{-1} b`` and ``Z = A^{-1} E``,

        ``x = y - Z (diag(1/d) + Z[idx, :])^{-1} y[idx]``

    where ``E`` selects the ``k`` diagonal positions that changed and
    ``d`` holds the changes. The k-by-k capacitance matrix is LU-factored
    once at build time; a singular correction surfaces as
    ``LinAlgError`` there and the caller falls back to ``splu``.
    """

    def __init__(self, base_lu, idx: np.ndarray, diff: np.ndarray) -> None:
        n = base_lu.shape[0]
        e = np.zeros((n, idx.size))
        e[idx, np.arange(idx.size)] = 1.0
        z = base_lu.solve(e)
        m = np.diag(1.0 / diff) + z[idx, :]
        self._m_lu = scipy.linalg.lu_factor(m)
        self._z = z
        self._idx = idx
        self.base_lu = base_lu
        self.rank = int(idx.size)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Corrected solve; accepts a vector or an ``(n, batch)`` block."""
        y = self.base_lu.solve(rhs)
        corr = scipy.linalg.lu_solve(self._m_lu, y[self._idx])
        return y - self._z @ corr


@dataclass
class SteadyStateSolver:
    """LU-cached solver for the steady-state temperature field.

    Parameters
    ----------
    model:
        The assembled conductance machinery.
    cache_size:
        Maximum number of retained factorizations (LRU eviction). The
        TECfan heuristic revisits neighbouring TEC configurations many
        times within a control period, so even a small cache removes
        nearly all refactorizations.
    use_woodbury:
        Serve cache misses by low-rank correction against the nearest
        cached exact base when possible. Off by default: corrected
        solves agree with exact ones only to ``woodbury_rtol``, so the
        engine arms this solely on interval-kernel runs
        (``EngineConfig.interval_kernel``, see docs/PERFORMANCE.md).
    woodbury_max_rank:
        Largest diagonal-difference rank served by correction; misses
        further than this from every cached base refactorize.
    woodbury_rtol:
        Residual acceptance threshold, relative to ``max|P|``.
    """

    model: ConductanceModel
    cache_size: int = 64
    use_woodbury: bool = False
    woodbury_max_rank: int = 8
    woodbury_rtol: float = 1e-9
    _lu_cache: OrderedDict = field(default_factory=OrderedDict, repr=False)
    #: Diagonal deltas of the *exact* cached factorizations, by key —
    #: the search space for the nearest Woodbury base.
    _delta_cache: dict = field(default_factory=dict, repr=False)
    #: Rebuild recipes by cache key: how each live entry was built, so a
    #: checkpoint can replay the cache deterministically (SuperLU objects
    #: cannot pickle). See :meth:`snapshot_cache`.
    _recipe_cache: dict = field(default_factory=dict, repr=False)
    _keyer: ActuatorKeyer = field(default_factory=ActuatorKeyer, repr=False)
    #: Statistics: factorizations performed / solves served / LRU drops,
    #: plus Woodbury corrections built / solves validated / fallbacks.
    n_factorizations: int = 0
    n_solves: int = 0
    n_evictions: int = 0
    n_woodbury_builds: int = 0
    n_woodbury_solves: int = 0
    n_woodbury_fallbacks: int = 0

    # ------------------------------------------------------------------
    # Pickling: SuperLU factorization objects cannot cross a process
    # boundary (repro.parallel ships systems to worker processes); the
    # cache is pure memoization, so workers simply refactorize on demand.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lu_cache"] = OrderedDict()
        state["_delta_cache"] = {}
        state["_recipe_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def _cache_key(self, fan_level: int, tec_activation: np.ndarray) -> tuple:
        return self._keyer.key(fan_level, tec_activation)

    def _store(self, key: tuple, entry) -> None:
        self._lu_cache[key] = entry
        self._lu_cache.move_to_end(key)
        if len(self._lu_cache) > self.cache_size:
            old, _ = self._lu_cache.popitem(last=False)
            self._delta_cache.pop(old, None)
            self._recipe_cache.pop(old, None)
            self.n_evictions += 1
            obs.incr("thermal.lu_evictions")

    def _factorize_exact(
        self, key: tuple, fan_level: int, tec_activation: np.ndarray
    ):
        """Full ``splu`` for one setting; registered as a Woodbury base."""
        g = self.model.matrix(fan_level, tec_activation)
        try:
            lu = spla.splu(g)
        except RuntimeError as exc:  # singular matrix
            raise ThermalModelError(
                f"G matrix is singular for fan={fan_level}"
            ) from exc
        self._delta_cache[key] = self.model.diag_delta(
            fan_level, tec_activation
        )
        self._recipe_cache[key] = (
            "exact",
            int(fan_level),
            np.asarray(tec_activation, dtype=float).copy(),
        )
        self._store(key, lu)
        self.n_factorizations += 1
        obs.incr("thermal.factorizations")
        return lu

    def _woodbury_operator(
        self, key: tuple, fan_level: int, tec_activation: np.ndarray
    ):
        """Correction against the nearest cached exact base, or None.

        "Nearest" means the same fan level and the fewest changed
        diagonal entries; only exact factorizations serve as bases
        (corrections never chain), and a rank above
        ``woodbury_max_rank`` or a singular capacitance matrix declines
        the correction so the caller refactorizes.
        """
        delta_new = self.model.diag_delta(fan_level, tec_activation)
        best = None
        for bkey, entry in self._lu_cache.items():
            if isinstance(entry, _WoodburyOperator) or bkey[0] != key[0]:
                continue
            base_delta = self._delta_cache.get(bkey)
            if base_delta is None:
                continue
            diff = delta_new - base_delta
            idx = np.flatnonzero(diff)
            if best is None or idx.size < best[0].size:
                best = (idx, diff, entry, bkey)
        if best is None:
            return None
        idx, diff, base_lu, bkey = best
        if idx.size == 0:
            # Distinct quantized keys, same exact G (e.g. activations
            # differing below 1/256): the base factorization *is* exact
            # for this setting too. Recorded under the alias key's *own*
            # setting — splu of the identical matrix rebuilds the same
            # factorization, and the alias key lands in the right LRU slot.
            self._delta_cache[key] = delta_new
            self._recipe_cache[key] = (
                "exact",
                int(fan_level),
                np.asarray(tec_activation, dtype=float).copy(),
            )
            return base_lu
        if idx.size > self.woodbury_max_rank:
            return None
        base_recipe = self._recipe_cache.get(bkey)
        if base_recipe is None:
            return None
        try:
            op = _WoodburyOperator(base_lu, idx, diff[idx])
        except np.linalg.LinAlgError:
            return None
        self._recipe_cache[key] = (
            "woodbury",
            int(fan_level),
            np.asarray(tec_activation, dtype=float).copy(),
            base_recipe[1],
            base_recipe[2],
        )
        self.n_woodbury_builds += 1
        return op

    def _factorization(self, fan_level: int, tec_activation: np.ndarray):
        key = self._cache_key(fan_level, tec_activation)
        entry = self._lu_cache.get(key)
        if entry is not None:
            self._lu_cache.move_to_end(key)
            return entry
        if self.use_woodbury:
            op = self._woodbury_operator(key, fan_level, tec_activation)
            if op is not None:
                self._store(key, op)
                return op
        return self._factorize_exact(key, fan_level, tec_activation)

    def _verify_woodbury(
        self,
        t: np.ndarray,
        rhs: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Residual-check a corrected solve; refactorize on failure.

        The fallback replaces the corrected operator in the cache with
        the exact factorization, so a base that has drifted out of
        tolerance is repaired once and stops serving bad corrections.
        """
        resid = self.model.apply(t, fan_level, tec_activation) - rhs
        scale = max(float(np.max(np.abs(rhs))), 1.0)
        if float(np.max(np.abs(resid))) <= self.woodbury_rtol * scale:
            self.n_woodbury_solves += 1
            obs.incr("thermal.woodbury_solves")
            return t
        self.n_woodbury_fallbacks += 1
        obs.incr("thermal.woodbury_fallbacks")
        key = self._cache_key(fan_level, tec_activation)
        lu = self._factorize_exact(key, fan_level, tec_activation)
        return lu.solve(rhs)

    # ------------------------------------------------------------------
    def solve(
        self,
        p_components_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Steady-state node temperatures [K] for one actuator setting.

        Parameters
        ----------
        p_components_w:
            Per-die-component dissipation [W] (length ``n_components``).
        fan_level:
            Fan speed level (1 = fastest).
        tec_activation:
            Per-device activation in [0, 1].
        """
        with obs.span("thermal.solve", hist_ms="thermal.solver_ms"):
            lu = self._factorization(fan_level, tec_activation)
            rhs = self.model.rhs(p_components_w, fan_level, tec_activation)
            self.n_solves += 1
            t = lu.solve(rhs)
            if isinstance(lu, _WoodburyOperator):
                t = self._verify_woodbury(t, rhs, fan_level, tec_activation)
        if not np.all(np.isfinite(t)):
            raise ThermalModelError("non-finite steady-state temperatures")
        return t

    def solve_many(
        self,
        p_components_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Batched steady states for one actuator setting, many powers.

        Parameters
        ----------
        p_components_w:
            ``(batch, n_components)`` per-die-component dissipation [W]:
            one row per candidate power vector.
        fan_level, tec_activation:
            Shared actuator setting (the whole point: one factorization,
            one multi-RHS back-substitution).

        Returns
        -------
        ``(batch, n_nodes)`` temperatures [K]; row ``b`` is bit-identical
        to ``solve(p_components_w[b], fan_level, tec_activation)``.
        """
        p = np.asarray(p_components_w, dtype=float)
        if p.ndim != 2:
            raise ThermalModelError(
                f"solve_many expects a (batch, n_components) power matrix, "
                f"got shape {p.shape}"
            )
        with obs.span("thermal.solve_many", hist_ms="thermal.solver_ms"):
            lu = self._factorization(fan_level, tec_activation)
            # The Joule + ambient pieces of the RHS are shared by every
            # candidate; only the component power differs per column.
            base = self.model.rhs(
                np.zeros(p.shape[1]), fan_level, tec_activation
            )
            rhs = np.repeat(base[:, None], p.shape[0], axis=1)
            rhs[self.model.nodes.component_slice, :] += p.T
            self.n_solves += p.shape[0]
            obs.incr("thermal.batch_solves")
            t = lu.solve(rhs)
            if isinstance(lu, _WoodburyOperator):
                t = self._verify_woodbury(t, rhs, fan_level, tec_activation)
        if not np.all(np.isfinite(t)):
            raise ThermalModelError("non-finite steady-state temperatures")
        return np.ascontiguousarray(t.T)

    def clear_cache(self) -> None:
        """Drop all cached factorizations (exact and corrected)."""
        self._lu_cache.clear()
        self._delta_cache.clear()
        self._recipe_cache.clear()

    # ------------------------------------------------------------------
    # Deterministic cache snapshot/restore (repro.checkpoint).
    #
    # Why this matters: with ``use_woodbury`` on, a cache miss is served
    # by an SMW correction against the *nearest cached* exact base — the
    # solver's answers depend on its cache history. A resumed run must
    # therefore rebuild the same cache contents in the same LRU order,
    # or it would diverge (within woodbury_rtol) from the uninterrupted
    # run. SuperLU handles cannot pickle, but ``splu`` of the identical
    # matrix is deterministic, so we snapshot *recipes* and replay them.
    def snapshot_cache(self) -> list:
        """Picklable rebuild recipes for the live cache, oldest→newest.

        Each entry is ``("exact", fan, tec)`` or
        ``("woodbury", fan, tec, base_fan, base_tec)``. Iterating the
        LRU dict preserves recency order so a replayed cache evicts (and
        picks Woodbury bases) exactly like the original.
        """
        out = []
        for key in self._lu_cache:
            recipe = self._recipe_cache.get(key)
            if recipe is not None:
                out.append(recipe)
        return out

    def restore_cache(self, entries: list) -> None:
        """Replay :meth:`snapshot_cache` recipes into an empty cache.

        Exact entries refactorize from scratch; Woodbury entries rebuild
        their correction against the base's *matrix* (the base may have
        been evicted since — a temporary ``splu`` of the identical
        matrix yields the same factorization, so corrected solves stay
        bit-identical).
        """
        self.clear_cache()
        for recipe in entries:
            if recipe[0] == "exact":
                _, fan, tec = recipe
                self._factorize_exact(self._cache_key(fan, tec), fan, tec)
                continue
            _, fan, tec, base_fan, base_tec = recipe
            bkey = self._cache_key(base_fan, base_tec)
            base = self._lu_cache.get(bkey)
            if base is None or isinstance(base, _WoodburyOperator):
                g = self.model.matrix(base_fan, base_tec)
                try:
                    base = spla.splu(g)
                except RuntimeError as exc:  # pragma: no cover
                    raise ThermalModelError(
                        f"G matrix is singular for fan={base_fan}"
                    ) from exc
            diff = self.model.diag_delta(fan, tec) - self.model.diag_delta(
                base_fan, base_tec
            )
            idx = np.flatnonzero(diff)
            key = self._cache_key(fan, tec)
            op = _WoodburyOperator(base, idx, diff[idx])
            self._recipe_cache[key] = recipe
            self._store(key, op)
            self.n_woodbury_builds += 1
