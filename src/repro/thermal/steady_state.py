"""Steady-state thermal solve: ``G(fan, tec) Ts = P`` (paper Eq. 1).

The solver caches sparse LU factorizations keyed by actuator setting:
controllers evaluate many candidate DVFS levels against the *same* G (a
DVFS change only moves the power vector), so the common case is a cached
triangular solve rather than a refactorization. TEC activations are
quantized to 1/256 for the cache key — exact for on/off states and more
than fine enough for the fan controller's fractional "average state".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse.linalg as spla

from repro.exceptions import ThermalModelError
from repro.obs import telemetry as obs
from repro.thermal.conductance import ConductanceModel


def _tec_key(tec_activation: np.ndarray) -> bytes:
    """Hashable quantized activation vector."""
    q = np.round(np.asarray(tec_activation, dtype=float) * 256.0)
    return np.asarray(q, dtype=np.int16).tobytes()


@dataclass
class SteadyStateSolver:
    """LU-cached solver for the steady-state temperature field.

    Parameters
    ----------
    model:
        The assembled conductance machinery.
    cache_size:
        Maximum number of retained factorizations (LRU eviction). The
        TECfan heuristic revisits neighbouring TEC configurations many
        times within a control period, so even a small cache removes
        nearly all refactorizations.
    """

    model: ConductanceModel
    cache_size: int = 64
    _lu_cache: OrderedDict = field(default_factory=OrderedDict, repr=False)
    #: Statistics: factorizations performed / solves served.
    n_factorizations: int = 0
    n_solves: int = 0

    def _factorization(self, fan_level: int, tec_activation: np.ndarray):
        key = (fan_level, _tec_key(tec_activation))
        lu = self._lu_cache.get(key)
        if lu is None:
            g = self.model.matrix(fan_level, tec_activation)
            try:
                lu = spla.splu(g)
            except RuntimeError as exc:  # singular matrix
                raise ThermalModelError(
                    f"G matrix is singular for fan={fan_level}"
                ) from exc
            self._lu_cache[key] = lu
            self.n_factorizations += 1
            obs.incr("thermal.factorizations")
            if len(self._lu_cache) > self.cache_size:
                self._lu_cache.popitem(last=False)
        else:
            self._lu_cache.move_to_end(key)
        return lu

    # ------------------------------------------------------------------
    def solve(
        self,
        p_components_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Steady-state node temperatures [K] for one actuator setting.

        Parameters
        ----------
        p_components_w:
            Per-die-component dissipation [W] (length ``n_components``).
        fan_level:
            Fan speed level (1 = fastest).
        tec_activation:
            Per-device activation in [0, 1].
        """
        with obs.span("thermal.solve", hist_ms="thermal.solver_ms"):
            lu = self._factorization(fan_level, tec_activation)
            rhs = self.model.rhs(p_components_w, fan_level, tec_activation)
            self.n_solves += 1
            t = lu.solve(rhs)
        if not np.all(np.isfinite(t)):
            raise ThermalModelError("non-finite steady-state temperatures")
        return t

    def clear_cache(self) -> None:
        """Drop all cached factorizations."""
        self._lu_cache.clear()
