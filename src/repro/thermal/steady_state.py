"""Steady-state thermal solve: ``G(fan, tec) Ts = P`` (paper Eq. 1).

The solver caches sparse LU factorizations keyed by actuator setting:
controllers evaluate many candidate DVFS levels against the *same* G (a
DVFS change only moves the power vector), so the common case is a cached
triangular solve rather than a refactorization. TEC activations are
quantized to 1/256 for the cache key — exact for on/off states and more
than fine enough for the fan controller's fractional "average state".

Candidate screening goes one step further: :meth:`SteadyStateSolver.solve_many`
pushes a whole batch of power vectors through one multi-RHS triangular
solve against the cached factorization. SuperLU back-substitutes each
column independently, so every column is bit-identical to the
corresponding single-RHS :meth:`~SteadyStateSolver.solve` — the batched
controller path produces exactly the same decisions as the sequential
one, just without B round trips through Python and the RHS assembly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse.linalg as spla

from repro.exceptions import ThermalModelError
from repro.obs import telemetry as obs
from repro.thermal.conductance import ConductanceModel


def _tec_key(tec_activation: np.ndarray) -> bytes:
    """Hashable quantized activation vector."""
    q = np.round(np.asarray(tec_activation, dtype=float) * 256.0)
    return np.asarray(q, dtype=np.int16).tobytes()


@dataclass
class SteadyStateSolver:
    """LU-cached solver for the steady-state temperature field.

    Parameters
    ----------
    model:
        The assembled conductance machinery.
    cache_size:
        Maximum number of retained factorizations (LRU eviction). The
        TECfan heuristic revisits neighbouring TEC configurations many
        times within a control period, so even a small cache removes
        nearly all refactorizations.
    """

    model: ConductanceModel
    cache_size: int = 64
    _lu_cache: OrderedDict = field(default_factory=OrderedDict, repr=False)
    #: Statistics: factorizations performed / solves served / LRU drops.
    n_factorizations: int = 0
    n_solves: int = 0
    n_evictions: int = 0
    # Precomputed cache keys for the two overwhelmingly common activation
    # vectors (all-off during DVFS rounds, all-on under full TEC assist):
    # the fast path skips the round-and-tobytes quantization entirely.
    _key_all_off: bytes = field(default=None, repr=False)
    _key_all_on: bytes = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Pickling: SuperLU factorization objects cannot cross a process
    # boundary (repro.parallel ships systems to worker processes); the
    # cache is pure memoization, so workers simply refactorize on demand.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lu_cache"] = OrderedDict()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def _cache_key(self, fan_level: int, tec_activation: np.ndarray) -> tuple:
        t = np.asarray(tec_activation)
        if self._key_all_off is None:
            n = t.shape[0]
            self._key_all_off = _tec_key(np.zeros(n))
            self._key_all_on = _tec_key(np.ones(n))
        if not t.any():
            return (fan_level, self._key_all_off)
        if np.all(t == 1.0):
            return (fan_level, self._key_all_on)
        return (fan_level, _tec_key(t))

    def _factorization(self, fan_level: int, tec_activation: np.ndarray):
        key = self._cache_key(fan_level, tec_activation)
        lu = self._lu_cache.get(key)
        if lu is None:
            g = self.model.matrix(fan_level, tec_activation)
            try:
                lu = spla.splu(g)
            except RuntimeError as exc:  # singular matrix
                raise ThermalModelError(
                    f"G matrix is singular for fan={fan_level}"
                ) from exc
            self._lu_cache[key] = lu
            self.n_factorizations += 1
            obs.incr("thermal.factorizations")
            if len(self._lu_cache) > self.cache_size:
                self._lu_cache.popitem(last=False)
                self.n_evictions += 1
                obs.incr("thermal.lu_evictions")
        else:
            self._lu_cache.move_to_end(key)
        return lu

    # ------------------------------------------------------------------
    def solve(
        self,
        p_components_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Steady-state node temperatures [K] for one actuator setting.

        Parameters
        ----------
        p_components_w:
            Per-die-component dissipation [W] (length ``n_components``).
        fan_level:
            Fan speed level (1 = fastest).
        tec_activation:
            Per-device activation in [0, 1].
        """
        with obs.span("thermal.solve", hist_ms="thermal.solver_ms"):
            lu = self._factorization(fan_level, tec_activation)
            rhs = self.model.rhs(p_components_w, fan_level, tec_activation)
            self.n_solves += 1
            t = lu.solve(rhs)
        if not np.all(np.isfinite(t)):
            raise ThermalModelError("non-finite steady-state temperatures")
        return t

    def solve_many(
        self,
        p_components_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Batched steady states for one actuator setting, many powers.

        Parameters
        ----------
        p_components_w:
            ``(batch, n_components)`` per-die-component dissipation [W]:
            one row per candidate power vector.
        fan_level, tec_activation:
            Shared actuator setting (the whole point: one factorization,
            one multi-RHS back-substitution).

        Returns
        -------
        ``(batch, n_nodes)`` temperatures [K]; row ``b`` is bit-identical
        to ``solve(p_components_w[b], fan_level, tec_activation)``.
        """
        p = np.asarray(p_components_w, dtype=float)
        if p.ndim != 2:
            raise ThermalModelError(
                f"solve_many expects a (batch, n_components) power matrix, "
                f"got shape {p.shape}"
            )
        with obs.span("thermal.solve_many", hist_ms="thermal.solver_ms"):
            lu = self._factorization(fan_level, tec_activation)
            # The Joule + ambient pieces of the RHS are shared by every
            # candidate; only the component power differs per column.
            base = self.model.rhs(
                np.zeros(p.shape[1]), fan_level, tec_activation
            )
            rhs = np.repeat(base[:, None], p.shape[0], axis=1)
            rhs[self.model.nodes.component_slice, :] += p.T
            self.n_solves += p.shape[0]
            obs.incr("thermal.batch_solves")
            t = lu.solve(rhs)
        if not np.all(np.isfinite(t)):
            raise ThermalModelError("non-finite steady-state temperatures")
        return np.ascontiguousarray(t.T)

    def clear_cache(self) -> None:
        """Drop all cached factorizations."""
        self._lu_cache.clear()
