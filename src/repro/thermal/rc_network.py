"""Thermal RC network: node bookkeeping and heat capacities.

Node layout (flat indices):

* ``[0, n_components)`` — die components, floorplan order;
* ``[n_components, n_components + n_tiles)`` — heat-spreader tiles (the
  spreader is discretized per core tile so TEC hot sides and per-tile
  power concentrations are spatially resolved);
* ``[n_components + n_tiles, n_components + 2*n_tiles)`` — heat-sink
  tiles (the sink base is discretized the same way, so a concentrated
  4-thread load sees a locally hotter sink region, as it physically
  does; lateral conduction through the thick sink base couples them).

The ambient is a fixed boundary temperature, not an unknown: the fan's
convective conductance (split evenly over sink tiles) appears on the
sink diagonals of G and as ``(g_conv/n_tiles) * T_amb`` in the RHS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.floorplan.chip import ChipFloorplan
from repro.thermal.package import PackageStack


@dataclass
class ThermalNodes:
    """Index map and per-node heat capacities for a chip's network."""

    chip: ChipFloorplan
    package: PackageStack
    #: Heat capacity per node [J/K].
    capacities: np.ndarray = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.capacities is None:
            self.capacities = self._build_capacities()

    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        """Number of die component nodes."""
        return self.chip.n_components

    @property
    def n_tiles(self) -> int:
        """Number of spreader tile nodes."""
        return self.chip.n_tiles

    @property
    def n_nodes(self) -> int:
        """Total unknowns in the steady-state solve."""
        return self.n_components + 2 * self.n_tiles

    def spreader_index(self, tile: int) -> int:
        """Flat index of the spreader node over ``tile``."""
        return self.n_components + tile

    def sink_index(self, tile: int) -> int:
        """Flat index of the sink node over ``tile``."""
        return self.n_components + self.n_tiles + tile

    @property
    def component_slice(self) -> slice:
        """Slice selecting the die component nodes."""
        return slice(0, self.n_components)

    @property
    def spreader_slice(self) -> slice:
        """Slice selecting the spreader tile nodes."""
        return slice(self.n_components, self.n_components + self.n_tiles)

    @property
    def sink_slice(self) -> slice:
        """Slice selecting the sink tile nodes."""
        return slice(
            self.n_components + self.n_tiles,
            self.n_components + 2 * self.n_tiles,
        )

    # ------------------------------------------------------------------
    def _build_capacities(self) -> np.ndarray:
        c = np.empty(self.n_nodes)
        areas = self.chip.areas_mm2()
        for i in range(self.n_components):
            c[i] = self.package.component_heat_capacity(areas[i])
        c[self.spreader_slice] = self.package.spreader_tile_heat_capacity(
            self.n_tiles
        )
        c[self.sink_slice] = (
            self.package.sink_heat_capacity_j_per_k / self.n_tiles
        )
        return c

    def expand_component_values(self, values: np.ndarray) -> np.ndarray:
        """Zero-pad a per-component vector to a full node vector."""
        out = np.zeros(self.n_nodes)
        out[self.component_slice] = values
        return out
