"""Thermal package stack parameters (die / TIM+TEC / spreader / sink).

The vertical heat path follows the paper's Fig. 1: silicon die ->
thermal-interface layer (which embeds the TEC films) -> copper heat
spreader -> finned heat sink -> forced convection to ambient driven by
the fan. Lateral conduction exists in the die and in the spreader.

Defaults are calibrated (see ``repro.power.calibration``) so the base
scenario reproduces Table I of the paper: ~126 W uniform load -> ~90 C
peak, ~44 W concentrated on 4 tiles -> ~69 C peak, with 40 C ambient.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PackageStack:
    """Geometry and material parameters of the cooling stack.

    All lengths in metres; conductivities in W/(m K); heat capacities
    derived from volumetric values in :mod:`repro.units`.
    """

    #: Thinned die thickness [m].
    die_thickness_m: float = 0.3e-3
    #: Silicon in-plane conductivity [W/(m K)].
    k_die: float = units.K_SILICON
    #: Discount on lateral die conduction (thinned dies and the dense
    #: BEOL/TSV stack conduct laterally much worse than bulk silicon).
    die_lateral_factor: float = 0.3
    #: TIM bond-line thickness [m].
    tim_thickness_m: float = 90e-6
    #: TIM conductivity [W/(m K)].
    k_tim: float = units.K_TIM
    #: Copper heat-spreader side length [m] (square spreader).
    spreader_side_m: float = 40e-3
    #: Spreader thickness [m].
    spreader_thickness_m: float = 2e-3
    #: Spreader conductivity [W/(m K)].
    k_spreader: float = units.K_COPPER
    #: Geometric factor accounting for the spreader being much larger
    #: than the die (widens the effective lateral cross-section).
    spreader_lateral_factor: float = 0.15
    #: Conductive resistance spreader-tile -> sink-tile [K/W per tile].
    r_spreader_sink_per_tile: float = 1.6
    #: Aluminium sink-base thickness [m] (lateral conduction path).
    sink_base_thickness_m: float = 5e-3
    #: Sink base conductivity [W/(m K)] (aluminium).
    k_sink: float = 200.0
    #: Geometric widening factor of the sink base vs tile pitch.
    sink_lateral_factor: float = 30.0
    #: Heat-sink lumped heat capacity [J/K]; the paper quotes "hundreds
    #: of Joule per Kelvin" and a 15-30 s time constant (Sec. III-D).
    sink_heat_capacity_j_per_k: float = 250.0
    #: Ambient air temperature [degC].
    ambient_c: float = units.DEFAULT_AMBIENT_C

    def __post_init__(self) -> None:
        for name in (
            "die_thickness_m",
            "k_die",
            "tim_thickness_m",
            "k_tim",
            "spreader_side_m",
            "spreader_thickness_m",
            "k_spreader",
            "spreader_lateral_factor",
            "r_spreader_sink_per_tile",
            "sink_base_thickness_m",
            "k_sink",
            "sink_lateral_factor",
            "sink_heat_capacity_j_per_k",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"package parameter {name} must be > 0")

    # ------------------------------------------------------------------
    @property
    def ambient_k(self) -> float:
        """Ambient temperature [K]."""
        return units.c_to_k(self.ambient_c).item()

    def die_lateral_conductance(self, edge_mm: float, dist_mm: float) -> float:
        """Lateral silicon conductance for a shared edge [W/K].

        ``g = k * t * (edge / distance)`` — the mm units of edge and
        centroid distance cancel.
        """
        return (
            self.k_die
            * self.die_thickness_m
            * (edge_mm / dist_mm)
            * self.die_lateral_factor
        )

    def tim_vertical_conductance(self, area_mm2: float) -> float:
        """Vertical conductance of a TIM patch of ``area_mm2`` [W/K]."""
        return self.k_tim * units.mm2_to_m2(area_mm2) / self.tim_thickness_m

    def spreader_lateral_conductance(
        self, edge_mm: float, dist_mm: float
    ) -> float:
        """Lateral conductance between adjacent spreader tiles [W/K]."""
        return (
            self.k_spreader
            * self.spreader_thickness_m
            * (edge_mm / dist_mm)
            * self.spreader_lateral_factor
        )

    def spreader_sink_conductance(self) -> float:
        """Per-tile conductance from spreader to sink base [W/K]."""
        return 1.0 / self.r_spreader_sink_per_tile

    def sink_lateral_conductance(self, edge_mm: float, dist_mm: float) -> float:
        """Lateral conductance between adjacent sink tiles [W/K]."""
        return (
            self.k_sink
            * self.sink_base_thickness_m
            * (edge_mm / dist_mm)
            * self.sink_lateral_factor
        )

    def component_heat_capacity(self, area_mm2: float) -> float:
        """Heat capacity of a die component [J/K]."""
        return units.CV_SILICON * units.mm2_to_m2(area_mm2) * self.die_thickness_m

    def spreader_tile_heat_capacity(self, n_tiles: int) -> float:
        """Heat capacity of one spreader node [J/K] (total split evenly)."""
        vol = self.spreader_side_m**2 * self.spreader_thickness_m
        return units.CV_COPPER * vol / n_tiles
