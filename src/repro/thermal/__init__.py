"""Thermal substrate: the HotSpot-equivalent lumped RC network.

Public API
----------
- :class:`~repro.thermal.package.PackageStack` — stack geometry/materials
- :class:`~repro.thermal.rc_network.ThermalNodes` — node map + capacities
- :class:`~repro.thermal.conductance.ConductanceModel` — G assembly
  (``G = G0 + diag``, actuator-dependent diagonal only)
- :class:`~repro.thermal.steady_state.SteadyStateSolver` — LU-cached
  ``G Ts = P`` solves (Eq. 1)
- :class:`~repro.thermal.transient.PaperTransient` /
  :class:`~repro.thermal.transient.ExactTransient` — Eq. (5) vs exact
- :class:`~repro.thermal.leakage_loop.LeakageCoupledSolver` — the
  temperature-leakage fixed point (HotSpot modification, Sec. IV-B)
- :class:`~repro.thermal.sensors.TemperatureSensorBank`
"""

from repro.thermal.conductance import ConductanceModel
from repro.thermal.leakage_loop import (
    LeakageCoupledSolver,
    MAX_ITERATIONS,
    PEAK_TOLERANCE_K,
)
from repro.thermal.package import PackageStack
from repro.thermal.rc_network import ThermalNodes
from repro.thermal.sensors import TemperatureSensorBank
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import ExactTransient, PaperTransient

__all__ = [
    "ConductanceModel",
    "LeakageCoupledSolver",
    "MAX_ITERATIONS",
    "PEAK_TOLERANCE_K",
    "PackageStack",
    "ThermalNodes",
    "TemperatureSensorBank",
    "SteadyStateSolver",
    "ExactTransient",
    "PaperTransient",
]
