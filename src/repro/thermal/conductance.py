"""Assembly of the thermal conductance matrix G (paper Eq. 1-2).

Structure exploited throughout the solver stack: for *any* actuator
setting, the matrix factors as

    G(fan, tec) = G0 + diag(d_fan + d_tec)

where ``G0`` is a fixed sparse matrix (die lateral conduction, TIM and
TEC-off vertical paths, spreader lateral, spreader->sink), ``d_fan`` puts
the fan-level-dependent convective conductance on the sink diagonal, and
``d_tec`` holds the Peltier pumping terms ``+/- a*I`` (see
:mod:`repro.cooling.tec`): activating a TEC adds ``a I`` to the diagonal
of every die component under its footprint (weighted) and subtracts
``a I`` from its spreader node's diagonal. Off-diagonal entries never
change, so one sparsity pattern serves every configuration and updating
G for a new actuator setting is an O(n) diagonal rewrite.

The right-hand side is ``P = P_components + P_joule(tec) + g_conv T_amb``
(the ambient is a boundary node folded into diagonal + RHS).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.cooling.fan import FanModel
from repro.cooling.tec import TECArray
from repro.exceptions import ThermalModelError
from repro.floorplan.chip import ChipFloorplan
from repro.thermal.package import PackageStack
from repro.thermal.rc_network import ThermalNodes


@dataclass
class ConductanceModel:
    """Precomputed G-matrix machinery for one chip + package + actuators."""

    chip: ChipFloorplan
    package: PackageStack
    tec: TECArray
    fan: FanModel
    nodes: ThermalNodes = field(default=None)

    # Internals built once in __post_init__:
    _g0: sp.csc_matrix = field(default=None, repr=False)
    _diag_pos: np.ndarray = field(default=None, repr=False)  # position of
    # each node's diagonal entry inside g0.data
    _tec_comp_alpha: sp.csr_matrix = field(default=None, repr=False)
    _tec_joule_comp: sp.csr_matrix = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.nodes is None:
            self.nodes = ThermalNodes(self.chip, self.package)
        self._assemble_base()
        self._build_tec_operators()

    # ------------------------------------------------------------------
    # Base matrix
    # ------------------------------------------------------------------
    def _assemble_base(self) -> None:
        nd = self.nodes
        n = nd.n_nodes
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        diag = np.zeros(n)

        def couple(i: int, j: int, g: float) -> None:
            """Symmetric conductance g between nodes i and j."""
            rows.append(i)
            cols.append(j)
            vals.append(-g)
            rows.append(j)
            cols.append(i)
            vals.append(-g)
            diag[i] += g
            diag[j] += g

        pkg = self.package
        chip = self.chip

        # 1. Die lateral conduction (within and across tiles).
        for adj in chip.adjacencies:
            g = pkg.die_lateral_conductance(
                adj.shared_edge_mm, adj.center_distance_mm
            )
            couple(adj.i, adj.j, g)

        # 2. Vertical die -> spreader: TIM over the area not occupied by
        #    TEC film, plus the TEC bodies' passive conductance K.
        areas = chip.areas_mm2()
        tec_area_per_comp = np.zeros(nd.n_components)
        dev_area = self.tec.device.area_mm2
        # coo_weight is the fraction of the *device* over the component,
        # so the covered component area is weight * device_area.
        np.add.at(
            tec_area_per_comp,
            self.tec.coo_component,
            self.tec.coo_weight * dev_area,
        )
        free_area = areas - tec_area_per_comp
        if np.any(free_area < -1e-9):
            raise ThermalModelError("TEC coverage exceeds component area")
        free_area = np.clip(free_area, 0.0, None)
        k_body = self.tec.body_k
        # Per-(device, component) passive body conductance.
        for ci in range(nd.n_components):
            tile = chip.components[ci].tile
            g_tim = pkg.tim_vertical_conductance(free_area[ci])
            if g_tim > 0.0:
                couple(ci, nd.spreader_index(tile), g_tim)
        for d, c, w in zip(
            self.tec.coo_device, self.tec.coo_component, self.tec.coo_weight
        ):
            sp_node = nd.spreader_index(int(self.tec.device_tile[d]))
            couple(int(c), sp_node, w * k_body)

        # 3. Spreader lateral conduction between adjacent tiles.
        for tile in range(chip.n_tiles):
            for nb in chip.tile_neighbours(tile):
                if nb <= tile:
                    continue
                r1, c1 = divmod(tile, chip.cols)
                r2, c2 = divmod(nb, chip.cols)
                if r1 == r2:  # horizontal neighbours share the tile height
                    edge, dist = chip.tile_height_mm, chip.tile_width_mm
                else:
                    edge, dist = chip.tile_width_mm, chip.tile_height_mm
                g = pkg.spreader_lateral_conductance(edge, dist)
                couple(nd.spreader_index(tile), nd.spreader_index(nb), g)

        # 4. Spreader tiles -> sink tiles, and sink lateral conduction.
        g_ss = pkg.spreader_sink_conductance()
        for tile in range(chip.n_tiles):
            couple(nd.spreader_index(tile), nd.sink_index(tile), g_ss)
        for tile in range(chip.n_tiles):
            for nb in chip.tile_neighbours(tile):
                if nb <= tile:
                    continue
                r1, c1 = divmod(tile, chip.cols)
                r2, c2 = divmod(nb, chip.cols)
                if r1 == r2:
                    edge, dist = chip.tile_height_mm, chip.tile_width_mm
                else:
                    edge, dist = chip.tile_width_mm, chip.tile_height_mm
                g = pkg.sink_lateral_conductance(edge, dist)
                couple(nd.sink_index(tile), nd.sink_index(nb), g)

        # Diagonal entries (must exist in the pattern even when the base
        # value is zero, so fan/TEC diagonal updates have a slot).
        for i in range(n):
            rows.append(i)
            cols.append(i)
            vals.append(diag[i])

        g0 = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsc()
        g0.sum_duplicates()
        self._g0 = g0
        self._diag_pos = self._locate_diagonal(g0)

    @staticmethod
    def _locate_diagonal(m: sp.csc_matrix) -> np.ndarray:
        """Index into ``m.data`` of each column's diagonal entry."""
        n = m.shape[0]
        pos = np.full(n, -1, dtype=np.intp)
        indptr, indices = m.indptr, m.indices
        for j in range(n):
            sl = slice(indptr[j], indptr[j + 1])
            hits = np.flatnonzero(indices[sl] == j)
            if hits.size != 1:
                raise ThermalModelError(f"missing diagonal entry at {j}")
            pos[j] = indptr[j] + hits[0]
        return pos

    def _build_tec_operators(self) -> None:
        """Sparse maps device-activation -> per-node diagonal/Joule terms."""
        nd = self.nodes
        n_dev = self.tec.n_devices
        # alpha_op[c, d] = w_(d,c): component share of device d's footprint.
        alpha_op = sp.coo_matrix(
            (
                self.tec.coo_weight,
                (self.tec.coo_component, self.tec.coo_device),
            ),
            shape=(nd.n_components, n_dev),
        ).tocsr()
        self._tec_comp_alpha = alpha_op
        self._tec_joule_comp = alpha_op  # same weights distribute Joule heat

    # ------------------------------------------------------------------
    # Public assembly API
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Total thermal unknowns."""
        return self.nodes.n_nodes

    def diag_delta(
        self, fan_level: int, tec_activation: np.ndarray
    ) -> np.ndarray:
        """Per-node diagonal addition for an actuator setting."""
        nd = self.nodes
        d = np.zeros(nd.n_nodes)
        d[nd.sink_slice] += (
            self.fan.convection_conductance_w_per_k(fan_level) / nd.n_tiles
        )
        s = np.asarray(tec_activation, dtype=float)
        ai = self.tec.alpha_i
        # Pumping: +a*I on covered components, -a*I on hot-side spreaders.
        d[nd.component_slice] += ai * (self._tec_comp_alpha @ s)
        np.subtract.at(
            d,
            nd.n_components + self.tec.device_tile,
            ai * s,
        )
        return d

    def diag(self, fan_level: int, tec_activation: np.ndarray) -> np.ndarray:
        """Diagonal of ``G(fan, tec)`` [W/K] without assembling the matrix.

        The public accessor for the per-node total conductance ``G_ii``
        the transient models build their RC time constants from.
        """
        return self._g0.data[self._diag_pos] + self.diag_delta(
            fan_level, tec_activation
        )

    def matrix(
        self, fan_level: int, tec_activation: np.ndarray
    ) -> sp.csc_matrix:
        """Full G for the given actuator setting (fresh CSC copy)."""
        g = self._g0.copy()
        delta = self.diag_delta(fan_level, tec_activation)
        g.data[self._diag_pos] += delta
        return g

    def apply(
        self, x: np.ndarray, fan_level: int, tec_activation: np.ndarray
    ) -> np.ndarray:
        """Matrix-vector product ``G(fan, tec) @ x`` without assembly.

        Exploits ``G = G0 + diag(delta)``: one sparse product against
        the fixed base plus an O(n) diagonal scale. Accepts a vector or
        a ``(n_nodes, batch)`` column block; used for the cheap residual
        check that validates Woodbury-corrected solves.
        """
        x = np.asarray(x, dtype=float)
        delta = self.diag_delta(fan_level, tec_activation)
        if x.ndim == 1:
            return self._g0 @ x + delta * x
        return self._g0 @ x + delta[:, None] * x

    def rhs(
        self,
        p_components_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
    ) -> np.ndarray:
        """Power vector P for ``G T = P`` [W], temperatures in Kelvin.

        Includes component dissipation, the TEC Joule heat (half to each
        side of every active device), and the ambient boundary term.
        """
        nd = self.nodes
        p = np.zeros(nd.n_nodes)
        p[nd.component_slice] = p_components_w
        s = np.asarray(tec_activation, dtype=float)
        half_joule = 0.5 * self.tec.joule_w * self.tec.joule_scale(s)
        p[nd.component_slice] += self._tec_joule_comp @ half_joule
        np.add.at(p, nd.n_components + self.tec.device_tile, half_joule)
        g_conv = self.fan.convection_conductance_w_per_k(fan_level)
        p[nd.sink_slice] += (g_conv / nd.n_tiles) * self.package.ambient_k
        return p

    def base_matrix(self) -> sp.csc_matrix:
        """The actuator-independent part G0 (copy)."""
        return self._g0.copy()
