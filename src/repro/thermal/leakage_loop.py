"""Temperature-leakage fixed-point loop.

Leakage power rises with temperature, which raises temperature, which
raises leakage — the paper modifies HotSpot 5.02's transient routine to
iterate this loop at run time until the peak temperature moves by less
than 0.5 degC between consecutive passes (Sec. IV-B). This module
implements that coupling for any leakage model of signature
``leakage(T_components_K) -> per-component leakage [W]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConvergenceError
from repro.thermal.steady_state import SteadyStateSolver

#: The paper's convergence criterion on peak temperature [degC == K delta].
PEAK_TOLERANCE_K: float = 0.5

#: Iteration budget; the loop contracts fast (leakage slope << 1/R_th).
MAX_ITERATIONS: int = 50


@dataclass
class LeakageCoupledSolver:
    """Steady-state solve with self-consistent leakage power.

    Parameters
    ----------
    solver:
        The LU-cached steady-state solver.
    leakage_fn:
        Maps per-component absolute temperature [K] to per-component
        leakage power [W].
    """

    solver: SteadyStateSolver
    leakage_fn: Callable[[np.ndarray], np.ndarray]
    tolerance_k: float = PEAK_TOLERANCE_K
    max_iterations: int = MAX_ITERATIONS

    def solve(
        self,
        p_dynamic_w: np.ndarray,
        fan_level: int,
        tec_activation: np.ndarray,
        t_guess_k: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(T_nodes [K], P_leak_components [W])`` at the fixed point.

        Parameters
        ----------
        p_dynamic_w:
            Per-component dynamic power [W].
        t_guess_k:
            Optional warm-start component temperatures [K]; the previous
            interval's temperatures make the loop converge in 1-2 passes.
        """
        nd = self.solver.model.nodes
        comp = nd.component_slice
        if t_guess_k is None:
            t_comp = np.full(nd.n_components, self.solver.model.package.ambient_k)
        else:
            t_comp = np.asarray(t_guess_k, dtype=float)[:nd.n_components]

        prev_peak = np.inf
        for it in range(1, self.max_iterations + 1):
            p_leak = self.leakage_fn(t_comp)
            t_nodes = self.solver.solve(
                p_dynamic_w + p_leak, fan_level, tec_activation
            )
            t_comp = t_nodes[comp]
            peak = float(t_comp.max())
            if abs(peak - prev_peak) < self.tolerance_k:
                return t_nodes, p_leak
            prev_peak = peak
        raise ConvergenceError(
            "temperature-leakage loop did not converge",
            iterations=self.max_iterations,
            residual=abs(peak - prev_peak),
        )
