"""Command-line interface: regenerate the paper's experiments.

Usage (installed as the ``tecfan`` entry point)::

    tecfan table1                    # Table I base-scenario comparison
    tecfan fig4                      # TEC+fan integration study
    tecfan fig5                      # cooling performance (peaks, violations)
    tecfan fig6                      # delay / power / energy / EDP
    tecfan fig7 [--minutes 10]       # server comparison vs OFTEC/Oracle
    tecfan hwcost                    # Sec. III-E hardware cost summary
    tecfan quick                     # one fast end-to-end TECfan demo
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> int:
    from repro.analysis.tables import format_table1, regenerate_table1
    from repro.core.system import build_system

    comparisons = regenerate_table1(build_system())
    print(format_table1(comparisons))
    return 0


def _cmd_fig4(args) -> int:
    from repro.analysis.figures import figure4, format_figure4
    from repro.core.system import build_system

    print(format_figure4(figure4(build_system())))
    return 0


def _cmd_fig56(args, which: str) -> int:
    from repro.analysis.figures import (
        format_figure5,
        format_figure6,
        splash_comparison,
    )
    from repro.core.system import build_system

    comp = splash_comparison(build_system())
    print(format_figure5(comp) if which == "5" else format_figure6(comp))
    return 0


def _cmd_fig7(args) -> int:
    from repro.analysis.figures import format_figure7
    from repro.analysis.server_experiment import run_server_comparison

    comparison = run_server_comparison(minutes=args.minutes)
    print(format_figure7(comparison.normalized_to_oftec()))
    return 0


def _cmd_hwcost(args) -> int:
    from repro.analysis.report import render_table
    from repro.core.hwcost import HardwareCostModel

    model = HardwareCostModel()
    rows = [[k, v] for k, v in model.summary().items()]
    print(
        render_table(
            ["quantity", "value"],
            rows,
            floatfmt="{:.4f}",
            title="Sec. III-E — hardware cost of the estimation datapath",
        )
    )
    return 0


def _cmd_quick(args) -> int:
    from repro.analysis.experiments import run_base_scenario, run_policy_suite
    from repro.core.system import build_system

    system = build_system()
    base, outcomes = run_policy_suite(system, "lu", 16)
    print(f"lu/16t: threshold = {base.t_threshold_c:.2f} degC")
    bm = base.result.metrics
    for name, oc in outcomes.items():
        n = oc.chosen.metrics.normalized_to(bm)
        print(
            f"  {name:10s} fan={oc.chosen.metrics.fan_level} "
            f"delay={n['delay']:.3f} energy={n['energy']:.3f} "
            f"edp={n['edp']:.3f}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tecfan`` console script."""
    parser = argparse.ArgumentParser(
        prog="tecfan",
        description="Regenerate the TECfan paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table I base scenario")
    sub.add_parser("fig4", help="Figure 4: TEC+fan integration")
    sub.add_parser("fig5", help="Figure 5: cooling performance")
    sub.add_parser("fig6", help="Figure 6: energy efficiency")
    p7 = sub.add_parser("fig7", help="Figure 7: server comparison")
    p7.add_argument("--minutes", type=int, default=10)
    sub.add_parser("hwcost", help="Sec. III-E hardware cost")
    sub.add_parser("quick", help="fast end-to-end demo")

    args = parser.parse_args(argv)
    dispatch = {
        "table1": _cmd_table1,
        "fig4": _cmd_fig4,
        "fig5": lambda a: _cmd_fig56(a, "5"),
        "fig6": lambda a: _cmd_fig56(a, "6"),
        "fig7": _cmd_fig7,
        "hwcost": _cmd_hwcost,
        "quick": _cmd_quick,
    }
    return dispatch[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
