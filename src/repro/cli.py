"""Command-line interface: regenerate the paper's experiments.

Usage (installed as the ``tecfan`` entry point)::

    tecfan table1                    # Table I base-scenario comparison
    tecfan fig4                      # TEC+fan integration study
    tecfan fig5                      # cooling performance (peaks, violations)
    tecfan fig6                      # delay / power / energy / EDP
    tecfan fig7 [--minutes 10]       # server comparison vs OFTEC/Oracle
    tecfan hwcost                    # Sec. III-E hardware cost summary
    tecfan quick                     # one fast end-to-end TECfan demo
    tecfan run --checkpoint ck.pkl   # checkpointed single simulation
    tecfan run --resume ck.pkl       # resume it (bit-identical result)
    tecfan run --status-file s.json  # live status sidecar for `watch`
    tecfan watch s.json              # refreshing live view of that run
    tecfan sweep --journal sweep.tfj # crash-recoverable fan sweep
    tecfan sweep --status-file s.json   # pool heartbeats for `top`
    tecfan top s.json                # one row per worker / sweep cell
    tecfan run ... --metrics-port 0  # Prometheus scrape endpoint
    tecfan profile                   # instrumented run + profile tables
    tecfan profile --load out.jsonl  # re-render a saved telemetry stream
    tecfan trace diff A.jsonl B.jsonl   # span/counter regression gate
    tecfan trace flame run.jsonl        # folded stacks for flamegraph.pl
    tecfan trace anomalies run.jsonl    # thermal/oscillation/EPI scan

Every experiment subcommand accepts ``--telemetry PATH``: the command
then runs under an installed :class:`repro.obs.Telemetry` session and,
on exit, writes the JSONL stream (run manifest first, then span/metric
aggregates and per-interval events) to ``PATH``. ``--telemetry-stream
PATH`` records the same stream *incrementally* instead — interval
events flush to disk as they happen (bounded memory, optional
``--telemetry-rotate-mb`` rotation), so long runs never hit the
in-memory event cap. See ``docs/OBSERVABILITY.md`` for the stream
format and naming conventions.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> int:
    from repro.analysis.tables import format_table1, regenerate_table1
    from repro.core.system import build_system

    comparisons = regenerate_table1(build_system())
    print(format_table1(comparisons))
    return 0


def _cmd_fig4(args) -> int:
    from repro.analysis.figures import figure4, format_figure4
    from repro.core.system import build_system

    print(format_figure4(figure4(build_system())))
    return 0


def _cmd_fig56(args, which: str) -> int:
    from repro.analysis.figures import (
        format_figure5,
        format_figure6,
        splash_comparison,
    )
    from repro.core.system import build_system

    comp = splash_comparison(build_system(), jobs=args.jobs)
    print(format_figure5(comp) if which == "5" else format_figure6(comp))
    return 0


def _cmd_fig7(args) -> int:
    from repro.analysis.figures import format_figure7
    from repro.analysis.server_experiment import run_server_comparison

    comparison = run_server_comparison(minutes=args.minutes)
    print(format_figure7(comparison.normalized_to_oftec()))
    return 0


def _cmd_hwcost(args) -> int:
    from repro.analysis.report import render_table
    from repro.core.hwcost import HardwareCostModel

    model = HardwareCostModel()
    rows = [[k, v] for k, v in model.summary().items()]
    print(
        render_table(
            ["quantity", "value"],
            rows,
            floatfmt="{:.4f}",
            title="Sec. III-E — hardware cost of the estimation datapath",
        )
    )
    return 0


def _cmd_quick(args) -> int:
    from repro.analysis.experiments import run_base_scenario, run_policy_suite
    from repro.core.system import build_system

    system = build_system()
    base, outcomes = run_policy_suite(system, "lu", 16, jobs=args.jobs)
    print(f"lu/16t: threshold = {base.t_threshold_c:.2f} degC")
    bm = base.result.metrics
    for name, oc in outcomes.items():
        n = oc.chosen.metrics.normalized_to(bm)
        print(
            f"  {name:10s} fan={oc.chosen.metrics.fan_level} "
            f"delay={n['delay']:.3f} energy={n['energy']:.3f} "
            f"edp={n['edp']:.3f}"
        )
    return 0


def _make_controller(name: str):
    """Resolve a policy name (case-insensitive) to a fresh controller."""
    from repro.analysis.experiments import make_policies

    policies = make_policies()
    for policy in policies:
        if policy.name.lower() == name.lower():
            return policy
    known = ", ".join(p.name for p in policies)
    raise ValueError(f"unknown policy {name!r} (choose from: {known})")


def _load_fault_scheduler(path: str, prog: str):
    """Parse a JSON fault script; returns (scheduler, rc)."""
    import json

    from repro.exceptions import FaultInjectionError
    from repro.faults import FaultScheduler

    try:
        with open(path) as fh:
            spec = json.load(fh)
        return FaultScheduler.from_spec(spec), 0
    except (OSError, json.JSONDecodeError, FaultInjectionError) as exc:
        print(f"{prog}: bad fault script {path}: {exc}", file=sys.stderr)
        return None, 2


def _print_run_result(result) -> None:
    from repro.checkpoint import result_digest

    m = result.metrics
    print(
        f"{m.policy} on {m.workload}: "
        f"time={m.execution_time_s!r} s power={m.average_power_w!r} W "
        f"energy={m.energy_j!r} J peak={m.peak_temp_c!r} degC "
        f"violations={m.violation_rate!r} fan={m.fan_level}"
    )
    print(f"digest: {result_digest(result)}")


def _cmd_run(args) -> int:
    """One simulation with optional periodic checkpoints, or a resume."""
    from repro.exceptions import CheckpointError

    if args.resume is not None:
        try:
            if args.status_file is not None:
                # The snapshotted config predates the flag; override it
                # so the resumed half of the run is watchable too.
                from repro.checkpoint import load_checkpoint
                from repro.core.engine import SimulationEngine

                ck = load_checkpoint(args.resume, kind="engine-run")
                ck["config"].status_path = args.status_file
                ck["config"].status_every_s = args.status_every_s
                engine = SimulationEngine(
                    system=ck["system"],
                    problem=ck["problem"],
                    config=ck["config"],
                )
                result = engine.resume(ck)
            else:
                from repro.checkpoint import resume_engine_run

                result = resume_engine_run(args.resume)
        except CheckpointError as exc:
            print(f"tecfan run: cannot resume {args.resume}: {exc}",
                  file=sys.stderr)
            return 2
        _print_run_result(result)
        return 0

    from repro.core.engine import EngineConfig, SimulationEngine
    from repro.core.problem import EnergyProblem
    from repro.core.system import build_system
    from repro.perf import splash2_workload
    from repro.perf.workload import WorkloadRun

    if args.max_time_s <= 0:
        print("tecfan run: --max-time-s must be > 0", file=sys.stderr)
        return 2
    engine_kwargs = {}
    if args.interval_kernel:
        engine_kwargs["interval_kernel"] = True
    if args.exact_kernel:
        engine_kwargs["interval_kernel"] = True
        engine_kwargs["exact_kernel"] = True
    if args.faults is not None:
        from repro.faults import HealthConfig, WatchdogConfig

        scheduler, rc = _load_fault_scheduler(args.faults, "tecfan run")
        if scheduler is None:
            return rc
        engine_kwargs = dict(
            faults=scheduler,
            watchdog=WatchdogConfig(),
            health=HealthConfig(),
            estimator_fallback=True,
        )
    if args.checkpoint is not None:
        engine_kwargs["checkpoint_path"] = args.checkpoint
        engine_kwargs["checkpoint_every_s"] = args.checkpoint_every_s
    if args.status_file is not None:
        engine_kwargs["status_path"] = args.status_file
        engine_kwargs["status_every_s"] = args.status_every_s

    try:
        controller = _make_controller(args.policy)
    except ValueError as exc:
        print(f"tecfan run: {exc}", file=sys.stderr)
        return 2
    system = build_system()
    workload = splash2_workload(args.workload, args.threads, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=args.threshold),
        EngineConfig(max_time_s=args.max_time_s, **engine_kwargs),
    )
    run = WorkloadRun(workload, system.chip, ref_freq_ghz=2.0)
    result = engine.run(run, controller)
    _print_run_result(result)
    return 0


def _cmd_sweep(args) -> int:
    """Fan sweep of one policy with an optional crash-recovery journal."""
    from repro.checkpoint import result_digest
    from repro.core.engine import EngineConfig, SimulationEngine, run_fan_sweep
    from repro.core.problem import EnergyProblem
    from repro.core.system import build_system
    from repro.exceptions import CheckpointError
    from repro.perf import splash2_workload
    from repro.perf.workload import WorkloadRun

    if args.max_time_s <= 0:
        print("tecfan sweep: --max-time-s must be > 0", file=sys.stderr)
        return 2
    try:
        controller = _make_controller(args.policy)
    except ValueError as exc:
        print(f"tecfan sweep: {exc}", file=sys.stderr)
        return 2
    system = build_system()
    workload = splash2_workload(args.workload, args.threads, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=args.threshold),
        EngineConfig(max_time_s=args.max_time_s),
    )

    def make_run():
        return WorkloadRun(workload, system.chip, ref_freq_ghz=2.0)

    try:
        chosen, all_metrics = run_fan_sweep(
            engine,
            make_run,
            controller,
            jobs=args.jobs,
            journal_path=args.journal,
            status_path=args.status_file,
            status_every_s=args.status_every_s,
        )
    except CheckpointError as exc:
        print(f"tecfan sweep: journal mismatch: {exc}", file=sys.stderr)
        return 2
    for m in all_metrics:
        print(
            f"fan={m.fan_level} time={m.execution_time_s!r} "
            f"energy={m.energy_j!r} peak={m.peak_temp_c!r} "
            f"violations={m.violation_rate!r}"
        )
    print(f"chosen: fan={chosen.metrics.fan_level}")
    print(f"digest: {result_digest(chosen)}")
    return 0


def _cmd_fleet(args) -> int:
    """N-node fleet simulation with the batched interval kernel."""
    import time as _time

    from repro.exceptions import CheckpointError, ConfigurationError
    from repro.fleet import FleetConfig, run_fleet

    if args.nodes < 1:
        print("tecfan fleet: --nodes must be >= 1", file=sys.stderr)
        return 2
    duration_s = int(round(args.hours * 3600)) if args.hours else args.seconds
    if duration_s < 1:
        print("tecfan fleet: duration must be >= 1 s", file=sys.stderr)
        return 2
    try:
        cfg = FleetConfig(
            n_nodes=args.nodes,
            duration_s=duration_s,
            trace=args.trace,
            seed=args.seed,
            scale=args.scale,
            router=args.router,
            stepper=args.stepper,
            fast_forward=not args.no_fast_forward,
            shards=args.shards,
        )
    except ConfigurationError as exc:
        print(f"tecfan fleet: {exc}", file=sys.stderr)
        return 2
    t0 = _time.monotonic()
    try:
        result = run_fleet(
            cfg,
            jobs=args.jobs,
            journal_path=args.journal,
            status_path=args.status_file,
            status_every_s=args.status_every_s,
        )
    except CheckpointError as exc:
        print(f"tecfan fleet: journal mismatch: {exc}", file=sys.stderr)
        return 2
    wall_s = _time.monotonic() - t0
    for key, value in result.summary().items():
        print(f"{key}: {value!r}")
    print(f"wall_s: {wall_s:.3f}")
    print(
        f"throughput: {result.sim_time_s * result.n_nodes / wall_s:.0f} "
        "node-sim-s/s"
    )
    return 0


def _cmd_watch(args, prog: str) -> int:
    """Shared body of ``tecfan watch`` and ``tecfan top``.

    Both read the same status sidecar; the renderer dispatches on the
    snapshot's ``kind``, so either command works against either kind —
    the two names exist for discoverability. ``--once`` prints a single
    plain-text view (exit 2 when the file is missing/invalid — the CI
    smoke mode); the default loop refreshes every ``--interval``
    seconds, tolerates a not-yet-written file, and exits 0 when the
    snapshot reports ``done`` (or on Ctrl-C).
    """
    import time

    from repro.exceptions import ObservabilityError
    from repro.obs.live import read_status, render_status

    if args.once:
        try:
            status = read_status(args.status_file)
        except ObservabilityError as exc:
            print(f"{prog}: {exc}", file=sys.stderr)
            return 2
        print(render_status(status))
        return 0

    try:
        while True:
            try:
                status = read_status(args.status_file)
            except ObservabilityError as exc:
                print(f"{prog}: waiting — {exc}", file=sys.stderr)
                time.sleep(args.interval)
                continue
            # ANSI clear + home, so the view refreshes in place.
            sys.stdout.write("\x1b[2J\x1b[H")
            print(render_status(status))
            sys.stdout.flush()
            if status.get("done"):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_profile(args) -> int:
    from repro.obs import get_telemetry, profile_summary, read_jsonl

    if args.load is not None:
        from repro.exceptions import ObservabilityError

        try:
            print(profile_summary(read_jsonl(args.load)))
        except (OSError, ObservabilityError) as exc:
            print(f"tecfan profile: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 2
        return 0

    from repro.core.engine import EngineConfig, SimulationEngine
    from repro.core.export import metrics_to_dict
    from repro.core.problem import EnergyProblem
    from repro.core.system import build_system
    from repro.core.tecfan import TECfanController
    from repro.perf import splash2_workload
    from repro.perf.workload import WorkloadRun

    if args.max_time_s <= 0:
        print("tecfan profile: --max-time-s must be > 0", file=sys.stderr)
        return 2

    engine_kwargs = {}
    if args.interval_kernel:
        engine_kwargs["interval_kernel"] = True
    if args.exact_kernel:
        engine_kwargs["interval_kernel"] = True
        engine_kwargs["exact_kernel"] = True
    if args.faults is not None:
        import json

        from repro.exceptions import FaultInjectionError
        from repro.faults import FaultScheduler, HealthConfig, WatchdogConfig

        try:
            with open(args.faults) as fh:
                spec = json.load(fh)
            scheduler = FaultScheduler.from_spec(spec)
        except (OSError, json.JSONDecodeError, FaultInjectionError) as exc:
            print(
                f"tecfan profile: bad fault script {args.faults}: {exc}",
                file=sys.stderr,
            )
            return 2
        engine_kwargs = dict(
            faults=scheduler,
            watchdog=WatchdogConfig(),
            health=HealthConfig(),
            estimator_fallback=True,
        )

    tel = get_telemetry()  # installed by main() for this subcommand
    system = build_system()
    workload = splash2_workload(args.workload, args.threads, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=args.threshold),
        EngineConfig(max_time_s=args.max_time_s, **engine_kwargs),
    )
    run = WorkloadRun(workload, system.chip, ref_freq_ghz=2.0)
    result = engine.run(run, TECfanController())
    tel.annotate("metrics", metrics_to_dict(result.metrics))
    m = result.metrics
    print(
        f"{m.policy} on {m.workload}/{args.threads}t: "
        f"{m.execution_time_s * 1e3:.1f} ms simulated, "
        f"{len(result.trace)} intervals, peak {m.peak_temp_c:.2f} degC"
    )
    print()
    print(profile_summary(tel))
    return 0


def _load_stream(path: str, label: str):
    """Load a JSONL stream for trace analysis, or (None, rc) on failure."""
    from repro.exceptions import ObservabilityError
    from repro.obs import read_jsonl

    try:
        return read_jsonl(path), 0
    except (OSError, ObservabilityError) as exc:
        print(f"tecfan trace: cannot load {label} {path}: {exc}",
              file=sys.stderr)
        return None, 2


def _cmd_trace(args) -> int:
    from repro.analysis import tracetools

    if args.trace_command == "diff":
        a, rc = _load_stream(args.baseline, "baseline")
        if a is None:
            return rc
        b, rc = _load_stream(args.candidate, "candidate")
        if b is None:
            return rc
        diff = tracetools.diff_streams(
            a,
            b,
            span_threshold_pct=args.span_threshold_pct,
            counter_threshold_pct=args.counter_threshold_pct,
            min_total_ms=args.min_total_ms,
        )
        print(tracetools.format_trace_diff(diff))
        return 0 if diff.ok else 1

    if args.trace_command == "flame":
        parsed, rc = _load_stream(args.stream, "stream")
        if parsed is None:
            return rc
        folded = tracetools.flame_folded(parsed)
        if args.output is not None:
            with open(args.output, "w") as fh:
                fh.write(folded)
            print(f"trace flame: wrote {args.output}", file=sys.stderr)
        else:
            print(folded, end="")
        return 0

    # anomalies
    parsed, rc = _load_stream(args.stream, "stream")
    if parsed is None:
        return rc
    anomalies = tracetools.detect_anomalies(
        parsed, threshold_c=args.threshold
    )
    print(tracetools.format_anomalies(anomalies))
    return 1 if (args.strict and anomalies) else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tecfan`` console script."""
    parser = argparse.ArgumentParser(
        prog="tecfan",
        description="Regenerate the TECfan paper's tables and figures.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record a telemetry session and write its JSONL stream here",
    )
    common.add_argument(
        "--telemetry-stream",
        metavar="PATH",
        default=None,
        help="stream telemetry events to PATH incrementally (bounded "
        "memory; manifest and aggregates are appended on exit)",
    )
    common.add_argument(
        "--telemetry-rotate-mb",
        type=float,
        metavar="MB",
        default=None,
        help="with --telemetry-stream, rotate to a new .partNNN file "
        "once the current part exceeds MB megabytes",
    )
    common.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        default=None,
        help="serve the live MetricsRegistry (plus --status-file gauges "
        "when set) in Prometheus text format on PORT over a background "
        "http.server thread (0 = ephemeral; the bound port is printed)",
    )
    # Experiment fan-out (policy suites): worker process count.
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="run independent simulations across a persistent pool of "
        "N worker processes (0 = auto: TECFAN_JOBS env var, else the "
        "CPU affinity mask); results are identical to serial execution",
    )
    jobs_parent.add_argument(
        "--job-timeout-s",
        type=float,
        metavar="S",
        default=None,
        help="kill any worker task still running after S seconds "
        "(sets TECFAN_JOB_TIMEOUT_S for every fan-out in this command)",
    )
    jobs_parent.add_argument(
        "--job-retries",
        type=int,
        metavar="K",
        default=None,
        help="retry a failed or timed-out worker task up to K times "
        "(sets TECFAN_JOB_RETRIES for every fan-out in this command)",
    )
    # Live-status sidecar (repro.obs.live): run and sweep write it, the
    # watch/top consumers read it.
    status_parent = argparse.ArgumentParser(add_help=False)
    status_parent.add_argument(
        "--status-file",
        metavar="PATH",
        default=None,
        help="write periodic live-status snapshots here (atomic "
        "replace; watch with `tecfan watch PATH` / `tecfan top PATH`); "
        "snapshots never change results",
    )
    status_parent.add_argument(
        "--status-every-s",
        type=float,
        metavar="S",
        default=1.0,
        help="wall-clock cadence between status snapshots [s]",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", parents=[common], help="Table I base scenario")
    sub.add_parser("fig4", parents=[common], help="Figure 4: TEC+fan integration")
    sub.add_parser(
        "fig5",
        parents=[common, jobs_parent],
        help="Figure 5: cooling performance",
    )
    sub.add_parser(
        "fig6",
        parents=[common, jobs_parent],
        help="Figure 6: energy efficiency",
    )
    p7 = sub.add_parser("fig7", parents=[common], help="Figure 7: server comparison")
    p7.add_argument("--minutes", type=int, default=10)
    sub.add_parser("hwcost", parents=[common], help="Sec. III-E hardware cost")
    sub.add_parser(
        "quick", parents=[common, jobs_parent], help="fast end-to-end demo"
    )
    runp = sub.add_parser(
        "run",
        parents=[common, status_parent],
        help="one simulation with optional periodic checkpoints / resume",
    )
    runp.add_argument("--workload", default="lu", help="SPLASH-2 benchmark name")
    runp.add_argument("--threads", type=int, default=16)
    runp.add_argument(
        "--policy",
        default="TECfan",
        help="controller name (case-insensitive): FanOnly, Fan+TEC, "
        "Fan+DVFS, DVFS+TEC or TECfan",
    )
    runp.add_argument(
        "--threshold", type=float, default=85.0, help="T_th [degC]"
    )
    runp.add_argument(
        "--max-time-s",
        type=float,
        default=2.0,
        help="simulated-time cap for the run [s]",
    )
    runp.add_argument(
        "--interval-kernel",
        action="store_true",
        help="arm the interval-kernel fast path (see docs/PERFORMANCE.md)",
    )
    runp.add_argument(
        "--exact-kernel",
        action="store_true",
        help="force the classic exact loop even with --interval-kernel",
    )
    runp.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="JSON fault script; enables watchdog, health monitor and "
        "estimator fallback (the hardened engine configuration)",
    )
    runp.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write periodic engine checkpoints here (atomic replace; "
        "resume later with --resume PATH)",
    )
    runp.add_argument(
        "--checkpoint-every-s",
        type=float,
        metavar="S",
        default=0.05,
        help="simulated-time cadence between checkpoints [s]",
    )
    runp.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume from a checkpoint instead of starting fresh; the "
        "completed result is bit-identical to the uninterrupted run",
    )
    sweepp = sub.add_parser(
        "sweep",
        parents=[common, jobs_parent, status_parent],
        help="fan-level sweep of one policy (crash-recoverable "
        "with --journal)",
    )
    sweepp.add_argument(
        "--workload", default="lu", help="SPLASH-2 benchmark name"
    )
    sweepp.add_argument("--threads", type=int, default=16)
    sweepp.add_argument(
        "--policy", default="TECfan", help="controller name (case-insensitive)"
    )
    sweepp.add_argument(
        "--threshold", type=float, default=85.0, help="T_th [degC]"
    )
    sweepp.add_argument(
        "--max-time-s",
        type=float,
        default=2.0,
        help="simulated-time cap per level [s]",
    )
    sweepp.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append completed levels to this crash-recovery journal; "
        "re-running with the same path redoes only missing levels",
    )
    fleetp = sub.add_parser(
        "fleet",
        parents=[common, jobs_parent, status_parent],
        help="N-node datacenter fleet simulation (batched interval "
        "kernel; crash-recoverable with --journal)",
    )
    fleetp.add_argument(
        "--nodes", type=int, default=64, help="number of S8-style servers"
    )
    fleetp.add_argument(
        "--seconds",
        type=int,
        default=3600,
        metavar="S",
        help="simulated arrival-stream duration [s]",
    )
    fleetp.add_argument(
        "--hours",
        type=float,
        default=None,
        metavar="H",
        help="duration in hours (overrides --seconds)",
    )
    fleetp.add_argument(
        "--trace",
        choices=("diurnal", "wikipedia"),
        default="diurnal",
        help="arrival stream: vectorized synthetic diurnal or the "
        "paper's 7-day Wikipedia trace (cached per process)",
    )
    fleetp.add_argument(
        "--router",
        choices=("identity", "round-robin", "least-loaded", "thermal"),
        default="round-robin",
        help="request routing policy",
    )
    fleetp.add_argument(
        "--stepper",
        choices=("batched", "sequential"),
        default="batched",
        help="plant stepper: class-grouped batched kernel or the "
        "reference per-node loop (bit-identical results)",
    )
    fleetp.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="stream utilization multiplier (trace-scaling study)",
    )
    fleetp.add_argument("--seed", type=int, default=2009)
    fleetp.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the worker pool (default: one per "
        "worker); pin it to compare runs across --jobs values",
    )
    fleetp.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="disable quiescent fleet fast-forwarding",
    )
    fleetp.add_argument(
        "--journal",
        metavar="PATH",
        default=None,
        help="append completed shards to this crash-recovery journal; "
        "re-running with the same path redoes only missing shards",
    )
    watchp = sub.add_parser(
        "watch",
        help="live view of a running simulation's --status-file "
        "(progress, ETA, thermal headroom, anomalies)",
    )
    topp = sub.add_parser(
        "top",
        help="live view of a pool/sweep --status-file "
        "(one row per worker, replayed vs live cells)",
    )
    for viewer in (watchp, topp):
        viewer.add_argument(
            "status_file", help="status sidecar written by --status-file"
        )
        viewer.add_argument(
            "--once",
            action="store_true",
            help="print one plain-text snapshot and exit (CI / piping; "
            "exit 2 when the file is missing or invalid)",
        )
        viewer.add_argument(
            "--interval",
            type=float,
            metavar="S",
            default=2.0,
            help="refresh period in loop mode [s]",
        )
    prof = sub.add_parser(
        "profile",
        parents=[common],
        help="run one instrumented TECfan simulation and print its profile",
    )
    prof.add_argument("--workload", default="lu", help="SPLASH-2 benchmark name")
    prof.add_argument("--threads", type=int, default=16)
    prof.add_argument(
        "--threshold", type=float, default=85.0, help="T_th [degC]"
    )
    prof.add_argument(
        "--max-time-s",
        type=float,
        default=2.0,
        help="simulated-time cap for the profiled run [s]",
    )
    prof.add_argument(
        "--load",
        metavar="PATH",
        default=None,
        help="render the profile of a saved JSONL stream instead of running",
    )
    prof.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="JSON fault script (list of {kind, ...} dicts, see "
        "docs/ROBUSTNESS.md) injected into the profiled run; enables "
        "the thermal watchdog, health monitor and estimator fallback",
    )
    prof.add_argument(
        "--interval-kernel",
        action="store_true",
        help="arm the interval-kernel fast path (propagator caches, "
        "Woodbury solver corrections, quiescent fast-forwarding; see "
        "docs/PERFORMANCE.md). Auto-disabled when --faults is given",
    )
    prof.add_argument(
        "--exact-kernel",
        action="store_true",
        help="force the classic exact interval loop even with "
        "--interval-kernel: the A/B switch for validating the fast path",
    )
    trace = sub.add_parser(
        "trace",
        help="analyze saved telemetry streams (diff / flame / anomalies)",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tdiff = trace_sub.add_parser(
        "diff",
        help="span/counter deltas between two streams; nonzero exit on "
        "regressions past the thresholds (CI gate)",
    )
    tdiff.add_argument("baseline", help="baseline JSONL stream (A)")
    tdiff.add_argument("candidate", help="candidate JSONL stream (B)")
    tdiff.add_argument(
        "--span-threshold-pct",
        type=float,
        metavar="PCT",
        default=10.0,
        help="span total-time growth beyond PCT%% is a regression",
    )
    tdiff.add_argument(
        "--counter-threshold-pct",
        type=float,
        metavar="PCT",
        default=10.0,
        help="counter growth beyond PCT%% is a regression",
    )
    tdiff.add_argument(
        "--min-total-ms",
        type=float,
        metavar="MS",
        default=1.0,
        help="ignore spans under MS total in both streams (noise floor)",
    )
    tflame = trace_sub.add_parser(
        "flame",
        help="folded-stack output (flamegraph.pl / speedscope format) "
        "reconstructed from the stream's span_edge records",
    )
    tflame.add_argument("stream", help="JSONL telemetry stream")
    tflame.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write folded stacks here instead of stdout",
    )
    tanom = trace_sub.add_parser(
        "anomalies",
        help="scan interval events for thermal excursions, fan/TEC "
        "oscillation and EPI drift",
    )
    tanom.add_argument("stream", help="JSONL telemetry stream")
    tanom.add_argument(
        "--threshold",
        type=float,
        metavar="C",
        default=None,
        help="thermal threshold [degC]; defaults to the t_threshold_c "
        "recorded in the stream's manifest",
    )
    tanom.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any anomaly is detected",
    )

    args = parser.parse_args(argv)
    # Resilience knobs travel by environment so every nested fan-out
    # (policy suite -> fan sweep -> parallel_map) honors them without
    # threading two extra parameters through each driver signature.
    if getattr(args, "job_timeout_s", None) is not None:
        import os

        os.environ["TECFAN_JOB_TIMEOUT_S"] = str(args.job_timeout_s)
    if getattr(args, "job_retries", None) is not None:
        import os

        os.environ["TECFAN_JOB_RETRIES"] = str(args.job_retries)
    dispatch = {
        "table1": _cmd_table1,
        "fig4": _cmd_fig4,
        "fig5": lambda a: _cmd_fig56(a, "5"),
        "fig6": lambda a: _cmd_fig56(a, "6"),
        "fig7": _cmd_fig7,
        "hwcost": _cmd_hwcost,
        "quick": _cmd_quick,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "fleet": _cmd_fleet,
        "watch": lambda a: _cmd_watch(a, "tecfan watch"),
        "top": lambda a: _cmd_watch(a, "tecfan top"),
        "profile": _cmd_profile,
        "trace": _cmd_trace,
    }
    handler = dispatch[args.command]

    telemetry_path = getattr(args, "telemetry", None)
    stream_path = getattr(args, "telemetry_stream", None)
    metrics_port = getattr(args, "metrics_port", None)
    needs_session = (
        telemetry_path is not None
        or stream_path is not None
        or metrics_port is not None
        or (args.command == "profile" and args.load is None)
    )
    if not needs_session:
        return handler(args)

    from repro.core.export import telemetry_to_jsonl
    from repro.obs import telemetry_session

    exporter = None
    if stream_path is not None:
        from repro.obs import StreamingExporter

        rotate_mb = getattr(args, "telemetry_rotate_mb", None)
        exporter = StreamingExporter(
            stream_path,
            rotate_bytes=(
                int(rotate_mb * 2**20) if rotate_mb is not None else None
            ),
        )

    with telemetry_session() as tel:
        if exporter is not None:
            exporter.attach(tel)
        tel.annotate(
            "command", list(argv) if argv is not None else sys.argv[1:]
        )
        server = None
        if metrics_port is not None:
            from repro.obs.live import MetricsServer

            server = MetricsServer(
                metrics_port,
                status_path=getattr(args, "status_file", None),
            )
            print(
                f"metrics: serving Prometheus text on port {server.port} "
                "(GET any path)",
                file=sys.stderr,
            )
        try:
            rc = handler(args)
        finally:
            if server is not None:
                server.close()
            if exporter is not None:
                parts = exporter.close(tel)
                print(
                    f"telemetry: streamed {exporter.events_written} "
                    f"event(s) across {len(parts)} part(s) to "
                    f"{stream_path}",
                    file=sys.stderr,
                )
    if telemetry_path is not None:
        telemetry_to_jsonl(tel, telemetry_path)
        print(f"telemetry: wrote {telemetry_path}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
