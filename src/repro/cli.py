"""Command-line interface: regenerate the paper's experiments.

Usage (installed as the ``tecfan`` entry point)::

    tecfan table1                    # Table I base-scenario comparison
    tecfan fig4                      # TEC+fan integration study
    tecfan fig5                      # cooling performance (peaks, violations)
    tecfan fig6                      # delay / power / energy / EDP
    tecfan fig7 [--minutes 10]       # server comparison vs OFTEC/Oracle
    tecfan hwcost                    # Sec. III-E hardware cost summary
    tecfan quick                     # one fast end-to-end TECfan demo
    tecfan profile                   # instrumented run + profile tables
    tecfan profile --load out.jsonl  # re-render a saved telemetry stream

Every subcommand accepts ``--telemetry PATH``: the command then runs
under an installed :class:`repro.obs.Telemetry` session and, on exit,
writes the JSONL stream (run manifest first, then span/metric
aggregates and per-interval events) to ``PATH``. See
``docs/OBSERVABILITY.md`` for the stream format and naming conventions.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_table1(args) -> int:
    from repro.analysis.tables import format_table1, regenerate_table1
    from repro.core.system import build_system

    comparisons = regenerate_table1(build_system())
    print(format_table1(comparisons))
    return 0


def _cmd_fig4(args) -> int:
    from repro.analysis.figures import figure4, format_figure4
    from repro.core.system import build_system

    print(format_figure4(figure4(build_system())))
    return 0


def _cmd_fig56(args, which: str) -> int:
    from repro.analysis.figures import (
        format_figure5,
        format_figure6,
        splash_comparison,
    )
    from repro.core.system import build_system

    comp = splash_comparison(build_system(), jobs=args.jobs)
    print(format_figure5(comp) if which == "5" else format_figure6(comp))
    return 0


def _cmd_fig7(args) -> int:
    from repro.analysis.figures import format_figure7
    from repro.analysis.server_experiment import run_server_comparison

    comparison = run_server_comparison(minutes=args.minutes)
    print(format_figure7(comparison.normalized_to_oftec()))
    return 0


def _cmd_hwcost(args) -> int:
    from repro.analysis.report import render_table
    from repro.core.hwcost import HardwareCostModel

    model = HardwareCostModel()
    rows = [[k, v] for k, v in model.summary().items()]
    print(
        render_table(
            ["quantity", "value"],
            rows,
            floatfmt="{:.4f}",
            title="Sec. III-E — hardware cost of the estimation datapath",
        )
    )
    return 0


def _cmd_quick(args) -> int:
    from repro.analysis.experiments import run_base_scenario, run_policy_suite
    from repro.core.system import build_system

    system = build_system()
    base, outcomes = run_policy_suite(system, "lu", 16, jobs=args.jobs)
    print(f"lu/16t: threshold = {base.t_threshold_c:.2f} degC")
    bm = base.result.metrics
    for name, oc in outcomes.items():
        n = oc.chosen.metrics.normalized_to(bm)
        print(
            f"  {name:10s} fan={oc.chosen.metrics.fan_level} "
            f"delay={n['delay']:.3f} energy={n['energy']:.3f} "
            f"edp={n['edp']:.3f}"
        )
    return 0


def _cmd_profile(args) -> int:
    from repro.obs import get_telemetry, profile_summary, read_jsonl

    if args.load is not None:
        from repro.exceptions import ObservabilityError

        try:
            print(profile_summary(read_jsonl(args.load)))
        except (OSError, ObservabilityError) as exc:
            print(f"tecfan profile: cannot load {args.load}: {exc}",
                  file=sys.stderr)
            return 2
        return 0

    from repro.core.engine import EngineConfig, SimulationEngine
    from repro.core.export import metrics_to_dict
    from repro.core.problem import EnergyProblem
    from repro.core.system import build_system
    from repro.core.tecfan import TECfanController
    from repro.perf import splash2_workload
    from repro.perf.workload import WorkloadRun

    if args.max_time_s <= 0:
        print("tecfan profile: --max-time-s must be > 0", file=sys.stderr)
        return 2

    engine_kwargs = {}
    if args.faults is not None:
        import json

        from repro.exceptions import FaultInjectionError
        from repro.faults import FaultScheduler, HealthConfig, WatchdogConfig

        try:
            with open(args.faults) as fh:
                spec = json.load(fh)
            scheduler = FaultScheduler.from_spec(spec)
        except (OSError, json.JSONDecodeError, FaultInjectionError) as exc:
            print(
                f"tecfan profile: bad fault script {args.faults}: {exc}",
                file=sys.stderr,
            )
            return 2
        engine_kwargs = dict(
            faults=scheduler,
            watchdog=WatchdogConfig(),
            health=HealthConfig(),
            estimator_fallback=True,
        )

    tel = get_telemetry()  # installed by main() for this subcommand
    system = build_system()
    workload = splash2_workload(args.workload, args.threads, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=args.threshold),
        EngineConfig(max_time_s=args.max_time_s, **engine_kwargs),
    )
    run = WorkloadRun(workload, system.chip, ref_freq_ghz=2.0)
    result = engine.run(run, TECfanController())
    tel.annotate("metrics", metrics_to_dict(result.metrics))
    m = result.metrics
    print(
        f"{m.policy} on {m.workload}/{args.threads}t: "
        f"{m.execution_time_s * 1e3:.1f} ms simulated, "
        f"{len(result.trace)} intervals, peak {m.peak_temp_c:.2f} degC"
    )
    print()
    print(profile_summary(tel))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tecfan`` console script."""
    parser = argparse.ArgumentParser(
        prog="tecfan",
        description="Regenerate the TECfan paper's tables and figures.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record a telemetry session and write its JSONL stream here",
    )
    # Experiment fan-out (policy suites): worker process count.
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        default=None,
        help="run independent simulations across N worker processes "
        "(0 = auto: TECFAN_JOBS env var, else the CPU count); results "
        "are identical to serial execution",
    )
    jobs_parent.add_argument(
        "--job-timeout-s",
        type=float,
        metavar="S",
        default=None,
        help="kill any worker task still running after S seconds "
        "(sets TECFAN_JOB_TIMEOUT_S for every fan-out in this command)",
    )
    jobs_parent.add_argument(
        "--job-retries",
        type=int,
        metavar="K",
        default=None,
        help="retry a failed or timed-out worker task up to K times "
        "(sets TECFAN_JOB_RETRIES for every fan-out in this command)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", parents=[common], help="Table I base scenario")
    sub.add_parser("fig4", parents=[common], help="Figure 4: TEC+fan integration")
    sub.add_parser(
        "fig5",
        parents=[common, jobs_parent],
        help="Figure 5: cooling performance",
    )
    sub.add_parser(
        "fig6",
        parents=[common, jobs_parent],
        help="Figure 6: energy efficiency",
    )
    p7 = sub.add_parser("fig7", parents=[common], help="Figure 7: server comparison")
    p7.add_argument("--minutes", type=int, default=10)
    sub.add_parser("hwcost", parents=[common], help="Sec. III-E hardware cost")
    sub.add_parser(
        "quick", parents=[common, jobs_parent], help="fast end-to-end demo"
    )
    prof = sub.add_parser(
        "profile",
        parents=[common],
        help="run one instrumented TECfan simulation and print its profile",
    )
    prof.add_argument("--workload", default="lu", help="SPLASH-2 benchmark name")
    prof.add_argument("--threads", type=int, default=16)
    prof.add_argument(
        "--threshold", type=float, default=85.0, help="T_th [degC]"
    )
    prof.add_argument(
        "--max-time-s",
        type=float,
        default=2.0,
        help="simulated-time cap for the profiled run [s]",
    )
    prof.add_argument(
        "--load",
        metavar="PATH",
        default=None,
        help="render the profile of a saved JSONL stream instead of running",
    )
    prof.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="JSON fault script (list of {kind, ...} dicts, see "
        "docs/ROBUSTNESS.md) injected into the profiled run; enables "
        "the thermal watchdog, health monitor and estimator fallback",
    )

    args = parser.parse_args(argv)
    # Resilience knobs travel by environment so every nested fan-out
    # (policy suite -> fan sweep -> parallel_map) honors them without
    # threading two extra parameters through each driver signature.
    if getattr(args, "job_timeout_s", None) is not None:
        import os

        os.environ["TECFAN_JOB_TIMEOUT_S"] = str(args.job_timeout_s)
    if getattr(args, "job_retries", None) is not None:
        import os

        os.environ["TECFAN_JOB_RETRIES"] = str(args.job_retries)
    dispatch = {
        "table1": _cmd_table1,
        "fig4": _cmd_fig4,
        "fig5": lambda a: _cmd_fig56(a, "5"),
        "fig6": lambda a: _cmd_fig56(a, "6"),
        "fig7": _cmd_fig7,
        "hwcost": _cmd_hwcost,
        "quick": _cmd_quick,
        "profile": _cmd_profile,
    }
    handler = dispatch[args.command]

    telemetry_path = getattr(args, "telemetry", None)
    needs_session = telemetry_path is not None or (
        args.command == "profile" and args.load is None
    )
    if not needs_session:
        return handler(args)

    from repro.core.export import telemetry_to_jsonl
    from repro.obs import telemetry_session

    with telemetry_session() as tel:
        tel.annotate(
            "command", list(argv) if argv is not None else sys.argv[1:]
        )
        rc = handler(args)
    if telemetry_path is not None:
        telemetry_to_jsonl(tel, telemetry_path)
        print(f"telemetry: wrote {telemetry_path}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
