"""Server power model for the Sec. V-E comparison.

The paper computes the 4-core server's power with the utilization model
of Horvath & Skadron (PACT'08) and the published parameters of the Intel
Core i7-3770K (77 W TDP, 3.5 GHz): power rises linearly with utilization
between an idle floor and the busy peak, and the busy dynamic power
scales with ``f * V^2`` across DVFS states.

In this reproduction the *thermal* side reuses the per-component machinery
(one tile per core on a 2 x 2 floorplan), so this module provides the
calibration constants mapping the i7-class envelope onto
:func:`repro.power.calibration.build_power_models`: utilization plays the
role of per-tile activity, the idle floor is the activity floor, and
leakage carries the temperature dependence.
"""

from __future__ import annotations

from dataclasses import dataclass

#: i7-3770K-class envelope.
I7_TDP_W: float = 77.0

#: Peak chip dynamic power at max DVFS, all cores 100% busy [W]
#: (TDP minus the leakage share at the TDP temperature).
I7_PEAK_DYNAMIC_W: float = 58.0

#: Leakage share of TDP at ``I7_T_TDP_C`` [W] (22 nm planar-ish).
I7_TDP_LEAK_W: float = 19.0

#: TDP temperature reference [degC].
I7_T_TDP_C: float = 90.0

#: Chip-wide leakage-temperature slope [W/K].
I7_LEAKAGE_SLOPE_W_PER_K: float = 0.30

#: Idle (halted) activity floor — the Horvath-Skadron idle power as a
#: fraction of busy dynamic power.
I7_IDLE_ACTIVITY: float = 0.10

#: Per-core useful-instruction service capacity at 3.5 GHz [IPS]
#: (IPC ~1.7 server-mix at 3.5 GHz).
I7_PEAK_IPS: float = 6.0e9


@dataclass(frozen=True)
class ServerPowerParams:
    """Bundle of the server calibration constants (overridable)."""

    peak_dynamic_w: float = I7_PEAK_DYNAMIC_W
    tdp_leak_w: float = I7_TDP_LEAK_W
    t_tdp_c: float = I7_T_TDP_C
    leakage_slope_w_per_k: float = I7_LEAKAGE_SLOPE_W_PER_K
    idle_activity: float = I7_IDLE_ACTIVITY
    peak_ips: float = I7_PEAK_IPS

    @property
    def tdp_w(self) -> float:
        """Nominal TDP implied by the split [W]."""
        return self.peak_dynamic_w + self.tdp_leak_w
