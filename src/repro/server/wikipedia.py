"""Synthetic Wikipedia HTTP request trace (paper Sec. IV-B / V-E).

The paper drives its 4-core server comparison with a 7-day trace of HTTP
requests to Wikipedia (Urdaneta et al., Computer Networks 2009). The
original trace is not redistributable, so we synthesize a rate series
with its published characteristics: a strong diurnal cycle (peak-to-
trough roughly 2:1), a weekly modulation (weekend dip), short-term
self-similar noise, and second-scale jitter. As the paper does, the
derived CPU utilization is scaled up by 1.5x so the trace exercises the
TECs, giving an average utilization of ~48.6%.

The experiment protocol (Sec. V-E) cuts the first 40 minutes, splits
them into four 10-minute pieces, and runs one piece per core.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError

#: Scale factor the paper applies to the derived utilization.
UTILIZATION_SCALE: float = 1.5

#: Average CPU utilization after scaling, as reported in Sec. V-E.
TARGET_MEAN_UTILIZATION: float = 0.486

#: Experiment protocol constants.
TRACE_DAYS: int = 7
CUT_MINUTES: int = 40
PIECES: int = 4
PIECE_MINUTES: int = 10


@dataclass(frozen=True)
class WikipediaTrace:
    """Per-second CPU-utilization demand derived from the request rate.

    ``utilization`` is the demand at the *maximum* frequency: the work
    offered per second divided by the core's peak service capacity.
    """

    utilization: np.ndarray  # per-second, in [0, 1]
    seed: int

    @property
    def duration_s(self) -> int:
        """Trace length [s]."""
        return len(self.utilization)

    def mean_utilization(self) -> float:
        """Average demand."""
        return float(self.utilization.mean())

    def piece(self, index: int, minutes: int = PIECE_MINUTES) -> np.ndarray:
        """One ``minutes``-long piece (paper: four 10-minute pieces)."""
        n = minutes * 60
        start = index * n
        if start + n > self.duration_s:
            raise WorkloadError(
                f"piece {index} ({minutes} min) exceeds trace length"
            )
        return self.utilization[start : start + n]

    def experiment_pieces(self) -> list[np.ndarray]:
        """The paper's protocol: first 40 min split into 4 pieces."""
        total = CUT_MINUTES * 60
        if total > self.duration_s:
            raise WorkloadError("trace shorter than the 40-minute cut")
        return [self.piece(i) for i in range(PIECES)]


def generate_trace(
    seed: int = 2009,
    days: int = TRACE_DAYS,
    mean_utilization: float = TARGET_MEAN_UTILIZATION,
    diurnal_amplitude: float = 0.33,
    weekly_amplitude: float = 0.10,
    noise_sigma: float = 0.10,
    noise_rho: float = 0.999,
    burst_sigma: float = 0.10,
    burst_rho: float = 0.985,
) -> WikipediaTrace:
    """Synthesize the scaled utilization series.

    Parameters
    ----------
    seed:
        RNG seed (default honours the trace's publication year).
    days:
        Trace length; the paper uses a 7-day trace.
    mean_utilization:
        Post-scaling average (the paper's 48.6%).
    diurnal_amplitude, weekly_amplitude:
        Relative amplitudes of the daily and weekly cycles.
    noise_sigma, noise_rho:
        Slow AR(1) traffic drift at 1 s resolution (hour-scale).
    burst_sigma, burst_rho:
        Fast AR(1) component producing the minute-scale bursts web
        traffic shows (self-similar short-range structure).
    """
    if days < 1:
        raise WorkloadError("trace must cover at least one day")
    n = days * 24 * 3600
    t = np.arange(n, dtype=float)
    rng = np.random.default_rng(seed)

    day = 86400.0
    # Diurnal peak in the evening (phase shift), weekly dip on days 5-6.
    diurnal = diurnal_amplitude * np.sin(2 * np.pi * (t / day - 0.35))
    weekly = weekly_amplitude * np.cos(2 * np.pi * t / (7 * day))
    def ar1(sigma: float, rho: float) -> np.ndarray:
        out = np.empty(n)
        acc = 0.0
        innov = rng.normal(0.0, sigma * np.sqrt(1 - rho**2), n)
        for i in range(n):  # AR(1) recursion (sequential by definition)
            acc = rho * acc + innov[i]
            out[i] = acc
        return out

    shape = (
        1.0
        + diurnal
        + weekly
        + ar1(noise_sigma, noise_rho)
        + ar1(burst_sigma, burst_rho)
    )
    shape = np.clip(shape, 0.05, None)
    # Normalize so the *experiment window* (the first 40 minutes, which
    # is what Sec. V-E actually runs) averages the published 48.6% after
    # the paper's 1.5x scaling.
    window = shape[: CUT_MINUTES * 60]
    unscaled = shape * (mean_utilization / UTILIZATION_SCALE) / window.mean()
    utilization = np.clip(unscaled * UTILIZATION_SCALE, 0.0, 1.0)
    return WikipediaTrace(utilization=utilization, seed=seed)
