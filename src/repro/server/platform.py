"""The 4-core server platform of Sec. V-E.

A 2 x 2 tile array stands in for the quad-core i7-3770K-class part: same
per-tile component structure (the thermal solver and TEC arrays are
reused unchanged), i7 DVFS table, i7-class power envelope, and a package
whose per-tile spreader->sink share is rescaled so the total stack
resistance matches a desktop cooler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cooling.datasheets import DEFAULT_TEC_DEVICE, TECDeviceSpec
from repro.cooling.fan import FanModel
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem, build_system
from repro.power.calibration import build_power_models
from repro.power.dvfs import I7_DVFS, DVFSTable
from repro.server.server_power import ServerPowerParams
from repro.thermal.package import PackageStack


@dataclass(frozen=True)
class ServerPlatform:
    """System + calibration bundle for the server comparison."""

    system: CMPSystem
    params: ServerPowerParams
    #: Peak temperature of the full-load base scenario [degC]; the
    #: experiment's temperature threshold.
    t_threshold_c: float


def build_server_system(
    params: ServerPowerParams | None = None,
    dvfs: DVFSTable = I7_DVFS,
    tec_device: TECDeviceSpec = DEFAULT_TEC_DEVICE,
) -> ServerPlatform:
    """Construct the 4-core platform and derive its threshold."""
    if params is None:
        params = ServerPowerParams()
    package = PackageStack(
        # Four tiles share the sink: the total spreader->sink resistance
        # of the 16-tile stack (1.6/16 = 0.1 K/W) split across 4 tiles.
        r_spreader_sink_per_tile=1.6 * 4.0 / 16.0,
        # Desktop-class direct-attach stack: thinner bond line than the
        # research SCC package, or the i7's 77 W on a quarter of the
        # area could not be held at ~90 degC.
        tim_thickness_m=45e-6,
    )
    system = build_system(
        rows=2,
        cols=2,
        dvfs=dvfs,
        package=package,
        fan=FanModel(),
        tec_device=tec_device,
    )
    # Replace the SCC-scaled power models with the i7-class envelope.
    system.power = build_power_models(
        system.chip,
        dvfs=dvfs,
        chip_peak_dynamic_w=params.peak_dynamic_w * 16.0 / system.chip.n_tiles,
        p_tdp_leak_w=params.tdp_leak_w * 16.0 / system.chip.n_tiles,
        t_tdp_c=params.t_tdp_c,
        leakage_slope_w_per_k=(
            params.leakage_slope_w_per_k * 16.0 / system.chip.n_tiles
        ),
    )
    system.power.component_power.idle_activity = params.idle_activity
    # Rebuild the plant-side leakage closure around the new models.
    system.plant_thermal.leakage_fn = (
        system.power.plant_leakage.per_component_w
    )

    # Threshold: full-load base scenario peak (max DVFS, max fan, TECs
    # off, all cores 100% busy), as in the SPLASH-2 experiments.
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, dvfs.max_level, fan_level=1
    )
    p_dyn = system.power.component_power.dynamic_power_w(
        np.ones(system.n_cores), state.dvfs, None
    )
    t_nodes, _ = system.plant_thermal.solve(p_dyn, 1, state.tec)
    threshold = float(system.component_temps_c(t_nodes).max())
    return ServerPlatform(
        system=system, params=params, t_threshold_c=threshold
    )
