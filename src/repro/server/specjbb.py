"""SPECjbb-derived performance-vs-frequency model (paper Sec. IV-B).

For the 4-core server comparison the paper derives system performance as
a *quadratic polynomial* of core frequency, curve-fitted to the SPECjbb
measurements of Zhang et al. (USENIX ATC'10). Throughput saturates at
high frequency (memory-bound fraction), which is exactly why lowering
the top DVFS levels on a demand-limited server costs almost no
performance while saving ~V^2 of power — the headroom TECfan and Oracle
exploit in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class QuadraticPerfModel:
    """``perf(f) = a f + b f^2``, normalized to 1 at ``f_ref``.

    Parameters
    ----------
    a, b:
        Polynomial coefficients (b < 0 for saturation).
    f_ref_ghz:
        Frequency at which normalized performance is 1.
    """

    a: float = 0.5
    b: float = -0.05
    f_ref_ghz: float = 3.5

    def __post_init__(self) -> None:
        if self.f_ref_ghz <= 0:
            raise ConfigurationError("reference frequency must be positive")
        if self.raw(self.f_ref_ghz) <= 0:
            raise ConfigurationError("perf model non-positive at reference")
        if self.b > 0:
            raise ConfigurationError(
                "quadratic coefficient must be <= 0 (saturating throughput)"
            )
        # Throughput must be increasing over the usable range.
        if self.a + 2 * self.b * self.f_ref_ghz < 0:
            raise ConfigurationError(
                "perf model must be non-decreasing up to f_ref"
            )

    def raw(self, f_ghz) -> np.ndarray:
        """Unnormalized quadratic."""
        f = np.asarray(f_ghz, dtype=float)
        return self.a * f + self.b * f * f

    def relative(self, f_ghz) -> np.ndarray:
        """Throughput relative to ``f_ref`` (vectorized)."""
        return self.raw(f_ghz) / self.raw(self.f_ref_ghz)

    def capacity_ips(self, f_ghz, peak_ips: float) -> np.ndarray:
        """Service capacity [useful IPS] at frequency ``f_ghz``."""
        return peak_ips * self.relative(f_ghz)


#: Default fit: ~0.59 relative throughput at 1.6 GHz, saturating toward
#: 3.5 GHz (a 3.5 -> 3.2 GHz step loses only ~4%), matching the shape of
#: the per-chip SPECjbb scaling in Zhang et al.
DEFAULT_PERF_MODEL = QuadraticPerfModel()
