"""Server substrate for the Sec. V-E comparison (TECfan vs OFTEC/Oracle).

Public API
----------
- :func:`~repro.server.wikipedia.generate_trace` — synthetic Wikipedia
  HTTP utilization trace (7-day, diurnal + weekly + bursty noise)
- :class:`~repro.server.specjbb.QuadraticPerfModel` — SPECjbb-fitted
  performance vs frequency
- :class:`~repro.server.trace_workload.ServerWorkload` /
  :class:`~repro.server.trace_workload.ServerTraceRun` /
  :class:`~repro.server.trace_workload.ServerIPSPredictor`
- :func:`~repro.server.platform.build_server_system`
- :mod:`~repro.server.server_power` — i7-3770K-class calibration
"""

from repro.server.platform import ServerPlatform, build_server_system
from repro.server.server_power import ServerPowerParams
from repro.server.specjbb import DEFAULT_PERF_MODEL, QuadraticPerfModel
from repro.server.trace_workload import (
    ServerIPSPredictor,
    ServerTraceRun,
    ServerWorkload,
)
from repro.server.wikipedia import (
    TARGET_MEAN_UTILIZATION,
    UTILIZATION_SCALE,
    WikipediaTrace,
    generate_trace,
)

__all__ = [
    "ServerPlatform",
    "build_server_system",
    "ServerPowerParams",
    "DEFAULT_PERF_MODEL",
    "QuadraticPerfModel",
    "ServerIPSPredictor",
    "ServerTraceRun",
    "ServerWorkload",
    "TARGET_MEAN_UTILIZATION",
    "UTILIZATION_SCALE",
    "WikipediaTrace",
    "generate_trace",
]
