"""Utilization-trace-driven workload for the server experiment (Sec. V-E).

Unlike the closed SPLASH-2 runs (fixed instruction budget, always
backlogged), the server is an *open* system: each core receives the
request stream of one 10-minute Wikipedia trace piece. Per control
interval the offered work is ``u(t) * peak_ips * dt`` useful
instructions; the core serves at ``capacity(f) = perf(f) * peak_ips``
(quadratic SPECjbb model). Work the core cannot serve queues up and
drains later — that backlog-induced extension of the completion time is
the "delay" of Fig. 7 (Oracle trades ~3% of it for energy; TECfan stays
performance-neutral).

:class:`ServerTraceRun` implements the same duck-typed interface the
engine expects from :class:`repro.perf.workload.WorkloadRun`;
:class:`ServerIPSPredictor` is the matching controller-side IPS model
(demand-capped quadratic capacity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WorkloadError
from repro.floorplan.chip import ChipFloorplan
from repro.power.dvfs import DVFSTable
from repro.server.specjbb import DEFAULT_PERF_MODEL, QuadraticPerfModel


@dataclass(frozen=True)
class ServerWorkload:
    """Static description of the trace-driven server workload."""

    name: str
    #: Per-core, per-second utilization demand in [0, 1] (demand at the
    #: reference frequency), shape (n_cores, duration_s).
    demand: np.ndarray
    #: Useful-IPS capacity of one core at the reference frequency.
    peak_ips: float
    perf: QuadraticPerfModel = DEFAULT_PERF_MODEL
    #: Per-component utilization shape (None = flat).
    component_profile: np.ndarray | None = None

    def __post_init__(self) -> None:
        d = np.asarray(self.demand, dtype=float)
        if d.ndim != 2:
            raise WorkloadError("demand must be (n_cores, duration_s)")
        if np.any(d < 0.0) or np.any(d > 1.0):
            raise WorkloadError("demand must lie in [0, 1]")
        if self.peak_ips <= 0:
            raise WorkloadError("peak IPS must be positive")
        object.__setattr__(self, "demand", d)

    @property
    def n_cores(self) -> int:
        """Cores driven by the trace."""
        return self.demand.shape[0]

    @property
    def duration_s(self) -> float:
        """Trace duration [s]."""
        return float(self.demand.shape[1])

    @property
    def total_instructions(self) -> float:
        """Total useful instructions offered by the trace."""
        return float(self.demand.sum() * self.peak_ips)


@dataclass
class ServerTraceRun:
    """Executable open-system state (duck-types ``WorkloadRun``)."""

    workload: ServerWorkload
    chip: ChipFloorplan
    ref_freq_ghz: float
    elapsed_s: float = 0.0
    backlog: np.ndarray = field(default=None)
    seed: int | None = None  # unused; API parity with WorkloadRun

    def __post_init__(self) -> None:
        if self.workload.n_cores != self.chip.n_tiles:
            raise WorkloadError(
                f"trace drives {self.workload.n_cores} cores but chip has "
                f"{self.chip.n_tiles} tiles"
            )
        if self.backlog is None:
            self.backlog = np.zeros(self.chip.n_tiles)
        self._freqs = np.full(self.chip.n_tiles, self.ref_freq_ghz)

    # ------------------------------------------------------------------
    def _demand_at(self, t_s: float) -> np.ndarray:
        """Per-core utilization demand at absolute time ``t_s``."""
        wl = self.workload
        idx = int(t_s)
        if idx >= wl.demand.shape[1]:
            return np.zeros(wl.n_cores)
        return wl.demand[:, idx]

    def _capacity_ips(self, freqs_ghz: np.ndarray) -> np.ndarray:
        """Per-core useful-IPS capacity at ``freqs_ghz``."""
        return self.workload.perf.capacity_ips(
            freqs_ghz, self.workload.peak_ips
        )

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def time_to_completion_s(self, freqs_ghz: np.ndarray) -> float:
        """Remaining time: rest of the trace plus backlog drain."""
        self._freqs = np.asarray(freqs_ghz, dtype=float)
        wl = self.workload
        remaining_trace = max(0.0, wl.duration_s - self.elapsed_s)
        if remaining_trace > 0.0:
            return np.inf  # the trace itself is still arriving
        cap = self._capacity_ips(self._freqs)
        with np.errstate(divide="ignore", invalid="ignore"):
            drain = np.where(
                self.backlog > 0.0, self.backlog / np.maximum(cap, 1e-9), 0.0
            )
        return float(drain.max())

    def activity_vector(self) -> np.ndarray:
        """Expected per-core busy fraction for the upcoming interval."""
        demand = self._demand_at(self.elapsed_s)
        cap = self._capacity_ips(self._freqs)
        offered = demand * self.workload.peak_ips + self.backlog  # per 1 s
        with np.errstate(divide="ignore", invalid="ignore"):
            busy = np.where(cap > 0.0, offered / cap, 1.0)
        return np.clip(busy, 0.0, 1.0)

    def ips_vector(self, freqs_ghz: np.ndarray) -> np.ndarray:
        """Useful IPS the cores would serve right now."""
        freqs = np.asarray(freqs_ghz, dtype=float)
        demand = self._demand_at(self.elapsed_s)
        offered = demand * self.workload.peak_ips + self.backlog
        return np.minimum(offered, self._capacity_ips(freqs))

    def advance(self, dt_s: float, freqs_ghz: np.ndarray) -> np.ndarray:
        """Serve ``dt_s`` seconds of the stream; returns useful
        instructions retired per core."""
        if dt_s <= 0:
            raise WorkloadError(f"non-positive step {dt_s}")
        freqs = np.asarray(freqs_ghz, dtype=float)
        wl = self.workload
        arriving = (
            self._demand_at(self.elapsed_s) * wl.peak_ips * dt_s
            if self.elapsed_s < wl.duration_s
            else np.zeros(wl.n_cores)
        )
        work = self.backlog + arriving
        served = np.minimum(work, self._capacity_ips(freqs) * dt_s)
        self.backlog = work - served
        self.elapsed_s += dt_s
        return served

    @property
    def finished(self) -> bool:
        """Trace fully arrived and every backlog drained."""
        return (
            self.elapsed_s >= self.workload.duration_s
            and bool(np.all(self.backlog < 1.0))
        )

    @property
    def progress(self) -> float:
        """Fraction of offered work served so far."""
        total = self.workload.total_instructions
        if total <= 0:
            return 1.0
        outstanding = float(self.backlog.sum())
        arrived = (
            self.workload.demand[:, : int(min(self.elapsed_s,
                self.workload.duration_s))].sum() * self.workload.peak_ips
        )
        return max(0.0, (arrived - outstanding) / total)


@dataclass
class ServerIPSPredictor:
    """Controller-side IPS model for the open server workload.

    Predicted per-core IPS = min(last measured demand, capacity(f)),
    with capacity from the quadratic SPECjbb model — so lowering DVFS is
    performance-neutral while capacity exceeds demand, which is how
    TECfan saves 29% energy "without degrading the performance"
    (Sec. V-E).
    """

    dvfs: DVFSTable
    peak_ips: float
    perf: QuadraticPerfModel = DEFAULT_PERF_MODEL
    #: A core serving at >= this fraction of its capacity is considered
    #: saturated: its true demand is unobservable, so raising must be
    #: assumed to gain throughput (the OS sees 100% utilization).
    saturation_frac: float = 0.98
    _demand: np.ndarray = field(default=None, repr=False)

    def observe(self, ips: np.ndarray, dvfs_levels: np.ndarray) -> None:
        """Record measured useful IPS (the visible demand).

        Saturated cores report demand = +inf: the backlog hides how much
        work is really waiting, and a saturated core always benefits
        from more capacity.
        """
        measured = np.asarray(ips, dtype=float).copy()
        freqs = self.dvfs.frequency_ghz(np.asarray(dvfs_levels, dtype=int))
        cap = self.perf.capacity_ips(freqs, self.peak_ips)
        saturated = measured >= self.saturation_frac * cap
        measured[saturated] = np.inf
        self._demand = measured

    @property
    def ready(self) -> bool:
        """True once one interval has been observed."""
        return self._demand is not None

    def predict(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-core IPS for a candidate level vector."""
        if self._demand is None:
            raise WorkloadError("no interval observed yet")
        freqs = self.dvfs.frequency_ghz(np.asarray(dvfs_levels, dtype=int))
        cap = self.perf.capacity_ips(freqs, self.peak_ips)
        return np.minimum(self._demand, cap)

    def predict_many(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-core IPS for a ``(batch, n_cores)`` level matrix.

        Row ``b`` is bit-identical to ``predict(dvfs_levels[b])``.
        """
        if self._demand is None:
            raise WorkloadError("no interval observed yet")
        freqs = self.dvfs.frequency_ghz(np.asarray(dvfs_levels, dtype=int))
        cap = self.perf.capacity_ips(freqs, self.peak_ips)
        return np.minimum(self._demand[None, :], cap)

    def predict_chip_batch(self, levels: np.ndarray) -> np.ndarray:
        """Chip IPS for a (D, n_cores) batch of level vectors."""
        return self.predict_many(levels).sum(axis=1)
