"""The energy optimization problem (paper Sec. III-C, Eq. 12-14).

Objective: minimize per-instruction chip energy

    EPI(k) = P_chip(k) / IPS_chip(k)
           = (sum_n P_core_n + sum_l P_TEC_l + P_fan) / sum_n IPS_n

subject to the peak-temperature constraint ``max(T(k)) <= T_th``.

:class:`EnergyProblem` evaluates the objective/constraint for candidate
configurations; it is shared by the TECfan heuristic, OFTEC, Oracle and
the metrics pipeline so every policy is scored identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

#: EPI assigned to configurations with zero IPS (idle chip); keeps the
#: objective totally ordered without dividing by zero.
_INFINITE_EPI: float = np.inf


@dataclass(frozen=True)
class EnergyProblem:
    """Objective and constraint of the TECfan optimization.

    Parameters
    ----------
    t_threshold_c:
        Peak-temperature constraint T_th [degC]. The paper sets it per
        experiment to the base-scenario peak temperature (Table I).
    violation_margin_c:
        Slack above T_th before an interval is *counted* as a violation
        in the metrics (Fig. 5(b)); the constraint itself uses T_th.
        Defaults to 0.5 degC — the paper's own temperature granularity
        (its HotSpot loop converges to 0.5 degC and its hardware encodes
        temperatures in 0.5 degC steps, Sec. III-E/IV-B).
    """

    t_threshold_c: float
    violation_margin_c: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.t_threshold_c < 150.0:
            raise ConfigurationError(
                f"implausible temperature threshold {self.t_threshold_c} degC"
            )
        if self.violation_margin_c < 0.0:
            raise ConfigurationError("violation margin must be >= 0")

    # ------------------------------------------------------------------
    @staticmethod
    def epi(p_chip_w: float, ips_chip: float) -> float:
        """Eq. (13): per-instruction energy [J/instruction]."""
        if p_chip_w < 0.0:
            raise ConfigurationError(f"negative chip power {p_chip_w}")
        if ips_chip <= 0.0:
            return _INFINITE_EPI
        return p_chip_w / ips_chip

    def satisfied(self, peak_temp_c: float) -> bool:
        """Eq. (14): does the peak temperature meet the constraint?"""
        return peak_temp_c <= self.t_threshold_c

    def violated(self, peak_temp_c: float) -> bool:
        """Violation with the metrics margin applied (Fig. 5(b) counting)."""
        return peak_temp_c > self.t_threshold_c + self.violation_margin_c

    def headroom_c(self, peak_temp_c: float) -> float:
        """Thermal headroom (positive = below threshold) [degC]."""
        return self.t_threshold_c - peak_temp_c
