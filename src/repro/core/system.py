"""System bundle: one CMP with its cooling stack and calibrated models.

:class:`CMPSystem` wires together every substrate — floorplan, thermal
network, TEC array, fan, DVFS table, power models — and owns the shared
steady-state solver. Both the simulation plant and the controllers'
estimators operate on the same bundle (they differ in *which* leakage
model and power source they use, mirroring the paper's split between the
HotSpot/Wattch simulation and the on-line Eq. (6)/(7) estimation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cooling.datasheets import DEFAULT_TEC_DEVICE, TECDeviceSpec
from repro.cooling.fan import FanModel
from repro.cooling.tec import TECArray, build_tec_array
from repro.floorplan.chip import ChipFloorplan, build_chip
from repro.floorplan.validate import validate_floorplan
from repro.power.calibration import CalibratedPowerModels, build_power_models
from repro.power.dvfs import DVFSTable, SCC_DVFS
from repro.thermal.conductance import ConductanceModel
from repro.thermal.leakage_loop import LeakageCoupledSolver
from repro.thermal.package import PackageStack
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import PaperTransient
from repro import units


@dataclass
class CMPSystem:
    """Everything that defines one chip + package + actuator platform."""

    chip: ChipFloorplan
    package: PackageStack
    tec: TECArray
    fan: FanModel
    dvfs: DVFSTable
    power: CalibratedPowerModels
    cond: ConductanceModel = field(default=None)
    solver: SteadyStateSolver = field(default=None)
    transient: PaperTransient = field(default=None)
    plant_thermal: LeakageCoupledSolver = field(default=None)

    def __post_init__(self) -> None:
        if self.cond is None:
            self.cond = ConductanceModel(
                chip=self.chip, package=self.package, tec=self.tec, fan=self.fan
            )
        if self.solver is None:
            self.solver = SteadyStateSolver(self.cond)
        if self.transient is None:
            self.transient = PaperTransient(self.cond)
        if self.plant_thermal is None:
            self.plant_thermal = LeakageCoupledSolver(
                solver=self.solver,
                leakage_fn=self.power.plant_leakage.per_component_w,
            )

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        """Number of core tiles."""
        return self.chip.n_tiles

    @property
    def n_tec_devices(self) -> int:
        """Number of TEC devices."""
        return self.tec.n_devices

    @property
    def nodes(self):
        """The thermal node map."""
        return self.cond.nodes

    @property
    def ambient_k(self) -> float:
        """Ambient temperature [K]."""
        return self.package.ambient_k

    def uniform_initial_temps_k(self) -> np.ndarray:
        """Default uniform initial temperature field [K].

        The paper starts HotSpot from a uniform default and iterates; we
        start from ambient and let the leakage loop converge.
        """
        return np.full(self.nodes.n_nodes, self.ambient_k)

    def component_temps_c(self, t_nodes_k: np.ndarray) -> np.ndarray:
        """Die component temperatures [degC] from a node vector [K]."""
        return units.k_to_c(t_nodes_k[self.nodes.component_slice])

    def tec_power_w(self, state_tec: np.ndarray, t_nodes_k: np.ndarray) -> float:
        """Total TEC electrical power (Eq. 9) for the current field [W]."""
        t_cold = self.tec.cold_side_temperature_k(
            t_nodes_k[self.nodes.component_slice]
        )
        t_hot = t_nodes_k[self.nodes.n_components + self.tec.device_tile]
        return float(
            self.tec.electrical_power_w(state_tec, t_cold, t_hot).sum()
        )

    def tec_power_many(
        self, state_tec: np.ndarray, t_rows_k: np.ndarray
    ) -> np.ndarray:
        """:meth:`tec_power_w` over ``(batch, n_nodes)`` field rows [W].

        Entry ``b`` is bit-identical to ``tec_power_w(state_tec,
        t_rows_k[b])``: the cold-side scatter keeps its 1-D accumulation
        order per row and each row is pairwise-summed on its own.
        """
        t_cold = self.tec.cold_side_temperature_many(
            t_rows_k[:, self.nodes.component_slice]
        )
        t_hot = t_rows_k[:, self.nodes.n_components + self.tec.device_tile]
        p = self.tec.electrical_power_many(state_tec, t_cold, t_hot)
        # The contiguous copy keeps each row's pairwise-summation order
        # identical to the scalar call's 1-D ``.sum()``.
        return np.ascontiguousarray(p).sum(axis=1)


def build_system(
    rows: int = 4,
    cols: int = 4,
    dvfs: DVFSTable = SCC_DVFS,
    package: PackageStack | None = None,
    fan: FanModel | None = None,
    tec_device: TECDeviceSpec = DEFAULT_TEC_DEVICE,
    tec_grid: tuple[int, int] = (3, 3),
    tec_drive_mode: str = "switched",
    validate: bool = True,
    **power_kwargs,
) -> CMPSystem:
    """Construct the paper's CMP platform.

    Defaults build the 16-core SCC-style target of Sec. IV; pass
    ``rows=cols=2`` plus the I7 DVFS table for the server setup of
    Sec. V-E (or use :func:`repro.server.platform.build_server_system`).
    """
    chip = build_chip(rows=rows, cols=cols)
    if validate:
        validate_floorplan(chip)
    if package is None:
        package = PackageStack()
    if fan is None:
        fan = FanModel()
    tec = build_tec_array(
        chip, device=tec_device, grid=tec_grid, drive_mode=tec_drive_mode
    )
    power = build_power_models(chip, dvfs=dvfs, **power_kwargs)
    return CMPSystem(
        chip=chip, package=package, tec=tec, fan=fan, dvfs=dvfs, power=power
    )
