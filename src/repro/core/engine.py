"""Simulation engine: the two-level control loop over the plant.

The engine owns the *plant* — the calibrated activity-driven power
model, the quadratic plant leakage, the full thermal network with the
leakage-temperature loop, and the workload's instruction accounting —
and drives a :class:`~repro.core.controller.Controller` with exactly the
measurements real hardware would expose: sensor temperatures, last
interval's per-component power and per-core IPS.

Loop structure (Sec. III-D):

* every ``dt_lower_s`` (default 2 ms): plant advances one interval under
  the current actuator setting; the controller then picks next
  interval's TEC states and DVFS levels;
* every ``fan_period_s`` (default 1 s), if ``dynamic_fan``: the
  controller picks the fan level from the period's average component
  power and average TEC activation (fractional "intermediate state",
  exactly as the paper describes).

For the SPLASH-2 experiments the fan is fixed per run and swept outside
(:func:`run_fan_sweep`), mirroring Sec. IV-C: the heat sink's 15-30 s
time constant makes within-run fan dynamics irrelevant at millisecond
benchmark scales.

TEC engagement delay: a device switched on mid-run only pumps for
``dt - 20 us`` of its first interval; the engine scales its first-interval
activation accordingly (Sec. IV-C's conservative accounting).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.controller import Controller
from repro.core.estimator import NextIntervalEstimator
from repro.core.local_estimator import LocalBandedEstimator
from repro.core.metrics import RunMetrics, summarize
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem
from repro.core.trace import TraceRecorder
from repro.exceptions import ConfigurationError, ThermalModelError
from repro.faults.guard import (
    ActuatorHealthMonitor,
    HealthConfig,
    SensorValidator,
    ThermalWatchdog,
    WatchdogConfig,
    safe_state,
)
from repro.faults.scheduler import FaultScheduler
from repro.obs import telemetry as obs
from repro.perf.ips import IPSTracker
from repro.perf.workload import WorkloadRun
from repro.thermal.sensors import TemperatureSensorBank

#: Failures the hardened engine treats as "the estimator broke", falling
#: back to the last safe action: the package's own thermal-model errors
#: (including :class:`~repro.exceptions.ConvergenceError`) and the dense
#: / sparse singular-solve escapes (SuperLU raises ``RuntimeError``).
ESTIMATOR_FAILURES = (ThermalModelError, np.linalg.LinAlgError, RuntimeError)


@dataclass
class EngineConfig:
    """Timing and telemetry configuration of the control loop."""

    dt_lower_s: float = 2e-3
    fan_period_s: float = 1.0
    dynamic_fan: bool = False
    max_time_s: float = 10.0
    warm_start: bool = True
    #: Silent intervals simulated on a throwaway copy of the workload
    #: before the recorded run, so the recorded run starts from the
    #: policy's own converged thermal/actuator state — the equivalent of
    #: the paper's "repeat the simulation until the peak temperatures of
    #: two consecutive intervals agree" (Sec. IV-B).
    priming_intervals: int = 15
    sensors: TemperatureSensorBank | None = None
    #: Fault script injected into the recorded run (the fault clock is
    #: the recorded run's simulated time; priming stays fault-free so
    #: every experiment starts from the healthy converged state).
    faults: FaultScheduler | None = None
    #: Thermal watchdog policy; None disables the watchdog entirely.
    watchdog: WatchdogConfig | None = None
    #: Actuator-health + sensor-validation policy; None disables both.
    health: HealthConfig | None = None
    #: Catch estimator/solver failures inside ``controller.decide`` and
    #: hold the last safe action instead of crashing the run.
    estimator_fallback: bool = False
    #: Opt-in interval-kernel fast path (docs/PERFORMANCE.md): arms the
    #: solver's Woodbury low-rank corrections and fast-forwards detected
    #: quiescent stretches analytically. Off by default — the classic
    #: loop stays bit-exact. Automatically suppressed on hardened runs
    #: and runs with sensor noise (see :attr:`kernel_active`).
    interval_kernel: bool = False
    #: Force the exact classic path even when ``interval_kernel`` is
    #: set — the A/B switch for validating the fast path.
    exact_kernel: bool = False
    #: Consecutive quiescent intervals (unchanged actuators, activity
    #: and steady state) observed before the engine fast-forwards.
    fast_forward_quiet: int = 2
    #: Longest analytic chunk, in lower-level intervals.
    fast_forward_max: int = 256
    #: Quiescence gate on steady-state drift [K]: the leakage loop's
    #: fixed point must have settled this tightly before its value is
    #: frozen across a fast-forwarded chunk.
    fast_forward_steady_tol_k: float = 1e-6
    #: Periodic checkpointing (repro.checkpoint): snapshot the recorded
    #: run to ``checkpoint_path`` every ``checkpoint_every_s`` simulated
    #: seconds. Snapshots are side-effect-free, so any cadence leaves
    #: the run bit-identical to an uncheckpointed one. Both fields must
    #: be set together; None disables checkpointing entirely.
    checkpoint_every_s: float | None = None
    checkpoint_path: str | None = None
    #: Live status sidecar (repro.obs.live): periodically snapshot
    #: progress/ETA/thermal headroom/pool-free run state to this path
    #: for ``tecfan watch``. Side-effect-free — a run with a status
    #: file is bit-identical (same ``result_digest``) to one without.
    status_path: str | None = None
    #: Wall-clock seconds between status snapshots.
    status_every_s: float = 1.0

    def __post_init__(self) -> None:
        if self.dt_lower_s <= 0 or self.fan_period_s <= 0:
            raise ConfigurationError("control periods must be positive")
        if self.fan_period_s < self.dt_lower_s:
            raise ConfigurationError(
                "fan period must be at least one lower-level interval"
            )
        if self.fast_forward_quiet < 1:
            raise ConfigurationError(
                "fast_forward_quiet must be at least one interval"
            )
        if self.fast_forward_max < 2:
            raise ConfigurationError(
                "fast_forward_max below 2 cannot amortize the chunk setup"
            )
        if self.fast_forward_steady_tol_k < 0:
            raise ConfigurationError(
                "fast_forward_steady_tol_k must be non-negative"
            )
        if (self.checkpoint_every_s is None) != (self.checkpoint_path is None):
            raise ConfigurationError(
                "checkpoint_every_s and checkpoint_path must be set together"
            )
        if self.checkpoint_every_s is not None and self.checkpoint_every_s <= 0:
            raise ConfigurationError("checkpoint_every_s must be positive")
        if self.status_every_s <= 0:
            raise ConfigurationError("status_every_s must be positive")

    @property
    def hardened(self) -> bool:
        """Any robustness machinery enabled for this run?"""
        return (
            self.faults is not None
            or self.watchdog is not None
            or self.health is not None
            or self.estimator_fallback
        )

    @property
    def kernel_active(self) -> bool:
        """Is the interval-kernel fast path armed for this run?

        The fast path is decision-equivalent but not bit-exact, so any
        configuration that promises bit-identical behaviour — hardened
        runs (the PR 3 no-fault guarantee), the forced-exact A/B switch
        — and any run whose readings carry sensor noise (quiescence
        cannot be detected from a noisy plant) disarm it.
        """
        return (
            self.interval_kernel
            and not self.exact_kernel
            and not self.hardened
            and self.sensors is None
        )


@dataclass
class SimulationResult:
    """Everything one run produces."""

    metrics: RunMetrics
    trace: TraceRecorder
    final_state: ActuatorState
    estimator: NextIntervalEstimator
    #: Time-averaged per-component power over the run [W] (dyn + leak).
    avg_p_components_w: np.ndarray = None
    #: Time-averaged per-device TEC activation over the run.
    avg_tec: np.ndarray = None


@dataclass
class _RunGuards:
    """Per-run robustness state: built fresh for every recorded run."""

    faults: FaultScheduler | None = None
    watchdog: ThermalWatchdog | None = None
    health: ActuatorHealthMonitor | None = None
    sensor_validator: SensorValidator | None = None
    fallback: bool = False
    refuge: ActuatorState | None = None


@dataclass
class _Checkpointer:
    """Cadence bookkeeping for periodic run snapshots.

    Checkpoints fire at the loop top once simulated time crosses each
    multiple of ``every_s``. ``start_s`` anchors a resumed run on the
    same schedule the uninterrupted run would have followed (the
    cadence cannot affect results either way — snapshots are pure
    reads — but a stable schedule keeps checkpoint files comparable).
    """

    path: str
    every_s: float
    start_s: float = 0.0

    def __post_init__(self) -> None:
        self.next_due = (
            np.floor(self.start_s / self.every_s + 1e-9) + 1.0
        ) * self.every_s
        #: Wall-clock stamp of the latest snapshot (None before the
        #: first); the live status reporter turns it into checkpoint age.
        self.last_write_unix: float | None = None

    def advance(self, time_s: float) -> None:
        """Move the due point past ``time_s`` (fast-forward aware)."""
        while self.next_due <= time_s:
            self.next_due += self.every_s


@dataclass
class SimulationEngine:
    """Runs one workload under one policy on one system."""

    system: CMPSystem
    problem: EnergyProblem
    config: EngineConfig = field(default_factory=EngineConfig)

    def _build_guards(self) -> _RunGuards | None:
        """Fresh guard state machines for one recorded run, or None.

        Returning None for unhardened configs keeps the classic loop
        bit-identical: no extra arithmetic touches the plant or the
        controller when nothing robustness-related is enabled.
        """
        cfg = self.config
        if not cfg.hardened:
            return None
        system = self.system
        if cfg.faults is not None:
            cfg.faults.validate(system)
            cfg.faults.reset()
        return _RunGuards(
            faults=cfg.faults,
            watchdog=(
                ThermalWatchdog(cfg.watchdog, self.problem.t_threshold_c)
                if cfg.watchdog is not None
                else None
            ),
            health=(
                ActuatorHealthMonitor(
                    cfg.health, system.n_tec_devices, system.n_cores
                )
                if cfg.health is not None
                else None
            ),
            sensor_validator=(
                SensorValidator(cfg.health)
                if cfg.health is not None
                else None
            ),
            fallback=cfg.estimator_fallback,
            refuge=safe_state(system.n_tec_devices, system.n_cores),
        )

    def _build_status(self, run: WorkloadRun, controller: Controller, ckpt):
        """Live status reporter for this run, or None when disabled."""
        cfg = self.config
        if cfg.status_path is None:
            return None
        from repro.obs.live import RunStatusReporter

        return RunStatusReporter(
            cfg.status_path,
            every_s=cfg.status_every_s,
            max_time_s=cfg.max_time_s,
            t_threshold_c=self.problem.t_threshold_c,
            system=self.system,
            workload=run.workload.name,
            policy=controller.name,
            checkpoint=ckpt,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        run: WorkloadRun,
        controller: Controller,
        initial_state: ActuatorState | None = None,
        ips_predictor=None,
    ) -> SimulationResult:
        """Simulate until the workload finishes (or ``max_time_s``)."""
        system = self.system
        cfg = self.config
        profile = run.workload.component_profile
        dvfs = system.dvfs

        if initial_state is None:
            state = ActuatorState.initial(
                system.n_tec_devices, system.n_cores, dvfs.max_level
            )
        else:
            state = initial_state
        if ips_predictor is None:
            ips_predictor = IPSTracker(dvfs=dvfs)
        if getattr(controller, "estimator_kind", "full") == "banded":
            estimator = LocalBandedEstimator(
                system=system, ips_predictor=ips_predictor
            )
        else:
            estimator = NextIntervalEstimator(
                system=system, ips_predictor=ips_predictor
            )

        # Plant thermal state. The paper iterates HotSpot from a uniform
        # initial guess until consecutive peaks agree; warm-starting at
        # the initial configuration's steady state plus a short silent
        # priming pass is the converged equivalent.
        # Run context for the telemetry manifest (no-op when disabled;
        # last run before export wins).
        obs.annotate("engine_config", cfg)
        obs.annotate("workload", run.workload.name)
        obs.annotate("policy", controller.name)
        # The trace analysis tools (``tecfan trace anomalies``) read the
        # threshold back from the manifest to judge thermal excursions.
        obs.annotate("t_threshold_c", self.problem.t_threshold_c)
        # Pre-register the contract counters (docs/OBSERVABILITY.md) so
        # exports always carry them, even at zero.
        for counter in (
            "engine.intervals",
            "engine.fast_forwarded_intervals",
            "temp.violations",
            "tec.switch_events",
            "fan.level_changes",
            "controller.hot_iterations",
            "controller.cool_iterations",
            "thermal.propagator_hits",
            "thermal.propagator_misses",
            "thermal.woodbury_solves",
            "thermal.woodbury_fallbacks",
        ):
            obs.incr(counter, 0)

        # Interval-kernel runs arm the solver's Woodbury corrections for
        # the whole run (priming included); the forced-exact A/B switch
        # explicitly disarms them. Default runs never touch the solver.
        solver = system.solver
        restore_woodbury = None
        if cfg.interval_kernel or cfg.exact_kernel:
            restore_woodbury = solver.use_woodbury
            solver.use_woodbury = cfg.kernel_active
        try:
            t_nodes = self._initial_field(run, state, profile, cfg.warm_start)
            prev_tec = state.tec.copy()
            if cfg.priming_intervals > 0:
                # Same run type (WorkloadRun/ServerTraceRun), fresh state.
                primer = type(run)(run.workload, run.chip, run.ref_freq_ghz)
                with obs.span("engine.prime"):
                    state, t_nodes, prev_tec, _, _, _, _ = self._simulate(
                        primer,
                        controller,
                        state,
                        t_nodes,
                        prev_tec,
                        estimator,
                        trace=None,
                        max_intervals=cfg.priming_intervals,
                    )

            trace = TraceRecorder()
            ckpt = None
            if cfg.checkpoint_every_s is not None:
                ckpt = _Checkpointer(
                    cfg.checkpoint_path, cfg.checkpoint_every_s
                )
            status = self._build_status(run, controller, ckpt)
            with obs.span("engine.run"):
                (
                    state,
                    t_nodes,
                    prev_tec,
                    time_s,
                    total_instructions,
                    avg_p,
                    avg_tec,
                ) = self._simulate(
                    run,
                    controller,
                    state,
                    t_nodes,
                    prev_tec,
                    estimator,
                    trace=trace,
                    max_intervals=None,
                    guards=self._build_guards(),
                    checkpoint=ckpt,
                    status=status,
                )
        finally:
            if restore_woodbury is not None:
                solver.use_woodbury = restore_woodbury

        metrics = summarize(
            trace,
            self.problem,
            policy=controller.name,
            workload=run.workload.name,
            fan_level=int(state.fan_level),
            instructions=total_instructions,
        )
        return SimulationResult(
            metrics=metrics,
            trace=trace,
            final_state=state,
            estimator=estimator,
            avg_p_components_w=avg_p,
            avg_tec=avg_tec,
        )

    # ------------------------------------------------------------------
    def resume(self, ck: dict) -> SimulationResult:
        """Finish an interrupted run from a loaded checkpoint payload.

        ``ck`` comes from :func:`repro.checkpoint.load_checkpoint`
        (kind ``"engine-run"``); the engine must have been built from
        the payload's own system/problem/config (see
        :func:`repro.checkpoint.resume_engine_run`). No priming pass
        and no fresh guard construction happen here — the checkpoint
        carries the mid-run controller, estimator, fault scheduler and
        guard state machines, and the loop re-enters exactly where the
        snapshot was taken. The completed result is bit-identical,
        field by field, to the uninterrupted run.
        """
        cfg = self.config
        run = ck["run"]
        controller = ck["controller"]
        estimator = ck["estimator"]
        guards = ck["guards"]
        trace = ck["trace"]

        obs.annotate("engine_config", cfg)
        obs.annotate("workload", run.workload.name)
        obs.annotate("policy", controller.name)
        obs.annotate("t_threshold_c", self.problem.t_threshold_c)
        for counter in (
            "engine.intervals",
            "engine.fast_forwarded_intervals",
            "temp.violations",
            "tec.switch_events",
            "fan.level_changes",
            "controller.hot_iterations",
            "controller.cool_iterations",
            "thermal.propagator_hits",
            "thermal.propagator_misses",
            "thermal.woodbury_solves",
            "thermal.woodbury_fallbacks",
        ):
            obs.incr(counter, 0)
        # Carry the interrupted run's counters forward so post-resume
        # telemetry sums over the whole logical run. Cache-rebuild
        # counters (thermal.factorizations, lu_evictions) can exceed an
        # uninterrupted run's by the restore cost — documented in
        # docs/ROBUSTNESS.md; results are unaffected.
        counters = ck.get("counters")
        if counters and obs.get_telemetry() is not None:
            for name in sorted(counters):
                if counters[name]:
                    obs.incr(name, counters[name])

        solver = self.system.solver
        restore_woodbury = None
        if cfg.interval_kernel or cfg.exact_kernel:
            restore_woodbury = solver.use_woodbury
            solver.use_woodbury = cfg.kernel_active
        try:
            if ck.get("solver_cache") is not None:
                # Replay the warm LU/Woodbury cache in its snapshotted
                # LRU order: Woodbury corrections are history-dependent
                # (nearest cached base), so the resumed solver must see
                # the same cache the live one held.
                solver.restore_cache(ck["solver_cache"])
            ckpt = None
            if cfg.checkpoint_every_s is not None:
                ckpt = _Checkpointer(
                    cfg.checkpoint_path,
                    cfg.checkpoint_every_s,
                    start_s=ck["loop"]["time_s"],
                )
            status = self._build_status(run, controller, ckpt)
            with obs.span("engine.run"):
                (
                    state,
                    t_nodes,
                    prev_tec,
                    time_s,
                    total_instructions,
                    avg_p,
                    avg_tec,
                ) = self._simulate(
                    run,
                    controller,
                    ck["state"],
                    ck["t_nodes"],
                    ck["prev_tec"],
                    estimator,
                    trace=trace,
                    max_intervals=None,
                    guards=guards,
                    checkpoint=ckpt,
                    status=status,
                    resume=dict(ck["loop"]),
                )
        finally:
            if restore_woodbury is not None:
                solver.use_woodbury = restore_woodbury

        metrics = summarize(
            trace,
            self.problem,
            policy=controller.name,
            workload=run.workload.name,
            fan_level=int(state.fan_level),
            instructions=total_instructions,
        )
        return SimulationResult(
            metrics=metrics,
            trace=trace,
            final_state=state,
            estimator=estimator,
            avg_p_components_w=avg_p,
            avg_tec=avg_tec,
        )

    def _write_checkpoint(
        self,
        ckpt: _Checkpointer,
        run: WorkloadRun,
        controller: Controller,
        estimator,
        guards: _RunGuards | None,
        trace: TraceRecorder,
        state: ActuatorState,
        t_nodes: np.ndarray,
        prev_tec: np.ndarray,
        loop: dict,
    ) -> None:
        """Snapshot the entire loop as one pickled payload.

        Everything goes through a single ``pickle.dumps`` so object
        identity survives: ``config.faults`` and ``guards.faults`` stay
        one scheduler, the estimator keeps referencing the payload's
        own system. Taking a snapshot reads state without advancing
        anything (RNG states are copied), so checkpoint cadence cannot
        perturb the run.
        """
        from repro.checkpoint import write_checkpoint

        solver = self.system.solver
        tel = obs.get_telemetry()
        write_checkpoint(
            ckpt.path,
            {
                "kind": "engine-run",
                "system": self.system,
                "problem": self.problem,
                "config": self.config,
                "run": run,
                "controller": controller,
                "estimator": estimator,
                "guards": guards,
                "trace": trace,
                "state": state,
                "t_nodes": t_nodes,
                "prev_tec": prev_tec,
                "loop": loop,
                "solver_cache": (
                    solver.snapshot_cache() if solver.use_woodbury else None
                ),
                "counters": (
                    dict(tel.metrics.snapshot()["counters"])
                    if tel is not None
                    else None
                ),
            },
        )
        ckpt.last_write_unix = time.time()

    def _simulate(
        self,
        run: WorkloadRun,
        controller: Controller,
        state: ActuatorState,
        t_nodes: np.ndarray,
        prev_tec: np.ndarray,
        estimator: NextIntervalEstimator,
        trace: TraceRecorder | None,
        max_intervals: int | None,
        guards: _RunGuards | None = None,
        checkpoint: _Checkpointer | None = None,
        status=None,
        resume: dict | None = None,
    ):
        """Advance the plant + controller loop; optionally record.

        ``guards`` carries the run's robustness machinery (fault
        injection, watchdog, health monitor, sensor validation,
        estimator fallback). When it is None — every unhardened run and
        every priming pass — the loop takes exactly the classic code
        path, so fault-capable engines remain bit-identical to the
        original on healthy runs.

        ``checkpoint`` snapshots the whole loop to disk each time
        simulated time crosses its cadence; ``resume`` restores the
        loop-local variables a snapshot captured, so a resumed run
        re-enters the loop exactly where the checkpoint left it.

        ``status`` is the optional live-status reporter
        (:class:`repro.obs.live.RunStatusReporter`): polled at the loop
        top — which every iteration passes through, including the one
        following a fast-forwarded chunk, so snapshots also land on
        fast-forward boundaries — and forced once more (``done=True``)
        after the loop exits. Reporting only reads loop state, so it
        cannot perturb the run.
        """
        system = self.system
        cfg = self.config
        profile = run.workload.component_profile
        dvfs = system.dvfs
        faults = guards.faults if guards is not None else None
        watchdog = guards.watchdog if guards is not None else None
        health = guards.health if guards is not None else None
        validator = guards.sensor_validator if guards is not None else None
        fan_accum_p = np.zeros(system.nodes.n_components)
        fan_accum_tec = np.zeros(system.n_tec_devices)
        fan_accum_n = 0
        run_avg_p = np.zeros(system.nodes.n_components)
        run_avg_tec = np.zeros(system.n_tec_devices)
        time_s = 0.0
        total_instructions = 0.0
        intervals = 0

        # Interval-kernel fast path (docs/PERFORMANCE.md): armed only on
        # recorded, unhardened, noise-free runs driven by a policy that
        # declares itself safe to skip during quiescence. The priming
        # pass (max_intervals set) always runs classic.
        kernel = (
            cfg.kernel_active
            and guards is None
            and max_intervals is None
            and trace is not None
            and getattr(controller, "fast_forward_safe", False)
        )
        quiet = 0
        prev_activity = None
        prev_steady = None

        if resume is not None:
            fan_accum_p = resume["fan_accum_p"]
            fan_accum_tec = resume["fan_accum_tec"]
            fan_accum_n = resume["fan_accum_n"]
            run_avg_p = resume["run_avg_p"]
            run_avg_tec = resume["run_avg_tec"]
            time_s = resume["time_s"]
            total_instructions = resume["total_instructions"]
            intervals = resume["intervals"]
            quiet = resume["quiet"]
            prev_activity = resume["prev_activity"]
            prev_steady = resume["prev_steady"]

        while not run.finished and time_s < cfg.max_time_s:
            if max_intervals is not None and intervals >= max_intervals:
                break
            if checkpoint is not None and time_s >= checkpoint.next_due:
                self._write_checkpoint(
                    checkpoint,
                    run,
                    controller,
                    estimator,
                    guards,
                    trace,
                    state,
                    t_nodes,
                    prev_tec,
                    {
                        "fan_accum_p": fan_accum_p,
                        "fan_accum_tec": fan_accum_tec,
                        "fan_accum_n": fan_accum_n,
                        "run_avg_p": run_avg_p,
                        "run_avg_tec": run_avg_tec,
                        "time_s": time_s,
                        "total_instructions": total_instructions,
                        "intervals": intervals,
                        "quiet": quiet,
                        "prev_activity": prev_activity,
                        "prev_steady": prev_steady,
                    },
                )
                checkpoint.advance(time_s)
            if status is not None:
                status.maybe_report(
                    time_s=time_s,
                    t_nodes=t_nodes,
                    trace=trace,
                    intervals=intervals,
                    total_instructions=total_instructions,
                    state=state,
                )
            if kernel and quiet >= cfg.fast_forward_quiet:
                k_cap = min(
                    cfg.fast_forward_max,
                    # Reserve the final interval for the classic loop so
                    # the fractional-dt completion accounting is exact.
                    int((cfg.max_time_s - time_s) / cfg.dt_lower_s + 1e-9)
                    - 1,
                )
                if cfg.dynamic_fan:
                    per_period = int(
                        np.ceil(cfg.fan_period_s / cfg.dt_lower_s - 1e-9)
                    )
                    # The fan-boundary interval must run classic too.
                    k_cap = min(k_cap, per_period - fan_accum_n - 1)
                k = 0
                if k_cap >= 1:
                    (
                        k,
                        t_nodes,
                        inst_k,
                        p_comp_sum,
                        end_time,
                    ) = self._fast_forward(
                        run,
                        state,
                        t_nodes,
                        prev_steady,
                        prev_activity,
                        trace,
                        time_s,
                        k_cap,
                    )
                if k:
                    total_instructions += inst_k
                    fan_accum_p += p_comp_sum
                    fan_accum_tec += k * state.tec
                    run_avg_p += p_comp_sum * cfg.dt_lower_s
                    run_avg_tec += state.tec * (k * cfg.dt_lower_s)
                    fan_accum_n += k
                    time_s = end_time
                    intervals += k
                    obs.incr("engine.fast_forwarded_intervals", k)
                    # Re-arm after one classic interval: the controller
                    # always observes between chunks.
                    quiet = cfg.fast_forward_quiet - 1
                    continue
                quiet = 0
            intervals += 1
            dt = cfg.dt_lower_s

            with obs.span("engine.step"):
                # ---- faults: commanded -> effective actuation -------------
                # The plant runs on what the hardware actually does; the
                # controller keeps seeing its own commands (the health
                # monitor reconciles the two once a divergence persists).
                if faults is not None:
                    eff_dvfs = faults.apply_dvfs(time_s, state.dvfs)
                    eff_fan = faults.apply_fan(
                        time_s, state.fan_level, system.fan.n_levels
                    )
                    eff_tec = faults.apply_tec(time_s, state.tec)
                else:
                    eff_dvfs = state.dvfs
                    eff_fan = state.fan_level
                    eff_tec = state.tec

                # ---- plant: power for this interval -----------------------
                freqs = dvfs.frequency_ghz(eff_dvfs)
                # Fractional final interval: don't bill a full control period
                # for the last few instructions (delay would otherwise be
                # quantized to dt).
                t_done = run.time_to_completion_s(freqs)
                if t_done < dt:
                    dt = max(t_done, 1e-6)
                activity = run.activity_vector()
                p_dyn = system.power.component_power.dynamic_power_w(
                    activity, eff_dvfs, profile
                )
                tec_pump = self._effective_tec(eff_tec, prev_tec, dt)

                # ---- plant: thermal step ----------------------------------
                comp = system.nodes.component_slice
                t_steady, _ = system.plant_thermal.solve(
                    p_dyn, eff_fan, tec_pump, t_guess_k=t_nodes[comp]
                )
                t_nodes = system.transient.step(
                    t_nodes, t_steady, dt, eff_fan, tec_pump
                )
                t_comp_c = system.component_temps_c(t_nodes)
                p_leak = system.power.plant_leakage.per_component_w(
                    t_nodes[comp]
                )

                # ---- plant: performance and energy accounting -------------
                inst = run.advance(dt, freqs)
                ips_cores = inst / dt
                total_instructions += float(inst.sum())
                p_cores = float(p_dyn.sum() + p_leak.sum())
                p_tec = system.tec_power_w(tec_pump, t_nodes)
                p_fan = system.fan.power_w(eff_fan)
                p_chip = p_cores + p_tec + p_fan
                if trace is not None:
                    trace.append(
                        time_s=time_s,
                        dt_s=dt,
                        peak_temp_c=float(t_comp_c.max()),
                        p_chip_w=p_chip,
                        p_cores_w=p_cores,
                        p_tec_w=p_tec,
                        p_fan_w=p_fan,
                        ips_chip=float(ips_cores.sum()),
                        tec_on=int(np.count_nonzero(eff_tec > 0.5)),
                        fan_level=eff_fan,
                        mean_dvfs_level=float(np.mean(eff_dvfs)),
                    )

                # ---- controller: lower level ------------------------------
                readings = (
                    cfg.sensors.read_c(t_comp_c)
                    if cfg.sensors is not None
                    else t_comp_c
                )
                if faults is not None:
                    readings = faults.apply_sensors(time_s, readings)
                if validator is not None:
                    # Plausibility reference: the observer state committed
                    # last interval, *before* this interval's readings load.
                    readings = validator.filter(
                        readings, estimator.predicted_component_temps_c()
                    )
                estimator.begin_interval(
                    sensor_temps_c=readings,
                    p_dyn_measured_w=p_dyn,
                    ips_measured=ips_cores,
                    state=state,
                    dt_s=dt,
                )
                prev_tec = eff_tec.copy()
                tripped = (
                    watchdog.feed(float(readings.max()))
                    if watchdog is not None
                    else False
                )
                if tripped:
                    # Safe state overrides the policy: max cooling, min
                    # heat. The estimator stays fed (begin_interval above)
                    # so handing control back after recovery is seamless.
                    new_state = guards.refuge
                else:
                    with obs.span("controller.decide"):
                        try:
                            new_state = controller.decide(
                                state, readings, estimator, self.problem
                            )
                        except ESTIMATOR_FAILURES:
                            if guards is None or not guards.fallback:
                                raise
                            obs.incr("controller.fallbacks")
                            new_state = state
                    new_state = new_state.with_fan(state.fan_level)

                # ---- controller: higher level (fan) -----------------------
                fan_accum_p += p_dyn + p_leak
                fan_accum_tec += tec_pump
                run_avg_p += (p_dyn + p_leak) * dt
                run_avg_tec += tec_pump * dt
                fan_accum_n += 1
                time_s += dt
                if cfg.dynamic_fan and fan_accum_n * dt >= cfg.fan_period_s:
                    if not tripped:
                        avg_p = fan_accum_p / fan_accum_n
                        avg_tec = fan_accum_tec / fan_accum_n
                        with obs.span("controller.decide_fan"):
                            try:
                                level = controller.decide_fan(
                                    new_state,
                                    avg_p,
                                    avg_tec,
                                    estimator,
                                    self.problem,
                                )
                            except ESTIMATOR_FAILURES:
                                if guards is None or not guards.fallback:
                                    raise
                                obs.incr("controller.fallbacks")
                                level = new_state.fan_level
                        new_state = new_state.with_fan(level)
                    fan_accum_p[:] = 0.0
                    fan_accum_tec[:] = 0.0
                    fan_accum_n = 0

                # ---- health: divergence detection + reconciliation --------
                if health is not None:
                    health.observe(
                        tec_cmd=state.tec,
                        tec_eff=eff_tec,
                        dvfs_cmd=state.dvfs,
                        dvfs_eff=eff_dvfs,
                        fan_cmd=state.fan_level,
                        fan_eff=eff_fan,
                    )
                    new_state = health.reconcile(new_state)
                    controller.set_actuator_health(health.health())

                # ---- telemetry (observation only; gated so disabled runs
                # pay one is-None check per interval) ----------------------
                if trace is not None and obs.get_telemetry() is not None:
                    self._record_interval(
                        state,
                        new_state,
                        t_comp_c,
                        p_chip,
                        float(ips_cores.sum()),
                        time_s - dt,
                        dt,
                    )

                # ---- interval-kernel quiescence detection ----------------
                if kernel:
                    if (
                        dt == cfg.dt_lower_s
                        and not run.finished
                        and new_state.key() == state.key()
                        and np.array_equal(tec_pump, state.tec)
                        and prev_activity is not None
                        and np.array_equal(activity, prev_activity)
                        and prev_steady is not None
                        and float(np.max(np.abs(t_steady - prev_steady)))
                        <= cfg.fast_forward_steady_tol_k
                    ):
                        quiet += 1
                    else:
                        quiet = 0
                    prev_activity = activity
                    prev_steady = t_steady
                state = new_state

        if time_s > 0:
            run_avg_p /= time_s
            run_avg_tec /= time_s
        if status is not None:
            # Final snapshot so watchers see the completed run even if
            # the cadence never fired again near the end.
            status.maybe_report(
                time_s=time_s,
                t_nodes=t_nodes,
                trace=trace,
                intervals=intervals,
                total_instructions=total_instructions,
                state=state,
                done=True,
                force=True,
            )
        return (
            state,
            t_nodes,
            prev_tec,
            time_s,
            total_instructions,
            run_avg_p,
            run_avg_tec,
        )

    # ------------------------------------------------------------------
    def _fast_forward(
        self,
        run: WorkloadRun,
        state: ActuatorState,
        t_nodes: np.ndarray,
        t_steady: np.ndarray,
        activity: np.ndarray,
        trace: TraceRecorder,
        time_s: float,
        k_cap: int,
    ):
        """Advance up to ``k_cap`` quiescent intervals in closed form.

        Preconditions hold by construction of the caller's quiescence
        detector: no faults/sensors/watchdog, actuators unchanged, TEC
        engagement complete, the activity vector static, and the leakage
        loop's steady state settled (so freezing ``t_steady`` across the
        chunk is within the drift tolerance). The thermal trajectory is
        then the paper's Eq. (4) relaxation, evaluated at every interval
        boundary in one :meth:`PaperTransient.interpolate` call —
        ``beta_k = exp(-k dt G_ii / C_i)`` per node.

        Instruction accounting still advances interval-by-interval:
        ``run.advance`` is called once per fast-forwarded interval, so
        workload bookkeeping (including any activity-noise RNG draws) is
        consumed exactly as the classic loop would, and the chunk ends
        early the moment the activity vector or remaining-time check
        diverges from the quiescent pattern.

        Returns ``(k, t_nodes, instructions, p_component_sum)`` with
        ``k == 0`` when not a single interval qualified.
        """
        system = self.system
        cfg = self.config
        dt = cfg.dt_lower_s
        profile = run.workload.component_profile
        freqs = system.dvfs.frequency_ghz(state.dvfs)
        inst_rows = []
        k = 0
        while k < k_cap:
            if not np.array_equal(run.activity_vector(), activity):
                break
            if run.time_to_completion_s(freqs) < dt:
                break
            inst_rows.append(run.advance(dt, freqs))
            k += 1
        if k == 0:
            return 0, t_nodes, 0.0, None, time_s

        comp = system.nodes.component_slice
        p_dyn = system.power.component_power.dynamic_power_w(
            activity, state.dvfs, profile
        )
        # Row timestamps accumulate sequentially, exactly like the
        # classic loop's ``time_s += dt`` — cumulative float error and
        # all — so fast-forwarded trace rows carry identical clocks.
        row_times = np.empty(k)
        end_time = time_s
        for j in range(k):
            row_times[j] = end_time
            end_time += dt
        times = dt * np.arange(1, k + 1)
        with obs.span("engine.fast_forward"):
            t_rows = system.transient.interpolate(
                t_nodes, t_steady, times, state.fan_level, state.tec
            )
        t_comp_rows_c = units.k_to_c(t_rows[:, comp])
        p_leak_rows = system.power.plant_leakage.per_component_w(
            t_rows[:, comp]
        )
        p_tec_rows = system.tec_power_many(state.tec, t_rows)
        p_fan = system.fan.power_w(state.fan_level)
        inst = np.vstack(inst_rows)
        ips_rows = inst.sum(axis=1) / dt
        p_cores_rows = float(p_dyn.sum()) + p_leak_rows.sum(axis=1)
        p_chip_rows = p_cores_rows + p_tec_rows + p_fan
        trace.extend(
            time_s=row_times,
            dt_s=dt,
            peak_temp_c=t_comp_rows_c.max(axis=1),
            p_chip_w=p_chip_rows,
            p_cores_w=p_cores_rows,
            p_tec_w=p_tec_rows,
            p_fan_w=p_fan,
            ips_chip=ips_rows,
            tec_on=int(np.count_nonzero(state.tec > 0.5)),
            fan_level=state.fan_level,
            mean_dvfs_level=float(np.mean(state.dvfs)),
        )
        if obs.get_telemetry() is not None:
            for j in range(k):
                self._record_interval(
                    state,
                    state,
                    t_comp_rows_c[j],
                    float(p_chip_rows[j]),
                    float(ips_rows[j]),
                    row_times[j],
                    dt,
                )
        p_comp_sum = k * p_dyn + p_leak_rows.sum(axis=0)
        return k, t_rows[-1].copy(), float(inst.sum()), p_comp_sum, end_time

    # ------------------------------------------------------------------
    def _record_interval(
        self,
        state: ActuatorState,
        new_state: ActuatorState,
        t_comp_c: np.ndarray,
        p_chip_w: float,
        ips_chip: float,
        time_s: float,
        dt_s: float,
    ) -> None:
        """Emit one recorded interval's counters and JSONL event.

        Only called with an active telemetry session; the counter names
        are the contract documented in ``docs/OBSERVABILITY.md``.
        """
        peak_c = float(t_comp_c.max())
        obs.incr("engine.intervals")
        if self.problem.violated(peak_c):
            obs.incr("temp.violations")
        switched = int(
            np.count_nonzero(new_state.tec_on_mask() != state.tec_on_mask())
        )
        if switched:
            obs.incr("tec.switch_events", switched)
        if new_state.fan_level != state.fan_level:
            obs.incr("fan.level_changes")
        obs.observe(
            "engine.peak_temp_c",
            peak_c,
            edges=(40.0, 50.0, 60.0, 70.0, 75.0, 80.0, 85.0, 90.0, 100.0, 120.0),
        )
        obs.event(
            "interval",
            time_s=time_s,
            dt_s=dt_s,
            peak_temp_c=peak_c,
            p_chip_w=float(p_chip_w),
            ips_chip=ips_chip,
            tec_on=int(new_state.tec_on_count),
            fan_level=int(new_state.fan_level),
            mean_dvfs_level=float(np.mean(new_state.dvfs)),
        )

    # ------------------------------------------------------------------
    def _initial_field(
        self, run: WorkloadRun, state: ActuatorState, profile, warm: bool
    ) -> np.ndarray:
        system = self.system
        if not warm:
            return system.uniform_initial_temps_k()
        p_dyn = system.power.component_power.dynamic_power_w(
            run.activity_vector(), state.dvfs, profile
        )
        t_nodes, _ = system.plant_thermal.solve(
            p_dyn, state.fan_level, state.tec
        )
        return t_nodes

    def _effective_tec(
        self, tec: np.ndarray, prev: np.ndarray, dt: float
    ) -> np.ndarray:
        """Scale freshly-enabled devices by the Peltier engagement delay."""
        delay = self.system.tec.device.engage_delay_s
        if delay <= 0:
            return tec
        factor = max(0.0, 1.0 - delay / dt)
        newly_on = (tec > prev) & (prev <= 0.0)
        out = np.asarray(tec, dtype=float).copy()
        out[newly_on] *= factor
        return out


def _fan_sweep_task(common: tuple, payload: tuple) -> SimulationResult:
    """One fan level of a sweep (module-level: spawn-picklable).

    ``common`` is ``(engine, controller)`` — the pool's shared context,
    shipped to each worker once and reused warm across its levels so
    the engine's propagator/LU caches amortize exactly as they do in a
    serial loop. ``payload`` is ``(run, level)``; the controller is
    ``reset()`` before each level, which is the same state discipline
    the serial loop applies to its single shared controller.
    """
    engine, controller = common
    run, level = payload
    controller.reset()
    state = ActuatorState.initial(
        engine.system.n_tec_devices,
        engine.system.n_cores,
        engine.system.dvfs.max_level,
        fan_level=level,
    )
    return engine.run(run, controller, initial_state=state)


def run_fan_sweep(
    engine: SimulationEngine,
    make_run,
    controller: Controller,
    violation_tolerance: float = 0.05,
    jobs: int | None = None,
    journal_path=None,
    status_path=None,
    status_every_s: float = 1.0,
) -> tuple[SimulationResult, list[RunMetrics]]:
    """Run a policy at every fan level; keep the paper's selection.

    "For each benchmark, we run all the studied policies with all
    possible fan speed levels in multiple tests, and choose the results
    with the lowest fan speed without violating the temperature
    threshold" (Sec. IV-C). Dynamic policies incur brief transients, so
    a run qualifies when its time-weighted violation rate is within
    ``violation_tolerance``; among qualifying levels the slowest fan
    (largest level number) wins. If none qualifies the fastest fan is
    used.

    Parameters
    ----------
    make_run:
        Zero-argument callable producing a fresh :class:`WorkloadRun`
        (each level needs untouched instruction accounting).
    jobs:
        Fan levels to simulate concurrently (see
        :func:`repro.parallel.parallel_map`); the engine + controller
        travel once per worker as shared pool context, so the per-level
        runs — independent and deterministic — produce the results of
        the serial loop with warm thermal caches.
    journal_path:
        Crash-recovery journal (:mod:`repro.journal`): completed levels
        are appended as they land, and re-running with the same path
        re-executes only the missing ones. The payloads are recreated
        deterministically from the workload definition, so journaled
        indices stay valid across driver restarts.
    status_path:
        Live-status sidecar for ``tecfan top`` (:mod:`repro.obs.live`):
        heartbeat snapshots of the sweep — one row per worker, replayed
        vs live cell counts on journal resumes — land there every
        ``status_every_s`` wall-seconds.
    """
    from repro.parallel import parallel_map

    fan = engine.system.fan
    levels = range(1, fan.n_levels + 1)
    payloads = [(make_run(), lv) for lv in levels]
    journal = None
    if journal_path is not None:
        from repro.journal import TaskJournal

        journal = TaskJournal(
            journal_path,
            header={
                "kind": "fan-sweep",
                "workload": payloads[0][0].workload.name,
                "policy": controller.name,
                "n_tasks": len(payloads),
            },
        )
    try:
        results = parallel_map(
            _fan_sweep_task,
            payloads,
            jobs,
            context=(engine, controller),
            journal=journal,
            status_path=status_path,
            status_every_s=status_every_s,
            status_meta={
                "label": (
                    f"fan-sweep {payloads[0][0].workload.name}"
                    f"/{controller.name}"
                ),
                "journal": (
                    None if journal_path is None else os.fspath(journal_path)
                ),
            },
        )
    finally:
        if journal is not None:
            journal.close()
    all_metrics = [res.metrics for res in results]
    qualifying = [
        res
        for res in results
        if res.metrics.violation_rate <= violation_tolerance
    ]
    if qualifying:
        # Among thermally-qualifying levels pick the minimum-energy one —
        # the offline equivalent of the paper's energy objective (for the
        # non-DVFS policies this coincides with "the lowest fan speed
        # without violating": their energy falls monotonically with fan
        # speed up to the last feasible level).
        chosen = min(qualifying, key=lambda r: r.metrics.energy_j)
    else:
        chosen = results[0]
    return chosen, all_metrics
