"""Simulation engine: the two-level control loop over the plant.

The engine owns the *plant* — the calibrated activity-driven power
model, the quadratic plant leakage, the full thermal network with the
leakage-temperature loop, and the workload's instruction accounting —
and drives a :class:`~repro.core.controller.Controller` with exactly the
measurements real hardware would expose: sensor temperatures, last
interval's per-component power and per-core IPS.

Loop structure (Sec. III-D):

* every ``dt_lower_s`` (default 2 ms): plant advances one interval under
  the current actuator setting; the controller then picks next
  interval's TEC states and DVFS levels;
* every ``fan_period_s`` (default 1 s), if ``dynamic_fan``: the
  controller picks the fan level from the period's average component
  power and average TEC activation (fractional "intermediate state",
  exactly as the paper describes).

For the SPLASH-2 experiments the fan is fixed per run and swept outside
(:func:`run_fan_sweep`), mirroring Sec. IV-C: the heat sink's 15-30 s
time constant makes within-run fan dynamics irrelevant at millisecond
benchmark scales.

TEC engagement delay: a device switched on mid-run only pumps for
``dt - 20 us`` of its first interval; the engine scales its first-interval
activation accordingly (Sec. IV-C's conservative accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import Controller
from repro.core.estimator import NextIntervalEstimator
from repro.core.local_estimator import LocalBandedEstimator
from repro.core.metrics import RunMetrics, summarize
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem
from repro.core.trace import TraceRecorder
from repro.exceptions import ConfigurationError, ThermalModelError
from repro.faults.guard import (
    ActuatorHealthMonitor,
    HealthConfig,
    SensorValidator,
    ThermalWatchdog,
    WatchdogConfig,
    safe_state,
)
from repro.faults.scheduler import FaultScheduler
from repro.obs import telemetry as obs
from repro.perf.ips import IPSTracker
from repro.perf.workload import WorkloadRun
from repro.thermal.sensors import TemperatureSensorBank

#: Failures the hardened engine treats as "the estimator broke", falling
#: back to the last safe action: the package's own thermal-model errors
#: (including :class:`~repro.exceptions.ConvergenceError`) and the dense
#: / sparse singular-solve escapes (SuperLU raises ``RuntimeError``).
ESTIMATOR_FAILURES = (ThermalModelError, np.linalg.LinAlgError, RuntimeError)


@dataclass
class EngineConfig:
    """Timing and telemetry configuration of the control loop."""

    dt_lower_s: float = 2e-3
    fan_period_s: float = 1.0
    dynamic_fan: bool = False
    max_time_s: float = 10.0
    warm_start: bool = True
    #: Silent intervals simulated on a throwaway copy of the workload
    #: before the recorded run, so the recorded run starts from the
    #: policy's own converged thermal/actuator state — the equivalent of
    #: the paper's "repeat the simulation until the peak temperatures of
    #: two consecutive intervals agree" (Sec. IV-B).
    priming_intervals: int = 15
    sensors: TemperatureSensorBank | None = None
    #: Fault script injected into the recorded run (the fault clock is
    #: the recorded run's simulated time; priming stays fault-free so
    #: every experiment starts from the healthy converged state).
    faults: FaultScheduler | None = None
    #: Thermal watchdog policy; None disables the watchdog entirely.
    watchdog: WatchdogConfig | None = None
    #: Actuator-health + sensor-validation policy; None disables both.
    health: HealthConfig | None = None
    #: Catch estimator/solver failures inside ``controller.decide`` and
    #: hold the last safe action instead of crashing the run.
    estimator_fallback: bool = False

    def __post_init__(self) -> None:
        if self.dt_lower_s <= 0 or self.fan_period_s <= 0:
            raise ConfigurationError("control periods must be positive")
        if self.fan_period_s < self.dt_lower_s:
            raise ConfigurationError(
                "fan period must be at least one lower-level interval"
            )

    @property
    def hardened(self) -> bool:
        """Any robustness machinery enabled for this run?"""
        return (
            self.faults is not None
            or self.watchdog is not None
            or self.health is not None
            or self.estimator_fallback
        )


@dataclass
class SimulationResult:
    """Everything one run produces."""

    metrics: RunMetrics
    trace: TraceRecorder
    final_state: ActuatorState
    estimator: NextIntervalEstimator
    #: Time-averaged per-component power over the run [W] (dyn + leak).
    avg_p_components_w: np.ndarray = None
    #: Time-averaged per-device TEC activation over the run.
    avg_tec: np.ndarray = None


@dataclass
class _RunGuards:
    """Per-run robustness state: built fresh for every recorded run."""

    faults: FaultScheduler | None = None
    watchdog: ThermalWatchdog | None = None
    health: ActuatorHealthMonitor | None = None
    sensor_validator: SensorValidator | None = None
    fallback: bool = False
    refuge: ActuatorState | None = None


@dataclass
class SimulationEngine:
    """Runs one workload under one policy on one system."""

    system: CMPSystem
    problem: EnergyProblem
    config: EngineConfig = field(default_factory=EngineConfig)

    def _build_guards(self) -> _RunGuards | None:
        """Fresh guard state machines for one recorded run, or None.

        Returning None for unhardened configs keeps the classic loop
        bit-identical: no extra arithmetic touches the plant or the
        controller when nothing robustness-related is enabled.
        """
        cfg = self.config
        if not cfg.hardened:
            return None
        system = self.system
        if cfg.faults is not None:
            cfg.faults.validate(system)
            cfg.faults.reset()
        return _RunGuards(
            faults=cfg.faults,
            watchdog=(
                ThermalWatchdog(cfg.watchdog, self.problem.t_threshold_c)
                if cfg.watchdog is not None
                else None
            ),
            health=(
                ActuatorHealthMonitor(
                    cfg.health, system.n_tec_devices, system.n_cores
                )
                if cfg.health is not None
                else None
            ),
            sensor_validator=(
                SensorValidator(cfg.health)
                if cfg.health is not None
                else None
            ),
            fallback=cfg.estimator_fallback,
            refuge=safe_state(system.n_tec_devices, system.n_cores),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        run: WorkloadRun,
        controller: Controller,
        initial_state: ActuatorState | None = None,
        ips_predictor=None,
    ) -> SimulationResult:
        """Simulate until the workload finishes (or ``max_time_s``)."""
        system = self.system
        cfg = self.config
        profile = run.workload.component_profile
        dvfs = system.dvfs

        if initial_state is None:
            state = ActuatorState.initial(
                system.n_tec_devices, system.n_cores, dvfs.max_level
            )
        else:
            state = initial_state
        if ips_predictor is None:
            ips_predictor = IPSTracker(dvfs=dvfs)
        if getattr(controller, "estimator_kind", "full") == "banded":
            estimator = LocalBandedEstimator(
                system=system, ips_predictor=ips_predictor
            )
        else:
            estimator = NextIntervalEstimator(
                system=system, ips_predictor=ips_predictor
            )

        # Plant thermal state. The paper iterates HotSpot from a uniform
        # initial guess until consecutive peaks agree; warm-starting at
        # the initial configuration's steady state plus a short silent
        # priming pass is the converged equivalent.
        # Run context for the telemetry manifest (no-op when disabled;
        # last run before export wins).
        obs.annotate("engine_config", cfg)
        obs.annotate("workload", run.workload.name)
        obs.annotate("policy", controller.name)
        # The trace analysis tools (``tecfan trace anomalies``) read the
        # threshold back from the manifest to judge thermal excursions.
        obs.annotate("t_threshold_c", self.problem.t_threshold_c)
        # Pre-register the contract counters (docs/OBSERVABILITY.md) so
        # exports always carry them, even at zero.
        for counter in (
            "engine.intervals",
            "temp.violations",
            "tec.switch_events",
            "fan.level_changes",
            "controller.hot_iterations",
            "controller.cool_iterations",
        ):
            obs.incr(counter, 0)

        t_nodes = self._initial_field(run, state, profile, cfg.warm_start)
        prev_tec = state.tec.copy()
        if cfg.priming_intervals > 0:
            # Same run type (WorkloadRun or ServerTraceRun), fresh state.
            primer = type(run)(run.workload, run.chip, run.ref_freq_ghz)
            with obs.span("engine.prime"):
                state, t_nodes, prev_tec, _, _, _, _ = self._simulate(
                    primer,
                    controller,
                    state,
                    t_nodes,
                    prev_tec,
                    estimator,
                    trace=None,
                    max_intervals=cfg.priming_intervals,
                )

        trace = TraceRecorder()
        with obs.span("engine.run"):
            (
                state,
                t_nodes,
                prev_tec,
                time_s,
                total_instructions,
                avg_p,
                avg_tec,
            ) = self._simulate(
                run,
                controller,
                state,
                t_nodes,
                prev_tec,
                estimator,
                trace=trace,
                max_intervals=None,
                guards=self._build_guards(),
            )

        metrics = summarize(
            trace,
            self.problem,
            policy=controller.name,
            workload=run.workload.name,
            fan_level=int(state.fan_level),
            instructions=total_instructions,
        )
        return SimulationResult(
            metrics=metrics,
            trace=trace,
            final_state=state,
            estimator=estimator,
            avg_p_components_w=avg_p,
            avg_tec=avg_tec,
        )

    def _simulate(
        self,
        run: WorkloadRun,
        controller: Controller,
        state: ActuatorState,
        t_nodes: np.ndarray,
        prev_tec: np.ndarray,
        estimator: NextIntervalEstimator,
        trace: TraceRecorder | None,
        max_intervals: int | None,
        guards: _RunGuards | None = None,
    ):
        """Advance the plant + controller loop; optionally record.

        ``guards`` carries the run's robustness machinery (fault
        injection, watchdog, health monitor, sensor validation,
        estimator fallback). When it is None — every unhardened run and
        every priming pass — the loop takes exactly the classic code
        path, so fault-capable engines remain bit-identical to the
        original on healthy runs.
        """
        system = self.system
        cfg = self.config
        profile = run.workload.component_profile
        dvfs = system.dvfs
        faults = guards.faults if guards is not None else None
        watchdog = guards.watchdog if guards is not None else None
        health = guards.health if guards is not None else None
        validator = guards.sensor_validator if guards is not None else None
        fan_accum_p = np.zeros(system.nodes.n_components)
        fan_accum_tec = np.zeros(system.n_tec_devices)
        fan_accum_n = 0
        run_avg_p = np.zeros(system.nodes.n_components)
        run_avg_tec = np.zeros(system.n_tec_devices)
        time_s = 0.0
        total_instructions = 0.0
        intervals = 0

        while not run.finished and time_s < cfg.max_time_s:
            if max_intervals is not None and intervals >= max_intervals:
                break
            intervals += 1
            dt = cfg.dt_lower_s

            with obs.span("engine.step"):
                # ---- faults: commanded -> effective actuation -------------
                # The plant runs on what the hardware actually does; the
                # controller keeps seeing its own commands (the health
                # monitor reconciles the two once a divergence persists).
                if faults is not None:
                    eff_dvfs = faults.apply_dvfs(time_s, state.dvfs)
                    eff_fan = faults.apply_fan(
                        time_s, state.fan_level, system.fan.n_levels
                    )
                    eff_tec = faults.apply_tec(time_s, state.tec)
                else:
                    eff_dvfs = state.dvfs
                    eff_fan = state.fan_level
                    eff_tec = state.tec

                # ---- plant: power for this interval -----------------------
                freqs = dvfs.frequency_ghz(eff_dvfs)
                # Fractional final interval: don't bill a full control period
                # for the last few instructions (delay would otherwise be
                # quantized to dt).
                t_done = run.time_to_completion_s(freqs)
                if t_done < dt:
                    dt = max(t_done, 1e-6)
                activity = run.activity_vector()
                p_dyn = system.power.component_power.dynamic_power_w(
                    activity, eff_dvfs, profile
                )
                tec_pump = self._effective_tec(eff_tec, prev_tec, dt)

                # ---- plant: thermal step ----------------------------------
                comp = system.nodes.component_slice
                t_steady, _ = system.plant_thermal.solve(
                    p_dyn, eff_fan, tec_pump, t_guess_k=t_nodes[comp]
                )
                t_nodes = system.transient.step(
                    t_nodes, t_steady, dt, eff_fan, tec_pump
                )
                t_comp_c = system.component_temps_c(t_nodes)
                p_leak = system.power.plant_leakage.per_component_w(
                    t_nodes[comp]
                )

                # ---- plant: performance and energy accounting -------------
                inst = run.advance(dt, freqs)
                ips_cores = inst / dt
                total_instructions += float(inst.sum())
                p_cores = float(p_dyn.sum() + p_leak.sum())
                p_tec = system.tec_power_w(tec_pump, t_nodes)
                p_fan = system.fan.power_w(eff_fan)
                p_chip = p_cores + p_tec + p_fan
                if trace is not None:
                    trace.append(
                        time_s=time_s,
                        dt_s=dt,
                        peak_temp_c=float(t_comp_c.max()),
                        p_chip_w=p_chip,
                        p_cores_w=p_cores,
                        p_tec_w=p_tec,
                        p_fan_w=p_fan,
                        ips_chip=float(ips_cores.sum()),
                        tec_on=int(np.count_nonzero(eff_tec > 0.5)),
                        fan_level=eff_fan,
                        mean_dvfs_level=float(np.mean(eff_dvfs)),
                    )

                # ---- controller: lower level ------------------------------
                readings = (
                    cfg.sensors.read_c(t_comp_c)
                    if cfg.sensors is not None
                    else t_comp_c
                )
                if faults is not None:
                    readings = faults.apply_sensors(time_s, readings)
                if validator is not None:
                    # Plausibility reference: the observer state committed
                    # last interval, *before* this interval's readings load.
                    readings = validator.filter(
                        readings, estimator.predicted_component_temps_c()
                    )
                estimator.begin_interval(
                    sensor_temps_c=readings,
                    p_dyn_measured_w=p_dyn,
                    ips_measured=ips_cores,
                    state=state,
                    dt_s=dt,
                )
                prev_tec = eff_tec.copy()
                tripped = (
                    watchdog.feed(float(readings.max()))
                    if watchdog is not None
                    else False
                )
                if tripped:
                    # Safe state overrides the policy: max cooling, min
                    # heat. The estimator stays fed (begin_interval above)
                    # so handing control back after recovery is seamless.
                    new_state = guards.refuge
                else:
                    with obs.span("controller.decide"):
                        try:
                            new_state = controller.decide(
                                state, readings, estimator, self.problem
                            )
                        except ESTIMATOR_FAILURES:
                            if guards is None or not guards.fallback:
                                raise
                            obs.incr("controller.fallbacks")
                            new_state = state
                    new_state = new_state.with_fan(state.fan_level)

                # ---- controller: higher level (fan) -----------------------
                fan_accum_p += p_dyn + p_leak
                fan_accum_tec += tec_pump
                run_avg_p += (p_dyn + p_leak) * dt
                run_avg_tec += tec_pump * dt
                fan_accum_n += 1
                time_s += dt
                if cfg.dynamic_fan and fan_accum_n * dt >= cfg.fan_period_s:
                    if not tripped:
                        avg_p = fan_accum_p / fan_accum_n
                        avg_tec = fan_accum_tec / fan_accum_n
                        with obs.span("controller.decide_fan"):
                            try:
                                level = controller.decide_fan(
                                    new_state,
                                    avg_p,
                                    avg_tec,
                                    estimator,
                                    self.problem,
                                )
                            except ESTIMATOR_FAILURES:
                                if guards is None or not guards.fallback:
                                    raise
                                obs.incr("controller.fallbacks")
                                level = new_state.fan_level
                        new_state = new_state.with_fan(level)
                    fan_accum_p[:] = 0.0
                    fan_accum_tec[:] = 0.0
                    fan_accum_n = 0

                # ---- health: divergence detection + reconciliation --------
                if health is not None:
                    health.observe(
                        tec_cmd=state.tec,
                        tec_eff=eff_tec,
                        dvfs_cmd=state.dvfs,
                        dvfs_eff=eff_dvfs,
                        fan_cmd=state.fan_level,
                        fan_eff=eff_fan,
                    )
                    new_state = health.reconcile(new_state)
                    controller.set_actuator_health(health.health())

                # ---- telemetry (observation only; gated so disabled runs
                # pay one is-None check per interval) ----------------------
                if trace is not None and obs.get_telemetry() is not None:
                    self._record_interval(
                        state,
                        new_state,
                        t_comp_c,
                        p_chip,
                        float(ips_cores.sum()),
                        time_s - dt,
                        dt,
                    )
                state = new_state

        if time_s > 0:
            run_avg_p /= time_s
            run_avg_tec /= time_s
        return (
            state,
            t_nodes,
            prev_tec,
            time_s,
            total_instructions,
            run_avg_p,
            run_avg_tec,
        )

    # ------------------------------------------------------------------
    def _record_interval(
        self,
        state: ActuatorState,
        new_state: ActuatorState,
        t_comp_c: np.ndarray,
        p_chip_w: float,
        ips_chip: float,
        time_s: float,
        dt_s: float,
    ) -> None:
        """Emit one recorded interval's counters and JSONL event.

        Only called with an active telemetry session; the counter names
        are the contract documented in ``docs/OBSERVABILITY.md``.
        """
        peak_c = float(t_comp_c.max())
        obs.incr("engine.intervals")
        if self.problem.violated(peak_c):
            obs.incr("temp.violations")
        switched = int(
            np.count_nonzero(new_state.tec_on_mask() != state.tec_on_mask())
        )
        if switched:
            obs.incr("tec.switch_events", switched)
        if new_state.fan_level != state.fan_level:
            obs.incr("fan.level_changes")
        obs.observe(
            "engine.peak_temp_c",
            peak_c,
            edges=(40.0, 50.0, 60.0, 70.0, 75.0, 80.0, 85.0, 90.0, 100.0, 120.0),
        )
        obs.event(
            "interval",
            time_s=time_s,
            dt_s=dt_s,
            peak_temp_c=peak_c,
            p_chip_w=float(p_chip_w),
            ips_chip=ips_chip,
            tec_on=int(new_state.tec_on_count),
            fan_level=int(new_state.fan_level),
            mean_dvfs_level=float(np.mean(new_state.dvfs)),
        )

    # ------------------------------------------------------------------
    def _initial_field(
        self, run: WorkloadRun, state: ActuatorState, profile, warm: bool
    ) -> np.ndarray:
        system = self.system
        if not warm:
            return system.uniform_initial_temps_k()
        p_dyn = system.power.component_power.dynamic_power_w(
            run.activity_vector(), state.dvfs, profile
        )
        t_nodes, _ = system.plant_thermal.solve(
            p_dyn, state.fan_level, state.tec
        )
        return t_nodes

    def _effective_tec(
        self, tec: np.ndarray, prev: np.ndarray, dt: float
    ) -> np.ndarray:
        """Scale freshly-enabled devices by the Peltier engagement delay."""
        delay = self.system.tec.device.engage_delay_s
        if delay <= 0:
            return tec
        factor = max(0.0, 1.0 - delay / dt)
        newly_on = (tec > prev) & (prev <= 0.0)
        out = np.asarray(tec, dtype=float).copy()
        out[newly_on] *= factor
        return out


def _fan_sweep_task(payload: tuple) -> SimulationResult:
    """One fan level of a sweep (module-level: spawn-picklable).

    ``payload`` is ``(engine, run, controller, level)`` — each worker
    receives its own pickled copies, so mutating the controller or the
    run is isolated exactly as a fresh serial iteration would be.
    """
    engine, run, controller, level = payload
    controller.reset()
    state = ActuatorState.initial(
        engine.system.n_tec_devices,
        engine.system.n_cores,
        engine.system.dvfs.max_level,
        fan_level=level,
    )
    return engine.run(run, controller, initial_state=state)


def run_fan_sweep(
    engine: SimulationEngine,
    make_run,
    controller: Controller,
    violation_tolerance: float = 0.05,
    jobs: int | None = None,
) -> tuple[SimulationResult, list[RunMetrics]]:
    """Run a policy at every fan level; keep the paper's selection.

    "For each benchmark, we run all the studied policies with all
    possible fan speed levels in multiple tests, and choose the results
    with the lowest fan speed without violating the temperature
    threshold" (Sec. IV-C). Dynamic policies incur brief transients, so
    a run qualifies when its time-weighted violation rate is within
    ``violation_tolerance``; among qualifying levels the slowest fan
    (largest level number) wins. If none qualifies the fastest fan is
    used.

    Parameters
    ----------
    make_run:
        Zero-argument callable producing a fresh :class:`WorkloadRun`
        (each level needs untouched instruction accounting).
    jobs:
        Fan levels to simulate concurrently (see
        :func:`repro.parallel.parallel_map`); the per-level runs are
        independent and deterministic, so any worker count produces the
        results of the serial loop.
    """
    from repro.parallel import parallel_map, resolve_jobs

    fan = engine.system.fan
    levels = range(1, fan.n_levels + 1)
    if resolve_jobs(jobs) > 1:
        payloads = [(engine, make_run(), controller, lv) for lv in levels]
        results = parallel_map(_fan_sweep_task, payloads, jobs)
    else:
        results = [
            _fan_sweep_task((engine, make_run(), controller, lv))
            for lv in levels
        ]
    all_metrics = [res.metrics for res in results]
    qualifying = [
        res
        for res in results
        if res.metrics.violation_rate <= violation_tolerance
    ]
    if qualifying:
        # Among thermally-qualifying levels pick the minimum-energy one —
        # the offline equivalent of the paper's energy objective (for the
        # non-DVFS policies this coincides with "the lowest fan speed
        # without violating": their energy falls monotonically with fan
        # speed up to the last feasible level).
        chosen = min(qualifying, key=lambda r: r.metrics.energy_j)
    else:
        chosen = results[0]
    return chosen, all_metrics
