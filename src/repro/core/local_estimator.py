"""The paper's hardware temperature estimator: banded, one core at a time.

Sec. III-E describes TECfan's on-chip estimation pipeline: G is a band
matrix (thermal influence is local), implemented as a systolic array that
evaluates **one core per cycle** using ``M x K = 18 x 3 = 54`` fixed-point
multiplies — i.e. candidate evaluation sees only the candidate core's own
components; everything outside (neighbouring cores' boundary components,
the heat spreader, the sink) is frozen at its last known temperature.

:class:`LocalBandedEstimator` reproduces that locality:

* per control interval, one full-model bookkeeping solve anchors the
  observer (firmware can afford this at the measurement rate; candidate
  screening cannot);
* every candidate evaluation re-solves only the cores whose knobs differ
  from the applied configuration, against *frozen boundary temperatures*.

The locality is exactly why the hardware heuristic struggles at slow fan
speeds: each locally-evaluated move looks safe, but the global
spreader/sink warm-up that a chip-wide decision causes is invisible until
the next interval's sensors report it. The ablation benchmark
(``benchmarks/bench_ablation.py``) quantifies this against the idealized
full-model estimator of :class:`repro.core.estimator.NextIntervalEstimator`.

Temperatures handled by this estimator are quantized to the 8-bit /
0.5 degC encoding the paper budgets for the comparator datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.estimator import Estimate, IPSPredictor, predict_ips_many
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem
from repro.exceptions import ControlError
from repro.obs import telemetry as obs
from repro.power.component_power import core_dvfs_domain_mask
from repro.power.dynamic import DynamicPowerTracker

#: Temperature quantization step of the 8-bit hardware encoding [K].
HW_TEMP_STEP_K: float = 0.5


def _quantize(t_k: np.ndarray) -> np.ndarray:
    """Round temperatures to the hardware's 0.5 degC resolution."""
    return np.round(t_k / HW_TEMP_STEP_K) * HW_TEMP_STEP_K


@dataclass
class _CoreBlock:
    """Precomputed local model of one core tile."""

    comp_idx: np.ndarray  # flat indices of this core's components
    g_local: np.ndarray  # dense (m, m) intra-core conductance block
    # External couplings: for each local component, lists of (node, g).
    ext_node: list  # list of np.ndarray of external node indices
    ext_g: list  # matching conductances
    spreader_node: int
    capacities: np.ndarray  # per local component [J/K]


@dataclass
class LocalBandedEstimator:
    """Sec. III-E's per-core banded what-if evaluator.

    Drop-in replacement for
    :class:`repro.core.estimator.NextIntervalEstimator`; see module
    docstring for the locality semantics.
    """

    system: CMPSystem
    ips_predictor: IPSPredictor
    dyn_tracker: DynamicPowerTracker = field(default=None)
    n_evaluations: int = 0
    #: Core re-solves performed (the hardware's "systolic array passes").
    n_core_solves: int = 0

    _blocks: list = field(default=None, repr=False)
    _tile_devs: list = field(default=None, repr=False)
    _t_nodes_k: np.ndarray = field(default=None, repr=False)
    _dt_s: float = 0.0
    _base_state: ActuatorState = field(default=None, repr=False)
    _base_pred_comp_k: np.ndarray = field(default=None, repr=False)
    _p_leak: np.ndarray = field(default=None, repr=False)
    _cache: dict = field(default_factory=dict, repr=False)
    # (core, tile-TEC-bytes) -> (a, b_base, beta): the power-independent
    # part of a core solve. Valid only for the current observer field, so
    # it is dropped whenever ``_t_nodes_k`` moves. ``_stack_cache`` keys
    # stacked batch variants on the identity of these tuples, so the two
    # are always cleared together.
    _ctx_cache: dict = field(default_factory=dict, repr=False)
    _stack_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.dyn_tracker is None:
            self.dyn_tracker = DynamicPowerTracker(
                dvfs=self.system.dvfs,
                tile_of=self.system.chip.tile_of(),
                core_domain=core_dvfs_domain_mask(self.system.chip),
            )
        self._build_blocks()

    # ------------------------------------------------------------------
    def _build_blocks(self) -> None:
        system = self.system
        nodes = system.nodes
        g_full = system.cond.base_matrix().tocsr()
        n_comp = nodes.n_components
        blocks: list[_CoreBlock] = []
        for core in range(system.n_cores):
            sl = system.chip.tile_slice(core)
            idx = np.arange(sl.start, sl.stop)
            local_pos = {int(i): k for k, i in enumerate(idx)}
            m = len(idx)
            g_local = np.zeros((m, m))
            ext_node: list[np.ndarray] = []
            ext_g: list[np.ndarray] = []
            for k, i in enumerate(idx):
                row = g_full.getrow(int(i))
                cols = row.indices
                vals = row.data
                e_nodes: list[int] = []
                e_gs: list[float] = []
                for c, v in zip(cols, vals):
                    if int(c) in local_pos:
                        g_local[k, local_pos[int(c)]] = v
                    else:
                        # Off-diagonal entries are -g; boundary nodes are
                        # frozen, so they contribute g*T_ext to the RHS
                        # and +g to the diagonal (already included in the
                        # full matrix's diagonal, which we copied above
                        # via the (i, i) entry).
                        e_nodes.append(int(c))
                        e_gs.append(-float(v))
                ext_node.append(np.asarray(e_nodes, dtype=np.intp))
                ext_g.append(np.asarray(e_gs, dtype=float))
            blocks.append(
                _CoreBlock(
                    comp_idx=idx,
                    g_local=g_local,
                    ext_node=ext_node,
                    ext_g=ext_g,
                    spreader_node=nodes.spreader_index(core),
                    capacities=nodes.capacities[sl],
                )
            )
        self._blocks = blocks
        self._tile_devs = [
            system.tec.tile_devices(core) for core in range(system.n_cores)
        ]

    # ------------------------------------------------------------------
    def begin_interval(
        self,
        sensor_temps_c: np.ndarray,
        p_dyn_measured_w: np.ndarray,
        ips_measured: np.ndarray,
        state: ActuatorState,
        dt_s: float,
    ) -> None:
        """Load one control period's measurements (see full estimator)."""
        if dt_s <= 0:
            raise ControlError(f"non-positive control period {dt_s}")
        system = self.system
        nodes = system.nodes
        first_call = self._t_nodes_k is None
        if first_call:
            self._t_nodes_k = system.uniform_initial_temps_k()
        self.dyn_tracker.observe(p_dyn_measured_w, state.dvfs)
        self.ips_predictor.observe(ips_measured, state.dvfs)
        self._dt_s = dt_s
        # Firmware bookkeeping: one full steady solve at the *applied*
        # configuration anchors the spreader/sink observer. Components
        # come from the (quantized) sensors.
        t = self._t_nodes_k.copy()
        t[nodes.component_slice] = _quantize(units.c_to_k(sensor_temps_c))
        p_leak = system.power.controller_leakage.per_component_w(
            t[nodes.component_slice]
        )
        p_dyn = self.dyn_tracker.predict(state.dvfs)
        t_anchor = system.solver.solve(p_dyn + p_leak, state.fan_level, state.tec)
        rest = slice(nodes.n_components, nodes.n_nodes)
        if first_call:
            # Boot the observer at the anchored steady state; afterwards
            # the slow nodes track it with their own RC dynamics.
            t[rest] = t_anchor[rest]
        else:
            beta = system.transient.betas(dt_s, state.fan_level, state.tec)
            t[rest] = (
                (1.0 - beta[rest]) * t_anchor[rest] + beta[rest] * t[rest]
            )
        self._t_nodes_k = t
        self._p_leak = system.power.controller_leakage.per_component_w(
            t[nodes.component_slice]
        )
        self._base_state = state
        self._base_pred_comp_k = None
        self._cache.clear()
        self._ctx_cache.clear()
        self._stack_cache.clear()

    def commit(self, estimate: Estimate) -> None:
        """Adopt an accepted candidate's components into the observer."""
        self._t_nodes_k = estimate.t_nodes_k
        self._ctx_cache.clear()
        self._stack_cache.clear()

    def predicted_component_temps_c(self) -> np.ndarray | None:
        """The observer's current component temperatures [degC].

        Same contract as
        :meth:`repro.core.estimator.NextIntervalEstimator.predicted_component_temps_c`;
        the engine's sensor validator uses it as the plausibility
        reference for raw readings. ``None`` until the first interval.
        """
        if self._t_nodes_k is None:
            return None
        return units.k_to_c(
            self._t_nodes_k[self.system.nodes.component_slice]
        )

    # ------------------------------------------------------------------
    def _core_context(self, core: int, state: ActuatorState):
        """Power-independent pieces of one core solve: ``(a, b_base, beta)``.

        ``a`` is the local conductance block with the TEC pump terms on
        the diagonal, ``b_base`` the frozen-boundary inflow plus Joule
        injection, ``beta`` the Eq. (5) relaxation factors. Depends on
        the observer field and this tile's TEC activations only, so one
        context serves every candidate power vector — including whole
        batches in :meth:`evaluate_many`.
        """
        tile_devs = self._tile_devs[core]
        key = (core, np.asarray(state.tec)[tile_devs].tobytes())
        ctx = self._ctx_cache.get(key)
        if ctx is not None:
            return ctx
        system = self.system
        blk: _CoreBlock = self._blocks[core]
        idx = blk.comp_idx
        m = len(idx)
        a = blk.g_local.copy()
        b_base = np.zeros(m)
        t_now = self._t_nodes_k

        # Frozen-boundary inflow.
        for k in range(m):
            if blk.ext_node[k].size:
                b_base[k] += float(
                    np.dot(blk.ext_g[k], t_now[blk.ext_node[k]])
                )

        # TEC terms for devices on this tile (pump on diagonal, Joule in
        # RHS; the hot side is the frozen spreader).
        tec = system.tec
        for dev in tile_devs:
            s = float(state.tec[dev])
            if s <= 0.0:
                continue
            placement = tec.placements[dev]
            s_joule = float(tec.joule_scale(np.array([s]))[0])
            for ci, w in zip(placement.component_idx, placement.weights):
                k = int(ci - idx[0])
                a[k, k] += s * w * tec.alpha_i
                b_base[k] += s_joule * w * 0.5 * tec.joule_w

        # Eq. (5) per local node with the local diagonal conductance.
        beta = np.exp(-self._dt_s * np.diag(a) / blk.capacities)
        ctx = (a, b_base, beta)
        self._ctx_cache[key] = ctx
        return ctx

    def _solve_core(
        self, core: int, state: ActuatorState, p_dyn: np.ndarray
    ) -> np.ndarray:
        """Banded next-interval prediction of one core's components [K]."""
        self.n_core_solves += 1
        obs.incr("estimator.core_solves")
        blk: _CoreBlock = self._blocks[core]
        idx = blk.comp_idx
        a, b_base, beta = self._core_context(core, state)
        b = (p_dyn + self._p_leak)[idx] + b_base
        t_steady = np.linalg.solve(a, b)
        t_comp_now = self._t_nodes_k[self.system.nodes.component_slice]
        t_next = (1.0 - beta) * t_steady + beta * t_comp_now[idx]
        return _quantize(t_next)

    def _base_prediction(self) -> np.ndarray:
        if self._base_pred_comp_k is None:
            state = self._base_state
            p_dyn = self.dyn_tracker.predict(state.dvfs)
            pred = self._t_nodes_k[self.system.nodes.component_slice].copy()
            for core in range(self.system.n_cores):
                blk = self._blocks[core]
                pred[blk.comp_idx] = self._solve_core(core, state, p_dyn)
            self._base_pred_comp_k = pred
        return self._base_pred_comp_k

    def _diff_cores(self, state: ActuatorState) -> list[int]:
        base = self._base_state
        cores = set(np.flatnonzero(state.dvfs != base.dvfs).tolist())
        changed_dev = np.flatnonzero(state.tec != base.tec)
        for dev in changed_dev:
            cores.add(int(self.system.tec.device_tile[dev]))
        return sorted(cores)

    # ------------------------------------------------------------------
    def evaluate(self, state: ActuatorState) -> Estimate:
        """Predict next-interval peak temperature and EPI for ``state``.

        Only the cores whose knobs differ from the applied configuration
        are re-solved — the paper's one-core-per-cycle datapath.
        """
        if self._t_nodes_k is None:
            raise ControlError("begin_interval must be called first")
        key = state.key()
        hit = self._cache.get(key)
        if hit is not None:
            obs.incr("estimator.cache_hits")
            return hit
        self.n_evaluations += 1
        obs.incr("estimator.evaluations")
        system = self.system
        nodes = system.nodes

        p_dyn = self.dyn_tracker.predict(state.dvfs)
        pred = self._base_prediction().copy()
        for core in self._diff_cores(state):
            blk = self._blocks[core]
            pred[blk.comp_idx] = self._solve_core(core, state, p_dyn)

        t_nodes = self._t_nodes_k.copy()
        t_nodes[nodes.component_slice] = pred
        peak_c = float(units.k_to_c(pred).max())

        p_cores = float(p_dyn.sum() + self._p_leak.sum())
        p_tec = system.tec_power_w(state.tec, t_nodes)
        p_fan = system.fan.power_w(state.fan_level)
        p_chip = p_cores + p_tec + p_fan
        ips = float(np.sum(self.ips_predictor.predict(state.dvfs)))
        est = Estimate(
            state=state,
            t_nodes_k=t_nodes,
            peak_temp_c=peak_c,
            p_chip_w=p_chip,
            p_cores_w=p_cores,
            p_tec_w=p_tec,
            p_fan_w=p_fan,
            ips_chip=ips,
            epi=EnergyProblem.epi(p_chip, ips),
        )
        self._cache[key] = est
        return est

    # ------------------------------------------------------------------
    def evaluate_many(self, states: list) -> list:
        """Batched :meth:`evaluate` over many candidate states.

        Positionally matches ``states``. Candidates needing the same
        core context (same core, same tile TEC setting) are solved with
        one stacked ``np.linalg.solve`` — LAPACK back-substitutes each
        (m, m) system independently, so every row equals the sequential
        single-candidate solve. All computed estimates enter the memo
        cache.
        """
        if self._t_nodes_k is None:
            raise ControlError("begin_interval must be called first")
        results: list = [None] * len(states)
        misses: list[tuple[int, ActuatorState, tuple]] = []
        seen: set = set()
        for i, state in enumerate(states):
            key = state.key()
            hit = self._cache.get(key)
            if hit is not None:
                obs.incr("estimator.cache_hits")
                results[i] = hit
            elif key not in seen:
                seen.add(key)
                misses.append((i, state, key))
        if misses:
            obs.incr("estimator.batch_calls")
            obs.incr("estimator.batch_candidates", len(misses))
            self._evaluate_misses(misses, results)
        for i, state in enumerate(states):
            if results[i] is None:  # in-batch duplicate of a miss
                obs.incr("estimator.cache_hits")
                results[i] = self._cache[state.key()]
        return results

    def _evaluate_misses(
        self, misses: list, results: list
    ) -> None:
        system = self.system
        nodes = system.nodes
        n_miss = len(misses)
        levels = np.stack([s.dvfs for _, s, _ in misses])
        p_dyn_many = self.dyn_tracker.predict_many(levels)
        ips_many = predict_ips_many(self.ips_predictor, levels)
        base_pred = self._base_prediction()
        t_comp_now = self._t_nodes_k[nodes.component_slice]
        base = self._base_state
        base_tec = base.tec
        # DVFS-only candidates share the applied TEC vector *object*
        # (ActuatorState.with_dvfs aliases it), which skips every
        # per-candidate TEC comparison below.
        tec_objs = [s.tec for _, s, _ in misses]
        odd_tec = [
            j for j, t in enumerate(tec_objs) if t is not base_tec
        ]

        # Which cores each candidate re-solves (its DVFS knob moved or a
        # device on its tile did) — one vectorized pass over the batch
        # instead of per-candidate ``_diff_cores`` scans.
        diff = levels != np.asarray(base.dvfs)[None, :]
        device_tile = system.tec.device_tile
        for j in odd_tec:
            changed = np.flatnonzero(
                np.asarray(tec_objs[j]) != np.asarray(base_tec)
            )
            for dev in changed:
                diff[j, int(device_tile[dev])] = True
        pair_miss, pair_core = np.nonzero(diff)

        # Every (candidate, core) re-solve shares its power-independent
        # context with same-tile-TEC peers; all solves of one block size
        # collapse into a single stacked LAPACK call (each (m, m) system
        # back-substitutes independently, so rows stay bit-identical).
        ctx_memo: dict = {}
        buckets: dict = {}
        for j, core in zip(pair_miss.tolist(), pair_core.tolist()):
            mkey = (core, id(tec_objs[j]))
            ctx = ctx_memo.get(mkey)
            if ctx is None:
                ctx = self._core_context(core, misses[j][1])
                ctx_memo[mkey] = ctx
            buckets.setdefault(ctx[0].shape[0], []).append((j, core, ctx))

        p_all = p_dyn_many + self._p_leak[None, :]
        preds = np.repeat(base_pred[None, :], n_miss, axis=0)
        for pairs in buckets.values():
            jj = np.array([j for j, _, _ in pairs])
            # The stacked interval-invariant arrays are memoized on the
            # (core, context) sequence: controller iterations re-screen
            # overlapping candidate sets within one interval.
            skey = tuple((core, id(ctx)) for _, core, ctx in pairs)
            stacks = self._stack_cache.get(skey)
            if stacks is None:
                stacks = (
                    np.stack(
                        [self._blocks[core].comp_idx for _, core, _ in pairs]
                    ),
                    np.stack([ctx[0] for _, _, ctx in pairs]),
                    np.stack([ctx[1] for _, _, ctx in pairs]),
                    np.stack([ctx[2] for _, _, ctx in pairs]),
                )
                self._stack_cache[skey] = stacks
            idx_stack, a_stack, b_stack, beta_stack = stacks
            rhs = p_all[jj[:, None], idx_stack] + b_stack
            t_steady = np.linalg.solve(a_stack, rhs[:, :, None])[..., 0]
            q = _quantize(
                (1.0 - beta_stack) * t_steady
                + beta_stack * t_comp_now[idx_stack]
            )
            # One pair per (candidate, core): the scattered writes are
            # disjoint component ranges.
            preds[jj[:, None], idx_stack] = q
            self.n_core_solves += len(pairs)
            obs.incr("estimator.core_solves", len(pairs))

        # Shared per-candidate tail: one field matrix, one TEC-power
        # scatter per distinct activation vector, hoisted leakage sum.
        t_rows = np.repeat(self._t_nodes_k[None, :], n_miss, axis=0)
        t_rows[:, nodes.component_slice] = preds
        t_comp_c = units.k_to_c(preds)
        peaks = t_comp_c.max(axis=1)
        # Contiguous copies keep the row-wise pairwise-summation order of
        # the sequential per-candidate ``.sum()`` calls.
        p_dyn_sums = np.ascontiguousarray(p_dyn_many).sum(axis=1)
        ips_sums = np.ascontiguousarray(ips_many).sum(axis=1)
        p_leak_sum = self._p_leak.sum()
        p_tec_arr = np.empty(n_miss)
        odd = set(odd_tec)
        tec_groups: dict = {}
        for j, t in enumerate(tec_objs):
            gkey = np.asarray(t).tobytes() if j in odd else None
            tec_groups.setdefault(gkey, []).append(j)
        for members in tec_groups.values():
            p_tec_arr[members] = system.tec_power_many(
                np.asarray(tec_objs[members[0]]), t_rows[members]
            )

        self.n_evaluations += n_miss
        obs.incr("estimator.evaluations", n_miss)
        fan_pw: dict = {}
        for j, (i, state, key) in enumerate(misses):
            t_nodes = t_rows[j]
            peak_c = float(peaks[j])
            p_cores = float(p_dyn_sums[j] + p_leak_sum)
            p_tec = float(p_tec_arr[j])
            p_fan = fan_pw.get(state.fan_level)
            if p_fan is None:
                p_fan = system.fan.power_w(state.fan_level)
                fan_pw[state.fan_level] = p_fan
            p_chip = p_cores + p_tec + p_fan
            ips = float(ips_sums[j])
            est = Estimate(
                state=state,
                t_nodes_k=t_nodes,
                peak_temp_c=peak_c,
                p_chip_w=p_chip,
                p_cores_w=p_cores,
                p_tec_w=p_tec,
                p_fan_w=p_fan,
                ips_chip=ips,
                epi=EnergyProblem.epi(p_chip, ips),
            )
            self._cache[key] = est
            results[i] = est

    # ------------------------------------------------------------------
    def evaluate_fan_setting(
        self,
        avg_p_components_w: np.ndarray,
        avg_tec: np.ndarray,
        fan_level: int,
    ) -> float:
        """Higher-level fan estimate — full model (firmware, not the
        systolic datapath; it runs at seconds scale)."""
        self.n_evaluations += 1
        t = self.system.solver.solve(avg_p_components_w, fan_level, avg_tec)
        return float(
            units.k_to_c(t[self.system.nodes.component_slice]).max()
        )
