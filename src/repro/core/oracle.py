"""Exhaustive optimizers: Oracle, Oracle-P and OFTEC (paper Sec. V-A/V-E).

* **Oracle** minimizes the full EPI objective (Eq. 13) by enumerating the
  entire discrete configuration space — per-core TEC banks x per-core
  DVFS levels x fan levels — and is therefore ``O(M^N 2^{N L})``:
  exponential, usable only on the 4-core server setup, exactly as the
  paper argues.
* **Oracle-P** adds a per-interval performance floor so its delay equals
  TECfan's ("the exactly same performance degradation", Sec. V-E).
* **OFTEC** (Dousti & Pedram, DAC'14) pins DVFS at the maximum level and
  minimizes the *cooling* power (TEC + fan) subject to the temperature
  constraint, considering the temperature-leakage coupling. The paper
  runs OFTEC with exhaustive search too ("we make OFTEC do exhaustive
  search like Oracle"), complexity ``O(2^{N L})``.

Tractability note (documented in DESIGN.md): per-core TECs are ganged
into ``tec_gangs_per_core`` banks for the exhaustive space — with nine
independent devices per core even a 4-core space has 2^36 TEC states,
which no per-interval exhaustive search (the authors' included) can
enumerate. The heuristic TECfan keeps full per-device control.

Implementation: the search is fully vectorized. For each of the
``2^(N*gangs) * F`` conductance variants a dense inverse is cached once
(G never changes within a run); per decision the ``M^N`` DVFS power
vectors are pushed through all variants with batched matmuls, with two
temperature-leakage passes (the coupling OFTEC models).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.controller import Controller
from repro.core.estimator import NextIntervalEstimator, predict_ips_many
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.exceptions import ConfigurationError, ControlError


@dataclass
class ExhaustiveSearcher(Controller):
    """Vectorized exhaustive optimizer over (TEC banks, DVFS, fan).

    Parameters
    ----------
    objective:
        ``"epi"`` (Oracle) or ``"cooling"`` (OFTEC).
    dvfs_exhaustive:
        Enumerate per-core DVFS levels; ``False`` pins all cores at the
        top level (OFTEC does not actuate DVFS).
    tec_gangs_per_core:
        TEC banks per core in the exhaustive space.
    perf_floor:
        Optional per-decision chip-IPS floor series (Oracle-P): the
        ``k``-th decision must keep IPS >= ``perf_floor[k]``.
    """

    name: str = "Oracle"
    objective: str = "epi"
    dvfs_exhaustive: bool = True
    tec_gangs_per_core: int = 1
    perf_floor: np.ndarray | None = None
    #: Re-optimize every this many decide() calls, holding the last
    #: configuration in between. The paper's own argument (prohibitive
    #: search time) applies to the simulation too; re-deciding at the
    #: fan's time scale loses nothing on the slow-moving server trace.
    decision_period: int = 10
    #: Total configurations evaluated (complexity accounting).
    n_configurations: int = 0

    _inv: np.ndarray = field(default=None, repr=False)  # (K, n, n)
    _variant_fan: np.ndarray = field(default=None, repr=False)
    _variant_tec: np.ndarray = field(default=None, repr=False)  # (K, L)
    _dvfs_space: np.ndarray = field(default=None, repr=False)  # (D, N)
    _decision_index: int = 0
    _chosen_fan: int = 1
    _held: ActuatorState = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.objective not in ("epi", "cooling"):
            raise ConfigurationError(f"unknown objective {self.objective!r}")
        if self.tec_gangs_per_core < 1:
            raise ConfigurationError("need at least one TEC gang per core")

    def reset(self) -> None:
        self._decision_index = 0
        self._held = None

    # ------------------------------------------------------------------
    # Space construction (lazy; G variants cached for the run)
    # ------------------------------------------------------------------
    def _gang_devices(self, system) -> list[np.ndarray]:
        """Device index sets per (core, gang)."""
        gangs: list[np.ndarray] = []
        for core in range(system.n_cores):
            devs = system.tec.tile_devices(core)
            for part in np.array_split(devs, self.tec_gangs_per_core):
                gangs.append(part)
        return gangs

    def _prepare(self, system) -> None:
        if self._inv is not None:
            return
        n_gangs = system.n_cores * self.tec_gangs_per_core
        if n_gangs > 16:
            raise ConfigurationError(
                f"{n_gangs} TEC gangs -> 2^{n_gangs} variants: exhaustive "
                "search is intractable (that is the paper's point; use a "
                "smaller platform or fewer gangs)"
            )
        gangs = self._gang_devices(system)
        fan_levels = range(1, system.fan.n_levels + 1)
        invs = []
        v_fan = []
        v_tec = []
        for bits in itertools.product((0.0, 1.0), repeat=n_gangs):
            tec = np.zeros(system.n_tec_devices)
            for g, on in enumerate(bits):
                if on:
                    tec[gangs[g]] = 1.0
            for fan in fan_levels:
                g_dense = system.cond.matrix(fan, tec).toarray()
                invs.append(np.linalg.inv(g_dense))
                v_fan.append(fan)
                v_tec.append(tec)
        self._inv = np.stack(invs)
        self._variant_fan = np.asarray(v_fan, dtype=int)
        self._variant_tec = np.stack(v_tec)

        m = system.dvfs.n_levels
        if self.dvfs_exhaustive:
            self._dvfs_space = np.array(
                list(itertools.product(range(m), repeat=system.n_cores)),
                dtype=int,
            )
        else:
            self._dvfs_space = np.full(
                (1, system.n_cores), system.dvfs.max_level, dtype=int
            )

    # ------------------------------------------------------------------
    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        call = self._decision_index
        self._decision_index += 1
        if call % self.decision_period != 0 and self._held is not None:
            return self._held
        system = estimator.system
        self._prepare(system)
        nodes = system.nodes
        n_nodes = nodes.n_nodes
        comp = nodes.component_slice

        # Batched dynamic power: Eq. (7) ratios from the last measured
        # interval (same information TECfan gets).
        tracker = estimator.dyn_tracker
        if not tracker.ready:
            return state
        levels = self._dvfs_space  # (D, N)
        d_count = levels.shape[0]
        p_dyn = tracker.predict_many(levels)  # (D, ncomp)

        t_meas_k = units.c_to_k(np.asarray(sensor_temps_c, dtype=float))
        leak0 = system.power.controller_leakage.per_component_w(t_meas_k)

        ips = predict_ips_many(
            estimator.ips_predictor, levels
        ).sum(axis=1)  # (D,)
        if self.perf_floor is not None:
            k = min(call, len(self.perf_floor) - 1)
            # Cap at what is achievable under the *current* demand — the
            # reference trace's timing can differ by an interval.
            floor = min(float(self.perf_floor[k]), float(ips.max()))
        else:
            floor = None

        fan_power = system.fan.power_table()  # index 0 = level 1
        th_k = units.c_to_k(problem.t_threshold_c)

        best = None  # (objective, k_variant, d_index, tec_power)
        best_fallback = None  # least-peak fallback when infeasible
        n_variants = self._inv.shape[0]
        self.n_configurations += n_variants * d_count

        # RHS pieces independent of DVFS, per variant.
        for k in range(n_variants):
            fan = int(self._variant_fan[k])
            tec = self._variant_tec[k]
            inv = self._inv[k]
            rhs_const = system.cond.rhs(np.zeros(nodes.n_components), fan, tec)

            rhs = np.zeros((d_count, n_nodes))
            rhs[:, comp] = p_dyn + leak0[None, :]
            rhs += rhs_const[None, :]
            t1 = rhs @ inv.T  # (D, n_nodes)
            # Second temperature-leakage pass (OFTEC's coupling),
            # broadcast over the DVFS batch.
            lk = system.power.controller_leakage
            frac = lk.areas_mm2 / lk.chip_area_mm2
            leak1 = (
                np.clip(
                    lk.p_tdp_leak_w
                    + lk.alpha_w_per_k * (t1[:, comp] - lk.t_tdp_k),
                    0.0,
                    None,
                )
                * frac[None, :]
            )
            rhs[:, comp] = p_dyn + leak1
            t2 = rhs @ inv.T

            peak_k = t2[:, comp].max(axis=1)  # (D,)
            feasible = peak_k <= th_k
            if floor is not None:
                feasible &= ips >= floor * (1.0 - 1e-9)

            # TEC electrical power (Eq. 9) per DVFS config.
            t_cold = (
                t2[:, comp] @ _cold_weights(system).T
            )  # (D, n_dev)
            t_hot = t2[:, nodes.n_components + system.tec.device_tile]
            p_tec = (
                tec[None, :]
                * (
                    system.tec.joule_w
                    + system.tec.alpha_i * (t_hot - t_cold)
                )
            ).sum(axis=1)

            if self.objective == "cooling":
                obj = p_tec + fan_power[fan - 1]
            else:
                p_chip = (
                    p_dyn.sum(axis=1)
                    + leak1.sum(axis=1)
                    + p_tec
                    + fan_power[fan - 1]
                )
                with np.errstate(divide="ignore"):
                    obj = np.where(ips > 0, p_chip / np.maximum(ips, 1e-9),
                                   np.inf)

            if np.any(feasible):
                d_best = int(np.argmin(np.where(feasible, obj, np.inf)))
                cand = (float(obj[d_best]), k, d_best)
                if best is None or cand[0] < best[0]:
                    best = cand
            d_cool = int(np.argmin(peak_k))
            fb = (float(peak_k[d_cool]), k, d_cool)
            if best_fallback is None or fb[0] < best_fallback[0]:
                best_fallback = fb

        if best is None:
            _, k, d = best_fallback  # thermally safest configuration
        else:
            _, k, d = best
        self._chosen_fan = int(self._variant_fan[k])
        self._held = ActuatorState(
            tec=self._variant_tec[k].copy(),
            dvfs=self._dvfs_space[d].copy(),
            fan_level=self._chosen_fan,
        )
        return self._held

    def decide_fan(
        self,
        state: ActuatorState,
        avg_p_components_w: np.ndarray,
        avg_tec: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> int:
        """The exhaustive search already chose the fan jointly."""
        return self._chosen_fan


_COLD_W_CACHE: dict = {}


def _cold_weights(system) -> np.ndarray:
    """(n_dev, n_comp) footprint-weight matrix for cold-side temps."""
    key = id(system.tec)
    w = _COLD_W_CACHE.get(key)
    if w is None:
        tec = system.tec
        w = np.zeros((tec.n_devices, system.nodes.n_components))
        w[tec.coo_device, tec.coo_component] = tec.coo_weight
        _COLD_W_CACHE[key] = w
    return w


def make_oracle(perf_floor: np.ndarray | None = None) -> ExhaustiveSearcher:
    """The paper's Oracle (or Oracle-P when ``perf_floor`` is given)."""
    return ExhaustiveSearcher(
        name="Oracle-P" if perf_floor is not None else "Oracle",
        objective="epi",
        dvfs_exhaustive=True,
        perf_floor=perf_floor,
    )


def make_oftec() -> ExhaustiveSearcher:
    """OFTEC: exhaustive cooling-power minimization, DVFS pinned."""
    return ExhaustiveSearcher(
        name="OFTEC", objective="cooling", dvfs_exhaustive=False
    )
