"""Core: the TECfan optimization framework and its evaluation harness.

Public API
----------
- :class:`~repro.core.system.CMPSystem` / :func:`~repro.core.system.build_system`
- :class:`~repro.core.state.ActuatorState`
- :class:`~repro.core.problem.EnergyProblem` (Eq. 12-14)
- :class:`~repro.core.estimator.NextIntervalEstimator`
- :class:`~repro.core.tecfan.TECfanController` — the paper's heuristic
- :mod:`~repro.core.baselines` — Fan-only, Fan+TEC, Fan+DVFS, DVFS+TEC
- :class:`~repro.core.oracle.ExhaustiveSearcher` — Oracle / Oracle-P /
  OFTEC exhaustive optimizers (Sec. V-E)
- :class:`~repro.core.engine.SimulationEngine` /
  :func:`~repro.core.engine.run_fan_sweep`
- :mod:`~repro.core.metrics`, :mod:`~repro.core.trace`
- :mod:`~repro.core.hwcost` — Sec. III-E hardware cost model
"""

from repro.core.baselines import (
    DVFSTECController,
    FanDVFSController,
    FanOnlyController,
    FanTECController,
)
from repro.core.controller import Controller
from repro.core.engine import (
    EngineConfig,
    SimulationEngine,
    SimulationResult,
    run_fan_sweep,
)
from repro.core.estimator import Estimate, NextIntervalEstimator
from repro.core.export import (
    manifest_to_json,
    metrics_to_dict,
    metrics_to_json,
    run_manifest,
    telemetry_to_jsonl,
    trace_to_csv,
    trace_to_rows,
)
from repro.core.hwcost import HardwareCostModel
from repro.core.local_estimator import LocalBandedEstimator
from repro.core.oracle import ExhaustiveSearcher, make_oftec, make_oracle
from repro.core.metrics import RunMetrics, summarize
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem, build_system
from repro.core.tecfan import TECfanController
from repro.core.trace import TraceRecorder

__all__ = [
    "DVFSTECController",
    "FanDVFSController",
    "FanOnlyController",
    "FanTECController",
    "Controller",
    "EngineConfig",
    "SimulationEngine",
    "SimulationResult",
    "run_fan_sweep",
    "Estimate",
    "NextIntervalEstimator",
    "manifest_to_json",
    "metrics_to_dict",
    "metrics_to_json",
    "run_manifest",
    "telemetry_to_jsonl",
    "trace_to_csv",
    "trace_to_rows",
    "HardwareCostModel",
    "LocalBandedEstimator",
    "ExhaustiveSearcher",
    "make_oftec",
    "make_oracle",
    "RunMetrics",
    "summarize",
    "EnergyProblem",
    "ActuatorState",
    "CMPSystem",
    "build_system",
    "TECfanController",
    "TraceRecorder",
]
