"""Actuator state: the decision variables of the TECfan problem.

One :class:`ActuatorState` captures the full knob setting the optimizer
searches over (Sec. III-C): per-device TEC activations, per-core DVFS
levels, and the fan speed level. States are treated as immutable values;
the ``with_*`` helpers produce modified copies so controllers can build
candidate moves without aliasing bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ActuatorState:
    """One complete (TEC, DVFS, fan) configuration.

    Parameters
    ----------
    tec:
        Per-device activation in [0, 1]. On/off control uses {0, 1};
        the fan controller's "average state" estimate may be fractional.
    dvfs:
        Per-core DVFS level indices (higher = faster).
    fan_level:
        Fan speed level, 1 = fastest.
    """

    tec: np.ndarray
    dvfs: np.ndarray
    fan_level: int

    def __post_init__(self) -> None:
        tec = np.asarray(self.tec, dtype=float)
        dvfs = np.asarray(self.dvfs, dtype=int)
        if np.any(tec < 0.0) or np.any(tec > 1.0):
            raise ConfigurationError("TEC activations must lie in [0, 1]")
        if self.fan_level < 1:
            raise ConfigurationError("fan level must be >= 1")
        object.__setattr__(self, "tec", tec)
        object.__setattr__(self, "dvfs", dvfs)
        # Freeze the arrays so the dataclass is genuinely immutable.
        self.tec.setflags(write=False)
        self.dvfs.setflags(write=False)

    # ------------------------------------------------------------------
    @classmethod
    def initial(
        cls, n_devices: int, n_cores: int, max_dvfs_level: int, fan_level: int = 1
    ) -> "ActuatorState":
        """Base scenario: all TECs off, all cores at max DVFS, given fan."""
        return cls(
            tec=np.zeros(n_devices),
            dvfs=np.full(n_cores, max_dvfs_level, dtype=int),
            fan_level=fan_level,
        )

    def with_tec(self, device: int, value: float) -> "ActuatorState":
        """Copy with one device's activation changed."""
        tec = self.tec.copy()
        tec[device] = value
        return ActuatorState(tec=tec, dvfs=self.dvfs, fan_level=self.fan_level)

    def with_tec_vector(self, tec: np.ndarray) -> "ActuatorState":
        """Copy with the whole activation vector replaced."""
        return ActuatorState(
            tec=np.asarray(tec, dtype=float).copy(),
            dvfs=self.dvfs,
            fan_level=self.fan_level,
        )

    def with_dvfs(self, core: int, level: int) -> "ActuatorState":
        """Copy with one core's DVFS level changed."""
        dvfs = self.dvfs.copy()
        dvfs[core] = level
        return ActuatorState(tec=self.tec, dvfs=dvfs, fan_level=self.fan_level)

    def with_dvfs_vector(self, dvfs: np.ndarray) -> "ActuatorState":
        """Copy with the whole DVFS vector replaced."""
        return ActuatorState(
            tec=self.tec,
            dvfs=np.asarray(dvfs, dtype=int).copy(),
            fan_level=self.fan_level,
        )

    def with_fan(self, fan_level: int) -> "ActuatorState":
        """Copy with the fan level changed."""
        return ActuatorState(tec=self.tec, dvfs=self.dvfs, fan_level=fan_level)

    # ------------------------------------------------------------------
    @property
    def tec_on_count(self) -> int:
        """Number of devices with activation > 1/2."""
        return int(np.count_nonzero(self.tec > 0.5))

    def tec_on_mask(self) -> np.ndarray:
        """Boolean on/off view of the activation vector."""
        return self.tec > 0.5

    def key(self) -> tuple:
        """Hashable identity (for memoizing candidate evaluations)."""
        return (
            self.tec.tobytes(),
            self.dvfs.tobytes(),
            self.fan_level,
        )
