"""Controller interface shared by TECfan and every baseline policy.

A policy makes two kinds of decisions, mirroring the paper's two-level
hierarchy (Sec. III-D):

* :meth:`Controller.decide` — the fast lower level (every ~2 ms):
  choose TEC on/off states and per-core DVFS levels from the current
  sensor readings and the what-if estimator.
* :meth:`Controller.decide_fan` — the slow higher level (every few
  seconds): choose the fan speed level from last period's average power
  and average TEC state.

The engine calls these with plant measurements; policies never touch the
plant's internal state.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.estimator import NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState


class Controller(abc.ABC):
    """Base class for all TEC/DVFS/fan management policies."""

    #: Display name used by the analysis/benchmark tables.
    name: str = "controller"

    #: Which what-if estimator the engine should build for this policy:
    #: "full" (idealized whole-chip model) or "banded" (the paper's
    #: Sec. III-E one-core-at-a-time hardware datapath).
    estimator_kind: str = "full"

    #: May the engine's interval-kernel fast path skip this policy's
    #: per-interval ``decide`` calls during detected quiescence (see
    #: docs/PERFORMANCE.md)? Safe for policies whose decision is a pure
    #: function of the current readings and actuator state — under
    #: quiescence the inputs are static, so the skipped calls would have
    #: returned the unchanged state anyway. Policies carrying internal
    #: per-interval counters or integrators must leave this False.
    fast_forward_safe: bool = False

    @abc.abstractmethod
    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        """Lower-level decision: next interval's TEC + DVFS setting.

        ``estimator`` has already been primed with this interval's
        measurements via ``begin_interval``.
        """

    def decide_fan(
        self,
        state: ActuatorState,
        avg_p_components_w: np.ndarray,
        avg_tec: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> int:
        """Higher-level decision: next period's fan level.

        Default: hold the current level (policies whose fan is fixed by
        the experiment's sweep, i.e. everything in Secs. V-B..V-D).
        """
        return state.fan_level

    def set_actuator_health(self, health) -> None:
        """Engine callback: latest actuator health view.

        When the engine runs with health monitoring enabled
        (:class:`repro.faults.HealthConfig`), it calls this every
        interval with an :class:`repro.faults.ActuatorHealth` so
        health-aware policies can mask dead actuators out of their
        candidate sets. The default ignores it — baselines keep the
        paper's ideal-actuator behaviour.
        """

    def reset(self) -> None:
        """Clear any per-run internal state (between sweep runs)."""
