"""Per-interval simulation trace recording.

The engine appends one record per lower-level control interval; the
analysis layer turns the arrays into the paper's figures (temperature
time series for Fig. 4, violation counting for Fig. 5(b), the
power-integral energy of Fig. 6(c) — "we add all the products of power
readings and time interval in the trace file of one execution").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class TraceRecorder:
    """Growable arrays of per-interval simulation observables."""

    _rows: list = field(default_factory=list)

    def append(
        self,
        *,
        time_s: float,
        dt_s: float,
        peak_temp_c: float,
        p_chip_w: float,
        p_cores_w: float,
        p_tec_w: float,
        p_fan_w: float,
        ips_chip: float,
        tec_on: int,
        fan_level: int,
        mean_dvfs_level: float,
    ) -> None:
        """Record one control interval.

        Keyword-only on purpose: eleven positional floats in a row made
        silent argument-order bugs at engine call sites far too easy.
        """
        self._rows.append(
            (
                time_s,
                dt_s,
                peak_temp_c,
                p_chip_w,
                p_cores_w,
                p_tec_w,
                p_fan_w,
                ips_chip,
                float(tec_on),
                float(fan_level),
                mean_dvfs_level,
            )
        )

    def extend(
        self,
        *,
        time_s,
        dt_s,
        peak_temp_c,
        p_chip_w,
        p_cores_w,
        p_tec_w,
        p_fan_w,
        ips_chip,
        tec_on,
        fan_level,
        mean_dvfs_level,
    ) -> None:
        """Record a block of consecutive intervals in one call.

        Array arguments supply one value per interval; scalars broadcast
        across the block (the engine's fast-forward path holds actuators
        constant, so most columns are scalar there). Row ``j`` is
        exactly what ``append`` would have stored for the same values.
        """
        n = len(np.asarray(time_s, dtype=float).reshape(-1))
        cols = [
            np.broadcast_to(np.asarray(col, dtype=float).reshape(-1), n)
            for col in (
                time_s,
                dt_s,
                peak_temp_c,
                p_chip_w,
                p_cores_w,
                p_tec_w,
                p_fan_w,
                ips_chip,
                tec_on,
                fan_level,
                mean_dvfs_level,
            )
        ]
        self._rows.extend(zip(*(c.tolist() for c in cols)))

    def __len__(self) -> int:
        return len(self._rows)

    def rows_since(self, start: int) -> list:
        """Raw row tuples appended at index ``start`` or later.

        Lets incremental consumers (the live status reporter) fold only
        the new intervals each visit instead of rescanning the full
        trace; columns follow ``append``'s argument order.
        """
        return self._rows[start:]

    # ------------------------------------------------------------------
    def _column(self, idx: int) -> np.ndarray:
        return np.array([r[idx] for r in self._rows])

    @property
    def time_s(self) -> np.ndarray:
        """Interval start times [s]."""
        return self._column(0)

    @property
    def dt_s(self) -> np.ndarray:
        """Interval lengths [s]."""
        return self._column(1)

    @property
    def peak_temp_c(self) -> np.ndarray:
        """Peak die temperature per interval [degC]."""
        return self._column(2)

    @property
    def p_chip_w(self) -> np.ndarray:
        """Total chip power (cores + TEC + fan) [W]."""
        return self._column(3)

    @property
    def p_cores_w(self) -> np.ndarray:
        """Core (compute) power [W]."""
        return self._column(4)

    @property
    def p_tec_w(self) -> np.ndarray:
        """TEC electrical power [W]."""
        return self._column(5)

    @property
    def p_fan_w(self) -> np.ndarray:
        """Fan power [W]."""
        return self._column(6)

    @property
    def ips_chip(self) -> np.ndarray:
        """Chip IPS per interval."""
        return self._column(7)

    @property
    def tec_on(self) -> np.ndarray:
        """Active TEC device count per interval."""
        return self._column(8)

    @property
    def fan_level(self) -> np.ndarray:
        """Fan level per interval."""
        return self._column(9)

    @property
    def mean_dvfs_level(self) -> np.ndarray:
        """Mean per-core DVFS level index per interval."""
        return self._column(10)

    # ------------------------------------------------------------------
    def energy_j(self) -> float:
        """Trapezoid-free energy integral: sum of P * dt (paper's method)."""
        return float(np.sum(self.p_chip_w * self.dt_s))

    def average_power_w(self) -> float:
        """Time-weighted mean chip power [W]."""
        total_t = float(np.sum(self.dt_s))
        return self.energy_j() / total_t if total_t > 0 else 0.0
