"""Baseline policies (paper Sec. V-A).

* :class:`FanOnlyController` — the base scenario actuator-wise: no TEC
  or DVFS operations; the fan level is fixed by the experiment sweep to
  the lowest speed without violation.
* :class:`FanTECController` — fan as Fan-only; each TEC turns on when
  any component under it exceeds the threshold and off when all of them
  are below it (reactive, no estimation).
* :class:`FanDVFSController` — fan as Fan-only; classic DVFS-based DTM:
  lower a core one level when its hottest component violates, raise one
  level when it is below threshold.
* :class:`DVFSTECController` — all three knobs, managed *independently*
  (the TEC rule of Fan+TEC and the DVFS rule of Fan+DVFS applied
  side by side, neither aware of the other) — the paper uses it to show
  that uncoordinated combination underperforms, e.g. DVFS raises while
  TECs switch off, overshooting next interval.

These policies act on raw sensor readings only; none of them estimate
next-interval behaviour, which is precisely the coordination gap TECfan
closes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import Controller
from repro.core.estimator import NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState


@dataclass
class FanOnlyController(Controller):
    """No TEC/DVFS actuation; cooling comes from the (swept) fan alone."""

    name: str = "Fan-only"
    #: Stateless and readings-pure: quiescence-safe to fast-forward.
    fast_forward_safe = True

    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        return state


#: Switch-off hysteresis of the reactive TEC rule [K]. A thin-film TEC
#: swings its component by several Kelvin within one control period, so
#: a pure threshold rule chatters; real on/off Peltier drivers (e.g.
#: Chaparro et al.) hold the device on until the spot has cooled a
#: couple of degrees below the trip point.
TEC_OFF_HYSTERESIS_C: float = 3.0

#: Raise hysteresis of the reactive DVFS rule [K]: a core steps back up
#: only once it has cooled this far below the threshold. One DVFS step
#: swings a core by several Kelvin, so the textbook DTM controller
#: (Skadron et al., HPCA'02) raises with a guard band to avoid a
#: two-interval limit cycle that would violate on every other sample.
DVFS_RAISE_HYSTERESIS_C: float = 5.0


def _tec_reactive(
    state: ActuatorState,
    sensor_temps_c: np.ndarray,
    system,
    problem: EnergyProblem,
) -> np.ndarray:
    """The Fan+TEC device rule: on when a covered component violates,
    off once every covered component has hysteresis-cleared the
    threshold."""
    temps = np.asarray(sensor_temps_c, dtype=float)
    tec = state.tec.copy()
    for placement in system.tec.placements:
        under = temps[placement.component_idx]
        if np.any(under > problem.t_threshold_c):
            tec[placement.device] = 1.0
        elif np.all(under < problem.t_threshold_c - TEC_OFF_HYSTERESIS_C):
            tec[placement.device] = 0.0
        # else: inside the hysteresis band — hold the previous state.
    return tec


def _dvfs_reactive(
    state: ActuatorState,
    sensor_temps_c: np.ndarray,
    system,
    problem: EnergyProblem,
) -> np.ndarray:
    """The Fan+DVFS core rule: step down on violation, step up otherwise."""
    temps = np.asarray(sensor_temps_c, dtype=float)
    levels = state.dvfs.copy()
    max_level = system.dvfs.max_level
    for core in range(system.n_cores):
        core_peak = temps[system.chip.tile_slice(core)].max()
        if core_peak > problem.t_threshold_c:
            levels[core] = max(0, levels[core] - 1)
        elif core_peak < problem.t_threshold_c - DVFS_RAISE_HYSTERESIS_C:
            levels[core] = min(max_level, levels[core] + 1)
    return levels


@dataclass
class FanTECController(Controller):
    """Fan (swept) + reactive per-device TEC control."""

    name: str = "Fan+TEC"
    fast_forward_safe = True

    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        tec = _tec_reactive(state, sensor_temps_c, estimator.system, problem)
        return state.with_tec_vector(tec)


@dataclass
class FanDVFSController(Controller):
    """Fan (swept) + classic reactive DVFS thermal management."""

    name: str = "Fan+DVFS"
    fast_forward_safe = True

    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        levels = _dvfs_reactive(
            state, sensor_temps_c, estimator.system, problem
        )
        return state.with_dvfs_vector(levels)


@dataclass
class DVFSTECController(Controller):
    """All three knobs, each managed independently (uncoordinated)."""

    name: str = "DVFS+TEC"
    fast_forward_safe = True

    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        system = estimator.system
        tec = _tec_reactive(state, sensor_temps_c, system, problem)
        levels = _dvfs_reactive(state, sensor_temps_c, system, problem)
        return state.with_tec_vector(tec).with_dvfs_vector(levels)
