"""Hardware cost model of TECfan's estimation datapath (Sec. III-E).

The paper budgets the on-chip implementation: a systolic array performs
the band-matrix-vector product that predicts one core's temperatures in
one cycle, needing ``M x K`` fixed-point multipliers (M components per
core, K thermally-adjacent components each). It then anchors the area
to Bitirgen et al.'s 16-bit multiplier (0.057 mm^2 at 65 nm) and the
power to the IBM POWER6 FPU's density (0.56 W/mm^2 at 1.1 V / 4 GHz),
concluding < 1.7 % area+power overhead for 54 eight-bit multipliers.

This module recomputes those numbers parametrically so the benchmark
``benchmarks/bench_hwcost.py`` regenerates the section's figures and the
tests pin them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Area of a 16-bit fixed-point multiplier at 65 nm [mm^2]
#: (Bitirgen, Ipek & Martinez, MICRO'08).
AREA_16BIT_MULT_MM2: float = 0.057

#: Power density of the IBM POWER6 FPU at 100% utilization, nominal
#: voltage/frequency (1.1 V, 4 GHz) [W/mm^2] (Curran et al., ISSCC'06).
POWER6_FPU_DENSITY_W_PER_MM2: float = 0.56

#: Reference die area the paper uses for the overhead ratio [mm^2].
TYPICAL_DIE_AREA_MM2: float = 200.0


@dataclass(frozen=True)
class HardwareCostModel:
    """Parametric cost of the systolic temperature-estimation array.

    Parameters
    ----------
    components_per_core:
        M — thermal nodes evaluated per core (paper: 18).
    band_neighbours:
        K — components with thermal impact on a node (paper: 3; G is a
        band matrix because only adjacent components interact).
    multiplier_bits:
        Datapath width; the paper argues 8 bits suffice for temperature
        and energy comparison.
    die_area_mm2:
        Die area against which overhead is reported.
    chip_power_w:
        Chip power against which the multiplier power is reported.
    """

    components_per_core: int = 18
    band_neighbours: int = 3
    multiplier_bits: int = 8
    die_area_mm2: float = TYPICAL_DIE_AREA_MM2
    chip_power_w: float = 126.0

    def __post_init__(self) -> None:
        if self.components_per_core < 1 or self.band_neighbours < 1:
            raise ConfigurationError("M and K must be positive")
        if not 1 <= self.multiplier_bits <= 64:
            raise ConfigurationError("implausible multiplier width")

    # ------------------------------------------------------------------
    @property
    def multipliers(self) -> int:
        """Fixed-point multipliers in the systolic array (M x K)."""
        return self.components_per_core * self.band_neighbours

    @property
    def multiplier_area_mm2(self) -> float:
        """Area of one multiplier [mm^2].

        Array multiplier area scales ~quadratically with width; the
        16-bit anchor scales by ``(bits/16)^2``.
        """
        return AREA_16BIT_MULT_MM2 * (self.multiplier_bits / 16.0) ** 2

    @property
    def total_area_mm2(self) -> float:
        """Total estimator datapath area [mm^2]."""
        return self.multipliers * self.multiplier_area_mm2

    @property
    def area_overhead(self) -> float:
        """Fraction of the die spent on the estimator."""
        return self.total_area_mm2 / self.die_area_mm2

    @property
    def total_power_w(self) -> float:
        """Datapath power at 100% utilization [W]."""
        return self.total_area_mm2 * POWER6_FPU_DENSITY_W_PER_MM2

    @property
    def power_overhead(self) -> float:
        """Fraction of chip power spent on the estimator."""
        return self.total_power_w / self.chip_power_w

    def multiplications_per_decision(
        self, n_cores: int, candidates_per_interval: int
    ) -> int:
        """Fixed-point multiplies per control interval.

        One candidate evaluation = one core pass = M x K multiplies;
        the array is time-shared across candidates (Sec. III-E: "the
        other computation of TECfan can time-share the calculation
        unit").
        """
        return self.multipliers * candidates_per_interval

    def summary(self) -> dict[str, float]:
        """The numbers Sec. III-E reports, as a dict."""
        return {
            "multipliers": float(self.multipliers),
            "area_mm2": self.total_area_mm2,
            "area_overhead_pct": 100.0 * self.area_overhead,
            "power_w": self.total_power_w,
            "power_overhead_pct": 100.0 * self.power_overhead,
        }


def paper_single_multiplier_cost() -> dict[str, float]:
    """The paper's illustrative single 16-bit multiplier numbers:
    0.057 mm^2 (0.03% of a 200 mm^2 die) and ~0.03 W."""
    area = AREA_16BIT_MULT_MM2
    return {
        "area_mm2": area,
        "area_overhead_pct": 100.0 * area / TYPICAL_DIE_AREA_MM2,
        "power_w": area * POWER6_FPU_DENSITY_W_PER_MM2,
    }
