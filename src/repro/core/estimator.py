"""Next-interval estimation: the controller's what-if machine.

Each control period, TECfan (and the baselines that estimate) must
answer: *if* the actuators were set to candidate configuration X, what
would next interval's temperatures and per-instruction energy be?
(Sec. III-D: "estimate the temperature and per-instruction energy
consumption in the next time interval if certain adjustment is made").

The estimator composes the paper's on-line models:

* dynamic power — Eq. (7) scaling of the last *measured* interval
  (:class:`repro.power.dynamic.DynamicPowerTracker`);
* leakage — linear Eq. (6) at the last measured temperatures;
* temperature — steady state Eq. (1) + transient Eq. (5);
* IPS — a pluggable predictor: Eq. (11) linear scaling for the closed
  SPLASH-2 workloads, or the demand-capped quadratic SPECjbb model for
  the server experiment (Sec. IV-B);
* TEC and fan power — Eq. (9) and the fan table.

Every :meth:`evaluate` call is counted, which is how the overhead
benchmark validates the O(NL + N^2 M) complexity claim of Sec. V-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro import units
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import CMPSystem
from repro.exceptions import ControlError
from repro.obs import telemetry as obs
from repro.power.component_power import core_dvfs_domain_mask
from repro.power.dynamic import DynamicPowerTracker
from repro.thermal.keys import exact_actuator_key


class IPSPredictor(Protocol):
    """Strategy mapping a candidate DVFS vector to per-core IPS.

    Predictors may additionally provide ``predict_many(levels)`` taking a
    ``(batch, n_cores)`` level matrix and returning ``(batch, n_cores)``
    IPS, with each row bit-identical to the corresponding ``predict``
    call; :func:`predict_ips_many` falls back to a per-row loop when the
    batched form is absent.
    """

    def observe(self, ips: np.ndarray, dvfs_levels: np.ndarray) -> None:
        """Record the last interval's measured IPS and levels."""
        ...

    def predict(self, dvfs_levels: np.ndarray) -> np.ndarray:
        """Per-core IPS for a candidate level vector."""
        ...


def predict_ips_many(
    predictor: IPSPredictor, levels: np.ndarray
) -> np.ndarray:
    """Batched per-core IPS for a ``(batch, n_cores)`` level matrix.

    Uses the predictor's vectorized ``predict_many`` when available,
    otherwise stacks per-row ``predict`` calls. Either way row ``b``
    is bit-identical to ``predictor.predict(levels[b])``.
    """
    batched = getattr(predictor, "predict_many", None)
    if batched is not None:
        return np.asarray(batched(levels))
    return np.stack([predictor.predict(lv) for lv in np.asarray(levels)])


@dataclass(frozen=True)
class Estimate:
    """Outcome of one what-if evaluation."""

    state: ActuatorState
    t_nodes_k: np.ndarray
    peak_temp_c: float
    p_chip_w: float
    p_cores_w: float
    p_tec_w: float
    p_fan_w: float
    ips_chip: float
    epi: float

    def feasible(self, problem: EnergyProblem) -> bool:
        """Does this candidate meet the temperature constraint?"""
        return problem.satisfied(self.peak_temp_c)


@dataclass
class NextIntervalEstimator:
    """What-if evaluator over one :class:`CMPSystem`.

    Call :meth:`begin_interval` once per control period with the plant's
    measurements, then :meth:`evaluate` for each candidate. Evaluations
    within a period are memoized by actuator state.
    """

    system: CMPSystem
    ips_predictor: IPSPredictor
    dyn_tracker: DynamicPowerTracker = field(default=None)
    #: Total evaluations performed (complexity accounting).
    n_evaluations: int = 0

    # Per-interval context
    _t_nodes_k: np.ndarray = field(default=None, repr=False)
    _dt_s: float = 0.0
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.dyn_tracker is None:
            self.dyn_tracker = DynamicPowerTracker(
                dvfs=self.system.dvfs,
                tile_of=self.system.chip.tile_of(),
                core_domain=core_dvfs_domain_mask(self.system.chip),
            )

    # ------------------------------------------------------------------
    def begin_interval(
        self,
        sensor_temps_c: np.ndarray,
        p_dyn_measured_w: np.ndarray,
        ips_measured: np.ndarray,
        state: ActuatorState,
        dt_s: float,
    ) -> None:
        """Load one control period's measurements.

        Parameters
        ----------
        sensor_temps_c:
            Per-component sensor readings [degC].
        p_dyn_measured_w:
            Per-component dynamic power of the last interval [W]
            (CAMP-style runtime estimate).
        ips_measured:
            Per-core IPS of the last interval.
        state:
            The actuator configuration that produced the measurements.
        dt_s:
            Lower-level control period length.
        """
        if dt_s <= 0:
            raise ControlError(f"non-positive control period {dt_s}")
        nodes = self.system.nodes
        if self._t_nodes_k is None:
            self._t_nodes_k = self.system.uniform_initial_temps_k()
        # The controller senses die components; spreader and sink states
        # persist from its own previous prediction (a simple observer).
        t = self._t_nodes_k.copy()
        t[nodes.component_slice] = units.c_to_k(sensor_temps_c)
        self._t_nodes_k = t
        self.dyn_tracker.observe(p_dyn_measured_w, state.dvfs)
        self.ips_predictor.observe(ips_measured, state.dvfs)
        self._dt_s = dt_s
        self._cache.clear()

    def commit(self, estimate: Estimate) -> None:
        """Adopt an accepted candidate's field as the observer state."""
        self._t_nodes_k = estimate.t_nodes_k

    def predicted_component_temps_c(self) -> np.ndarray | None:
        """The observer's current component temperatures [degC].

        After a :meth:`commit`, this is the model's prediction of what
        the *next* interval's sensors should read — the reference the
        engine's sensor validator checks raw readings against. ``None``
        until the first interval.
        """
        if self._t_nodes_k is None:
            return None
        return units.k_to_c(
            self._t_nodes_k[self.system.nodes.component_slice]
        )

    # ------------------------------------------------------------------
    def evaluate(self, state: ActuatorState) -> Estimate:
        """Predict next-interval temperature and EPI for ``state``."""
        if self._t_nodes_k is None:
            raise ControlError("begin_interval must be called first")
        key = state.key()
        hit = self._cache.get(key)
        if hit is not None:
            obs.incr("estimator.cache_hits")
            return hit
        self.n_evaluations += 1
        obs.incr("estimator.evaluations")
        system = self.system
        nodes = system.nodes

        p_dyn = self.dyn_tracker.predict(state.dvfs)
        t_comp_k = self._t_nodes_k[nodes.component_slice]
        p_leak = system.power.controller_leakage.per_component_w(t_comp_k)

        t_steady = system.solver.solve(
            p_dyn + p_leak, state.fan_level, state.tec
        )
        t_next = system.transient.step(
            self._t_nodes_k, t_steady, self._dt_s, state.fan_level, state.tec
        )
        peak_c = float(
            units.k_to_c(t_next[nodes.component_slice]).max()
        )

        p_cores = float(p_dyn.sum() + p_leak.sum())
        p_tec = system.tec_power_w(state.tec, t_next)
        p_fan = system.fan.power_w(state.fan_level)
        p_chip = p_cores + p_tec + p_fan

        ips = float(np.sum(self.ips_predictor.predict(state.dvfs)))
        est = Estimate(
            state=state,
            t_nodes_k=t_next,
            peak_temp_c=peak_c,
            p_chip_w=p_chip,
            p_cores_w=p_cores,
            p_tec_w=p_tec,
            p_fan_w=p_fan,
            ips_chip=ips,
            epi=EnergyProblem.epi(p_chip, ips),
        )
        self._cache[key] = est
        return est

    # ------------------------------------------------------------------
    def evaluate_many(self, states: list) -> list:
        """Batched :meth:`evaluate` over many candidate states.

        The returned list matches ``states`` positionally and every
        :class:`Estimate` is bit-identical to what the sequential call
        would produce: cached entries are served from the memo cache,
        misses sharing an actuator setting (fan level + TEC vector) go
        through one multi-RHS :meth:`SteadyStateSolver.solve_many`, and
        all per-candidate arithmetic keeps the sequential operation
        order. All computed estimates enter the memo cache.
        """
        if self._t_nodes_k is None:
            raise ControlError("begin_interval must be called first")
        results: list = [None] * len(states)
        misses: list[tuple[int, ActuatorState, tuple]] = []
        seen: set = set()
        for i, state in enumerate(states):
            key = state.key()
            hit = self._cache.get(key)
            if hit is not None:
                obs.incr("estimator.cache_hits")
                results[i] = hit
            elif key not in seen:
                seen.add(key)
                misses.append((i, state, key))
            # duplicates within the batch resolve from the cache below
        if not misses:
            for i, state in enumerate(states):
                if results[i] is None:
                    obs.incr("estimator.cache_hits")
                    results[i] = self._cache[state.key()]
            return results

        obs.incr("estimator.batch_calls")
        obs.incr("estimator.batch_candidates", len(misses))
        system = self.system
        nodes = system.nodes
        t_comp_k = self._t_nodes_k[nodes.component_slice]
        p_leak = system.power.controller_leakage.per_component_w(t_comp_k)
        p_leak_sum = p_leak.sum()
        levels = np.stack([s.dvfs for _, s, _ in misses])
        p_dyn_many = self.dyn_tracker.predict_many(levels)
        ips_many = predict_ips_many(self.ips_predictor, levels)
        # Row-wise reductions over contiguous copies are bit-identical to
        # each row's own ``.sum()`` (pairwise summation runs per row in
        # logical order; a strided source would reduce across rows).
        p_dyn_sums = np.ascontiguousarray(p_dyn_many).sum(axis=1)
        ips_sums = np.ascontiguousarray(ips_many).sum(axis=1)

        # One multi-RHS solve per distinct (fan, TEC) setting: the LU
        # factorization, Joule terms, transient betas, TEC power scatter
        # and fan lookup are shared. Grouping must be exact (not the
        # caches' quantized keying): members share one factorization.
        groups: dict = {}
        for j, (_, state, _) in enumerate(misses):
            gkey = exact_actuator_key(state.fan_level, state.tec)
            groups.setdefault(gkey, []).append(j)
        for members in groups.values():
            state0 = misses[members[0]][1]
            fan, tec = state0.fan_level, state0.tec
            p_matrix = p_dyn_many[members] + p_leak[None, :]
            t_steady_rows = system.solver.solve_many(p_matrix, fan, tec)
            beta = system.transient.betas(self._dt_s, fan, tec)
            t_next_rows = (
                (1.0 - beta)[None, :] * t_steady_rows
                + beta[None, :] * self._t_nodes_k[None, :]
            )
            p_tec_rows = system.tec_power_many(tec, t_next_rows)
            p_fan = system.fan.power_w(fan)
            peaks = units.k_to_c(
                t_next_rows[:, nodes.component_slice]
            ).max(axis=1)
            for r, j in enumerate(members):
                i, state, key = misses[j]
                t_next = t_next_rows[r]
                peak_c = float(peaks[r])
                p_cores = float(p_dyn_sums[j] + p_leak_sum)
                p_tec = float(p_tec_rows[r])
                p_chip = p_cores + p_tec + p_fan
                ips = float(ips_sums[j])
                self.n_evaluations += 1
                obs.incr("estimator.evaluations")
                est = Estimate(
                    state=state,
                    t_nodes_k=t_next,
                    peak_temp_c=peak_c,
                    p_chip_w=p_chip,
                    p_cores_w=p_cores,
                    p_tec_w=p_tec,
                    p_fan_w=p_fan,
                    ips_chip=ips,
                    epi=EnergyProblem.epi(p_chip, ips),
                )
                self._cache[key] = est
                results[i] = est
        for i, state in enumerate(states):
            if results[i] is None:  # in-batch duplicate of a miss
                obs.incr("estimator.cache_hits")
                results[i] = self._cache[state.key()]
        return results

    # ------------------------------------------------------------------
    def evaluate_fan_setting(
        self,
        avg_p_components_w: np.ndarray,
        avg_tec: np.ndarray,
        fan_level: int,
    ) -> float:
        """Higher-level fan loop estimate: steady-state peak temp [degC].

        Uses the last higher-level interval's *average* power and TEC
        state (possibly fractional), per Sec. III-D. The fan acts through
        the heat sink whose time constant dwarfs the fan period, so the
        steady field is the right horizon.
        """
        self.n_evaluations += 1
        t = self.system.solver.solve(avg_p_components_w, fan_level, avg_tec)
        return float(
            units.k_to_c(t[self.system.nodes.component_slice]).max()
        )
