"""TECfan: the paper's multi-step down-hill heuristic (Sec. III-D, Fig. 2).

Lower level (every ~2 ms): starting from the current configuration, the
controller estimates next-interval temperature and EPI for single-knob
moves and walks downhill:

* **Hot iteration** — entered when ``max(T) > T_th``. First turn on the
  TEC over the hottest violating component (TECs engage in ~20 us and
  cost no performance); repeat while violations remain and off-devices
  cover hot spots. Only then start lowering DVFS, each step picking the
  candidate core whose one-level decrease yields the smallest estimated
  EPI, until the estimate satisfies the constraint.

* **Cool iteration** — entered when there is no hot spot. First raise
  DVFS where it buys performance: among one-level raises that increase
  predicted IPS and stay below threshold, apply the one with the lowest
  estimated EPI (performance has priority — this is why TECfan "rarely
  lowers the DVFS level", Sec. V-D). When no raise is productive,
  consider one-level *decreases* that lose no predicted IPS but reduce
  EPI — a no-op for the closed SPLASH-2 workloads (IPS is linear in f,
  every decrease loses IPS) but exactly the move that saves 29% energy
  on the demand-limited server workload of Sec. V-E, where the
  quadratic-perf/utilization-capped IPS model makes decreases
  performance-neutral. Finally, turn off the TEC over the coolest
  covered component while doing so saves energy without creating a hot
  spot.

The iteration ends when the hot/cool condition flips, exactly as the
paper's flow chart specifies. Complexity is O(NL + N^2 M): at most NL
TEC toggles and, per DVFS step, one candidate evaluation per core.

Higher level (every few seconds): the fan walks one speed level at a
time using last period's average power and average (possibly
fractional) TEC state — faster until the estimated steady state has no
hot spot, slower while it stays hot-spot free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.controller import Controller
from repro.core.estimator import Estimate, NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.obs import telemetry as obs


@dataclass
class TECfanController(Controller):
    """The hierarchical TECfan policy.

    Parameters
    ----------
    max_iterations:
        Safety bound on hot/cool iterations per control period (the
        natural bound is NL + NM; this guards against estimator
        pathologies).
    ips_gain_rel:
        Minimum relative chip-IPS gain for a DVFS raise to count as
        "buying performance".
    ips_loss_rel:
        Maximum relative chip-IPS loss for a DVFS decrease to count as
        performance-neutral.
    epi_improvement_rel:
        Minimum relative EPI improvement to accept an energy-saving move.
    """

    name: str = "TECfan"
    #: TECfan's lower level runs on the banded systolic-array estimator
    #: of Sec. III-E; pass "full" for the idealized-model ablation.
    estimator_kind: str = "banded"
    #: The hot/cool iteration is a pure function of the current readings
    #: and actuator state (the estimator observer is re-primed from
    #: sensors every classic interval), so skipping ``decide`` while the
    #: plant is quiescent reproduces the same decisions.
    fast_forward_safe = True
    max_iterations: int = 2000
    ips_gain_rel: float = 1e-6
    ips_loss_rel: float = 1e-6
    epi_improvement_rel: float = 1e-9
    #: Planning guard band below T_th [degC]: candidates must land at
    #: least this far under the constraint. Absorbs the on-line
    #: estimator's model error (linear vs quadratic leakage, one-interval
    #: activity lag) — the hardware budget the 8-bit estimation pipeline
    #: of Sec. III-E implies.
    guard_band_c: float = 0.5
    #: Extra guard per already-accepted raise within one decision [degC].
    #: The banded hardware estimator evaluates one core at a time, so the
    #: *joint* heating of several simultaneous raises is unmodelled; each
    #: accepted raise therefore tightens the margin the next one must
    #: clear. (With the idealized full estimator this simply makes the
    #: controller slightly conservative.)
    coupling_penalty_c: float = 0.15
    #: Hot-iteration ordering: the paper turns TECs on *first* and only
    #: then throttles ("we minimize the use of throttling"). False
    #: inverts the order for the ablation benchmark.
    tec_first: bool = True
    #: Chip-level DVFS mode (Sec. III-E: "TECfan can be integrated with
    #: chip-level DVFS seamlessly"): every DVFS move shifts all cores
    #: together, as on parts without per-core regulators.
    chip_level_dvfs: bool = False
    #: Evaluate DVFS candidate sets through the estimator's batched
    #: ``evaluate_many`` (one multi-RHS solve per actuator setting)
    #: instead of per-candidate ``evaluate`` calls. Decision-identical;
    #: ``False`` forces the sequential path for A/B validation.
    batched: bool = True
    #: Evaluation counters per phase, for the overhead benchmark.
    n_hot_iterations: int = 0
    n_cool_iterations: int = 0
    #: Latest actuator-health view pushed by the engine (None when the
    #: run has no health monitoring). Masked actuators are excluded from
    #: every candidate set so the heuristic degrades gracefully instead
    #: of oscillating on knobs that no longer respond.
    _health: object = field(default=None, repr=False)

    def set_actuator_health(self, health) -> None:
        self._health = health

    def reset(self) -> None:
        self.n_hot_iterations = 0
        self.n_cool_iterations = 0
        self._health = None

    def _ok(
        self, est: Estimate, problem: EnergyProblem, extra_margin_c: float = 0.0
    ) -> bool:
        """Guard-banded feasibility for candidate acceptance."""
        return est.peak_temp_c <= (
            problem.t_threshold_c - self.guard_band_c - extra_margin_c
        )

    def _evaluate_candidates(
        self, estimator: NextIntervalEstimator, candidates: list
    ) -> list:
        """Estimates for ``candidates``, batched when the estimator can.

        ``evaluate_many`` returns bit-identical estimates in candidate
        order, so selection logic downstream is unchanged either way.
        """
        if self.batched:
            batched = getattr(estimator, "evaluate_many", None)
            if batched is not None:
                return batched(candidates)
        return [estimator.evaluate(c) for c in candidates]

    # ------------------------------------------------------------------
    def decide(
        self,
        state: ActuatorState,
        sensor_temps_c: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> ActuatorState:
        est = estimator.evaluate(state)
        if not problem.satisfied(est.peak_temp_c):
            final, final_est = self._hot_iterations(state, estimator, problem)
        else:
            final, final_est = self._cool_iterations(
                state, est, estimator, problem
            )
        # The iterations hand back the accepted candidate's own estimate,
        # so committing needs no re-evaluation.
        estimator.commit(final_est)
        return final

    # ------------------------------------------------------------------
    # Hot iterations
    # ------------------------------------------------------------------
    def _hot_iterations(
        self,
        state: ActuatorState,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> tuple[ActuatorState, Estimate]:
        system = estimator.system
        work = state
        for _ in range(self.max_iterations):
            self.n_hot_iterations += 1
            obs.incr("controller.hot_iterations")
            est = estimator.evaluate(work)
            if self._ok(est, problem):
                return work, est

            moved = False
            stages = ("tec", "dvfs") if self.tec_first else ("dvfs", "tec")
            for stage in stages:
                if stage == "tec":
                    # Turn on the TEC over the hottest violating spot.
                    device = self._tec_over_hottest_violation(
                        work, est, system, problem
                    )
                    if device is not None:
                        work = work.with_tec(device, 1.0)
                        moved = True
                        break
                else:
                    # Lower DVFS, choosing the smallest-EPI candidate.
                    candidates = self._dvfs_candidates(work, system, -1)
                    if candidates:
                        best = min(
                            self._evaluate_candidates(estimator, candidates),
                            key=lambda e: e.epi,
                        )
                        work = best.state
                        moved = True
                        break
            if not moved:
                return work, est  # everything saturated; nothing more to do
        # Iteration budget exhausted after a move: the last accepted
        # candidate has not been evaluated yet (memo-cached if it has).
        return work, estimator.evaluate(work)

    def _tec_over_hottest_violation(
        self,
        state: ActuatorState,
        est: Estimate,
        system,
        problem: EnergyProblem,
    ) -> int | None:
        """Off-device covering the hottest violating component, if any.

        Devices the health monitor has masked are skipped — commanding
        a dead element on would only feed the estimator a fiction.
        """
        health = self._health
        t_comp_c = units.k_to_c(
            est.t_nodes_k[system.nodes.component_slice]
        )
        hot = np.flatnonzero(t_comp_c > problem.t_threshold_c)
        if hot.size == 0:
            return None
        for ci in hot[np.argsort(t_comp_c[hot])[::-1]]:
            for dev in system.tec.devices_over_component(int(ci)):
                if health is not None and not health.tec_ok[dev]:
                    continue
                if state.tec[dev] < 1.0:
                    return int(dev)
        return None

    # ------------------------------------------------------------------
    # Cool iterations
    # ------------------------------------------------------------------
    def _cool_iterations(
        self,
        state: ActuatorState,
        est: Estimate,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> tuple[ActuatorState, Estimate]:
        system = estimator.system
        work, cur = state, est
        raises_accepted = 0
        for _ in range(self.max_iterations):
            self.n_cool_iterations += 1
            obs.incr("controller.cool_iterations")

            # Phase A: DVFS raises that buy performance.
            nxt = self._best_raise(
                work, cur, estimator, problem, system, raises_accepted
            )
            if nxt is not None:
                work, cur = nxt.state, nxt
                raises_accepted += 1
                continue

            # Phase B: performance-neutral, EPI-improving decreases.
            nxt = self._best_lowering(work, cur, estimator, problem, system)
            if nxt is not None:
                work, cur = nxt.state, nxt
                continue

            # Phase C: turn off the TEC over the coolest component.
            nxt = self._tec_off_coolest(work, cur, estimator, problem, system)
            if nxt is not None:
                work, cur = nxt.state, nxt
                continue
            return work, cur
        return work, cur

    def _dvfs_candidates(self, work, system, direction: int) -> list:
        """Single-step DVFS moves: per-core, or lock-stepped chip-wide.

        ``direction`` is +1 (raise) or -1 (lower). Chip-level mode moves
        every core whose level admits the step, together — the paper's
        "integrated with chip-level DVFS seamlessly" variant.
        """
        max_level = system.dvfs.max_level
        health = self._health
        if self.chip_level_dvfs:
            new_levels = np.clip(work.dvfs + direction, 0, max_level)
            if np.array_equal(new_levels, work.dvfs):
                return []
            return [work.with_dvfs_vector(new_levels)]
        if direction > 0:
            return [
                work.with_dvfs(core, int(work.dvfs[core]) + 1)
                for core in range(system.n_cores)
                if work.dvfs[core] < max_level
                and (health is None or health.dvfs_ok[core])
            ]
        return [
            work.with_dvfs(core, int(work.dvfs[core]) - 1)
            for core in range(system.n_cores)
            if work.dvfs[core] > 0
            and (health is None or health.dvfs_ok[core])
        ]

    def _best_raise(
        self, work, cur, estimator, problem, system, raises_accepted=0
    ) -> Estimate | None:
        candidates = self._dvfs_candidates(work, system, +1)
        margin = self.coupling_penalty_c * raises_accepted
        best: Estimate | None = None
        for e in self._evaluate_candidates(estimator, candidates):
            gains = e.ips_chip > cur.ips_chip * (1.0 + self.ips_gain_rel)
            if gains and self._ok(e, problem, margin):
                if best is None or e.epi < best.epi:
                    best = e
        return best

    def _best_lowering(
        self, work, cur, estimator, problem, system
    ) -> Estimate | None:
        candidates = self._dvfs_candidates(work, system, -1)
        best: Estimate | None = None
        for e in self._evaluate_candidates(estimator, candidates):
            neutral = e.ips_chip >= cur.ips_chip * (1.0 - self.ips_loss_rel)
            saves = e.epi < cur.epi * (1.0 - self.epi_improvement_rel)
            if neutral and saves and self._ok(e, problem):
                if best is None or e.epi < best.epi:
                    best = e
        return best

    def _tec_off_coolest(
        self, work, cur, estimator, problem, system
    ) -> Estimate | None:
        if self._health is not None:
            on = np.flatnonzero((work.tec > 0.0) & self._health.tec_ok)
        else:
            on = np.flatnonzero(work.tec > 0.0)
        if on.size == 0:
            return None
        t_comp_k = cur.t_nodes_k[system.nodes.component_slice]
        cold = system.tec.cold_side_temperature_k(t_comp_k)
        device = int(on[np.argmin(cold[on])])
        e = estimator.evaluate(work.with_tec(device, 0.0))
        saves = e.epi < cur.epi * (1.0 - self.epi_improvement_rel)
        if saves and self._ok(e, problem):
            return e
        return None

    # ------------------------------------------------------------------
    # Higher level: fan speed
    # ------------------------------------------------------------------
    def decide_fan(
        self,
        state: ActuatorState,
        avg_p_components_w: np.ndarray,
        avg_tec: np.ndarray,
        estimator: NextIntervalEstimator,
        problem: EnergyProblem,
    ) -> int:
        if self._health is not None and not self._health.fan_ok:
            # A fan that ignores commands makes the walk pointless (and
            # the estimate misleading); hold and let the lower level and
            # the watchdog carry the load.
            return state.fan_level
        fan = estimator.system.fan
        level = state.fan_level
        peak = estimator.evaluate_fan_setting(
            avg_p_components_w, avg_tec, level
        )
        if not problem.satisfied(peak):
            # Hot: speed up until the estimated hot spots disappear.
            while level > 1:
                level -= 1
                peak = estimator.evaluate_fan_setting(
                    avg_p_components_w, avg_tec, level
                )
                if problem.satisfied(peak):
                    break
            return level
        # Cool: slow down while the estimate stays hot-spot free.
        while level < fan.n_levels:
            peak = estimator.evaluate_fan_setting(
                avg_p_components_w, avg_tec, level + 1
            )
            if not problem.satisfied(peak):
                break
            level += 1
        return level
