"""Run-level metrics: delay, power, energy, EDP, violation rate.

These are the quantities the paper's evaluation reports:

* **delay** — execution time, normalized to the base scenario (Fig. 6a);
* **average power** — time-weighted chip power (Fig. 6b);
* **energy** — the power integral over the run (Fig. 6c);
* **EDP** — energy-delay product (Gonzalez & Horowitz), Fig. 6(d);
* **violation rate** — fraction of control intervals whose peak die
  temperature exceeds the threshold (Fig. 5b; TECfan stays < 0.5%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import EnergyProblem
from repro.core.trace import TraceRecorder


@dataclass(frozen=True)
class RunMetrics:
    """Summary of one simulated execution."""

    policy: str
    workload: str
    fan_level: int
    execution_time_s: float
    average_power_w: float
    energy_j: float
    peak_temp_c: float
    violation_rate: float
    instructions: float

    @property
    def edp(self) -> float:
        """Energy-delay product [J s]."""
        return self.energy_j * self.execution_time_s

    @property
    def epi(self) -> float:
        """Average per-instruction energy [J]."""
        return self.energy_j / self.instructions if self.instructions else np.inf

    def normalized_to(self, base: "RunMetrics") -> dict[str, float]:
        """Delay/power/energy/EDP relative to ``base`` (Fig. 6 format)."""
        return {
            "delay": self.execution_time_s / base.execution_time_s,
            "power": self.average_power_w / base.average_power_w,
            "energy": self.energy_j / base.energy_j,
            "edp": self.edp / base.edp,
        }


def summarize(
    trace: TraceRecorder,
    problem: EnergyProblem,
    policy: str,
    workload: str,
    fan_level: int,
    instructions: float,
) -> RunMetrics:
    """Reduce a trace to :class:`RunMetrics`."""
    peaks = trace.peak_temp_c
    if len(trace) == 0:
        raise ValueError("cannot summarize an empty trace")
    dt = trace.dt_s
    total_t = float(dt.sum())
    violating = peaks > (problem.t_threshold_c + problem.violation_margin_c)
    return RunMetrics(
        policy=policy,
        workload=workload,
        fan_level=fan_level,
        execution_time_s=total_t,
        average_power_w=trace.average_power_w(),
        energy_j=trace.energy_j(),
        peak_temp_c=float(peaks.max()),
        violation_rate=float(dt[violating].sum() / total_t),
        instructions=instructions,
    )
