"""Trace export: CSV / dict / telemetry serialization of results.

Downstream users plot and post-process runs outside this library;
these helpers dump a :class:`~repro.core.trace.TraceRecorder` (and the
run summary) in portable formats with no extra dependencies. The
telemetry side (:func:`telemetry_to_jsonl`, :func:`manifest_to_json`)
is the one-stop entry point for exporting a :class:`repro.obs.Telemetry`
session together with a run's metrics.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.core.metrics import RunMetrics
from repro.core.trace import TraceRecorder
from repro.obs.exporters import write_jsonl
from repro.obs.manifest import build_manifest
from repro.obs.telemetry import Telemetry

#: Column order of the CSV export.
TRACE_COLUMNS: tuple[str, ...] = (
    "time_s",
    "dt_s",
    "peak_temp_c",
    "p_chip_w",
    "p_cores_w",
    "p_tec_w",
    "p_fan_w",
    "ips_chip",
    "tec_on",
    "fan_level",
    "mean_dvfs_level",
)


def trace_to_rows(trace: TraceRecorder) -> list[dict[str, float]]:
    """Trace as a list of per-interval dicts (column -> value)."""
    columns = {name: getattr(trace, name) for name in TRACE_COLUMNS}
    return [
        {name: float(columns[name][i]) for name in TRACE_COLUMNS}
        for i in range(len(trace))
    ]


def trace_to_csv(trace: TraceRecorder, path: str | Path | None = None) -> str:
    """Serialize a trace to CSV; optionally write it to ``path``.

    Returns the CSV text either way.
    """
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=list(TRACE_COLUMNS), lineterminator="\n"
    )
    writer.writeheader()
    for row in trace_to_rows(trace):
        writer.writerow(row)
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """Run summary as a JSON-safe dict (includes derived EDP/EPI)."""
    return {
        "policy": metrics.policy,
        "workload": metrics.workload,
        "fan_level": metrics.fan_level,
        "execution_time_s": metrics.execution_time_s,
        "average_power_w": metrics.average_power_w,
        "energy_j": metrics.energy_j,
        "peak_temp_c": metrics.peak_temp_c,
        "violation_rate": metrics.violation_rate,
        "instructions": metrics.instructions,
        "edp": metrics.edp,
        "epi": metrics.epi,
    }


def metrics_to_json(
    metrics: RunMetrics, path: str | Path | None = None
) -> str:
    """Serialize a run summary to JSON; optionally write to ``path``."""
    text = json.dumps(metrics_to_dict(metrics), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text)
    return text


def run_manifest(
    tel: Telemetry, metrics: RunMetrics | None = None
) -> dict:
    """Run manifest for one telemetry session, with metrics attached.

    Annotates the session with the run summary (so the manifest's
    ``context.metrics`` mirrors :func:`metrics_to_dict`) and builds the
    full manifest: version, git SHA, engine config, span timings, and
    the metric snapshot.
    """
    if metrics is not None:
        tel.annotate("metrics", metrics_to_dict(metrics))
    return build_manifest(tel)


def manifest_to_json(
    tel: Telemetry,
    path: str | Path | None = None,
    metrics: RunMetrics | None = None,
) -> str:
    """Serialize a session's run manifest to JSON; optionally write it."""
    text = json.dumps(
        run_manifest(tel, metrics=metrics), indent=2, sort_keys=True
    )
    if path is not None:
        Path(path).write_text(text)
    return text


def telemetry_to_jsonl(
    tel: Telemetry,
    path: str | Path | None = None,
    metrics: RunMetrics | None = None,
) -> str:
    """Serialize a session to a JSONL stream (manifest first).

    The stream carries the manifest, every span/counter/gauge/histogram
    aggregate, and the per-interval event records — the format
    ``repro profile --load`` and :func:`repro.obs.read_jsonl` consume.
    """
    return write_jsonl(tel, path=path, manifest=run_manifest(tel, metrics=metrics))
