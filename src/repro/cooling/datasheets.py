"""Datasheet-derived actuator parameter tables.

The paper takes its fan characteristics from a Dynatron R16 datasheet
(designed for Intel Core i5 packaging) and its TEC device parameters from
Long & Memik (DAC'10) / Chowdhury et al. (Nature Nanotech '09) thin-film
superlattice devices. Neither datasheet ships with this repository, so the
tables below are reconstructed from the values the paper itself reports:

* fan level 1 (highest speed) consumes 14.4 W, level 2 consumes 3.8 W,
  and fan power is cubic in speed (Sec. V-B, Fig. 4(c));
* TEC drive current is fixed at 6 A because more than 8 A risks
  overheating (Sec. III-B);
* the thin-film TEC is a 0.5 mm x 0.5 mm device, 3 x 3 of which cover one
  core tile (Sec. IV-C), and its Peltier effect engages within 20 us.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FanLevelSpec:
    """One discrete fan operating point."""

    level: int  # 1 = fastest (paper's convention)
    rpm: float
    airflow_cfm: float
    power_w: float


def _cubic_power(rpm: float, rpm_max: float, p_max: float) -> float:
    """Fan power follows a cubic law in speed (Patterson, ITHERM'08)."""
    return p_max * (rpm / rpm_max) ** 3


#: Maximum fan speed [rpm] — Dynatron R16 class 70 mm server fan.
_RPM_MAX = 7000.0

#: Fan power at maximum speed [W] (paper, Fig. 4(c)).
_P_MAX = 14.4

#: Airflow at maximum speed [CFM] (R16-class blower).
_CFM_MAX = 37.0

#: Discrete speed points. Level 2 at 4500 rpm reproduces the paper's
#: 3.8 W figure: 14.4 * (4500/7000)^3 = 3.83 W.
_RPMS = (7000.0, 4500.0, 3500.0, 2800.0, 2200.0, 1600.0)

#: Dynatron-R16-style fan table, level 1 = fastest.
DYNATRON_R16_LEVELS: tuple[FanLevelSpec, ...] = tuple(
    FanLevelSpec(
        level=i + 1,
        rpm=rpm,
        airflow_cfm=_CFM_MAX * rpm / _RPM_MAX,
        power_w=_cubic_power(rpm, _RPM_MAX, _P_MAX),
    )
    for i, rpm in enumerate(_RPMS)
)


@dataclass(frozen=True)
class TECDeviceSpec:
    """Thin-film superlattice TEC device parameters.

    The electrical model is the paper's Eq. (9): ``P = r I^2 + a I dT``.
    The thermal model adds the standard Peltier pumping expression
    ``Q_c = a I T_c - 1/2 I^2 r - K (T_h - T_c)`` (Long & Memik, DAC'10).
    """

    #: Device footprint [mm] (square).
    size_mm: float = 0.5
    #: Seebeck coefficient of the device [V/K] (two superlattice couples
    #: at ~200 uV/K each).
    seebeck_v_per_k: float = 4.0e-4
    #: Electrical resistance [ohm]. A ~10 um Bi2Te3 film over 0.25 mm^2
    #: is in the low-milliohm range; 3 mOhm keeps the Joule term of
    #: Eq. (9) at ~0.11 W per device at the 6 A drive current.
    resistance_ohm: float = 0.003
    #: Thermal conductance through the device body [W/K].
    conductance_w_per_k: float = 0.030
    #: Drive current when on [A]. The paper conservatively uses 6 A
    #: (more than 8 A was identified as dangerous).
    current_a: float = 6.0
    #: Peltier engagement delay [s] (Gupta et al.: up to 20 us).
    engage_delay_s: float = 20e-6

    @property
    def area_mm2(self) -> float:
        """Device footprint area [mm^2]."""
        return self.size_mm * self.size_mm


#: Default thin-film device. At 6 A it pumps ``a I T_c`` ~ 0.87 W from a
#: 90 degC junction at ~0.1 W electrical cost (the die being hotter than
#: the spreader, the Peltier current works *with* the gradient), sized so
#: the per-core 3x3 array recovers the one-fan-level cooling deficit of
#: Fig. 4 but cannot substitute for two levels.
DEFAULT_TEC_DEVICE = TECDeviceSpec()

#: TEC array layout per core tile (3 x 3, Sec. IV-C).
TEC_GRID_PER_TILE: tuple[int, int] = (3, 3)

#: Devices per core tile.
TECS_PER_TILE: int = TEC_GRID_PER_TILE[0] * TEC_GRID_PER_TILE[1]
