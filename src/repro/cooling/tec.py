"""Thermoelectric cooler (TEC) array model.

TEC devices are thin films embedded in the thermal-interface-material
layer between the die and the heat spreader (paper Fig. 1). Each core
tile carries a 3 x 3 array of 0.5 mm x 0.5 mm devices (Sec. IV-C), each
switched on/off independently by a power transistor fed through a TSV.

Physics
-------
When driven with current ``I`` the device pumps heat from its cold side
(the die) to its hot side (the spreader):

    Q_c = a I T_c - 1/2 I^2 r - K (T_c - T_s)      [leaves the die]
    Q_h = a I T_s + 1/2 I^2 r - K (T_s - T_c)      [enters the spreader]

with Seebeck coefficient ``a``, electrical resistance ``r`` and body
thermal conductance ``K``. ``Q_h - Q_c = I^2 r + a I (T_s - T_c)`` equals
the electrical power of the paper's Eq. (9), so the model is exactly
energy-consistent. Both expressions are linear in temperature, so a TEC
contributes *linear* (but asymmetric) terms to the conductance matrix G
and constant terms to the power vector P — the steady-state problem
``G Ts = P`` (Eq. 1) stays a single linear solve.

When off, the device is a passive slab of conductance ``K`` (the film is
still in the heat path). The on-state is therefore expressed as a *delta*
on top of the off-state, scaled by an activation in [0, 1]; fractional
activations implement the paper's "average TEC state" used by the
higher-level fan controller (Sec. III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cooling.datasheets import (
    DEFAULT_TEC_DEVICE,
    TEC_GRID_PER_TILE,
    TECDeviceSpec,
)
from repro.exceptions import ConfigurationError
from repro.floorplan.chip import ChipFloorplan


@dataclass(frozen=True)
class TECPlacement:
    """One physical device and its footprint over die components."""

    device: int  # global device index
    tile: int  # core tile (== spreader node) the device sits on
    x: float  # lower-left corner, chip coordinates [mm]
    y: float
    #: Flat component indices under the device footprint.
    component_idx: np.ndarray
    #: Fraction of the device area over each component (sums to 1).
    weights: np.ndarray


@dataclass
class TECArray:
    """All TEC devices on a chip, with footprint-resolved coupling.

    Build with :func:`build_tec_array`. The ``coo_*`` arrays flatten the
    (device, component) coupling triplets for vectorized G-matrix
    assembly in :mod:`repro.thermal.conductance`.

    ``drive_mode`` selects the actuation electronics (Sec. III of the
    paper): ``"switched"`` — power transistors give on/off (or PWM
    duty-cycled) control, so a fractional activation scales *both* the
    pumping and the Joule loss linearly; ``"current"`` — a dedicated
    on-chip regulator scales the drive current, so activation ``s``
    means current ``s*I``: pumping stays linear in ``s`` but Joule loss
    falls *quadratically* (``(sI)^2 r``) — more efficient at partial
    drive, at the regulator cost the paper declines to pay. The
    ablation benchmark quantifies the difference.
    """

    device: TECDeviceSpec
    placements: list[TECPlacement]
    grid: tuple[int, int] = TEC_GRID_PER_TILE
    drive_mode: str = "switched"

    # Flattened coupling triplets: device id, component id, weight.
    coo_device: np.ndarray = field(default=None, repr=False)
    coo_component: np.ndarray = field(default=None, repr=False)
    coo_weight: np.ndarray = field(default=None, repr=False)
    #: Tile (spreader node) per device.
    device_tile: np.ndarray = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def n_devices(self) -> int:
        """Total number of TEC devices on the chip."""
        return len(self.placements)

    @property
    def devices_per_tile(self) -> int:
        """TEC devices per core tile (paper: 9)."""
        return self.grid[0] * self.grid[1]

    @property
    def alpha_i(self) -> float:
        """Peltier pumping coefficient a*I [W/K] per device."""
        return self.device.seebeck_v_per_k * self.device.current_a

    @property
    def body_k(self) -> float:
        """Device body thermal conductance K [W/K]."""
        return self.device.conductance_w_per_k

    @property
    def joule_w(self) -> float:
        """Joule dissipation I^2 r [W] per device at full drive."""
        return self.device.current_a**2 * self.device.resistance_ohm

    def joule_scale(self, state: np.ndarray) -> np.ndarray:
        """Joule-loss scaling for an activation vector.

        Linear for switched/PWM drive (time-averaged duty cycle),
        quadratic for current control (``(sI)^2 r``).
        """
        s = np.asarray(state, dtype=float)
        return s * s if self.drive_mode == "current" else s

    def tile_devices(self, tile: int) -> np.ndarray:
        """Global device indices on ``tile``."""
        return np.flatnonzero(self.device_tile == tile)

    def devices_over_component(self, comp_idx: int) -> np.ndarray:
        """Global indices of devices whose footprint covers ``comp_idx``."""
        mask = self.coo_component == comp_idx
        return np.unique(self.coo_device[mask])

    # ------------------------------------------------------------------
    def electrical_power_w(
        self,
        state: np.ndarray,
        t_cold_k: np.ndarray,
        t_hot_k: np.ndarray,
    ) -> np.ndarray:
        """Per-device electrical power, Eq. (9): ``r I^2 + a I (Th - Tc)``.

        Parameters
        ----------
        state:
            Activation per device in [0, 1].
        t_cold_k, t_hot_k:
            Cold-side (die, footprint-weighted) and hot-side (spreader)
            absolute temperatures per device [K].
        """
        state = np.asarray(state, dtype=float)
        if state.shape != (self.n_devices,):
            raise ConfigurationError(
                f"state has shape {state.shape}, expected ({self.n_devices},)"
            )
        if np.any(state < 0.0) or np.any(state > 1.0):
            raise ConfigurationError("TEC activations must lie in [0, 1]")
        d_theta = np.asarray(t_hot_k) - np.asarray(t_cold_k)
        return (
            self.joule_scale(state) * self.joule_w
            + state * self.alpha_i * d_theta
        )

    def cold_side_temperature_k(self, t_components_k: np.ndarray) -> np.ndarray:
        """Footprint-weighted die temperature under each device [K]."""
        t = np.asarray(t_components_k, dtype=float)
        out = np.zeros(self.n_devices)
        np.add.at(
            out,
            self.coo_device,
            self.coo_weight * t[self.coo_component],
        )
        return out

    def _scatter_segments(self) -> list | None:
        """Per-entry-rank index pairs for the batched footprint scatter.

        Segment ``e`` holds (device indices, coo positions) of every
        device's ``e``-th footprint entry. Requires ``coo_device`` to be
        sorted (the builder emits it grouped per device); returns None
        otherwise and the batched scatter falls back to ``np.add.at``.
        """
        segs = getattr(self, "_scatter_segs", None)
        if segs is None:
            d = self.coo_device
            if d.size and np.any(np.diff(d) < 0):
                segs = ()
            else:
                counts = np.bincount(d, minlength=self.n_devices)
                starts = np.searchsorted(d, np.arange(self.n_devices))
                segs = []
                for e in range(int(counts.max()) if counts.size else 0):
                    mask = counts > e
                    segs.append((np.flatnonzero(mask), starts[mask] + e))
            object.__setattr__(self, "_scatter_segs", segs)
        return segs or None

    def cold_side_temperature_many(
        self, t_components_rows_k: np.ndarray
    ) -> np.ndarray:
        """:meth:`cold_side_temperature_k` over a ``(batch, n_comp)``
        matrix, one row per candidate field; row ``b`` is bit-identical
        to the single-field call.

        Each device accumulates its footprint terms in the 1-D scatter's
        entry order: one vectorized add per entry rank when the COO
        arrays are device-sorted, an axis-0 ``np.add.at`` otherwise.
        """
        t = np.asarray(t_components_rows_k, dtype=float)
        segs = self._scatter_segments()
        if segs is not None:
            vals = self.coo_weight[None, :] * t[:, self.coo_component]
            out = np.zeros((t.shape[0], self.n_devices))
            for devs, sel in segs:
                out[:, devs] += vals[:, sel]
            return out
        acc = np.zeros((self.n_devices, t.shape[0]))
        np.add.at(
            acc,
            self.coo_device,
            self.coo_weight[:, None] * t[:, self.coo_component].T,
        )
        return acc.T

    def electrical_power_many(
        self,
        state: np.ndarray,
        t_cold_rows_k: np.ndarray,
        t_hot_rows_k: np.ndarray,
    ) -> np.ndarray:
        """:meth:`electrical_power_w` for one activation vector against
        ``(batch, n_devices)`` temperature rows; row ``b`` is
        bit-identical to the per-row call (the Eq. (9) arithmetic is
        elementwise, so broadcasting changes nothing)."""
        state = np.asarray(state, dtype=float)
        if state.shape != (self.n_devices,):
            raise ConfigurationError(
                f"state has shape {state.shape}, expected ({self.n_devices},)"
            )
        if np.any(state < 0.0) or np.any(state > 1.0):
            raise ConfigurationError("TEC activations must lie in [0, 1]")
        d_theta = np.asarray(t_hot_rows_k) - np.asarray(t_cold_rows_k)
        return (
            self.joule_scale(state) * self.joule_w
            + state * self.alpha_i * d_theta
        )


def build_tec_array(
    chip: ChipFloorplan,
    device: TECDeviceSpec = DEFAULT_TEC_DEVICE,
    grid: tuple[int, int] = TEC_GRID_PER_TILE,
    drive_mode: str = "switched",
) -> TECArray:
    """Place a ``grid`` of TEC devices centred on each core tile.

    Devices are laid out on a regular grid over the tile so the array
    covers "the most core area" (Sec. IV-C); each device's cold-side
    coupling is split across the die components under its footprint in
    proportion to overlap area.
    """
    gx, gy = grid
    if gx < 1 or gy < 1:
        raise ConfigurationError(f"invalid TEC grid {grid}")
    size = device.size_mm
    if size * gx > chip.tile_width_mm or size * gy > chip.tile_height_mm:
        raise ConfigurationError("TEC grid does not fit on the tile")

    placements: list[TECPlacement] = []
    cell_w = chip.tile_width_mm / gx
    cell_h = chip.tile_height_mm / gy
    dev_id = 0
    for tile in range(chip.n_tiles):
        ox, oy = chip.tile_origin(tile)
        s = chip.tile_slice(tile)
        tile_comps = list(range(s.start, s.stop))
        for iy in range(gy):
            for ix in range(gx):
                # Device centred in its grid cell.
                dx = ox + (ix + 0.5) * cell_w - 0.5 * size
                dy = oy + (iy + 0.5) * cell_h - 0.5 * size
                idx: list[int] = []
                wts: list[float] = []
                for ci in tile_comps:
                    comp = chip.components[ci]
                    a = comp.overlap_area(dx, dy, dx + size, dy + size)
                    if a > 0.0:
                        idx.append(ci)
                        wts.append(a)
                w = np.asarray(wts, dtype=float)
                total = w.sum()
                if total <= 0.0:
                    raise ConfigurationError(
                        f"TEC device {dev_id} covers no component"
                    )
                placements.append(
                    TECPlacement(
                        device=dev_id,
                        tile=tile,
                        x=dx,
                        y=dy,
                        component_idx=np.asarray(idx, dtype=np.intp),
                        weights=w / total,
                    )
                )
                dev_id += 1

    if drive_mode not in ("switched", "current"):
        raise ConfigurationError(f"unknown TEC drive mode {drive_mode!r}")
    arr = TECArray(
        device=device, placements=placements, grid=grid,
        drive_mode=drive_mode,
    )
    coo_d: list[int] = []
    coo_c: list[int] = []
    coo_w: list[float] = []
    for p in placements:
        coo_d.extend([p.device] * len(p.component_idx))
        coo_c.extend(int(c) for c in p.component_idx)
        coo_w.extend(float(w) for w in p.weights)
    arr.coo_device = np.asarray(coo_d, dtype=np.intp)
    arr.coo_component = np.asarray(coo_c, dtype=np.intp)
    arr.coo_weight = np.asarray(coo_w, dtype=float)
    arr.device_tile = np.asarray([p.tile for p in placements], dtype=np.intp)
    return arr
