"""Cooling actuators: the package fan (global) and TEC arrays (local).

Public API
----------
- :class:`~repro.cooling.fan.FanModel` — discrete-speed fan with cubic
  power and flow-dependent convection resistance
- :class:`~repro.cooling.tec.TECArray` /
  :func:`~repro.cooling.tec.build_tec_array` — per-tile thin-film TEC
  arrays with footprint-resolved die coupling
- :mod:`~repro.cooling.datasheets` — reconstructed datasheet tables
"""

from repro.cooling.datasheets import (
    DEFAULT_TEC_DEVICE,
    DYNATRON_R16_LEVELS,
    FanLevelSpec,
    TEC_GRID_PER_TILE,
    TECS_PER_TILE,
    TECDeviceSpec,
)
from repro.cooling.fan import CONVECTION_EXPONENT, FanModel
from repro.cooling.tec import TECArray, TECPlacement, build_tec_array

__all__ = [
    "DEFAULT_TEC_DEVICE",
    "DYNATRON_R16_LEVELS",
    "FanLevelSpec",
    "TEC_GRID_PER_TILE",
    "TECS_PER_TILE",
    "TECDeviceSpec",
    "CONVECTION_EXPONENT",
    "FanModel",
    "TECArray",
    "TECPlacement",
    "build_tec_array",
]
