"""Fan model: discrete speed levels, power, and convection conductance.

The fan is the *global* cooling actuator: its airflow sets the convective
thermal resistance between the heat sink and ambient air. Forced
convection over a finned sink scales as ``R_conv ~ V^-0.8`` (turbulent
flow correlation), which we apply relative to a calibrated resistance at
maximum airflow. Fan electrical power follows the cubic law of the
datasheet table in :mod:`repro.cooling.datasheets`.

Levels use the paper's convention: **level 1 is the fastest**; larger
level numbers are slower, cheaper, and less effective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cooling.datasheets import DYNATRON_R16_LEVELS, FanLevelSpec
from repro.exceptions import ConfigurationError

#: Exponent of the convection-resistance vs airflow correlation.
CONVECTION_EXPONENT: float = 0.8


@dataclass(frozen=True)
class FanModel:
    """A speed-adjustable fan attached to the package heat sink.

    Parameters
    ----------
    levels:
        Datasheet operating points, fastest first.
    r_conv_at_max_k_per_w:
        Sink-to-ambient convective resistance at level 1 [K/W]. This is
        the package-calibration knob (see DESIGN.md Sec. 3).
    """

    levels: tuple[FanLevelSpec, ...] = DYNATRON_R16_LEVELS
    r_conv_at_max_k_per_w: float = 0.10

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("fan needs at least one speed level")
        if self.r_conv_at_max_k_per_w <= 0:
            raise ConfigurationError("convective resistance must be positive")
        flows = [lv.airflow_cfm for lv in self.levels]
        if any(b >= a for a, b in zip(flows, flows[1:])):
            raise ConfigurationError(
                "fan levels must be ordered fastest (level 1) to slowest"
            )

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of speed levels."""
        return len(self.levels)

    def _spec(self, level: int) -> FanLevelSpec:
        if not 1 <= level <= self.n_levels:
            raise ConfigurationError(
                f"fan level {level} outside 1..{self.n_levels}"
            )
        return self.levels[level - 1]

    def power_w(self, level: int) -> float:
        """Electrical power drawn at ``level`` [W]."""
        return self._spec(level).power_w

    def airflow_cfm(self, level: int) -> float:
        """Airflow at ``level`` [CFM]."""
        return self._spec(level).airflow_cfm

    def rpm(self, level: int) -> float:
        """Rotational speed at ``level`` [rpm]."""
        return self._spec(level).rpm

    def convection_resistance_k_per_w(self, level: int) -> float:
        """Sink-to-ambient thermal resistance at ``level`` [K/W].

        ``R(level) = R_max_flow * (flow_max / flow_level)^0.8``.
        """
        spec = self._spec(level)
        ratio = self.levels[0].airflow_cfm / spec.airflow_cfm
        return self.r_conv_at_max_k_per_w * ratio**CONVECTION_EXPONENT

    def convection_conductance_w_per_k(self, level: int) -> float:
        """Reciprocal of :meth:`convection_resistance_k_per_w` [W/K]."""
        return 1.0 / self.convection_resistance_k_per_w(level)

    # ------------------------------------------------------------------
    def power_table(self) -> np.ndarray:
        """Vector of power per level, index 0 = level 1 [W]."""
        return np.array([lv.power_w for lv in self.levels])

    def conductance_table(self) -> np.ndarray:
        """Vector of sink-ambient conductance per level [W/K]."""
        return np.array(
            [
                self.convection_conductance_w_per_k(lv.level)
                for lv in self.levels
            ]
        )

    def slower(self, level: int) -> int | None:
        """The next slower level, or None if already slowest."""
        return level + 1 if level < self.n_levels else None

    def faster(self, level: int) -> int | None:
        """The next faster level, or None if already fastest."""
        return level - 1 if level > 1 else None
