"""Request routing policies: split the arrival stream across nodes.

Each control interval the fleet has a scalar amount of offered work
(instructions arriving during the interval) that must be split into
per-node shares. Routers are deterministic, vectorized, and stateful
only in ways that serialize trivially (a round-robin cursor), so a
fleet run's routing sequence is a pure function of the stream and the
observed node state.

The router sees a :class:`RouterView` snapshot of the fleet taken at
the *start* of the interval (backlog, temperatures, capacities) — the
same information a front-end load balancer would have — and returns a
``(n_nodes,)`` share vector summing to the offered work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

#: Registered router policy names (CLI ``--router`` choices).
ROUTER_POLICIES = ("identity", "round-robin", "least-loaded", "thermal")


@dataclass
class RouterView:
    """Per-node state snapshot offered to the routing policy.

    Attributes
    ----------
    backlog_inst:
        Total queued instructions per node (sum over cores).
    peak_temp_c:
        Peak die temperature per node [degC].
    capacity_ips:
        Total service capacity per node at current DVFS [IPS].
    t_threshold_c:
        The thermal threshold shared by all nodes [degC].
    """

    backlog_inst: np.ndarray
    peak_temp_c: np.ndarray
    capacity_ips: np.ndarray
    t_threshold_c: float


class Router:
    """Base policy: uniform split (also the N=1 identity router)."""

    name = "identity"

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ConfigurationError("router needs at least one node")
        self.n_nodes = int(n_nodes)

    def split(self, offered_inst: float, view: RouterView) -> np.ndarray:
        """Per-node instruction shares for this interval."""
        return np.full(self.n_nodes, offered_inst / self.n_nodes)

    def _weighted(self, offered_inst: float, w: np.ndarray) -> np.ndarray:
        """Proportional split along non-negative weights, uniform fallback."""
        total = w.sum()
        if not np.isfinite(total) or total <= 0.0:
            return np.full(self.n_nodes, offered_inst / self.n_nodes)
        return offered_inst * (w / total)


class RoundRobinRouter(Router):
    """Cycle request quanta across nodes with a persistent cursor.

    Work is split into ``granularity`` equal quanta per interval; each
    quantum goes to the next node in cyclic order. Over many intervals
    every node receives the same share, but instantaneous assignments
    rotate — the classic DNS/edge round-robin behaviour.
    """

    name = "round-robin"

    def __init__(self, n_nodes: int, granularity: int = 64):
        super().__init__(n_nodes)
        self.granularity = max(int(granularity), n_nodes)
        self._cursor = 0

    def split(self, offered_inst: float, view: RouterView) -> np.ndarray:
        q = self.granularity
        base, extra = divmod(q, self.n_nodes)
        counts = np.full(self.n_nodes, base, dtype=float)
        if extra:
            idx = (self._cursor + np.arange(extra)) % self.n_nodes
            np.add.at(counts, idx, 1.0)
            self._cursor = (self._cursor + extra) % self.n_nodes
        return offered_inst * (counts / q)


class LeastLoadedRouter(Router):
    """Send work where the queues are shortest.

    Weights each node by its spare service capacity over the next
    interval — ``max(capacity * dt - backlog, 0)`` — so a node with a
    deep backlog receives nothing until it drains. Falls back to a
    uniform split when every node is saturated.
    """

    name = "least-loaded"

    def __init__(self, n_nodes: int, dt_s: float = 1.0):
        super().__init__(n_nodes)
        self.dt_s = float(dt_s)

    def split(self, offered_inst: float, view: RouterView) -> np.ndarray:
        spare = np.maximum(
            view.capacity_ips * self.dt_s - view.backlog_inst, 0.0
        )
        return self._weighted(offered_inst, spare)


class ThermalAwareRouter(Router):
    """Steer work toward thermally cool nodes with spare capacity.

    The weight is the product of spare capacity (as in least-loaded)
    and thermal headroom below the threshold, clipped at a small floor
    so a fleet running uniformly hot degrades to least-loaded rather
    than starving itself. This is the energy-aware policy: keeping hot
    nodes lighter delays TEC engagement and fan speed-ups fleet-wide.
    """

    name = "thermal"

    def __init__(
        self, n_nodes: int, dt_s: float = 1.0, headroom_floor_c: float = 0.5
    ):
        super().__init__(n_nodes)
        self.dt_s = float(dt_s)
        self.headroom_floor_c = float(headroom_floor_c)

    def split(self, offered_inst: float, view: RouterView) -> np.ndarray:
        spare = np.maximum(
            view.capacity_ips * self.dt_s - view.backlog_inst, 0.0
        )
        headroom = np.maximum(
            view.t_threshold_c - view.peak_temp_c, self.headroom_floor_c
        )
        return self._weighted(offered_inst, spare * headroom)


def make_router(policy: str, n_nodes: int, dt_s: float = 1.0) -> Router:
    """Instantiate a router by CLI policy name."""
    if policy == "identity":
        return Router(n_nodes)
    if policy == "round-robin":
        return RoundRobinRouter(n_nodes)
    if policy == "least-loaded":
        return LeastLoadedRouter(n_nodes, dt_s=dt_s)
    if policy == "thermal":
        return ThermalAwareRouter(n_nodes, dt_s=dt_s)
    raise ConfigurationError(
        f"unknown router policy {policy!r} (expected one of {ROUTER_POLICIES})"
    )
