"""Fleet plant steppers: per-node loop vs batched class-grouped kernel.

Advancing a fleet one control interval means, for every node: dynamic
power from (activity, DVFS), the temperature-leakage fixed point at the
node's actuators, one transient relaxation step, and the TEC electrical
power at the new temperatures. The two steppers here compute exactly
that — :class:`SequentialStepper` as N independent per-node calls (the
baseline an engine-per-node design would pay), :class:`BatchedStepper`
as a handful of NumPy-batched operations.

The batched kernel exploits the same structure as the PR 2/PR 5 solver
work: nodes sharing an actuator setting ``(fan_level, tec)`` share a
conductance matrix, so their steady states are one multi-RHS
:meth:`~repro.thermal.steady_state.SteadyStateSolver.solve_many` call
against a single cached LU, and their relaxation factors are one cached
:meth:`~repro.thermal.transient.PaperTransient.betas` lookup broadcast
over the rows. Nodes are grouped by
:func:`repro.thermal.keys.exact_actuator_key` — exact, not quantized,
because the fleet policy emits binary TEC activations, so within-class
vectors are *equal* and the shared-actuator precondition of
``solve_many`` holds bit-for-bit.

Equivalence contract (test-enforced to <= 1e-9 K, in practice exact):
every row the batched stepper produces is bit-identical to the
sequential stepper's output for that node. The batched leakage fixed
point reproduces :meth:`repro.thermal.leakage_loop.LeakageCoupledSolver.
solve` row by row — converged rows are frozen (masked out) while the
rest keep iterating, so each node sees exactly the iteration sequence
it would have seen alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.system import CMPSystem
from repro.exceptions import ConvergenceError
from repro.obs import telemetry as obs
from repro.thermal.keys import exact_actuator_key


@dataclass
class StepResult:
    """Per-node plant outputs of one fleet interval."""

    t_nodes_k: np.ndarray  # (n_nodes, n_thermal_nodes)
    p_dyn_w: np.ndarray  # (n_nodes, n_components)
    p_leak_w: np.ndarray  # (n_nodes, n_components)
    p_tec_w: np.ndarray  # (n_nodes,)
    t_steady_k: np.ndarray  # (n_nodes, n_thermal_nodes)


class SequentialStepper:
    """Reference per-node loop: one engine-style solve chain per node."""

    name = "sequential"

    def __init__(self, system: CMPSystem):
        self.system = system

    def advance(
        self,
        activity: np.ndarray,
        dvfs_levels: np.ndarray,
        fan_levels: np.ndarray,
        tec: np.ndarray,
        t_nodes_k: np.ndarray,
        dt_s: float,
    ) -> StepResult:
        sys = self.system
        comp = sys.nodes.component_slice
        n = t_nodes_k.shape[0]
        t_new = np.empty_like(t_nodes_k)
        t_steady = np.empty_like(t_nodes_k)
        p_dyn = np.empty((n, sys.nodes.n_components))
        p_leak = np.empty((n, sys.nodes.n_components))
        p_tec = np.empty(n)
        for i in range(n):
            fan = int(fan_levels[i])
            p_dyn[i] = sys.power.component_power.dynamic_power_w(
                activity[i], dvfs_levels[i]
            )
            t_steady[i], p_leak[i] = sys.plant_thermal.solve(
                p_dyn[i], fan, tec[i], t_guess_k=t_nodes_k[i][comp]
            )
            t_new[i] = sys.transient.step(
                t_nodes_k[i], t_steady[i], dt_s, fan, tec[i]
            )
            p_tec[i] = sys.tec_power_w(tec[i], t_new[i])
        return StepResult(t_new, p_dyn, p_leak, p_tec, t_steady)


class BatchedStepper:
    """Class-grouped batched kernel: one solve_many per actuation class."""

    name = "batched"

    def __init__(self, system: CMPSystem):
        self.system = system
        self.batched_steps = 0
        self.class_groups = 0

    def _solve_class(
        self,
        p_dyn: np.ndarray,
        fan: int,
        tec_row: np.ndarray,
        t_guess_comp: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Masked batched mirror of ``LeakageCoupledSolver.solve``.

        Rows converge independently: a converged row is frozen with the
        iteration's outputs while the remaining rows continue, so row
        ``b``'s (t_nodes, p_leak) match a solo solve of that node
        exactly — same leakage inputs, same RHS, same stopping pass.
        """
        plant = self.system.plant_thermal
        n_nodes_th = self.system.nodes.n_nodes
        b = p_dyn.shape[0]
        t_out = np.empty((b, n_nodes_th))
        p_leak_out = np.empty_like(p_dyn)
        t_comp = t_guess_comp.copy()
        prev_peak = np.full(b, np.inf)
        active = np.arange(b)
        for _ in range(1, plant.max_iterations + 1):
            p_leak = plant.leakage_fn(t_comp[active])
            t_nodes = plant.solver.solve_many(
                p_dyn[active] + p_leak, fan, tec_row
            )
            t_comp_a = t_nodes[:, self.system.nodes.component_slice]
            peak = t_comp_a.max(axis=1)
            done = np.abs(peak - prev_peak[active]) < plant.tolerance_k
            if np.any(done):
                idx = active[done]
                t_out[idx] = t_nodes[done]
                p_leak_out[idx] = p_leak[done]
            t_comp[active] = t_comp_a
            prev_peak[active] = peak
            active = active[~done]
            if active.size == 0:
                return t_out, p_leak_out
        raise ConvergenceError(
            "fleet temperature-leakage loop did not converge",
            iterations=plant.max_iterations,
            residual=float(np.abs(peak - prev_peak[active]).max()),
        )

    def advance(
        self,
        activity: np.ndarray,
        dvfs_levels: np.ndarray,
        fan_levels: np.ndarray,
        tec: np.ndarray,
        t_nodes_k: np.ndarray,
        dt_s: float,
    ) -> StepResult:
        sys = self.system
        comp = sys.nodes.component_slice
        n = t_nodes_k.shape[0]
        p_dyn = sys.power.component_power.dynamic_power_many(
            activity, dvfs_levels
        )
        t_new = np.empty_like(t_nodes_k)
        t_steady = np.empty_like(t_nodes_k)
        p_leak = np.empty_like(p_dyn)
        p_tec = np.empty(n)

        groups: dict[tuple, list[int]] = {}
        for i in range(n):
            key = exact_actuator_key(int(fan_levels[i]), tec[i])
            groups.setdefault(key, []).append(i)

        for key, members in groups.items():
            idx = np.asarray(members, dtype=np.intp)
            fan = int(fan_levels[idx[0]])
            tec_row = tec[idx[0]]
            t_s, p_l = self._solve_class(
                p_dyn[idx], fan, tec_row, t_nodes_k[idx][:, comp]
            )
            beta = sys.transient.betas(dt_s, fan, tec_row)
            t_n = (1.0 - beta) * t_s + beta * t_nodes_k[idx]
            t_steady[idx] = t_s
            p_leak[idx] = p_l
            t_new[idx] = t_n
            p_tec[idx] = sys.tec_power_many(tec_row, t_n)

        self.batched_steps += 1
        self.class_groups += len(groups)
        obs.incr("fleet.batched_steps")
        obs.incr("fleet.class_groups", len(groups))
        return StepResult(t_new, p_dyn, p_leak, p_tec, t_steady)


def make_stepper(kind: str, system: CMPSystem):
    """Instantiate a stepper by CLI name (``batched`` / ``sequential``)."""
    if kind == "batched":
        return BatchedStepper(system)
    if kind == "sequential":
        return SequentialStepper(system)
    raise ValueError(f"unknown stepper kind {kind!r}")
