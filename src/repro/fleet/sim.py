"""Fleet-scale datacenter simulation of S8-style TECfan servers.

Two execution tiers share this module:

* **Batched tier** (:class:`FleetSim`, :func:`run_fleet`) — the
  headline path. All per-node state lives in ``(n_nodes, ...)`` arrays;
  each control interval routes the arrival stream, advances every
  node's plant through a pluggable stepper (the class-grouped batched
  kernel or the reference per-node loop, :mod:`repro.fleet.stepper`),
  and applies the vectorized per-node TECfan policy
  (:mod:`repro.fleet.control`). Node groups shard across the PR 6
  persistent :class:`~repro.parallel.WorkerPool` using the
  :func:`~repro.parallel.plan_shards` plan, with journal resume and
  live-status heartbeats riding the existing ``parallel_map`` plumbing.
* **Engine tier** (:func:`run_fleet_engines`) — full-fidelity
  validation path: one complete :class:`~repro.core.engine.
  SimulationEngine` run per node under a static piece-rotation routing
  of the Wikipedia protocol. Its N=1 identity routing reproduces the
  Sec. V-E single-server experiment *bit for bit*
  (``checkpoint.result_digest``-equal, serial and pooled) — the anchor
  test that the fleet layer adds no physics of its own.

Fleet-level quiescent fast-forward: when every node is settled (no
actuator changes, identical routed arrivals, drained backlogs, and
``|T - T_steady|`` within tolerance) the loop jumps whole blocks of
intervals at once — bounded by the next demand-block change and the
next fan decision — accounting energy, served work, and latency
analytically. With the piecewise-constant diurnal stream this is what
makes 1000-node multi-day runs tractable.

Determinism: a fleet run is a pure function of (platform, config,
shard plan). Shards are independent sub-fleets — each routes its own
proportional share of the stream — so results are invariant to worker
count for a fixed shard count, and the merged
:class:`FleetResult` digest is reproducible across processes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.problem import EnergyProblem
from repro.exceptions import ConfigurationError
from repro.fleet.control import FleetPolicy
from repro.fleet.router import RouterView, make_router
from repro.fleet.stepper import make_stepper
from repro.fleet.traces import fleet_demand
from repro.obs import telemetry as obs
from repro.parallel import parallel_map, plan_shards, resolve_jobs

#: Latency histogram bucket edges [s]: an exact-zero bucket plus 50
#: log-spaced buckets from 1 ms to 100 s. Fixed edges make shard merges
#: a vector add and the p99 deterministic.
LATENCY_EDGES_S: np.ndarray = np.concatenate(
    ([0.0], np.logspace(-3.0, 2.0, 51))
)
LATENCY_EDGES_S.setflags(write=False)


@dataclass
class FleetConfig:
    """Knobs of a fleet run (see docs/FLEET.md for the tour)."""

    n_nodes: int = 64
    duration_s: int = 3600
    dt_s: float = 1.0
    fan_period_s: float = 10.0
    trace: str = "diurnal"
    seed: int = 2009
    scale: float = 1.0
    block_s: int = 60
    router: str = "round-robin"
    stepper: str = "batched"
    #: Hard stop at ``duration_s * drain_factor`` while backlogs drain.
    drain_factor: float = 1.5
    fast_forward: bool = True
    ff_quiet: int = 2
    ff_max: int = 512
    #: Settledness bound for holding temperatures across a jump [K].
    ff_temp_tol_k: float = 1e-4
    #: Accounting unit: a core at peak frequency serves this many
    #: requests per second (defines instructions-per-request).
    requests_per_core_s: float = 1000.0
    #: Shard count for the pool; ``None`` = one shard per worker. Pin it
    #: to compare runs across different ``--jobs`` values.
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("fleet needs at least one node")
        if self.duration_s < 1:
            raise ConfigurationError("fleet duration must be >= 1 s")
        if self.dt_s <= 0 or self.fan_period_s < self.dt_s:
            raise ConfigurationError("need dt > 0 and fan period >= dt")
        if self.requests_per_core_s <= 0:
            raise ConfigurationError("requests_per_core_s must be > 0")


@dataclass
class FleetShardResult:
    """One shard's (sub-fleet's) accumulated run outputs."""

    shard: int
    n_nodes: int
    intervals: int
    ff_intervals: int
    sim_time_s: float
    energy_j: float
    inst_served: float
    requests_routed: float
    latency_counts: np.ndarray
    peak_temp_c: float
    violation_node_intervals: int
    throttled_node_intervals: int
    node_intervals: int
    batched_steps: int
    class_groups: int
    final_t_nodes_k: np.ndarray
    final_backlog_inst: np.ndarray
    final_fan: np.ndarray
    final_tec: np.ndarray
    final_dvfs: np.ndarray

    def digest(self) -> str:
        """SHA-256 over the shard's numeric outcome (bit-exact oracle)."""
        h = hashlib.sha256()
        h.update(
            repr(
                (
                    self.shard,
                    self.n_nodes,
                    self.intervals,
                    self.ff_intervals,
                    self.sim_time_s,
                    self.energy_j,
                    self.inst_served,
                    self.requests_routed,
                    self.peak_temp_c,
                    self.violation_node_intervals,
                    self.throttled_node_intervals,
                )
            ).encode()
        )
        for arr in (
            self.latency_counts,
            self.final_t_nodes_k,
            self.final_backlog_inst,
            self.final_fan,
            self.final_tec,
            self.final_dvfs,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()


@dataclass
class FleetResult:
    """Merged fleet metrics across all shards."""

    n_nodes: int
    shards: int
    router: str
    stepper: str
    sim_time_s: float
    intervals: int
    ff_intervals: int
    energy_j: float
    avg_power_w: float
    requests_served: float
    requests_routed: float
    energy_per_request_j: float
    p99_latency_s: float
    peak_temp_c: float
    violation_rate: float
    throttle_rate: float
    batched_steps: int
    class_groups: int
    digest: str
    shard_digests: list = field(default_factory=list)
    latency_counts: np.ndarray | None = None

    def summary(self) -> dict:
        """Flat dict for the CLI / JSON output."""
        return {
            "n_nodes": self.n_nodes,
            "shards": self.shards,
            "router": self.router,
            "stepper": self.stepper,
            "sim_time_s": self.sim_time_s,
            "intervals": self.intervals,
            "ff_intervals": self.ff_intervals,
            "energy_j": self.energy_j,
            "avg_power_w": self.avg_power_w,
            "requests_served": self.requests_served,
            "requests_routed": self.requests_routed,
            "energy_per_request_j": self.energy_per_request_j,
            "p99_latency_s": self.p99_latency_s,
            "peak_temp_c": self.peak_temp_c,
            "violation_rate": self.violation_rate,
            "throttle_rate": self.throttle_rate,
            "batched_steps": self.batched_steps,
            "class_groups": self.class_groups,
            "digest": self.digest,
        }


def latency_quantile(counts: np.ndarray, q: float) -> float:
    """Quantile from fixed-edge bucket counts (upper-edge convention)."""
    total = counts.sum()
    if total <= 0:
        return 0.0
    cum = np.cumsum(counts)
    idx = int(np.searchsorted(cum, q * total, side="left"))
    idx = min(idx, len(LATENCY_EDGES_S) - 1)
    return float(LATENCY_EDGES_S[idx])


class FleetSim:
    """One shard's vectorized simulation loop.

    ``demand`` is the fleet-wide per-second utilization stream; the
    shard offers ``u * peak_ips * n_cores * n_nodes`` of it per second
    (its proportional share). Temperatures, actuators, and backlogs for
    all shard nodes live in arrays; the stepper choice decides whether
    the plant advance is the batched kernel or the per-node loop.
    """

    def __init__(
        self,
        platform,
        cfg: FleetConfig,
        n_nodes: int,
        demand: np.ndarray,
        shard: int = 0,
        status_path=None,
        status_every_s: float = 1.0,
    ):
        self.platform = platform
        self.cfg = cfg
        self.n_nodes = int(n_nodes)
        self.demand = demand
        self.shard = int(shard)
        sys = platform.system
        self.system = sys
        self.problem = EnergyProblem(t_threshold_c=platform.t_threshold_c)
        self.policy = FleetPolicy(
            system=sys,
            t_threshold_c=platform.t_threshold_c,
            peak_ips=platform.params.peak_ips,
        )
        self.router = make_router(cfg.router, self.n_nodes, dt_s=cfg.dt_s)
        self.stepper = make_stepper(cfg.stepper, sys)
        self.inst_per_request = (
            platform.params.peak_ips / cfg.requests_per_core_s
        )
        self._fan_power = np.array(
            [sys.fan.power_w(lv) for lv in range(1, sys.fan.n_levels + 1)]
        )
        self._status = None
        if status_path is not None:
            from repro.obs.live import FleetStatusReporter

            self._status = FleetStatusReporter(
                status_path,
                every_s=status_every_s,
                n_nodes=self.n_nodes,
                max_time_s=cfg.duration_s * cfg.drain_factor,
                t_threshold_c=platform.t_threshold_c,
                router=cfg.router,
                stepper=cfg.stepper,
            )

    # ------------------------------------------------------------------
    def _initial_temps(self) -> np.ndarray:
        """Idle-power warm start, one solve broadcast to every node."""
        sys = self.system
        n_cores = sys.n_cores
        act0 = np.zeros(n_cores)
        lv0 = np.full(n_cores, sys.dvfs.max_level, dtype=int)
        p0 = sys.power.component_power.dynamic_power_w(act0, lv0)
        tec0 = np.zeros(sys.n_tec_devices)
        t0, _ = sys.plant_thermal.solve(p0, sys.fan.n_levels, tec0)
        return np.tile(t0, (self.n_nodes, 1))

    def _next_demand_change(self, idx: int) -> int:
        """First second index > ``idx`` where the stream value changes."""
        d = self.demand
        if idx + 1 >= len(d):
            return len(d)
        changes = self._change_points
        j = int(np.searchsorted(changes, idx, side="right"))
        return int(changes[j]) if j < len(changes) else len(d)

    def run(self) -> FleetShardResult:
        cfg = self.cfg
        sys = self.system
        n = self.n_nodes
        n_cores = sys.n_cores
        comp = sys.nodes.component_slice
        dt = cfg.dt_s
        peak_ips = self.platform.params.peak_ips
        perf = self.policy  # capacity table lives on the policy
        fan_every = max(1, int(round(cfg.fan_period_s / dt)))
        max_time_s = cfg.duration_s * cfg.drain_factor
        thr_c = self.platform.t_threshold_c
        viol_c = thr_c + self.problem.violation_margin_c

        d = np.asarray(self.demand, dtype=float)
        self._change_points = np.flatnonzero(np.diff(d) != 0.0) + 1

        obs.incr("fleet.nodes", n)

        # Per-node state arrays.
        t_rows = self._initial_temps()
        backlog = np.zeros((n, n_cores))
        fan_arr = np.full(n, sys.fan.n_levels, dtype=int)
        tec_rows = np.zeros((n, sys.n_tec_devices))
        dvfs_rows = np.full((n, n_cores), sys.dvfs.max_level, dtype=int)

        # Accumulators.
        counts = np.zeros(len(LATENCY_EDGES_S), dtype=np.int64)
        energy_j = 0.0
        inst_served = 0.0
        requests_routed = 0.0
        intervals = 0
        ff_intervals = 0
        peak_run_c = float("-inf")
        viol_node_iv = 0
        throttle_node_iv = 0
        node_iv = 0

        prev_shares = None
        quiet = 0
        i = 0
        cap_per_level = self.policy._cap_table

        while True:
            time_s = i * dt
            arriving_done = time_s >= cfg.duration_s
            if arriving_done and bool(np.all(backlog < 1.0)):
                break
            if time_s >= max_time_s:
                break

            u = 0.0 if arriving_done else float(d[min(int(time_s), len(d) - 1)])
            offered_inst = u * peak_ips * n_cores * n * dt

            cap = cap_per_level[dvfs_rows]
            node_cap_ips = cap.sum(axis=1)

            t_comp_c = units.k_to_c(t_rows[:, comp])
            tile_peak = self.policy.tile_peaks_c(t_comp_c)
            node_peak = tile_peak.max(axis=1)

            view = RouterView(
                backlog_inst=backlog.sum(axis=1),
                peak_temp_c=node_peak,
                capacity_ips=node_cap_ips,
                t_threshold_c=thr_c,
            )
            if offered_inst > 0.0:
                shares = self.router.split(offered_inst, view)
            else:
                shares = np.zeros(n)
            requests_routed += offered_inst / self.inst_per_request
            obs.incr(
                "fleet.requests_routed",
                int(round(offered_inst / self.inst_per_request)),
            )

            arriving = shares[:, None] / n_cores
            work = backlog + arriving
            offered_rate = work / dt
            activity = np.clip(offered_rate / cap, 0.0, 1.0)

            res = self.stepper.advance(
                activity, dvfs_rows, fan_arr, tec_rows, t_rows, dt
            )
            t_rows = res.t_nodes_k

            served = np.minimum(work, cap * dt)
            backlog = work - served
            inst_served += float(served.sum())

            lat = (backlog / cap).max(axis=1)
            bucket = np.searchsorted(LATENCY_EDGES_S, lat, side="right") - 1
            np.add.at(counts, np.clip(bucket, 0, len(counts) - 1), 1)

            p_cores = res.p_dyn_w.sum(axis=1) + res.p_leak_w.sum(axis=1)
            p_node = p_cores + res.p_tec_w + self._fan_power[fan_arr - 1]
            p_total = float(p_node.sum())
            energy_j += p_total * dt

            t_comp_c = units.k_to_c(t_rows[:, comp])
            tile_peak = self.policy.tile_peaks_c(t_comp_c)
            node_peak = tile_peak.max(axis=1)
            peak_run_c = max(peak_run_c, float(node_peak.max()))
            n_viol = int(np.count_nonzero(node_peak > viol_c))
            viol_node_iv += n_viol
            node_iv += n

            tec_new = self.policy.decide_tec(tile_peak, tec_rows)
            dvfs_new, throttled = self.policy.decide_dvfs(
                offered_rate, tile_peak
            )
            n_throttled = int(np.count_nonzero(throttled.any(axis=1)))
            throttle_node_iv += n_throttled
            fan_boundary = (i + 1) % fan_every == 0
            fan_new = (
                self.policy.decide_fan(node_peak, fan_arr)
                if fan_boundary
                else fan_arr
            )

            unchanged = (
                np.array_equal(tec_new, tec_rows)
                and np.array_equal(dvfs_new, dvfs_rows)
                and np.array_equal(fan_new, fan_arr)
            )
            same_arrivals = prev_shares is not None and np.array_equal(
                shares, prev_shares
            )
            settled = (
                float(np.max(np.abs(t_rows - res.t_steady_k)))
                <= cfg.ff_temp_tol_k
            )
            drained = float(backlog.sum()) == 0.0
            quiet = (
                quiet + 1
                if (unchanged and same_arrivals and settled and drained)
                else 0
            )

            tec_rows = tec_new
            dvfs_rows = dvfs_new
            fan_arr = fan_new
            prev_shares = shares
            intervals += 1
            i += 1

            if self._status is not None:
                self._status.maybe_report(
                    time_s=i * dt,
                    energy_j=energy_j,
                    power_w=p_total,
                    peak_temp_c=peak_run_c,
                    last_peak_c=float(node_peak.max()),
                    backlog_inst=float(backlog.sum()),
                    p99_s=latency_quantile(counts, 0.99),
                    intervals=intervals,
                    ff_intervals=ff_intervals,
                    class_groups=getattr(self.stepper, "class_groups", 0),
                    node_peak_c=node_peak,
                    fan_levels=fan_arr,
                    tec_on=tec_rows.sum(axis=1),
                    utilization=u,
                )

            # ---- quiescent fast-forward --------------------------------
            if not (
                cfg.fast_forward
                and quiet >= cfg.ff_quiet
                and not arriving_done
            ):
                continue
            # Demand must stay on the block of the interval just
            # executed (index i-1); anything at or past the next change
            # point runs through the classic loop.
            last_idx = min(int((i - 1) * dt), len(d) - 1)
            next_change = self._next_demand_change(last_idx)
            k_demand = int((next_change - i * dt) // dt)
            k_fan = (fan_every - (i % fan_every)) % fan_every
            if k_fan == 0:
                k_fan = fan_every
            k_fan -= 1  # stop before the next fan-decision interval
            k_horizon = int((cfg.duration_s - i * dt) // dt)
            k = min(cfg.ff_max, k_demand, k_fan, k_horizon)
            if k <= 0:
                continue
            energy_j += p_total * dt * k
            inst_served += float(served.sum()) * k
            requests_routed += (offered_inst / self.inst_per_request) * k
            counts[0] += k * n
            viol_node_iv += n_viol * k
            throttle_node_iv += n_throttled * k
            node_iv += n * k
            ff_intervals += k
            i += k
            obs.incr("fleet.fast_forwarded_intervals", k)
            obs.incr(
                "fleet.requests_routed",
                int(round((offered_inst / self.inst_per_request) * k)),
            )

        if self._status is not None:
            self._status.final(
                time_s=i * dt,
                energy_j=energy_j,
                power_w=energy_j / (i * dt) if i > 0 else 0.0,
                peak_temp_c=peak_run_c,
                last_peak_c=peak_run_c,
                backlog_inst=float(backlog.sum()),
                p99_s=latency_quantile(counts, 0.99),
                intervals=intervals,
                ff_intervals=ff_intervals,
                class_groups=getattr(self.stepper, "class_groups", 0),
            )
        return FleetShardResult(
            shard=self.shard,
            n_nodes=n,
            intervals=intervals,
            ff_intervals=ff_intervals,
            sim_time_s=i * dt,
            energy_j=energy_j,
            inst_served=inst_served,
            requests_routed=requests_routed,
            latency_counts=counts,
            peak_temp_c=peak_run_c,
            violation_node_intervals=viol_node_iv,
            throttled_node_intervals=throttle_node_iv,
            node_intervals=node_iv,
            batched_steps=getattr(self.stepper, "batched_steps", 0),
            class_groups=getattr(self.stepper, "class_groups", 0),
            final_t_nodes_k=t_rows,
            final_backlog_inst=backlog,
            final_fan=fan_arr,
            final_tec=tec_rows,
            final_dvfs=dvfs_rows,
        )


# ----------------------------------------------------------------------
# Shard fan-out across the worker pool
# ----------------------------------------------------------------------
def _fleet_shard_task(common, payload):
    """Pool task: simulate one shard (module-level for spawn pickling)."""
    platform, cfg = common
    shard_idx, start, stop = payload
    demand = fleet_demand(
        cfg.trace,
        cfg.duration_s,
        seed=cfg.seed,
        scale=cfg.scale,
        block_s=cfg.block_s,
    )
    sim = FleetSim(platform, cfg, n_nodes=stop - start, demand=demand,
                   shard=shard_idx)
    return sim.run()


def merge_shard_results(
    cfg: FleetConfig, shard_results: list
) -> FleetResult:
    """Deterministic fold of shard outputs into fleet metrics."""
    counts = np.zeros(len(LATENCY_EDGES_S), dtype=np.int64)
    energy = inst = routed = 0.0
    intervals = ff = bsteps = groups = 0
    viol = thr = node_iv = 0
    peak = float("-inf")
    sim_time = 0.0
    digests = []
    for r in shard_results:
        counts += r.latency_counts
        energy += r.energy_j
        inst += r.inst_served
        routed += r.requests_routed
        intervals = max(intervals, r.intervals)
        ff += r.ff_intervals
        bsteps += r.batched_steps
        groups += r.class_groups
        viol += r.violation_node_intervals
        thr += r.throttled_node_intervals
        node_iv += r.node_intervals
        peak = max(peak, r.peak_temp_c)
        sim_time = max(sim_time, r.sim_time_s)
        digests.append(r.digest())
    h = hashlib.sha256()
    for dg in digests:
        h.update(dg.encode())
    # requests_served / energy_per_request are filled by run_fleet once
    # the platform's instructions-per-request constant is known.
    return FleetResult(
        n_nodes=sum(r.n_nodes for r in shard_results),
        shards=len(shard_results),
        router=cfg.router,
        stepper=cfg.stepper,
        sim_time_s=sim_time,
        intervals=intervals,
        ff_intervals=ff,
        energy_j=energy,
        avg_power_w=energy / sim_time if sim_time > 0 else 0.0,
        requests_served=0.0,  # filled below once inst/request known
        requests_routed=routed,
        energy_per_request_j=0.0,
        p99_latency_s=latency_quantile(counts, 0.99),
        peak_temp_c=peak,
        violation_rate=viol / node_iv if node_iv else 0.0,
        throttle_rate=thr / node_iv if node_iv else 0.0,
        batched_steps=bsteps,
        class_groups=groups,
        digest=h.hexdigest(),
        shard_digests=digests,
        latency_counts=counts,
    )


def run_fleet(
    cfg: FleetConfig,
    platform=None,
    jobs: int | None = None,
    pool=None,
    journal_path=None,
    status_path=None,
    status_every_s: float = 1.0,
) -> FleetResult:
    """Run a fleet simulation, optionally sharded across the pool.

    The shard plan is :func:`plan_shards(cfg.n_nodes, shards)
    <repro.parallel.plan_shards>` with ``shards`` from the config (or
    the resolved worker count). A single-shard serial run writes
    ``fleet``-kind live status directly; multi-shard runs report pool
    heartbeats through ``parallel_map``.
    """
    if platform is None:
        from repro.server.platform import build_server_system

        platform = build_server_system()
    n_jobs = resolve_jobs(jobs)
    n_shards = cfg.shards if cfg.shards is not None else n_jobs
    plan = plan_shards(cfg.n_nodes, max(1, n_shards))
    payloads = [(idx, a, b) for idx, (a, b) in enumerate(plan)]

    if len(payloads) == 1 and pool is None and n_jobs <= 1:
        demand = fleet_demand(
            cfg.trace,
            cfg.duration_s,
            seed=cfg.seed,
            scale=cfg.scale,
            block_s=cfg.block_s,
        )
        sim = FleetSim(
            platform,
            cfg,
            n_nodes=cfg.n_nodes,
            demand=demand,
            status_path=status_path,
            status_every_s=status_every_s,
        )
        shard_results = [sim.run()]
    else:
        journal = None
        if journal_path is not None:
            from repro.journal import TaskJournal

            journal = TaskJournal(
                journal_path,
                header={
                    "kind": "fleet",
                    "n_nodes": cfg.n_nodes,
                    "trace": cfg.trace,
                    "router": cfg.router,
                    "stepper": cfg.stepper,
                    "duration_s": cfg.duration_s,
                    "seed": cfg.seed,
                    "tasks": len(payloads),
                },
            )
        shard_results = parallel_map(
            _fleet_shard_task,
            payloads,
            jobs=jobs if pool is None else None,
            context=(platform, cfg),
            pool=pool,
            journal=journal,
            status_path=status_path,
            status_every_s=status_every_s,
            status_meta={
                "workload": f"fleet:{cfg.trace}",
                "policy": f"{cfg.router}/{cfg.stepper}",
            },
        )
    result = merge_shard_results(cfg, shard_results)
    inst_per_request = platform.params.peak_ips / cfg.requests_per_core_s
    total_inst = sum(r.inst_served for r in shard_results)
    result.requests_served = total_inst / inst_per_request
    result.energy_per_request_j = (
        result.energy_j / result.requests_served
        if result.requests_served > 0
        else 0.0
    )
    return result


# ----------------------------------------------------------------------
# Engine tier: one full SimulationEngine per node (validation path)
# ----------------------------------------------------------------------
def node_engine_workload(platform, node_index: int = 0, seed: int = 2009,
                         minutes: int = 10):
    """Static piece-rotation routing of the Wikipedia protocol.

    Node ``k`` serves the paper's four 10-minute pieces rotated by
    ``k`` across its cores; node 0 is byte-identical to
    :func:`repro.analysis.server_experiment.build_server_workload` (the
    identity routing the digest test anchors on).
    """
    from repro.fleet.traces import cached_wikipedia_trace
    from repro.server.trace_workload import ServerWorkload

    trace = cached_wikipedia_trace(seed=seed)
    pieces = [p[: minutes * 60] for p in trace.experiment_pieces()]
    n_cores = platform.system.n_cores
    rows = [pieces[(node_index + c) % len(pieces)] for c in range(n_cores)]
    return ServerWorkload(
        name="wikipedia",
        demand=np.stack(rows),
        peak_ips=platform.params.peak_ips,
    )


def _fleet_engine_task(common, payload):
    """Pool task: one node's full engine run (module-level for spawn)."""
    platform, minutes, seed, engine_kwargs = common
    node_index = payload
    from repro.analysis.server_experiment import _run
    from repro.core.tecfan import TECfanController

    workload = node_engine_workload(
        platform, node_index=node_index, seed=seed, minutes=minutes
    )
    return _run(
        platform, workload, TECfanController(), minutes, **engine_kwargs
    )


@dataclass
class FleetEngineResult:
    """Engine-tier outputs: one full SimulationResult per node."""

    results: list
    digests: list


def run_fleet_engines(
    platform=None,
    n_nodes: int = 1,
    minutes: int = 10,
    seed: int = 2009,
    jobs: int | None = None,
    pool=None,
    journal_path=None,
    status_path=None,
    **engine_kwargs,
) -> FleetEngineResult:
    """Full-fidelity fleet: N complete engine runs, pooled or serial.

    ``engine_kwargs`` forward to :class:`~repro.core.engine.
    EngineConfig` (e.g. ``interval_kernel=True``). Passing ``pool``
    forces the pooled path even for one node — that is what the
    serial-vs-pooled digest test uses to prove the cross-process
    round-trip is bit-exact.
    """
    if platform is None:
        from repro.server.platform import build_server_system

        platform = build_server_system()
    context = (platform, minutes, seed, engine_kwargs)
    payloads = list(range(n_nodes))
    if pool is not None:
        results = pool.map(_fleet_engine_task, payloads, context=context)
    else:
        journal = None
        if journal_path is not None:
            from repro.journal import TaskJournal

            journal = TaskJournal(
                journal_path,
                header={
                    "kind": "fleet-engines",
                    "n_nodes": n_nodes,
                    "minutes": minutes,
                    "seed": seed,
                },
            )
        results = parallel_map(
            _fleet_engine_task,
            payloads,
            jobs=jobs,
            context=context,
            journal=journal,
            status_path=status_path,
            status_meta={"workload": "fleet-engines", "policy": "TECfan"},
        )
    from repro.checkpoint import result_digest

    digests = [result_digest(r) for r in results]
    return FleetEngineResult(results=results, digests=digests)
