"""Cached arrival-stream sources for fleet simulations.

A fleet run asks for the *same* demand series from many places: every
shard task rebuilds its slice of the stream, the engine tier rebuilds
the Wikipedia protocol workload per node, and a pooled run repeats all
of that once per worker process. The Wikipedia synthesizer in
particular runs two sequential-Python AR(1) loops over ``days * 86400``
samples — several seconds for the 7-day trace — so re-parsing per task
would dominate small fleets.

This module memoizes trace construction behind a process-local cache
keyed by the full parameter tuple. The cache rides the PR 6 worker-pool
lifecycle for free: workers are persistent, module state survives
across tasks, so the first task on each worker parses once and every
later task is a hit (counted by ``server.trace_cache_hits``). Cached
arrays are returned read-only and must not be mutated by callers.

Two stream kinds are provided:

* ``wikipedia`` — the paper's S8 trace (:func:`repro.server.wikipedia.
  generate_trace`), optionally tiled to cover longer horizons.
* ``diurnal`` — a fully vectorized synthetic day/night shape with a
  weekly modulation and a deterministic block-noise term. Unlike the
  Wikipedia AR(1) loops it costs microseconds for a 24 h series, and
  demand is constant within ``block_s``-long blocks, which is what lets
  the fleet fast-forward across quiescent stretches.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkloadError
from repro.obs import telemetry as obs
from repro.server.wikipedia import WikipediaTrace, generate_trace

#: Stream kinds accepted by :func:`fleet_demand`.
TRACE_KINDS = ("diurnal", "wikipedia")

#: Default block length of the synthetic diurnal stream [s]. Demand is
#: piecewise-constant at this resolution.
DIURNAL_BLOCK_S = 60

_CACHE: dict[tuple, np.ndarray] = {}
_WIKI_CACHE: dict[tuple, WikipediaTrace] = {}


def clear_trace_cache() -> None:
    """Drop every memoized series (tests / memory pressure)."""
    _CACHE.clear()
    _WIKI_CACHE.clear()


def trace_cache_size() -> int:
    """Number of memoized entries across both caches."""
    return len(_CACHE) + len(_WIKI_CACHE)


def cached_wikipedia_trace(seed: int = 2009, days: int = 7) -> WikipediaTrace:
    """Memoized :func:`repro.server.wikipedia.generate_trace`.

    The returned trace's ``utilization`` array is read-only; hits
    increment ``server.trace_cache_hits``.
    """
    key = ("wikipedia-trace", int(seed), int(days))
    hit = _WIKI_CACHE.get(key)
    if hit is not None:
        obs.incr("server.trace_cache_hits")
        return hit
    trace = generate_trace(seed=int(seed), days=int(days))
    trace.utilization.setflags(write=False)
    _WIKI_CACHE[key] = trace
    return trace


def diurnal_utilization(
    duration_s: int,
    seed: int = 2009,
    mean_utilization: float = 0.486,
    diurnal_amplitude: float = 0.33,
    weekly_amplitude: float = 0.10,
    noise_sigma: float = 0.05,
    block_s: int = DIURNAL_BLOCK_S,
) -> np.ndarray:
    """Vectorized synthetic diurnal utilization series, per-second.

    The shape mirrors the Wikipedia synthesizer's deterministic part —
    a daily sinusoid peaking mid-afternoon plus a weekly modulation —
    with i.i.d. Gaussian block noise instead of the sequential AR(1)
    loops, so a 24 h (or 7-day) series is a handful of numpy
    expressions. Demand is constant within each ``block_s`` block and
    the series is clipped to [0, 1].
    """
    duration_s = int(duration_s)
    block_s = int(block_s)
    if duration_s <= 0:
        raise WorkloadError("diurnal duration must be > 0 seconds")
    if block_s <= 0:
        raise WorkloadError("diurnal block length must be > 0 seconds")
    n_blocks = -(-duration_s // block_s)
    t = (np.arange(n_blocks) * block_s).astype(float)
    day = t / 86400.0
    week = day / 7.0
    shape = (
        1.0
        + diurnal_amplitude * np.sin(2.0 * np.pi * (day - 0.375))
        + weekly_amplitude * np.sin(2.0 * np.pi * (week - 0.25))
    )
    rng = np.random.default_rng(int(seed))
    shape = shape + noise_sigma * rng.standard_normal(n_blocks)
    shape = np.clip(shape, 0.0, None)
    mean = shape.mean()
    if mean > 0:
        shape = shape * (float(mean_utilization) / mean)
    series = np.clip(np.repeat(shape, block_s)[:duration_s], 0.0, 1.0)
    return series


def fleet_demand(
    kind: str,
    duration_s: int,
    seed: int = 2009,
    scale: float = 1.0,
    block_s: int = DIURNAL_BLOCK_S,
) -> np.ndarray:
    """Per-second aggregate utilization stream in [0, 1], memoized.

    ``kind`` selects the source (:data:`TRACE_KINDS`); ``scale``
    multiplies the series before the final clip (the FLEET.md trace-
    scaling study drives this from x1.5 through x100). The Wikipedia
    source tiles its 7-day series when ``duration_s`` exceeds it.
    Returns a read-only array; cache hits increment
    ``server.trace_cache_hits``.
    """
    kind = str(kind)
    if kind not in TRACE_KINDS:
        raise WorkloadError(
            f"unknown fleet trace kind {kind!r} (expected one of {TRACE_KINDS})"
        )
    key = (kind, int(duration_s), int(seed), float(scale), int(block_s))
    hit = _CACHE.get(key)
    if hit is not None:
        obs.incr("server.trace_cache_hits")
        return hit
    duration_s = int(duration_s)
    if duration_s <= 0:
        raise WorkloadError("fleet demand duration must be > 0 seconds")
    if kind == "wikipedia":
        trace = cached_wikipedia_trace(seed=seed)
        base = trace.utilization
        reps = -(-duration_s // len(base))
        series = np.tile(base, reps)[:duration_s]
    else:
        series = diurnal_utilization(
            duration_s, seed=seed, block_s=block_s
        )
    series = np.clip(series * float(scale), 0.0, 1.0)
    series.setflags(write=False)
    _CACHE[key] = series
    return series
