"""Fleet-scale server simulation (see docs/FLEET.md).

Public surface: :class:`FleetConfig`/:func:`run_fleet` for the batched
N-node tier, :func:`run_fleet_engines` for the full-engine validation
tier, routers and steppers for composition, and the memoized trace
sources shared with the server analysis layer.
"""

from repro.fleet.control import FleetPolicy
from repro.fleet.router import ROUTER_POLICIES, Router, RouterView, make_router
from repro.fleet.sim import (
    FleetConfig,
    FleetEngineResult,
    FleetResult,
    FleetShardResult,
    FleetSim,
    latency_quantile,
    merge_shard_results,
    node_engine_workload,
    run_fleet,
    run_fleet_engines,
)
from repro.fleet.stepper import (
    BatchedStepper,
    SequentialStepper,
    StepResult,
    make_stepper,
)
from repro.fleet.traces import (
    TRACE_KINDS,
    cached_wikipedia_trace,
    clear_trace_cache,
    diurnal_utilization,
    fleet_demand,
    trace_cache_size,
)

__all__ = [
    "BatchedStepper",
    "FleetConfig",
    "FleetEngineResult",
    "FleetPolicy",
    "FleetResult",
    "FleetShardResult",
    "FleetSim",
    "ROUTER_POLICIES",
    "Router",
    "RouterView",
    "SequentialStepper",
    "StepResult",
    "TRACE_KINDS",
    "cached_wikipedia_trace",
    "clear_trace_cache",
    "diurnal_utilization",
    "fleet_demand",
    "latency_quantile",
    "make_router",
    "make_stepper",
    "merge_shard_results",
    "node_engine_workload",
    "run_fleet",
    "run_fleet_engines",
    "trace_cache_size",
]
