"""Per-node TECfan control for fleet runs, vectorized across nodes.

The engine-tier fleet runs the full :class:`TECfanController` per node.
The batched tier needs decisions that are cheap at 1000 nodes and —
crucially for the stepper-equivalence contract — *identical* whether
computed one node at a time or as a batch. Every rule here is an
elementwise numpy expression over ``(n_nodes, ...)`` state arrays, so a
single-node decision is literally a 1-row batch:

* **TEC** (every interval): per-device on/off hysteresis on the
  device's tile peak temperature — engage above ``tec_on_c``, release
  below ``tec_off_c``, hold in between. Binary activations keep the
  actuation-class count small (the batched stepper groups nodes by
  exact actuator key) and match the paper's switched drive mode.
* **DVFS** (every interval): lowest level whose SPECjbb capacity covers
  the offered per-core load with ``dvfs_headroom`` margin
  (``searchsorted`` on the monotone capacity-per-level table), clamped
  down to ``throttle_level`` while the tile is over the thermal
  threshold. The clamp mask is reported so the fleet can attribute p99
  latency to thermal throttling.
* **Fan** (every fan period): hysteresis band on the node peak — speed
  up (level - 1; level 1 is fastest) when the peak crosses
  ``fan_up_margin_c`` below threshold, slow down when it falls
  ``fan_down_margin_c`` below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.system import CMPSystem
from repro.exceptions import ConfigurationError


@dataclass
class FleetPolicy:
    """Vectorized per-node TEC + DVFS + fan policy.

    Margins are in degC relative to the problem's thermal threshold.
    """

    system: CMPSystem
    t_threshold_c: float
    peak_ips: float
    tec_on_margin_c: float = 3.0
    tec_off_margin_c: float = 8.0
    fan_up_margin_c: float = 2.0
    fan_down_margin_c: float = 12.0
    dvfs_headroom: float = 1.1
    throttle_level: int = 1
    _cap_table: np.ndarray = field(default=None, repr=False)
    _tile_masks: list = field(default=None, repr=False)

    def __post_init__(self) -> None:
        sys = self.system
        if not 0 <= self.throttle_level <= sys.dvfs.max_level:
            raise ConfigurationError("throttle level outside DVFS table")
        if self.tec_off_margin_c <= self.tec_on_margin_c:
            raise ConfigurationError(
                "TEC hysteresis band requires off margin > on margin"
            )
        if self.fan_down_margin_c <= self.fan_up_margin_c:
            raise ConfigurationError(
                "fan hysteresis band requires down margin > up margin"
            )
        from repro.server.specjbb import DEFAULT_PERF_MODEL

        levels = np.arange(sys.dvfs.n_levels)
        freqs = sys.dvfs.frequency_ghz(levels)
        self._cap_table = DEFAULT_PERF_MODEL.capacity_ips(
            freqs, self.peak_ips
        )
        if np.any(np.diff(self._cap_table) <= 0):
            raise ConfigurationError(
                "capacity-per-level table must be strictly increasing"
            )
        tile_of = sys.chip.tile_of()
        self._tile_masks = [
            np.flatnonzero(tile_of == t) for t in range(sys.chip.n_tiles)
        ]

    # ------------------------------------------------------------------
    def tile_peaks_c(self, t_comp_c: np.ndarray) -> np.ndarray:
        """Per-tile peak temperature, ``(n_nodes, n_tiles)`` [degC]."""
        return np.stack(
            [t_comp_c[:, m].max(axis=1) for m in self._tile_masks], axis=1
        )

    def decide_tec(
        self, tile_peak_c: np.ndarray, tec_prev: np.ndarray
    ) -> np.ndarray:
        """Hysteresis on/off per device, ``(n_nodes, n_devices)``."""
        t_dev = tile_peak_c[:, self.system.tec.device_tile]
        on_c = self.t_threshold_c - self.tec_on_margin_c
        off_c = self.t_threshold_c - self.tec_off_margin_c
        return np.where(
            t_dev > on_c, 1.0, np.where(t_dev < off_c, 0.0, tec_prev)
        )

    def decide_dvfs(
        self, offered_core_ips: np.ndarray, tile_peak_c: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-core levels and the thermal-throttle mask.

        ``offered_core_ips`` is the per-core offered service rate
        (arrivals + backlog over the interval); both arrays are
        ``(n_nodes, n_cores)``.
        """
        target = offered_core_ips * self.dvfs_headroom
        levels = np.searchsorted(self._cap_table, target, side="left")
        levels = np.minimum(levels, self.system.dvfs.max_level)
        hot = tile_peak_c > self.t_threshold_c
        throttled = hot & (levels > self.throttle_level)
        levels = np.where(hot, np.minimum(levels, self.throttle_level), levels)
        return levels.astype(int), throttled

    def decide_fan(
        self, node_peak_c: np.ndarray, fan_prev: np.ndarray
    ) -> np.ndarray:
        """Hysteresis band fan step, ``(n_nodes,)`` (level 1 = fastest)."""
        speed_up = node_peak_c > self.t_threshold_c - self.fan_up_margin_c
        slow_down = node_peak_c < self.t_threshold_c - self.fan_down_margin_c
        fan = np.where(
            speed_up,
            np.maximum(fan_prev - 1, 1),
            np.where(
                slow_down,
                np.minimum(fan_prev + 1, self.system.fan.n_levels),
                fan_prev,
            ),
        )
        return fan.astype(int)
