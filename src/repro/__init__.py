"""repro — a full reproduction of *TECfan: Coordinating Thermoelectric
Cooler, Fan, and DVFS for CMP Energy Optimization* (IPDPS 2016).

Subpackages
-----------
- :mod:`repro.floorplan` — chip geometry (SCC-style tile arrays)
- :mod:`repro.thermal` — HotSpot-equivalent RC thermal network
- :mod:`repro.cooling` — fan and thin-film TEC actuator models
- :mod:`repro.power` — DVFS, dynamic and leakage power models
- :mod:`repro.perf` — IPS models and calibrated SPLASH-2 workloads
- :mod:`repro.server` — the 4-core Wikipedia-trace server setup (Sec. V-E)
- :mod:`repro.core` — the TECfan heuristic, baselines, Oracle/OFTEC,
  simulation engine and metrics
- :mod:`repro.analysis` — Table I / Figs. 4-7 regeneration helpers

Quickstart
----------
>>> from repro.core import build_system, EnergyProblem, SimulationEngine
>>> from repro.core import TECfanController, EngineConfig, ActuatorState
>>> from repro.perf import splash2_workload
>>> from repro.perf.workload import WorkloadRun
>>> system = build_system()
>>> wl = splash2_workload("lu", 16, system.chip)
>>> engine = SimulationEngine(system, EnergyProblem(t_threshold_c=85.0))
>>> run = WorkloadRun(wl, system.chip, ref_freq_ghz=2.0)
>>> result = engine.run(run, TECfanController())
"""

__version__ = "1.0.0"

from repro.exceptions import (
    ConfigurationError,
    ControlError,
    ConvergenceError,
    FloorplanError,
    ReproError,
    ThermalModelError,
    WorkloadError,
)

__all__ = [
    "__version__",
    "ConfigurationError",
    "ControlError",
    "ConvergenceError",
    "FloorplanError",
    "ReproError",
    "ThermalModelError",
    "WorkloadError",
]
