"""The parallel fan-out must be a drop-in replacement for serial loops.

Worker functions live at module level: the spawn start method pickles
them by qualified name and re-imports this module in each child (the
same constraint the library's own ``_fan_sweep_task`` obeys).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis.experiments import run_policy_suite
from repro.core.baselines import FanOnlyController, FanTECController
from repro.core.engine import EngineConfig, SimulationEngine, run_fan_sweep
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.exceptions import ParallelExecutionError
from repro.obs import telemetry as obs
from repro.parallel import TaskFailure, parallel_map, resolve_jobs
from repro.perf import splash2_workload
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun


def _square(x):
    return x * x


def _fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd payload {x}")
    return x


# ----------------------------------------------------------------------
# parallel_map semantics
# ----------------------------------------------------------------------
def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1
    with pytest.raises(ParallelExecutionError):
        resolve_jobs(-2)


def test_resolve_jobs_env_override(monkeypatch):
    monkeypatch.setenv("TECFAN_JOBS", "5")
    assert resolve_jobs(0) == 5
    # Explicit counts beat the environment.
    assert resolve_jobs(2) == 2


def test_resolve_jobs_auto_honors_cpu_affinity(monkeypatch):
    # A cgroup-limited container may report 64 cpu_count() cores but
    # only 3 in the affinity mask — auto must size the pool to the mask.
    monkeypatch.delenv("TECFAN_JOBS", raising=False)
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 2, 5})
    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    assert resolve_jobs(0) == 3
    # Without the syscall (non-Linux), fall back to cpu_count().
    monkeypatch.delattr(os, "sched_getaffinity")
    assert resolve_jobs(0) == 64


def test_serial_path_runs_in_process():
    calls = []

    def local_fn(x):  # closures only work serially — by design
        calls.append(x)
        return -x

    assert parallel_map(local_fn, [1, 2, 3], jobs=None) == [-1, -2, -3]
    assert calls == [1, 2, 3]


def test_parallel_results_ordered_and_equal_to_serial():
    payloads = list(range(20))
    serial = parallel_map(_square, payloads, jobs=1)
    parallel = parallel_map(_square, payloads, jobs=4)
    assert parallel == serial == [x * x for x in payloads]


def test_single_payload_short_circuits():
    # One task never pays pool start-up, whatever jobs says.
    assert parallel_map(_square, [7], jobs=8) == [49]


def test_worker_failure_surfaces_clean_exception():
    with pytest.raises(ParallelExecutionError) as err:
        parallel_map(_fail_on_odd, [0, 1, 2, 3], jobs=2)
    failed = [index for index, _ in err.value.failures]
    assert failed == [1, 3]
    assert "odd payload 1" in str(err.value)
    assert "odd payload 3" in str(err.value)


def test_serial_failure_raises_original_exception():
    with pytest.raises(ValueError):
        parallel_map(_fail_on_odd, [0, 1], jobs=1)


# ----------------------------------------------------------------------
# Resilience: timeouts, retries, partial results
# ----------------------------------------------------------------------
def _hang_or_square(payload):
    x, hang_s = payload
    if hang_s:
        time.sleep(hang_s)
    return x * x


def _flaky(payload):
    """Fails once per sentinel path, succeeds on the retry.

    The sentinel file is how the failure state crosses the process
    boundary: attempt one creates it and raises, attempt two (a fresh
    worker) sees it and succeeds.
    """
    x, sentinel = payload
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as fh:
            fh.write("attempted")
        raise RuntimeError(f"transient failure for {x}")
    return x * x


def test_hung_worker_killed_at_deadline_collect():
    from repro.obs import Telemetry, telemetry_session

    payloads = [(0, 0.0), (1, 600.0), (2, 0.0)]
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(
            _hang_or_square,
            payloads,
            jobs=2,
            timeout_s=10.0,
            on_error="collect",
        )
    assert out[0] == 0 and out[2] == 4
    failure = out[1]
    assert isinstance(failure, TaskFailure)
    assert not failure  # falsy, filterable
    assert failure.kind == "timeout"
    assert failure.index == 1 and failure.attempts == 1
    counters = tel.metrics.snapshot()["counters"]
    assert counters["parallel.timeouts"] == 1


def test_hung_worker_raises_by_default():
    with pytest.raises(ParallelExecutionError) as err:
        parallel_map(
            _hang_or_square,
            [(0, 0.0), (1, 600.0)],
            jobs=2,
            timeout_s=10.0,
        )
    failed = [index for index, _ in err.value.failures]
    assert failed == [1]
    assert "timeout" in str(err.value)


def test_transient_failure_retried_to_success(tmp_path):
    from repro.obs import Telemetry, telemetry_session

    payloads = [
        (3, str(tmp_path / "a.sentinel")),
        (4, str(tmp_path / "b.sentinel")),
    ]
    tel = Telemetry()
    with telemetry_session(tel):
        out = parallel_map(_flaky, payloads, jobs=2, retries=1)
    assert out == [9, 16]
    counters = tel.metrics.snapshot()["counters"]
    assert counters["parallel.retries"] == 2


def test_retries_exhausted_collects_traceback():
    out = parallel_map(
        _fail_on_odd, [0, 1, 2], jobs=2, retries=1, on_error="collect",
        backoff_s=0.01,
    )
    assert out[0] == 0 and out[2] == 2
    assert isinstance(out[1], TaskFailure)
    assert out[1].kind == "error"
    assert out[1].attempts == 2
    assert "odd payload 1" in out[1].detail
    # Surviving results are directly usable after filtering.
    assert [r for r in out if r or r == 0] == [0, 2]


def test_serial_retry_and_collect(tmp_path):
    payloads = [(5, str(tmp_path / "serial.sentinel"))]
    assert parallel_map(_flaky, payloads, jobs=1, retries=1) == [25]
    out = parallel_map(
        _fail_on_odd, [1], jobs=1, on_error="collect"
    )
    assert isinstance(out[0], TaskFailure)


def test_env_defaults_for_resilience(monkeypatch, tmp_path):
    monkeypatch.setenv("TECFAN_JOB_RETRIES", "1")
    payloads = [
        (6, str(tmp_path / "env-a.sentinel")),
        (7, str(tmp_path / "env-b.sentinel")),
    ]
    assert parallel_map(_flaky, payloads, jobs=2) == [36, 49]


def test_resilient_path_matches_fast_path_results():
    payloads = list(range(8))
    fast = parallel_map(_square, payloads, jobs=4)
    resilient = parallel_map(
        _square, payloads, jobs=4, timeout_s=120.0, retries=2
    )
    assert resilient == fast


# ----------------------------------------------------------------------
# Driver integration
# ----------------------------------------------------------------------
def _small_setup():
    system = build_system(rows=2, cols=2)
    wl = splash2_workload("lu", 4, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=70.0),
        EngineConfig(max_time_s=0.02),
    )
    return system, wl, engine


def test_fan_sweep_parallel_matches_serial():
    system, wl, engine = _small_setup()

    def make_run():
        return WorkloadRun(wl, system.chip, REF_FREQ_GHZ)

    chosen_s, sweep_s = run_fan_sweep(engine, make_run, FanTECController())
    chosen_p, sweep_p = run_fan_sweep(
        engine, make_run, FanTECController(), jobs=2
    )
    assert sweep_p == sweep_s
    assert chosen_p.metrics == chosen_s.metrics


def test_policy_suite_parallel_matches_serial():
    system = build_system(rows=2, cols=2)
    policies = [FanOnlyController(), FanTECController()]
    base_s, out_s = run_policy_suite(
        system, "lu", 4, policies=policies, jobs=None
    )
    base_p, out_p = run_policy_suite(
        system, "lu", 4, policies=policies, jobs=2
    )
    assert list(out_p) == list(out_s)
    for name in out_s:
        assert out_p[name].chosen.metrics == out_s[name].chosen.metrics
        assert out_p[name].sweep == out_s[name].sweep


def test_solver_pickles_without_lu_cache():
    import pickle

    system, _, _ = _small_setup()
    system.solver.solve(
        np.ones(system.nodes.n_components), 1,
        np.zeros(system.n_tec_devices),
    )
    assert len(system.solver._lu_cache) == 1
    clone = pickle.loads(pickle.dumps(system.solver))
    assert len(clone._lu_cache) == 0  # SuperLU objects cannot ship
    state = ActuatorState.initial(
        system.n_tec_devices, system.n_cores, system.dvfs.max_level, 1
    )
    p = np.ones(system.nodes.n_components)
    a = system.solver.solve(p, state.fan_level, state.tec)
    b = clone.solve(p, state.fan_level, state.tec)
    assert np.array_equal(a, b)
