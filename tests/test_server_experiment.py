"""Server experiment flow (Sec. V-E) at reduced scale."""

import numpy as np
import pytest

from repro.analysis.server_experiment import (
    _run,
    build_server_workload,
)
from repro.core.oracle import make_oftec, make_oracle
from repro.core.tecfan import TECfanController
from repro.server.platform import build_server_system


@pytest.fixture(scope="module")
def platform():
    return build_server_system()


@pytest.fixture(scope="module")
def workload(platform):
    return build_server_workload(platform, minutes=1)


def test_workload_protocol(platform, workload):
    assert workload.n_cores == 4
    assert workload.duration_s == 60.0
    assert 0.3 < workload.demand.mean() < 0.7


@pytest.mark.slow
def test_oftec_runs_with_dynamic_fan(platform, workload):
    res = _run(platform, workload, make_oftec(), minutes=1)
    tr = res.trace
    # OFTEC never touches DVFS...
    assert np.all(
        tr.mean_dvfs_level == platform.system.dvfs.max_level
    )
    # ...and at ~50% utilization it slows the fan well below level 1.
    assert tr.fan_level[-1] > 1
    assert res.metrics.violation_rate <= 0.05


@pytest.mark.slow
def test_tecfan_lowers_dvfs_on_open_workload(platform, workload):
    res = _run(platform, workload, TECfanController(), minutes=1)
    # The demand-limited workload lets TECfan sit far below max DVFS —
    # the Sec. V-E mechanism (performance-neutral decreases).
    assert res.trace.mean_dvfs_level.mean() < 2.0
    # Without losing throughput: all offered work served on time.
    assert res.metrics.execution_time_s <= 60.0 + 1.5


@pytest.mark.slow
def test_oracle_p_floor_from_reference_trace(platform, workload):
    ref = _run(platform, workload, TECfanController(), minutes=1)
    floor = ref.trace.ips_chip
    res = _run(platform, workload, make_oracle(perf_floor=floor), minutes=1)
    # Performance-matched: same completion behaviour as the reference.
    assert res.metrics.execution_time_s <= (
        ref.metrics.execution_time_s + 1.5
    )
    assert res.metrics.violation_rate <= 0.05
