"""Reconstructed datasheet tables."""

import pytest

from repro.cooling.datasheets import (
    DEFAULT_TEC_DEVICE,
    DYNATRON_R16_LEVELS,
    TECS_PER_TILE,
)


def test_fan_table_anchors():
    """The two published anchor points: 14.4 W at level 1, ~3.8 W at
    level 2 (paper Sec. V-B / Fig. 4(c))."""
    assert DYNATRON_R16_LEVELS[0].power_w == pytest.approx(14.4)
    assert DYNATRON_R16_LEVELS[1].power_w == pytest.approx(3.83, abs=0.05)


def test_fan_levels_numbered_from_one():
    assert [lv.level for lv in DYNATRON_R16_LEVELS] == list(
        range(1, len(DYNATRON_R16_LEVELS) + 1)
    )


def test_airflow_proportional_to_rpm():
    base = DYNATRON_R16_LEVELS[0]
    for lv in DYNATRON_R16_LEVELS:
        assert lv.airflow_cfm / base.airflow_cfm == pytest.approx(
            lv.rpm / base.rpm
        )


def test_tec_device_footprint():
    """Sec. IV-C: 0.5 mm x 0.5 mm film devices, 3 x 3 per tile."""
    assert DEFAULT_TEC_DEVICE.size_mm == pytest.approx(0.5)
    assert DEFAULT_TEC_DEVICE.area_mm2 == pytest.approx(0.25)
    assert TECS_PER_TILE == 9


def test_tec_pumping_exceeds_joule_cost():
    """The device must be a net cooler at operating temperatures:
    a I T_c > I^2 r by a comfortable margin."""
    d = DEFAULT_TEC_DEVICE
    pump = d.seebeck_v_per_k * d.current_a * 360.0
    joule = d.current_a**2 * d.resistance_ohm
    assert pump > 3 * joule


def test_paper_current_limit():
    """6 A conservative drive; >8 A 'dangerous' (Sec. III-B)."""
    assert DEFAULT_TEC_DEVICE.current_a < 8.0
