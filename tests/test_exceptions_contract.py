"""The public error contract: entry points raise ReproError subclasses.

Callers embed this library behind a single ``except ReproError``; a bare
``ValueError`` or ``KeyError`` escaping an entry point for a *user input*
problem is an API break. These tests drive representative bad inputs
through the real entry points (not the internal validators) and assert
both the subclass and the carried diagnostic payload.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

import repro.exceptions as exc_mod
from repro.core.engine import EngineConfig
from repro.core.state import ActuatorState
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    FaultInjectionError,
    ParallelExecutionError,
    ReproError,
    ThermalModelError,
    WorkloadError,
)
from repro.faults import FaultScheduler
from repro.parallel import parallel_map, resolve_jobs
from repro.perf import splash2_workload
from repro.thermal.sensors import TemperatureSensorBank


def test_every_package_exception_derives_from_repro_error():
    classes = [
        obj
        for _, obj in inspect.getmembers(exc_mod, inspect.isclass)
        if issubclass(obj, Exception)
    ]
    assert ReproError in classes
    for cls in classes:
        assert issubclass(cls, ReproError), cls.__name__


def test_convergence_error_carries_diagnostics():
    err = ConvergenceError("no fixed point", iterations=50, residual=1.25)
    assert isinstance(err, ThermalModelError)  # catchable as model error
    assert err.iterations == 50
    assert err.residual == 1.25


def test_parallel_error_carries_per_task_failures():
    err = ParallelExecutionError([(2, "trace-a"), (5, "trace-b")])
    assert [i for i, _ in err.failures] == [2, 5]
    assert "task 2" in str(err) and "trace-b" in str(err)


# ----------------------------------------------------------------------
# Entry points: bad user input -> ReproError subclass, nothing else
# ----------------------------------------------------------------------
def test_bad_fan_level_raises_configuration_error(system2):
    with pytest.raises(ConfigurationError):
        system2.fan.power_w(0)
    with pytest.raises(ConfigurationError):
        system2.fan.power_w(system2.fan.n_levels + 1)


def test_out_of_range_dvfs_raises_configuration_error(system2):
    bad = np.full(system2.n_cores, system2.dvfs.n_levels, dtype=int)
    with pytest.raises(ConfigurationError):
        system2.dvfs.frequency_ghz(bad)


def test_actuator_state_validation():
    with pytest.raises(ConfigurationError):
        ActuatorState(
            tec=np.array([0.0, 2.0]),  # activation outside [0, 1]
            dvfs=np.zeros(2, dtype=int),
            fan_level=1,
        )


def test_unknown_workload_raises_workload_error(chip2):
    with pytest.raises(WorkloadError):
        splash2_workload("crysis", 16, chip2)
    with pytest.raises(WorkloadError):
        splash2_workload("cholesky", 7, chip2)  # no Table I row


def test_engine_config_validation_is_repro_error():
    with pytest.raises(ConfigurationError):
        EngineConfig(dt_lower_s=-1.0)
    with pytest.raises(ConfigurationError):
        EngineConfig(dt_lower_s=1.0, fan_period_s=0.5)


def test_malformed_fault_script_is_fault_injection_error():
    # The CLI's --faults path funnels arbitrary JSON through from_spec;
    # every malformed shape must come out as FaultInjectionError.
    for bad in (
        "not a list",
        [{"no_kind": True}],
        [{"kind": "nonsense"}],
        [{"kind": "tec_stuck", "mode": "sideways"}],
        [{"kind": "fan_stuck", "unexpected_param": 1}],
    ):
        with pytest.raises(FaultInjectionError):
            FaultScheduler.from_spec(bad)


def test_sensor_bank_validation_is_repro_error():
    with pytest.raises(ConfigurationError):
        TemperatureSensorBank(bits=0)


def test_parallel_entry_points_raise_repro_errors():
    with pytest.raises(ParallelExecutionError):
        resolve_jobs(-1)
    with pytest.raises(ParallelExecutionError):
        parallel_map(len, [[1]], jobs=2, on_error="sometimes")
