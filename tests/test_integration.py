"""End-to-end integration: the paper's flows at reduced scale.

These exercise full stacks (plant + controller + metrics) on small
platforms so they run in seconds; the benchmarks run the full-scale
versions.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    fan_level_feasible_with_tec_assist,
    run_base_scenario,
)
from repro.core.baselines import FanTECController
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.perf.splash2 import REF_FREQ_GHZ, splash2_workload
from repro.perf.workload import WorkloadRun


@pytest.mark.slow
def test_base_scenario_matches_table1_row(system16):
    """lu/16t (the fastest Table I case) regenerates its published row."""
    base = run_base_scenario(system16, "lu", 16)
    assert base.time_ms == pytest.approx(20.34, rel=0.01)
    assert base.processor_power_w == pytest.approx(109.9, abs=1.5)
    assert base.t_threshold_c == pytest.approx(84.49, abs=1.5)


@pytest.mark.slow
def test_tecfan_holds_threshold_at_reduced_fan(system16):
    """The headline behaviour: at fan level 2 the base scenario would
    violate, TECfan does not (cholesky, the hottest workload)."""
    base = run_base_scenario(system16, "cholesky", 16)
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    engine = SimulationEngine(
        system16, problem, EngineConfig(max_time_s=2.0)
    )
    wl = splash2_workload("cholesky", 16, system16.chip)
    state = ActuatorState.initial(
        system16.n_tec_devices, 16, system16.dvfs.max_level, fan_level=2
    )
    res = engine.run(
        WorkloadRun(wl, system16.chip, REF_FREQ_GHZ),
        TECfanController(),
        initial_state=state,
    )
    assert res.metrics.violation_rate <= 0.005
    # And it saves energy relative to the base scenario.
    assert res.metrics.energy_j < base.result.metrics.energy_j


@pytest.mark.slow
def test_fantec_recovers_one_fan_level(system16):
    """Fig. 4(b) at unit scale: Fan+TEC at level 2 stays near the
    threshold the level-1 base run established."""
    base = run_base_scenario(system16, "cholesky", 16)
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    engine = SimulationEngine(system16, problem, EngineConfig(max_time_s=2.0))
    wl = splash2_workload("cholesky", 16, system16.chip)
    state = ActuatorState.initial(
        system16.n_tec_devices, 16, system16.dvfs.max_level, fan_level=2
    )
    res = engine.run(
        WorkloadRun(wl, system16.chip, REF_FREQ_GHZ),
        FanTECController(),
        initial_state=state,
    )
    assert res.metrics.peak_temp_c < base.t_threshold_c + 3.0
    # No DVFS: execution time equals the base scenario's.
    assert res.metrics.execution_time_s == pytest.approx(
        base.result.metrics.execution_time_s, rel=1e-6
    )


@pytest.mark.slow
def test_fan_assist_feasibility_ordering(system16):
    """TEC assist extends the feasible fan range by about one level."""
    base = run_base_scenario(system16, "cholesky", 16)
    problem = EnergyProblem(t_threshold_c=base.t_threshold_c)
    avg_p = base.result.avg_p_components_w
    feas = [
        fan_level_feasible_with_tec_assist(system16, avg_p, lv, problem)
        for lv in range(1, system16.fan.n_levels + 1)
    ]
    assert feas[0]  # level 1 feasible by construction
    assert feas[1]  # level 2 feasible thanks to the TECs (Fig. 4)
    assert not all(feas)  # but not every level


def test_server_mini_experiment():
    """A 1-minute Fig. 7 slice: TECfan beats OFTEC on energy with no
    completion delay."""
    from repro.analysis.server_experiment import (
        _run,
        build_server_workload,
    )
    from repro.core.oracle import make_oftec
    from repro.server.platform import build_server_system

    platform = build_server_system()
    workload = build_server_workload(platform, minutes=1)
    oftec = _run(platform, workload, make_oftec(), minutes=1)
    tecfan = _run(platform, workload, TECfanController(), minutes=1)
    assert tecfan.metrics.energy_j < 0.9 * oftec.metrics.energy_j
    assert tecfan.metrics.execution_time_s <= (
        oftec.metrics.execution_time_s + 1.0
    )


def test_sensor_noise_does_not_break_control(system2):
    """Controllers must tolerate quantized, noisy telemetry."""
    from repro.perf.workload import Phase, Workload
    from repro.thermal.sensors import TemperatureSensorBank

    wl = Workload(
        name="noisy",
        threads=2,
        total_instructions=30_000_000,
        ff_instructions=0,
        ipc_at_ref=0.5,
        activity=0.8,
        active_tiles=(0, 1),
        phases=(Phase(1.0),),
    )
    cfg = EngineConfig(
        max_time_s=1.0,
        sensors=TemperatureSensorBank(noise_sigma_c=0.3, seed=3),
        priming_intervals=3,
    )
    engine = SimulationEngine(
        system2, EnergyProblem(t_threshold_c=80.0), cfg
    )
    res = engine.run(
        WorkloadRun(wl, system2.chip, 2.0), TECfanController()
    )
    assert res.metrics.instructions > 0
    assert np.isfinite(res.metrics.energy_j)
