"""Eq. (10)-(11) IPS tracking."""

import numpy as np
import pytest

from repro.exceptions import ControlError
from repro.perf.ips import IPSTracker
from repro.power.dvfs import SCC_DVFS


@pytest.fixture()
def tracker():
    return IPSTracker(dvfs=SCC_DVFS)


def test_predict_before_observe(tracker):
    assert not tracker.ready
    with pytest.raises(ControlError):
        tracker.predict(np.array([5, 5]))


def test_identity(tracker):
    ips = np.array([1.0e9, 2.0e9])
    lv = np.array([5, 5])
    tracker.observe(ips, lv)
    np.testing.assert_allclose(tracker.predict(lv), ips)


def test_eq11_linear_frequency_scaling(tracker):
    ips = np.array([2.0e9, 2.0e9])
    tracker.observe(ips, np.array([5, 5]))
    pred = tracker.predict(np.array([0, 5]))  # 1.0 GHz vs 2.0 GHz
    assert pred[0] == pytest.approx(1.0e9)
    assert pred[1] == pytest.approx(2.0e9)


def test_eq10_chip_sum(tracker):
    ips = np.array([1.0e9, 3.0e9])
    tracker.observe(ips, np.array([5, 5]))
    assert tracker.predict_chip(np.array([5, 5])) == pytest.approx(4.0e9)


def test_zero_ips_stays_zero(tracker):
    """A spinning/idle core reports ~0 useful IPS; no frequency change
    conjures throughput (the performance-neutral lowering hinge)."""
    tracker.observe(np.array([0.0, 2.0e9]), np.array([5, 5]))
    pred = tracker.predict(np.array([0, 0]))
    assert pred[0] == 0.0
    assert pred[1] == pytest.approx(1.0e9)
