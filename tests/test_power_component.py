"""Plant-side component power: allocation, DVFS domains, activity."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.floorplan.component import ComponentCategory
from repro.power.component_power import (
    ComponentPowerModel,
    MESH_DOMAIN_CATEGORIES,
    core_dvfs_domain_mask,
)
from repro.power.dvfs import SCC_DVFS


@pytest.fixture()
def model(chip2):
    return ComponentPowerModel(
        chip=chip2, dvfs=SCC_DVFS, chip_peak_dynamic_w=10.0
    )


def test_peak_allocation_sums_to_budget(model):
    assert model.peak_per_component_w.sum() == pytest.approx(10.0)
    assert np.all(model.peak_per_component_w > 0)


def test_peak_proportional_to_weight_times_area(model, chip2):
    alloc = chip2.power_weights() * chip2.areas_mm2()
    np.testing.assert_allclose(
        model.peak_per_component_w, 10.0 * alloc / alloc.sum()
    )


def test_full_power_at_max_dvfs_full_activity(model, chip2):
    p = model.dynamic_power_w(
        np.ones(chip2.n_tiles),
        np.full(chip2.n_tiles, SCC_DVFS.max_level),
    )
    assert p.sum() == pytest.approx(10.0)


def test_mesh_domain_not_scaled_by_dvfs(model, chip2):
    """SCC's routers/L2 sit on the mesh clock: throttling a core must
    not reduce their power."""
    act = np.ones(chip2.n_tiles)
    p_hi = model.dynamic_power_w(act, np.full(chip2.n_tiles, SCC_DVFS.max_level))
    p_lo = model.dynamic_power_w(act, np.zeros(chip2.n_tiles, dtype=int))
    mask = core_dvfs_domain_mask(chip2)
    np.testing.assert_allclose(p_lo[~mask], p_hi[~mask])
    assert np.all(p_lo[mask] < p_hi[mask])


def test_mesh_domain_categories():
    assert ComponentCategory.ROUTER in MESH_DOMAIN_CATEGORIES
    assert ComponentCategory.L2_CACHE in MESH_DOMAIN_CATEGORIES
    assert ComponentCategory.INT_LOGIC not in MESH_DOMAIN_CATEGORIES


def test_idle_floor_applied(model, chip2):
    p = model.dynamic_power_w(
        np.zeros(chip2.n_tiles),
        np.full(chip2.n_tiles, SCC_DVFS.max_level),
    )
    assert p.sum() == pytest.approx(10.0 * model.idle_activity)


def test_activity_scales_linearly(model, chip2):
    lv = np.full(chip2.n_tiles, SCC_DVFS.max_level)
    p_half = model.dynamic_power_w(np.full(chip2.n_tiles, 0.5), lv)
    p_full = model.dynamic_power_w(np.ones(chip2.n_tiles), lv)
    np.testing.assert_allclose(p_half, 0.5 * p_full)


def test_profile_shapes_but_preserves_total(model, chip2):
    lv = np.full(chip2.n_tiles, SCC_DVFS.max_level)
    act = np.ones(chip2.n_tiles)
    from repro.perf.splash2 import component_profile

    prof = component_profile(chip2, "cholesky")
    p = model.dynamic_power_w(act, lv, prof)
    p_flat = model.dynamic_power_w(act, lv)
    assert p.sum() == pytest.approx(p_flat.sum(), rel=1e-9)
    assert not np.allclose(p, p_flat)


def test_input_validation(model, chip2):
    lv = np.full(chip2.n_tiles, SCC_DVFS.max_level)
    with pytest.raises(ConfigurationError):
        model.dynamic_power_w(np.ones(chip2.n_tiles + 1), lv)
    with pytest.raises(ConfigurationError):
        model.dynamic_power_w(np.full(chip2.n_tiles, 1.5), lv)
    with pytest.raises(ConfigurationError):
        model.dynamic_power_w(
            np.ones(chip2.n_tiles), lv, np.ones(3)
        )


def test_constructor_validation(chip2):
    with pytest.raises(ConfigurationError):
        ComponentPowerModel(chip=chip2, dvfs=SCC_DVFS, chip_peak_dynamic_w=0.0)
    with pytest.raises(ConfigurationError):
        ComponentPowerModel(
            chip=chip2, dvfs=SCC_DVFS, chip_peak_dynamic_w=10.0,
            idle_activity=1.5,
        )


def test_peak_core_power(model, chip2):
    total = sum(model.peak_core_power_w(t) for t in range(chip2.n_tiles))
    assert total == pytest.approx(10.0)
