"""Text rendering helpers."""

from repro.analysis.report import render_normalized, render_table


def test_render_table_alignment():
    out = render_table(["a", "metric"], [["x", 1.23456], ["longer", 2.0]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    assert len({len(l) for l in lines}) == 1  # equal widths
    assert "1.235" in out  # default 3-decimal float formatting


def test_render_table_title():
    out = render_table(["a"], [[1.0]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_render_table_custom_floatfmt():
    out = render_table(["v"], [[3.14159]], floatfmt="{:.1f}")
    assert "3.1" in out and "3.14" not in out


def test_render_normalized_order_and_metrics():
    series = {
        "A": {"delay": 1.0, "power": 0.5, "energy": 0.5, "edp": 0.5},
        "B": {"delay": 1.2, "power": 0.4, "energy": 0.48, "edp": 0.58},
    }
    out = render_normalized("Fig", series)
    lines = out.splitlines()
    assert lines[0] == "Fig"
    a_line = next(l for l in lines if l.strip().startswith("A"))
    b_line = next(l for l in lines if l.strip().startswith("B"))
    assert lines.index(a_line) < lines.index(b_line)
    assert "0.480" in b_line


def test_render_normalized_missing_metric_is_nan():
    out = render_normalized("Fig", {"A": {"delay": 1.0}})
    assert "nan" in out
