"""Geometry primitives: rectangles, adjacency, overlap."""

import pytest

from repro.exceptions import FloorplanError
from repro.floorplan.component import Component, ComponentCategory


def make(name, x, y, w, h, tile=0):
    return Component(
        name=name,
        x=x,
        y=y,
        width=w,
        height=h,
        category=ComponentCategory.INT_LOGIC,
        tile=tile,
    )


def test_area_and_edges():
    c = make("a", 1.0, 2.0, 3.0, 4.0)
    assert c.area_mm2 == pytest.approx(12.0)
    assert c.x2 == pytest.approx(4.0)
    assert c.y2 == pytest.approx(6.0)
    assert c.center == (pytest.approx(2.5), pytest.approx(4.0))


def test_nonpositive_size_rejected():
    with pytest.raises(FloorplanError):
        make("bad", 0, 0, 0.0, 1.0)
    with pytest.raises(FloorplanError):
        make("bad", 0, 0, 1.0, -1.0)


def test_shared_edge_vertical_contact():
    a = make("a", 0, 0, 1, 2)
    b = make("b", 1, 0.5, 1, 2)  # touches a's right edge, y overlap 1.5
    assert a.shared_edge_length(b) == pytest.approx(1.5)
    assert b.shared_edge_length(a) == pytest.approx(1.5)


def test_shared_edge_horizontal_contact():
    a = make("a", 0, 0, 2, 1)
    b = make("b", 0.5, 1, 2, 1)
    assert a.shared_edge_length(b) == pytest.approx(1.5)


def test_corner_contact_is_not_adjacency():
    a = make("a", 0, 0, 1, 1)
    b = make("b", 1, 1, 1, 1)  # corner only
    assert a.shared_edge_length(b) == 0.0


def test_disjoint_components_share_nothing():
    a = make("a", 0, 0, 1, 1)
    b = make("b", 5, 5, 1, 1)
    assert a.shared_edge_length(b) == 0.0


def test_overlap_area():
    a = make("a", 0, 0, 2, 2)
    assert a.overlap_area(1, 1, 3, 3) == pytest.approx(1.0)
    assert a.overlap_area(2, 2, 3, 3) == 0.0
    assert a.overlap_area(-1, -1, 3, 3) == pytest.approx(4.0)


def test_center_distance():
    a = make("a", 0, 0, 2, 2)
    b = make("b", 3, 0, 2, 2)
    assert a.center_distance(b) == pytest.approx(3.0)


def test_component_categories_cover_floorplan_needs():
    names = {c.name for c in ComponentCategory}
    assert {
        "INT_LOGIC",
        "FP_LOGIC",
        "FETCH",
        "L1_CACHE",
        "L2_CACHE",
        "ROUTER",
        "REGULATOR",
    } <= names
