"""StreamingExporter: incremental flush, rotation, schema validation."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    MANIFEST_SCHEMA,
    StreamingExporter,
    Telemetry,
    read_jsonl,
    read_stream_parts,
    telemetry_session,
)
from repro.obs import telemetry as obs
from repro.obs.telemetry import MAX_EVENTS


def _stream_events(tel: Telemetry, n: int) -> None:
    with telemetry_session(tel):
        for i in range(n):
            obs.event("interval", i=i, peak_temp_c=80.0 + i)


def test_events_flush_incrementally(tmp_path):
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(path, flush_every=4)
    tel = exp.attach(Telemetry())
    _stream_events(tel, 10)
    # Two full batches (8 events) are on disk before close.
    on_disk = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    assert sum(1 for r in on_disk if r["type"] == "event") == 8
    assert on_disk[0]["type"] == "stream_header"
    assert len(tel.events) == 0  # nothing retained in memory
    assert tel.events_streamed == 10
    exp.close(tel)
    parsed = read_jsonl(path)
    assert len(parsed["events"]) == 10
    assert parsed["manifest"]["events_streamed"] == 10


def test_streaming_bypasses_event_cap(tmp_path):
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(path, flush_every=1024)
    tel = exp.attach(Telemetry())
    _stream_events(tel, MAX_EVENTS + 50)
    exp.close(tel)
    parsed = read_jsonl(path)
    assert len(parsed["events"]) == MAX_EVENTS + 50
    assert parsed["manifest"]["events_dropped"] == 0


def test_rotation_splits_parts_and_regroups(tmp_path):
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(path, flush_every=2, rotate_bytes=300)
    tel = exp.attach(Telemetry())
    tel.metrics.counter("c").inc(7)
    _stream_events(tel, 20)
    paths = exp.close(tel)
    assert len(paths) > 1
    assert paths[0] == path
    assert paths[1].name == "run.part001.jsonl"
    # Each part is independently loadable and carries a typed header.
    for i, part in enumerate(paths):
        group = read_jsonl(part)
        assert group["stream_header"]["part"] == i
        assert group["stream_header"]["schema"] == MANIFEST_SCHEMA
    merged = read_stream_parts(paths)
    assert [e["i"] for e in merged["events"]] == list(range(20))
    assert merged["counters"]["c"] == 7
    assert merged["manifest"]["stream_parts"] == [str(p) for p in paths]


def test_close_is_idempotent_and_detaches(tmp_path):
    exp = StreamingExporter(tmp_path / "run.jsonl")
    tel = exp.attach(Telemetry())
    _stream_events(tel, 3)
    first = exp.close(tel)
    assert exp.close(tel) == first
    assert tel.event_sink is None
    with pytest.raises(ObservabilityError, match="closed"):
        exp.write_event({"kind": "late"})


def test_context_manager_without_session_writes_header_only(tmp_path):
    path = tmp_path / "run.jsonl"
    with StreamingExporter(path):
        pass
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["type"] for r in records] == ["stream_header"]


def test_crashed_stream_keeps_flushed_events(tmp_path):
    # No close(): whatever was flushed must still parse (no manifest).
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(path, flush_every=1)
    tel = exp.attach(Telemetry())
    _stream_events(tel, 5)
    parsed = read_jsonl(path)
    assert len(parsed["events"]) == 5
    assert parsed["manifest"] is None
    assert parsed["stream_header"]["schema"] == MANIFEST_SCHEMA


def test_invalid_parameters_rejected(tmp_path):
    with pytest.raises(ObservabilityError):
        StreamingExporter(tmp_path / "x.jsonl", flush_every=0)
    with pytest.raises(ObservabilityError):
        StreamingExporter(tmp_path / "x.jsonl", rotate_bytes=0)
    with pytest.raises(ObservabilityError, match="fsync policy"):
        StreamingExporter(tmp_path / "x.jsonl", fsync="sometimes")


# ----------------------------------------------------------------------
# crash hardening: atomic parts, torn tails, .tmp fallback
# ----------------------------------------------------------------------
def test_atomic_parts_rename_only_complete_parts(tmp_path):
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(
        path, flush_every=2, rotate_bytes=300, atomic_parts=True,
        fsync="rotate",
    )
    tel = exp.attach(Telemetry())
    _stream_events(tel, 20)
    # Mid-stream: every part but the live one is at its final name;
    # the live part exists only as .tmp.
    assert len(exp.paths) > 1
    live = exp.paths[-1]
    assert not live.exists()
    assert live.with_name(live.name + ".tmp").exists()
    for done in exp.paths[:-1]:
        assert done.exists()
    paths = exp.close(tel)
    # After close everything is final and the set regroups cleanly.
    assert all(p.exists() for p in paths)
    assert not any(
        p.with_name(p.name + ".tmp").exists() for p in paths
    )
    merged = read_stream_parts(paths)
    assert [e["i"] for e in merged["events"]] == list(range(20))
    assert merged["truncations"] == []


def test_crashed_atomic_stream_reads_tmp_sibling(tmp_path):
    # SIGKILL model: no close(), the in-progress part never renamed.
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(
        path, flush_every=1, rotate_bytes=250, atomic_parts=True
    )
    tel = exp.attach(Telemetry())
    _stream_events(tel, 12)
    merged = read_stream_parts(exp.paths)
    assert [e["i"] for e in merged["events"]] == list(range(12))
    assert merged["manifest"] is None  # never closed
    assert merged["truncations"] == []


def test_torn_tail_is_dropped_and_reported(tmp_path):
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(path, flush_every=1)
    tel = exp.attach(Telemetry())
    _stream_events(tel, 6)
    exp._fh.close()  # crash: buffered writer gone mid-record
    torn = '{"type": "event", "i": 99, "trunca'
    with open(path, "a") as fh:
        fh.write(torn)
    merged = read_stream_parts([path])
    # Intact prefix survives; the tear is reported, not raised.
    assert [e["i"] for e in merged["events"]] == list(range(6))
    assert len(merged["truncations"]) == 1
    report = merged["truncations"][0]
    assert report["path"] == str(path)
    assert report["bytes_dropped"] == len(torn)
    assert report["snippet"].startswith('{"type": "event", "i": 99')
    # The strict reader still refuses the same file: tolerance is an
    # explicit opt-in via read_stream_parts, never silent.
    with pytest.raises(ObservabilityError):
        read_jsonl(path)


def test_fsync_always_policy_streams_and_regroups(tmp_path):
    path = tmp_path / "run.jsonl"
    exp = StreamingExporter(path, flush_every=2, fsync="always")
    tel = exp.attach(Telemetry())
    _stream_events(tel, 5)
    exp.close(tel)
    merged = read_stream_parts([path])
    assert len(merged["events"]) == 5
    assert merged["truncations"] == []


# ----------------------------------------------------------------------
# schema validation on load
# ----------------------------------------------------------------------
def test_unknown_schema_version_is_a_clear_error(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text('{"type": "manifest", "schema": 99}\n')
    with pytest.raises(ObservabilityError, match="not supported"):
        read_jsonl(path)


def test_missing_schema_version_is_a_clear_error(tmp_path):
    path = tmp_path / "foreign.jsonl"
    path.write_text('{"type": "stream_header"}\n')
    with pytest.raises(ObservabilityError, match="no schema version"):
        read_jsonl(path)


def test_profile_load_exits_2_on_bad_schema(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "future.jsonl"
    path.write_text('{"type": "manifest", "schema": 99}\n')
    assert main(["profile", "--load", str(path)]) == 2
    err = capsys.readouterr().err
    assert "not supported" in err
    assert "KeyError" not in err


def test_cli_streams_telemetry(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "hw.jsonl"
    assert main(["hwcost", "--telemetry-stream", str(path)]) == 0
    capsys.readouterr()
    parsed = read_jsonl(path)
    assert parsed["manifest"]["schema"] == MANIFEST_SCHEMA
    assert parsed["manifest"]["context"]["command"][0] == "hwcost"
