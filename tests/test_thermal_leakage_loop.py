"""Temperature-leakage fixed point (the paper's HotSpot modification)."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.thermal.leakage_loop import LeakageCoupledSolver


def test_fixed_point_self_consistent(system2):
    nd = system2.nodes
    p_dyn = np.full(nd.n_components, 0.2)
    t, p_leak = system2.plant_thermal.solve(
        p_dyn, 1, np.zeros(system2.n_tec_devices)
    )
    # Re-evaluating leakage at the solution and re-solving must move the
    # peak by less than the loop tolerance.
    p2 = system2.power.plant_leakage.per_component_w(t[nd.component_slice])
    t2 = system2.solver.solve(p_dyn + p2, 1, np.zeros(system2.n_tec_devices))
    assert abs(
        t2[nd.component_slice].max() - t[nd.component_slice].max()
    ) < system2.plant_thermal.tolerance_k


def test_leakage_raises_temperature(system2):
    """Coupled solution must be hotter than the leakage-free one."""
    nd = system2.nodes
    p_dyn = np.full(nd.n_components, 0.2)
    tec = np.zeros(system2.n_tec_devices)
    t_coupled, p_leak = system2.plant_thermal.solve(p_dyn, 1, tec)
    t_plain = system2.solver.solve(p_dyn, 1, tec)
    assert np.all(p_leak > 0)
    assert t_coupled[nd.component_slice].max() > t_plain[
        nd.component_slice
    ].max()


def test_warm_start_converges_faster(system2):
    nd = system2.nodes
    p_dyn = np.full(nd.n_components, 0.25)
    tec = np.zeros(system2.n_tec_devices)
    t, _ = system2.plant_thermal.solve(p_dyn, 1, tec)

    cold = LeakageCoupledSolver(
        solver=system2.solver,
        leakage_fn=system2.power.plant_leakage.per_component_w,
    )
    n0 = system2.solver.n_solves
    cold.solve(p_dyn, 1, tec)
    cold_solves = system2.solver.n_solves - n0

    n0 = system2.solver.n_solves
    cold.solve(p_dyn, 1, tec, t_guess_k=t[nd.component_slice])
    warm_solves = system2.solver.n_solves - n0
    assert warm_solves <= cold_solves


def test_divergent_leakage_raises(system2):
    """A pathological leakage model (slope beating the thermal path)
    must raise ConvergenceError rather than hang or return garbage."""
    def runaway(t_k):
        return np.full(system2.nodes.n_components, 1.0) * (
            1.0 + 50.0 * np.maximum(t_k - 300.0, 0.0)
        )

    bad = LeakageCoupledSolver(
        solver=system2.solver, leakage_fn=runaway, max_iterations=5
    )
    with pytest.raises((ConvergenceError, Exception)):
        bad.solve(
            np.full(system2.nodes.n_components, 0.2),
            1,
            np.zeros(system2.n_tec_devices),
        )


def test_convergence_error_carries_diagnostics():
    err = ConvergenceError("no", iterations=7, residual=1.5)
    assert err.iterations == 7
    assert err.residual == 1.5
