"""Deterministic checkpoint/resume of mid-flight simulations.

The contract under test (docs/ROBUSTNESS.md): a run that writes
periodic checkpoints produces exactly the result of one that doesn't,
and resuming the last mid-run checkpoint completes to a result that is
bit-identical, field by field, to the uninterrupted run — on the
classic engine, the interval-kernel fast path, and the hardened
(faults + watchdog + health + fallback) configuration.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    load_checkpoint,
    result_digest,
    resume_engine_run,
    write_checkpoint,
)
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.problem import EnergyProblem
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.exceptions import CheckpointError, ConfigurationError
from repro.faults import FaultScheduler, HealthConfig, WatchdogConfig
from repro.perf import splash2_workload
from repro.perf.splash2 import REF_FREQ_GHZ
from repro.perf.workload import WorkloadRun

_TRACE_FIELDS = (
    "time_s",
    "dt_s",
    "peak_temp_c",
    "p_chip_w",
    "p_cores_w",
    "p_tec_w",
    "p_fan_w",
    "ips_chip",
    "tec_on",
    "fan_level",
    "mean_dvfs_level",
)


def assert_identical(a, b) -> None:
    """Field-by-field bit-identity across trace, metrics and state."""
    for fld in _TRACE_FIELDS:
        assert np.array_equal(
            getattr(a.trace, fld), getattr(b.trace, fld)
        ), fld
    assert a.metrics == b.metrics
    assert np.array_equal(a.final_state.tec, b.final_state.tec)
    assert np.array_equal(a.final_state.dvfs, b.final_state.dvfs)
    assert a.final_state.fan_level == b.final_state.fan_level
    assert result_digest(a) == result_digest(b)


def _fault_script() -> FaultScheduler:
    return FaultScheduler.from_spec(
        [
            {
                "kind": "sensor_dropout",
                "t_start_s": 0.004,
                "component": 1,
                "p_drop": 0.5,
            },
            {"kind": "sensor_stuck", "t_start_s": 0.006, "component": 2},
            {"kind": "tec_stuck", "t_start_s": 0.008, "device": 3},
        ],
        seed=11,
    )


_CONFIGS = {
    "classic": lambda: {},
    "interval-kernel": lambda: {"interval_kernel": True},
    "exact-kernel": lambda: {"interval_kernel": True, "exact_kernel": True},
    "hardened": lambda: {
        "faults": _fault_script(),
        "watchdog": WatchdogConfig(),
        "health": HealthConfig(),
        "estimator_fallback": True,
    },
}


def _run(extra: dict, max_time_s: float = 0.02):
    system = build_system(rows=2, cols=2)
    wl = splash2_workload("lu", 4, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=70.0),
        EngineConfig(max_time_s=max_time_s, **extra),
    )
    return engine.run(
        WorkloadRun(wl, system.chip, REF_FREQ_GHZ), TECfanController()
    )


@pytest.mark.parametrize("name", sorted(_CONFIGS))
def test_checkpoint_no_perturb_and_resume_bit_identical(name, tmp_path):
    baseline = _run(_CONFIGS[name]())
    ck = str(tmp_path / "ck.pkl")
    # Checkpointing must be a pure observer: same result to the bit.
    with_ck = _run(
        dict(
            _CONFIGS[name](),
            checkpoint_path=ck,
            checkpoint_every_s=0.007,
        )
    )
    assert_identical(baseline, with_ck)
    assert os.path.exists(ck)
    # ...and the last mid-run checkpoint completes to the same result.
    resumed = resume_engine_run(ck)
    assert_identical(baseline, resumed)


def test_resume_from_every_cadence_is_identical(tmp_path):
    """Fine cadence: many snapshots, resume still lands on the bit."""
    baseline = _run({})
    ck = str(tmp_path / "ck.pkl")
    _run({"checkpoint_path": ck, "checkpoint_every_s": 0.002})
    assert_identical(baseline, resume_engine_run(ck))


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(every_s=st.floats(min_value=0.0015, max_value=0.018))
def test_random_checkpoint_instant_resumes_identical(every_s):
    # tempfile instead of tmp_path: function-scoped fixtures trip the
    # hypothesis health check (one directory would be reused across
    # examples).
    baseline = _run({})
    with tempfile.TemporaryDirectory() as d:
        ck = os.path.join(d, "ck.pkl")
        with_ck = _run(
            {"checkpoint_path": ck, "checkpoint_every_s": every_s}
        )
        assert_identical(baseline, with_ck)
        assert_identical(baseline, resume_engine_run(ck))


# ----------------------------------------------------------------------
# schema / validation failure modes
# ----------------------------------------------------------------------
def test_checkpoint_config_must_pair_cadence_and_path():
    with pytest.raises(ConfigurationError):
        EngineConfig(max_time_s=0.02, checkpoint_every_s=0.01)
    with pytest.raises(ConfigurationError):
        EngineConfig(max_time_s=0.02, checkpoint_path="ck.pkl")
    with pytest.raises(ConfigurationError):
        EngineConfig(
            max_time_s=0.02,
            checkpoint_path="ck.pkl",
            checkpoint_every_s=0.0,
        )


def test_load_checkpoint_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        load_checkpoint(tmp_path / "nope.pkl")


def test_load_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "junk.pkl"
    path.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError, match="unreadable"):
        load_checkpoint(path)


def test_load_checkpoint_rejects_wrong_schema(tmp_path):
    path = tmp_path / "old.pkl"
    write_checkpoint(
        path,
        {"schema": CHECKPOINT_SCHEMA + 1, "kind": "engine-run"},
    )
    with pytest.raises(CheckpointError, match="schema"):
        load_checkpoint(path)


def test_load_checkpoint_rejects_wrong_kind(tmp_path):
    path = tmp_path / "other.pkl"
    write_checkpoint(path, {"kind": "something-else"})
    with pytest.raises(CheckpointError, match="expected 'engine-run'"):
        load_checkpoint(path, kind="engine-run")
    # ...but loads fine when the kind matches / is not constrained.
    assert load_checkpoint(path)["kind"] == "something-else"


def test_write_checkpoint_is_atomic_and_counted(tmp_path):
    from repro.obs import Telemetry, telemetry_session

    path = tmp_path / "ck.pkl"
    tel = Telemetry()
    with telemetry_session(tel):
        write_checkpoint(path, {"kind": "engine-run", "x": 1})
    assert path.exists()
    assert not (tmp_path / "ck.pkl.tmp").exists()
    assert tel.metrics.counter("checkpoint.writes").value == 1
    assert tel.metrics.counter("checkpoint.bytes").value > 0
    assert load_checkpoint(path, kind="engine-run")["x"] == 1
