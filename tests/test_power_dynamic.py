"""Eq. (7) relative dynamic-power tracking."""

import numpy as np
import pytest

from repro.exceptions import ControlError
from repro.power.component_power import core_dvfs_domain_mask
from repro.power.dvfs import SCC_DVFS
from repro.power.dynamic import DynamicPowerTracker


@pytest.fixture()
def tracker(chip2):
    return DynamicPowerTracker(
        dvfs=SCC_DVFS,
        tile_of=chip2.tile_of(),
        core_domain=core_dvfs_domain_mask(chip2),
    )


def test_predict_before_observe_raises(tracker):
    with pytest.raises(ControlError):
        tracker.predict(np.array([5, 5]))


def test_identity_prediction(tracker, chip2):
    p = np.random.default_rng(0).random(chip2.n_components)
    lv = np.full(chip2.n_tiles, 5)
    tracker.observe(p, lv)
    np.testing.assert_allclose(tracker.predict(lv), p)


def test_eq7_scaling(tracker, chip2):
    p = np.ones(chip2.n_components)
    tracker.observe(p, np.full(chip2.n_tiles, 5))
    pred = tracker.predict(np.array([5, 0]))
    mask = core_dvfs_domain_mask(chip2)
    tile_of = chip2.tile_of()
    ratio = SCC_DVFS.dynamic_ratio(5, 0)
    # Core-domain components of tile 1 scale by Eq. (7)...
    scaled = mask & (tile_of == 1)
    np.testing.assert_allclose(pred[scaled], ratio)
    # ...mesh-domain components and tile 0 stay put.
    np.testing.assert_allclose(pred[~scaled], 1.0)


def test_single_change_helper(tracker, chip2):
    p = np.ones(chip2.n_components)
    tracker.observe(p, np.full(chip2.n_tiles, 5))
    a = tracker.predict_single_change(0, 3)
    lv = np.array([3, 5])
    b = tracker.predict(lv)
    np.testing.assert_allclose(a, b)


def test_observation_is_copied(tracker, chip2):
    p = np.ones(chip2.n_components)
    lv = np.full(chip2.n_tiles, 5)
    tracker.observe(p, lv)
    p[:] = 99.0  # mutate the caller's array
    np.testing.assert_allclose(tracker.predict(lv), 1.0)
