"""Synthetic Wikipedia trace: protocol, statistics, determinism."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.server.wikipedia import (
    CUT_MINUTES,
    PIECES,
    TARGET_MEAN_UTILIZATION,
    UTILIZATION_SCALE,
    generate_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(seed=2009, days=1)


def test_duration(trace):
    assert trace.duration_s == 24 * 3600


def test_experiment_window_mean_matches_paper(trace):
    """Sec. V-E: 'The average CPU utilization is 48.6%' (after the 1.5x
    scaling), measured over the 40-minute experiment window."""
    window = trace.utilization[: CUT_MINUTES * 60]
    assert window.mean() == pytest.approx(TARGET_MEAN_UTILIZATION, abs=0.02)


def test_bounds(trace):
    assert trace.utilization.min() >= 0.0
    assert trace.utilization.max() <= 1.0


def test_determinism():
    a = generate_trace(seed=1, days=1)
    b = generate_trace(seed=1, days=1)
    np.testing.assert_array_equal(a.utilization, b.utilization)
    c = generate_trace(seed=2, days=1)
    assert not np.array_equal(a.utilization, c.utilization)


def test_pieces_protocol(trace):
    pieces = trace.experiment_pieces()
    assert len(pieces) == PIECES
    assert all(len(p) == 600 for p in pieces)
    joined = np.concatenate(pieces)
    np.testing.assert_array_equal(joined, trace.utilization[: 2400])


def test_piece_out_of_range(trace):
    with pytest.raises(WorkloadError):
        trace.piece(10_000)


def test_diurnal_variation_present():
    t = generate_trace(seed=3, days=2)
    hourly = t.utilization[: 86400].reshape(24, 3600).mean(axis=1)
    assert hourly.max() / hourly.min() > 1.3


def test_burstiness_minute_scale(trace):
    """Minute-scale variation exists (the fast AR component)."""
    window = trace.utilization[:600]
    minute_means = window.reshape(10, 60).mean(axis=1)
    assert minute_means.std() > 0.005


def test_scale_factor_documented():
    assert UTILIZATION_SCALE == pytest.approx(1.5)


def test_invalid_days():
    with pytest.raises(WorkloadError):
        generate_trace(days=0)
