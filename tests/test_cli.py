"""CLI entry points (fast subcommands only)."""

import pytest

from repro.cli import main


def test_hwcost_runs(capsys):
    assert main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "multipliers" in out
    assert "54" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_subcommand():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_quick_runs(capsys):
    assert main(["quick"]) == 0
    out = capsys.readouterr().out
    assert "TECfan" in out
    assert "threshold" in out
