"""Workload abstraction: budgets, phases, spin semantics, noise."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.perf.workload import Phase, Workload, WorkloadRun


def make_workload(chip, **kw):
    defaults = dict(
        name="synthetic",
        threads=2,
        total_instructions=10_000_000,
        ff_instructions=0,
        ipc_at_ref=0.5,
        activity=0.8,
        active_tiles=(0, 1),
        activity_noise_sigma=0.0,
    )
    defaults.update(kw)
    return Workload(**defaults)


def test_validation(chip2):
    with pytest.raises(WorkloadError):
        make_workload(chip2, threads=3)  # tiles mismatch
    with pytest.raises(WorkloadError):
        make_workload(chip2, total_instructions=0)
    with pytest.raises(WorkloadError):
        make_workload(chip2, activity=0.0)
    with pytest.raises(WorkloadError):
        make_workload(chip2, phases=(Phase(0.5),))  # fractions != 1
    with pytest.raises(WorkloadError):
        make_workload(chip2, thread_weights=(1.0,))
    with pytest.raises(WorkloadError):
        make_workload(chip2, thread_weights=(1.0, -1.0))
    with pytest.raises(WorkloadError):
        make_workload(chip2, spin_activity_frac=1.5)


def test_thread_budgets_balanced(chip2):
    wl = make_workload(chip2)
    assert wl.thread_budget(0) == pytest.approx(5_000_000)
    assert wl.max_thread_weight == 1.0


def test_thread_budgets_weighted(chip2):
    wl = make_workload(chip2, thread_weights=(0.5, 1.5))
    assert wl.thread_budget(0) == pytest.approx(2_500_000)
    assert wl.thread_budget(1) == pytest.approx(7_500_000)
    assert wl.max_thread_weight == pytest.approx(1.5)


def test_run_advances_and_finishes(chip2):
    wl = make_workload(chip2)
    run = WorkloadRun(wl, chip2, ref_freq_ghz=2.0)
    freqs = np.full(2, 2.0)
    total = 0.0
    while not run.finished:
        total += run.advance(2e-3, freqs).sum()
    assert total == pytest.approx(wl.total_instructions, rel=1e-6)
    assert run.progress == pytest.approx(1.0)


def test_time_to_completion_matches_analytic(chip2):
    wl = make_workload(chip2)
    run = WorkloadRun(wl, chip2, ref_freq_ghz=2.0)
    expected = 5_000_000 / (0.5 * 2.0e9)
    assert run.time_to_completion_s(np.full(2, 2.0)) == pytest.approx(
        expected
    )


def test_frequency_scaling_linear(chip2):
    """Eq. (11): halving f doubles the completion time."""
    wl = make_workload(chip2)
    run = WorkloadRun(wl, chip2, 2.0)
    t_full = run.time_to_completion_s(np.full(2, 2.0))
    t_half = run.time_to_completion_s(np.full(2, 1.0))
    assert t_half == pytest.approx(2 * t_full)


def test_spin_semantics(chip2):
    """A finished thread spins: activity stays high, useful IPS drops to
    zero — until every thread is done."""
    wl = make_workload(chip2, thread_weights=(0.5, 1.5),
                       spin_activity_frac=0.85)
    run = WorkloadRun(wl, chip2, 2.0)
    freqs = np.full(2, 2.0)
    # Run until thread 0 (light) finishes but thread 1 hasn't.
    while run.executed[0] < wl.thread_budget(0):
        run.advance(1e-3, freqs)
    assert not run.finished
    act = run.activity_vector()
    ips = run.ips_vector(freqs)
    assert ips[0] == 0.0 and ips[1] > 0.0
    assert act[0] == pytest.approx(0.85 * act[1], rel=1e-6)


def test_phase_interpolation_smooth(chip2):
    wl = make_workload(
        chip2,
        phases=(Phase(0.5, 0.9), Phase(0.5, 1.1)),
    )
    run = WorkloadRun(wl, chip2, 2.0)
    freqs = np.full(2, 2.0)
    acts = []
    while not run.finished:
        acts.append(run.activity_vector()[0])
        run.advance(1e-4, freqs)
    acts = np.asarray(acts)
    # Monotone ramp from ~0.72 (=0.8*0.9) to ~0.88, no step jump.
    assert acts[0] == pytest.approx(0.8 * 0.9, rel=1e-3)
    assert acts[-1] == pytest.approx(0.8 * 1.1, rel=2e-2)
    assert np.max(np.abs(np.diff(acts))) < 0.01


def test_noise_reproducible_and_bounded(chip2):
    wl = make_workload(chip2, activity_noise_sigma=0.05)
    r1 = WorkloadRun(wl, chip2, 2.0, seed=7)
    r2 = WorkloadRun(wl, chip2, 2.0, seed=7)
    freqs = np.full(2, 2.0)
    for _ in range(50):
        r1.advance(1e-3, freqs)
        r2.advance(1e-3, freqs)
        assert r1.noise_multiplier == r2.noise_multiplier
        assert abs(r1.noise_multiplier - 1.0) <= 3 * 0.05 + 1e-12


def test_nonpositive_dt_rejected(chip2):
    run = WorkloadRun(make_workload(chip2), chip2, 2.0)
    with pytest.raises(WorkloadError):
        run.advance(0.0, np.full(2, 2.0))


def test_active_tile_out_of_range(chip2):
    wl = make_workload(chip2, active_tiles=(0, 7), threads=2)
    with pytest.raises(WorkloadError):
        WorkloadRun(wl, chip2, 2.0)
