"""Satellite: batched stepper == sequential stepper, stepper- and sim-level.

The contract (docs/FLEET.md): temperatures agree to <= 1e-9 K and control
decisions agree exactly. In practice the batched kernel is bit-identical
— `solve_many` rows match `solve`, the masked leakage fixed point
freezes converged rows with the same iteration outputs, and
`dynamic_power_many` returns C-ordered rows so `sum(axis=1)` reduces in
the same order as the per-node loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetConfig, run_fleet
from repro.fleet.control import FleetPolicy
from repro.fleet.stepper import BatchedStepper, SequentialStepper
from repro.server.platform import build_server_system

TEMP_TOL_K = 1e-9


@pytest.fixture(scope="module")
def platform():
    return build_server_system()


def _random_fleet_state(system, rng, n_nodes, n_classes):
    """Random per-node states drawn from a small pool of actuator classes.

    Pooled fan/TEC patterns force genuinely shared classes (the batched
    multi-RHS path) alongside singleton classes, instead of every node
    landing in its own group.
    """
    n_tiles = system.chip.n_tiles
    n_tec = system.tec.n_devices
    n_th = system.nodes.n_nodes
    fan_pool = rng.integers(1, system.fan.n_levels + 1, size=n_classes)
    tec_pool = rng.integers(0, 2, size=(n_classes, n_tec)).astype(float)
    cls = rng.integers(0, n_classes, size=n_nodes)
    return {
        "activity": rng.uniform(0.0, 1.0, size=(n_nodes, n_tiles)),
        "dvfs_levels": rng.integers(
            0, system.power.component_power.dvfs.n_levels, size=(n_nodes, n_tiles)
        ),
        "fan_levels": fan_pool[cls].astype(float),
        "tec": tec_pool[cls],
        "t_nodes_k": rng.uniform(305.0, 345.0, size=(n_nodes, n_th)),
    }


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_nodes=st.integers(min_value=1, max_value=10),
    n_classes=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_steppers_agree_on_random_mixes(platform, seed, n_nodes, n_classes):
    system = platform.system
    rng = np.random.default_rng(seed)
    state = _random_fleet_state(system, rng, n_nodes, n_classes)

    seq = SequentialStepper(system).advance(dt_s=1.0, **state)
    bat = BatchedStepper(system).advance(dt_s=1.0, **state)

    assert np.max(np.abs(bat.t_nodes_k - seq.t_nodes_k)) <= TEMP_TOL_K
    assert np.max(np.abs(bat.t_steady_k - seq.t_steady_k)) <= TEMP_TOL_K
    assert np.array_equal(bat.p_dyn_w, seq.p_dyn_w)
    assert np.array_equal(bat.p_leak_w, seq.p_leak_w)
    assert np.array_equal(bat.p_tec_w, seq.p_tec_w)

    # Decisions derived from the two step results must match exactly —
    # a 1-ulp temperature drift flips hysteresis comparisons.
    policy = FleetPolicy(
        system,
        t_threshold_c=platform.t_threshold_c,
        peak_ips=platform.params.peak_ips,
    )
    comp = system.nodes.component_slice
    for res_a, res_b in ((seq, bat),):
        tp_a = policy.tile_peaks_c(res_a.t_nodes_k[:, comp] - 273.15)
        tp_b = policy.tile_peaks_c(res_b.t_nodes_k[:, comp] - 273.15)
        assert np.array_equal(
            policy.decide_tec(tp_a, state["tec"]),
            policy.decide_tec(tp_b, state["tec"]),
        )
        offered = rng.uniform(0.0, 2.0 * platform.params.peak_ips, size=(n_nodes, system.chip.n_tiles))
        lv_a, thr_a = policy.decide_dvfs(offered, tp_a)
        lv_b, thr_b = policy.decide_dvfs(offered, tp_b)
        assert np.array_equal(lv_a, lv_b)
        assert np.array_equal(thr_a, thr_b)
        assert np.array_equal(
            policy.decide_fan(tp_a.max(axis=1), state["fan_levels"]),
            policy.decide_fan(tp_b.max(axis=1), state["fan_levels"]),
        )


@pytest.mark.parametrize("router", ["identity", "round-robin", "thermal"])
def test_full_sim_digest_matches_sequential(platform, router):
    def cfg(stepper):
        return FleetConfig(
            n_nodes=6,
            duration_s=180,
            trace="diurnal",
            router=router,
            stepper=stepper,
            shards=1,
        )

    batched = run_fleet(cfg("batched"), platform=platform)
    sequential = run_fleet(cfg("sequential"), platform=platform)
    assert batched.digest == sequential.digest
    assert batched.summary()["energy_j"] == sequential.summary()["energy_j"]


def test_fast_forward_preserves_physics(platform):
    # Fast-forward freezes a settled state, while classic stepping keeps
    # relaxing temperatures the last <= ff_temp_tol_k toward steady — so
    # the skip is an approximation *bounded by that tolerance*, plus
    # multiply-vs-repeated-add rounding on the scalar accumulators.
    # Decisions and the request ledger must still agree exactly.
    from repro.fleet.sim import FleetSim
    from repro.fleet.traces import fleet_demand

    def shard(ff):
        cfg = FleetConfig(
            n_nodes=4,
            duration_s=240,
            trace="diurnal",
            router="round-robin",
            stepper="batched",
            fast_forward=ff,
            shards=1,
        )
        demand = fleet_demand(cfg.trace, cfg.duration_s, seed=cfg.seed)
        return FleetSim(platform, cfg, n_nodes=cfg.n_nodes, demand=demand).run()

    with_ff = shard(True)
    without = shard(False)
    assert with_ff.ff_intervals > 0  # the skip path actually engaged
    assert without.ff_intervals == 0
    assert with_ff.sim_time_s == without.sim_time_s
    assert with_ff.node_intervals == without.node_intervals
    # Physics agreement bounded by the settle tolerance.
    tol_k = 10 * FleetConfig().ff_temp_tol_k
    assert np.max(np.abs(with_ff.final_t_nodes_k - without.final_t_nodes_k)) <= tol_k
    assert abs(with_ff.peak_temp_c - without.peak_temp_c) <= tol_k
    assert with_ff.energy_j == pytest.approx(without.energy_j, rel=1e-9)
    assert with_ff.inst_served == pytest.approx(without.inst_served, rel=1e-9)
    assert with_ff.requests_routed == pytest.approx(
        without.requests_routed, rel=1e-9
    )
    # Decision trajectory and request ledger agree exactly.
    assert with_ff.violation_node_intervals == without.violation_node_intervals
    assert with_ff.throttled_node_intervals == without.throttled_node_intervals
    assert np.array_equal(with_ff.latency_counts, without.latency_counts)
    assert np.array_equal(with_ff.final_backlog_inst, without.final_backlog_inst)
    assert np.array_equal(with_ff.final_fan, without.final_fan)
    assert np.array_equal(with_ff.final_tec, without.final_tec)
    assert np.array_equal(with_ff.final_dvfs, without.final_dvfs)
