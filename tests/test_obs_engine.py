"""Engine integration: instrumentation contract + zero observer effect.

These tests pin the names exported by a profiled run (the contract that
``docs/OBSERVABILITY.md`` documents) and the guarantee that enabling
telemetry does not change the simulation at all.
"""

import pytest

from repro.cli import main
from repro.core.engine import EngineConfig, SimulationEngine
from repro.core.export import metrics_to_json, run_manifest, telemetry_to_jsonl
from repro.core.problem import EnergyProblem
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.obs import Telemetry, read_jsonl, telemetry_session
from repro.perf import splash2_workload
from repro.perf.workload import WorkloadRun

MAX_TIME_S = 0.05  # ~25 recorded 2 ms intervals: enough to exercise spans


def _run_engine():
    """One short, fully deterministic TECfan run on a fresh system."""
    system = build_system()
    workload = splash2_workload("lu", 16, system.chip)
    engine = SimulationEngine(
        system,
        EnergyProblem(t_threshold_c=85.0),
        EngineConfig(max_time_s=MAX_TIME_S),
    )
    run = WorkloadRun(workload, system.chip, ref_freq_ghz=2.0)
    return engine.run(run, TECfanController())


@pytest.fixture(scope="module")
def profiled():
    """(telemetry, result) of one instrumented engine run."""
    tel = Telemetry()
    with telemetry_session(tel):
        result = _run_engine()
    return tel, result


def test_required_spans_recorded(profiled):
    tel, result = profiled
    spans = tel.snapshot()["spans"]
    for name in ("engine.prime", "engine.run", "engine.step",
                 "controller.decide", "thermal.solve", "thermal.step"):
        assert name in spans, f"span {name!r} missing"
        assert spans[name]["count"] >= 1
        assert spans[name]["total_s"] > 0.0
        assert spans[name]["mean_s"] > 0.0
    # engine.step spans cover priming + the recorded run; the parent
    # edges split them apart: exactly one step per recorded interval
    # nests under engine.run.
    edges = {(e["parent"], e["child"]): e["count"]
             for e in tel.snapshot()["span_edges"]}
    assert edges[("engine.run", "engine.step")] == len(result.trace)
    assert spans["engine.step"]["count"] >= len(result.trace)
    assert ("engine.prime", "engine.step") in edges


def test_contract_counters_present_even_at_zero(profiled):
    tel, result = profiled
    counters = tel.snapshot()["counters"]
    for name in ("engine.intervals", "temp.violations", "tec.switch_events",
                 "fan.level_changes", "controller.hot_iterations",
                 "controller.cool_iterations"):
        assert name in counters, f"counter {name!r} missing"
    assert counters["engine.intervals"] == len(result.trace)
    # TECfan always iterates (hot or cool) every decision.
    assert (counters["controller.hot_iterations"]
            + counters["controller.cool_iterations"]) > 0
    assert counters["estimator.evaluations"] > 0


def test_solver_histogram_and_interval_events(profiled):
    tel, result = profiled
    snap = tel.snapshot()
    hist = snap["histograms"]["thermal.solver_ms"]
    assert hist["count"] == snap["spans"]["thermal.solve"]["count"]
    assert hist["mean"] > 0.0
    assert snap["histograms"]["engine.peak_temp_c"]["count"] == len(result.trace)

    events = [e for e in tel.events if e["kind"] == "interval"]
    assert len(events) == len(result.trace)
    first = events[0]
    for key in ("time_s", "dt_s", "peak_temp_c", "p_chip_w", "tec_on",
                "fan_level", "mean_dvfs_level"):
        assert key in first


def test_manifest_carries_run_context_and_metrics(profiled):
    tel, result = profiled
    manifest = run_manifest(tel, metrics=result.metrics)
    ctx = manifest["context"]
    assert ctx["workload"] == "lu"
    assert ctx["policy"] == result.metrics.policy
    assert ctx["metrics"]["peak_temp_c"] == result.metrics.peak_temp_c
    assert ctx["engine_config"]["max_time_s"] == MAX_TIME_S
    spans = manifest["telemetry"]["spans"]
    assert spans["thermal.solve"]["total_s"] > 0.0


def test_jsonl_export_round_trips(profiled, tmp_path):
    tel, result = profiled
    path = tmp_path / "run.jsonl"
    telemetry_to_jsonl(tel, path, metrics=result.metrics)
    parsed = read_jsonl(path)
    assert parsed["manifest"]["context"]["metrics"]["energy_j"] == (
        result.metrics.energy_j
    )
    assert parsed["spans"] == tel.snapshot()["spans"]
    assert parsed["counters"]["engine.intervals"] == len(result.trace)
    assert len(parsed["events"]) == len(result.trace)


def test_telemetry_has_no_observer_effect():
    """Enabling telemetry must not change the simulation one bit."""
    plain = _run_engine()
    with telemetry_session():
        observed = _run_engine()
    assert metrics_to_json(observed.metrics) == metrics_to_json(plain.metrics)
    assert observed.trace.peak_temp_c == pytest.approx(
        plain.trace.peak_temp_c, abs=0.0
    )


def test_cli_profile_renders_tables(capsys, tmp_path):
    path = tmp_path / "prof.jsonl"
    rc = main([
        "profile", "--max-time-s", "0.02", "--telemetry", str(path),
    ])
    assert rc == 0
    live = capsys.readouterr().out
    assert "engine.step" in live
    assert "thermal.solve" in live
    assert "controller.cool_iterations" in live
    assert path.exists()

    rc = main(["profile", "--load", str(path)])
    assert rc == 0
    loaded = capsys.readouterr().out
    assert "engine.step" in loaded
    assert "thermal.solver_ms" in loaded
