"""Satellite: N=1 identity-router fleet == plain SimulationEngine run.

The engine tier of the fleet must be a strict generalization: with one
node and identity routing, `run_fleet_engines` must produce a result
whose `checkpoint.result_digest` equals a direct `_run` of the same
workload — in classic and interval-kernel engine modes, serial and
through the worker pool (the pooled path proves the cross-process
round-trip is bit-exact too).
"""

import pytest

from repro.analysis.server_experiment import _run, build_server_workload
from repro.checkpoint import result_digest
from repro.core.tecfan import TECfanController
from repro.fleet import FleetConfig, node_engine_workload, run_fleet, run_fleet_engines
from repro.server.platform import build_server_system
from repro.parallel import WorkerPool

MINUTES = 1


@pytest.fixture(scope="module")
def platform():
    return build_server_system()


@pytest.fixture(scope="module")
def reference_digests(platform):
    """Digest of the plain single-server experiment, per engine mode."""
    out = {}
    for mode, kwargs in (("classic", {}), ("interval", {"interval_kernel": True})):
        workload = build_server_workload(platform, minutes=MINUTES)
        result = _run(platform, workload, TECfanController(), MINUTES, **kwargs)
        out[mode] = result_digest(result)
    return out


def test_node0_workload_matches_single_server(platform):
    import numpy as np

    ours = node_engine_workload(platform, node_index=0, minutes=MINUTES)
    theirs = build_server_workload(platform, minutes=MINUTES)
    assert ours.name == theirs.name
    assert np.array_equal(ours.demand, theirs.demand)
    assert ours.peak_ips == theirs.peak_ips


@pytest.mark.parametrize("mode", ["classic", "interval"])
def test_single_node_fleet_digest_serial(platform, reference_digests, mode):
    kwargs = {"interval_kernel": True} if mode == "interval" else {}
    fleet = run_fleet_engines(
        platform=platform, n_nodes=1, minutes=MINUTES, **kwargs
    )
    assert fleet.digests == [reference_digests[mode]]


@pytest.mark.slow
@pytest.mark.parametrize("mode", ["classic", "interval"])
def test_single_node_fleet_digest_pooled(platform, reference_digests, mode):
    kwargs = {"interval_kernel": True} if mode == "interval" else {}
    with WorkerPool(2) as pool:
        pool.prime()
        fleet = run_fleet_engines(
            platform=platform, n_nodes=1, minutes=MINUTES, pool=pool, **kwargs
        )
    assert fleet.digests == [reference_digests[mode]]


@pytest.mark.slow
def test_fleet_shards_pooled_matches_serial(platform):
    """Interval tier: pinned shard count => worker count is irrelevant."""
    cfg = FleetConfig(
        n_nodes=8,
        duration_s=120,
        trace="diurnal",
        router="round-robin",
        stepper="batched",
        shards=2,
    )
    serial = run_fleet(cfg, platform=platform, jobs=1)
    with WorkerPool(2) as pool:
        pool.prime()
        pooled = run_fleet(cfg, platform=platform, pool=pool)
    assert serial.shard_digests == pooled.shard_digests
    assert serial.digest == pooled.digest
