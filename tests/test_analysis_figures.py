"""Figure data generators (fast paths; full runs live in benchmarks)."""

import numpy as np
import pytest

from repro.analysis.figures import (
    Figure4Row,
    Figure4Series,
    format_figure4,
    format_figure4_timeseries,
    format_figure7,
)


def test_format_figure4_renders():
    rows = [
        Figure4Row(
            workload="cholesky",
            threads=16,
            t_threshold_c=90.0,
            peak_fan1_c=90.0,
            peak_fan2_c=96.0,
            peak_fantec2_c=90.5,
            fan1_power_w=14.4,
            fan2_power_w=3.8,
            tec_power_w=1.2,
        )
    ]
    out = format_figure4(rows)
    assert "cholesky" in out
    assert "5.00" in out  # 3.8 + 1.2 cooling power column
    assert "14.4" in out


def test_format_figure4_timeseries_strides():
    t = np.arange(10, dtype=float)
    series = Figure4Series(
        workload="lu",
        threads=16,
        t_threshold_c=85.0,
        time_ms=t,
        fan1_peak_c=np.full(10, 84.0),
        fan2_peak_c=np.full(10, 88.0),
        fantec2_peak_c=np.full(10, 85.2),
    )
    out = format_figure4_timeseries(series, stride=5)
    body = [l for l in out.splitlines() if l.strip() and l[0].isspace()]
    assert len(body) == 2  # rows 0 and 5
    assert "85.00" in out  # threshold in the title


def test_format_figure7():
    out = format_figure7(
        {
            "OFTEC": {"delay": 1.0, "power": 1.0, "energy": 1.0, "edp": 1.0},
            "TECfan": {"delay": 1.0, "power": 0.74, "energy": 0.74,
                       "edp": 0.74},
        }
    )
    assert "OFTEC" in out and "TECfan" in out
    assert "0.740" in out


@pytest.mark.slow
def test_figure5_and_6_structures(system16):
    """Structure-level checks on a single-benchmark comparison."""
    from repro.analysis.figures import (
        SplashComparison,
        figure5,
        figure6,
        figure6_averages,
        splash_comparison,
    )

    comp = splash_comparison(system16, cases=(("lu", 16),))
    assert isinstance(comp, SplashComparison)
    f5 = figure5(comp)
    assert "lu" in f5
    assert any(k.endswith(".peak_c") for k in f5["lu"])
    f6 = figure6(comp)
    for policy, vals in f6["lu"].items():
        assert set(vals) == {"delay", "power", "energy", "edp"}
        assert vals["edp"] == pytest.approx(
            vals["energy"] * vals["delay"], rel=1e-9
        )
    avg = figure6_averages(comp)
    assert avg["Fan-only"]["energy"] == pytest.approx(1.0)
