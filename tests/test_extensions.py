"""Extension features: chip-level DVFS, TEC drive modes.

Both come straight from the paper's margins: Sec. III-E notes TECfan
"can be integrated with chip-level DVFS seamlessly", and Sec. III
declines per-device current control because of its regulator cost —
implemented here so the trade-offs can be measured.
"""

import numpy as np
import pytest

from repro.cooling.tec import build_tec_array
from repro.core.estimator import NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.system import build_system
from repro.core.tecfan import TECfanController
from repro.exceptions import ConfigurationError
from repro.perf.ips import IPSTracker


# ---------------------------------------------------------------------------
# Chip-level DVFS
# ---------------------------------------------------------------------------


def test_chip_level_candidates_move_together(system2):
    ctrl = TECfanController(chip_level_dvfs=True)
    state = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    )
    lowered = ctrl._dvfs_candidates(state, system2, -1)
    assert len(lowered) == 1
    assert np.all(lowered[0].dvfs == system2.dvfs.max_level - 1)
    # At the top, no raise candidate exists.
    assert ctrl._dvfs_candidates(state, system2, +1) == []


def test_chip_level_clips_mixed_levels(system2):
    ctrl = TECfanController(chip_level_dvfs=True)
    state = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    ).with_dvfs_vector(np.array([0, 3]))
    lowered = ctrl._dvfs_candidates(state, system2, -1)
    assert len(lowered) == 1
    np.testing.assert_array_equal(lowered[0].dvfs, [0, 2])


def test_per_core_candidates_are_per_core(system2):
    ctrl = TECfanController()
    state = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    )
    lowered = ctrl._dvfs_candidates(state, system2, -1)
    assert len(lowered) == system2.n_cores


def test_chip_level_controller_decides(system2):
    """End-to-end decide() under chip-level mode throttles all cores in
    lock step under thermal pressure."""
    ctrl = TECfanController(chip_level_dvfs=True, estimator_kind="full")
    state = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    )
    est = NextIntervalEstimator(
        system=system2, ips_predictor=IPSTracker(system2.dvfs)
    )
    n = system2.nodes.n_components
    est.begin_interval(
        np.full(n, 80.0), np.full(n, 0.6),
        np.full(system2.n_cores, 1e9), state, 2e-3,
    )
    e0 = est.evaluate(state)
    problem = EnergyProblem(t_threshold_c=e0.peak_temp_c - 15.0)
    out = ctrl.decide(state, np.full(n, 80.0), est, problem)
    assert len(set(out.dvfs.tolist())) == 1  # lock-stepped


# ---------------------------------------------------------------------------
# TEC drive modes
# ---------------------------------------------------------------------------


def test_joule_scale_modes(chip2):
    switched = build_tec_array(chip2, drive_mode="switched")
    current = build_tec_array(chip2, drive_mode="current")
    s = np.array([0.0, 0.5, 1.0])
    np.testing.assert_allclose(switched.joule_scale(s), [0.0, 0.5, 1.0])
    np.testing.assert_allclose(current.joule_scale(s), [0.0, 0.25, 1.0])


def test_unknown_drive_mode_rejected(chip2):
    with pytest.raises(ConfigurationError):
        build_tec_array(chip2, drive_mode="quantum")


def test_full_drive_identical_between_modes():
    """At s = 1 the two electronics are indistinguishable."""
    a = build_system(rows=1, cols=2, tec_drive_mode="switched")
    b = build_system(rows=1, cols=2, tec_drive_mode="current")
    p = np.full(a.nodes.n_components, 0.3)
    tec = np.ones(a.n_tec_devices)
    ta = a.solver.solve(p, 2, tec)
    tb = b.solver.solve(p, 2, tec)
    np.testing.assert_allclose(ta, tb)
    assert a.tec_power_w(tec, ta) == pytest.approx(b.tec_power_w(tec, tb))


def test_partial_drive_current_mode_cheaper():
    a = build_system(rows=1, cols=2, tec_drive_mode="switched")
    b = build_system(rows=1, cols=2, tec_drive_mode="current")
    p = np.full(a.nodes.n_components, 0.3)
    half = np.full(a.n_tec_devices, 0.5)
    ta = a.solver.solve(p, 2, half)
    tb = b.solver.solve(p, 2, half)
    # Less Joule self-heating -> no hotter anywhere on the die.
    comp = a.nodes.component_slice
    assert tb[comp].max() <= ta[comp].max() + 1e-9
    assert b.tec_power_w(half, tb) < a.tec_power_w(half, ta)


def test_energy_balance_holds_in_current_mode():
    b = build_system(rows=1, cols=2, tec_drive_mode="current")
    nd = b.nodes
    p = np.full(nd.n_components, 0.2)
    half = np.full(b.n_tec_devices, 0.5)
    t = b.solver.solve(p, 2, half)
    g_conv = b.fan.convection_conductance_w_per_k(2)
    out = float(
        ((g_conv / nd.n_tiles) * (t[nd.sink_slice] - b.package.ambient_k)).sum()
    )
    assert out == pytest.approx(
        float(p.sum()) + b.tec_power_w(half, t), rel=1e-6
    )
