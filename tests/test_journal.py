"""Append-only task journal: framing, tail repair, resume semantics.

Worker functions live at module level so the spawn start method can
pickle them by qualified name (same discipline as test_worker_pool).
"""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import CheckpointError
from repro.journal import (
    JOURNAL_MAGIC,
    JOURNAL_SCHEMA,
    TaskJournal,
    _encode_frame,
    scan_journal,
)
from repro.obs import Telemetry, telemetry_session
from repro.parallel import parallel_map

_CALLS: list = []


def _square(x):
    _CALLS.append(x)
    return x * x


# ----------------------------------------------------------------------
# frame format and scanning
# ----------------------------------------------------------------------
def test_round_trip_header_meta_tasks(tmp_path):
    path = tmp_path / "run.tfj"
    with TaskJournal(path, header={"kind": "demo", "n_tasks": 3}) as j:
        j.put_meta("plan", [1, 2, 3])
        j.record_task(0, "a")
        j.record_task(2, "c")
    header, metas, tasks, truncated = scan_journal(path)
    assert header == {
        "kind": "demo",
        "n_tasks": 3,
        "journal_schema": JOURNAL_SCHEMA,
    }
    assert metas == {"plan": [1, 2, 3]}
    assert tasks == {0: "a", 2: "c"}
    assert truncated is None
    # Frames are self-delimiting: the file starts with the magic.
    assert path.read_bytes()[:4] == JOURNAL_MAGIC


def test_reopen_resumes_tasks_and_appends(tmp_path):
    path = tmp_path / "run.tfj"
    with TaskJournal(path, header={"kind": "demo"}) as j:
        j.record_task(0, 10)
    with TaskJournal(path, header={"kind": "demo"}) as j:
        assert j.tasks == {0: 10}
        j.record_task(1, 11)
    _, _, tasks, _ = scan_journal(path)
    assert tasks == {0: 10, 1: 11}


@pytest.mark.parametrize(
    "tail, reason",
    [
        (b"TF", "torn frame header"),
        (JOURNAL_MAGIC + b"\xff\xff", "torn frame header"),
        (_encode_frame(("task", 9, "x"))[:-3], "torn payload"),
        (
            _encode_frame(("task", 9, "x"))[:-3] + b"zzz",
            "CRC mismatch",
        ),
    ],
)
def test_torn_tail_detected_reported_and_repaired(tmp_path, tail, reason):
    path = tmp_path / "run.tfj"
    with TaskJournal(path, header={"kind": "demo"}) as j:
        j.record_task(0, "kept")
    with open(path, "ab") as fh:
        fh.write(tail)
    # Read-only scan: intact prefix readable, tear reported.
    header, _, tasks, truncated = scan_journal(path)
    assert tasks == {0: "kept"}
    assert truncated["reason"] == reason
    assert truncated["bytes_dropped"] == len(tail)
    # Read-write open repairs the tail (and counts the event)...
    tel = Telemetry()
    with telemetry_session(tel):
        with TaskJournal(path, header={"kind": "demo"}) as j:
            assert j.tasks == {0: "kept"}
            assert j.truncated["reason"] == reason
            j.record_task(1, "after-repair")
    assert tel.metrics.counter("journal.truncated_tails").value == 1
    # ...so the next scan is clean, with both records intact.
    _, _, tasks, truncated = scan_journal(path)
    assert tasks == {0: "kept", 1: "after-repair"}
    assert truncated is None


def test_header_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "run.tfj"
    TaskJournal(path, header={"kind": "fan-sweep", "workload": "lu"}).close()
    with pytest.raises(CheckpointError, match="different run"):
        TaskJournal(path, header={"kind": "fan-sweep", "workload": "fft"})
    # A subset header (or none) matches fine.
    with TaskJournal(path, header={"kind": "fan-sweep"}) as j:
        assert j.header["workload"] == "lu"


def test_records_without_header_rejected(tmp_path):
    path = tmp_path / "headless.tfj"
    path.write_bytes(_encode_frame(("task", 0, "orphan")))
    with pytest.raises(CheckpointError, match="no header"):
        TaskJournal(path, header={"kind": "demo"})


def test_unpicklable_payload_is_a_tear_not_a_crash(tmp_path):
    path = tmp_path / "run.tfj"
    with TaskJournal(path, header={"kind": "demo"}) as j:
        j.record_task(0, "ok")
    garbage = b"\x93not-a-pickle"
    frame = (
        JOURNAL_MAGIC
        + __import__("struct").pack("<II", len(garbage),
                                    __import__("zlib").crc32(garbage))
        + garbage
    )
    with open(path, "ab") as fh:
        fh.write(frame)
    _, _, tasks, truncated = scan_journal(path)
    assert tasks == {0: "ok"}
    assert truncated["reason"] == "unpicklable payload"


# ----------------------------------------------------------------------
# parallel_map integration: skip completed work, journal new work
# ----------------------------------------------------------------------
def test_parallel_map_skips_journaled_tasks(tmp_path):
    path = tmp_path / "run.tfj"
    tel = Telemetry()
    _CALLS.clear()
    with telemetry_session(tel):
        with TaskJournal(path, header={"kind": "sq"}) as j:
            out = parallel_map(_square, [1, 2, 3, 4], jobs=None, journal=j)
    assert out == [1, 4, 9, 16]
    assert _CALLS == [1, 2, 3, 4]
    assert tel.metrics.counter("journal.tasks_recorded").value == 4
    assert tel.metrics.counter("journal.tasks_skipped").value == 0

    # Resume: everything is journaled, nothing re-executes.
    _CALLS.clear()
    tel = Telemetry()
    with telemetry_session(tel):
        with TaskJournal(path, header={"kind": "sq"}) as j:
            out = parallel_map(_square, [1, 2, 3, 4], jobs=None, journal=j)
    assert out == [1, 4, 9, 16]
    assert _CALLS == []
    assert tel.metrics.counter("journal.tasks_skipped").value == 4


def test_parallel_map_completes_partial_journal(tmp_path):
    path = tmp_path / "run.tfj"
    with TaskJournal(path, header={"kind": "sq"}) as j:
        j.record_task(1, 4)  # pretend a prior driver finished task 1
    _CALLS.clear()
    with TaskJournal(path, header={"kind": "sq"}) as j:
        out = parallel_map(_square, [1, 2, 3], jobs=None, journal=j)
    assert out == [1, 4, 9]
    assert _CALLS == [1, 3]  # only the missing cells ran
    _, _, tasks, _ = scan_journal(path)
    assert tasks == {0: 1, 1: 4, 2: 9}


def test_stale_out_of_range_keys_are_ignored(tmp_path):
    path = tmp_path / "run.tfj"
    with TaskJournal(path, header={"kind": "sq"}) as j:
        j.record_task(7, 49)  # beyond this run's payload list
        j.record_task("weird", None)
    _CALLS.clear()
    with TaskJournal(path, header={"kind": "sq"}) as j:
        out = parallel_map(_square, [1, 2], jobs=None, journal=j)
    assert out == [1, 4]
    assert _CALLS == [1, 2]


def test_journal_payload_values_survive_pickle_boundary(tmp_path):
    # Values round-trip through the frame pickling untouched.
    path = tmp_path / "run.tfj"
    value = {"arr": [1.5, 2.5], "nested": {"k": (1, 2)}}
    with TaskJournal(path, header={"kind": "demo"}) as j:
        j.record_task(0, value)
    _, _, tasks, _ = scan_journal(path)
    assert tasks[0] == value
    assert pickle.loads(pickle.dumps(tasks[0])) == value
