"""Trace recording and run metrics."""

import numpy as np
import pytest

from repro.core.metrics import RunMetrics, summarize
from repro.core.problem import EnergyProblem
from repro.core.trace import TraceRecorder


def filled_trace(peaks, dt=2e-3, power=100.0):
    tr = TraceRecorder()
    for i, p in enumerate(peaks):
        tr.append(
            time_s=i * dt,
            dt_s=dt,
            peak_temp_c=p,
            p_chip_w=power,
            p_cores_w=power - 15.0,
            p_tec_w=0.6,
            p_fan_w=14.4,
            ips_chip=1e9,
            tec_on=3,
            fan_level=1,
            mean_dvfs_level=5.0,
        )
    return tr


def test_trace_columns():
    tr = filled_trace([80.0, 81.0])
    assert len(tr) == 2
    np.testing.assert_allclose(tr.peak_temp_c, [80.0, 81.0])
    np.testing.assert_allclose(tr.p_fan_w, 14.4)
    np.testing.assert_allclose(tr.tec_on, 3.0)


def test_energy_integral():
    tr = filled_trace([80.0] * 5, dt=2e-3, power=100.0)
    assert tr.energy_j() == pytest.approx(5 * 2e-3 * 100.0)
    assert tr.average_power_w() == pytest.approx(100.0)


def test_summarize_metrics():
    problem = EnergyProblem(t_threshold_c=85.0)
    tr = filled_trace([80.0, 86.0, 84.0, 90.0])  # 2 of 4 violate (>85.5)
    m = summarize(tr, problem, "P", "wl", fan_level=1, instructions=4e6)
    assert m.execution_time_s == pytest.approx(8e-3)
    assert m.peak_temp_c == pytest.approx(90.0)
    assert m.violation_rate == pytest.approx(0.5)
    assert m.epi == pytest.approx(m.energy_j / 4e6)
    assert m.edp == pytest.approx(m.energy_j * m.execution_time_s)


def test_violation_margin_in_counting():
    problem = EnergyProblem(t_threshold_c=85.0)  # margin 0.5 default
    tr = filled_trace([85.2, 85.4, 85.6])
    m = summarize(tr, problem, "P", "wl", 1, 1e6)
    assert m.violation_rate == pytest.approx(1 / 3)


def test_normalized_to():
    problem = EnergyProblem(t_threshold_c=85.0)
    base = summarize(filled_trace([80.0] * 4, power=100.0), problem,
                     "base", "wl", 1, 1e6)
    half = summarize(filled_trace([80.0] * 4, power=50.0), problem,
                     "half", "wl", 1, 1e6)
    n = half.normalized_to(base)
    assert n["power"] == pytest.approx(0.5)
    assert n["energy"] == pytest.approx(0.5)
    assert n["delay"] == pytest.approx(1.0)
    assert n["edp"] == pytest.approx(0.5)


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        summarize(TraceRecorder(), EnergyProblem(t_threshold_c=85.0),
                  "P", "wl", 1, 1.0)


def test_variable_dt_weighting():
    tr = TraceRecorder()
    tr.append(time_s=0.0, dt_s=1.0, peak_temp_c=80.0, p_chip_w=100.0,
              p_cores_w=85.0, p_tec_w=0.6, p_fan_w=14.4, ips_chip=1e9,
              tec_on=0, fan_level=1, mean_dvfs_level=5.0)
    tr.append(time_s=1.0, dt_s=3.0, peak_temp_c=90.0, p_chip_w=20.0,
              p_cores_w=5.0, p_tec_w=0.6, p_fan_w=14.4, ips_chip=1e9,
              tec_on=0, fan_level=1, mean_dvfs_level=5.0)
    assert tr.average_power_w() == pytest.approx((100 + 3 * 20) / 4)
    problem = EnergyProblem(t_threshold_c=85.0)
    m = summarize(tr, problem, "P", "wl", 1, 1e6)
    assert m.violation_rate == pytest.approx(3.0 / 4.0)  # time-weighted


def test_append_is_keyword_only():
    tr = TraceRecorder()
    with pytest.raises(TypeError):
        tr.append(0.0, 1.0, 80.0, 100.0, 85.0, 0.6, 14.4, 1e9, 0, 1, 5.0)
