"""Steady-state solver: physics sanity + LU caching."""

import numpy as np
import pytest

from repro import units
from repro.thermal.steady_state import SteadyStateSolver


@pytest.fixture()
def solver(system2):
    # Fresh solver so cache statistics start at zero.
    return SteadyStateSolver(system2.cond)


def zeros_tec(system):
    return np.zeros(system.n_tec_devices)


def test_zero_power_relaxes_to_ambient(system2, solver):
    t = solver.solve(np.zeros(system2.nodes.n_components), 1, zeros_tec(system2))
    np.testing.assert_allclose(t, system2.package.ambient_k, atol=1e-9)


def test_positive_power_heats_above_ambient(system2, solver):
    p = np.full(system2.nodes.n_components, 0.2)
    t = solver.solve(p, 1, zeros_tec(system2))
    assert np.all(t > system2.package.ambient_k)


def test_linearity_in_power(system2, solver):
    """G T = P is linear: doubling (P - ambient load) doubles the rise."""
    p = np.full(system2.nodes.n_components, 0.1)
    amb = system2.package.ambient_k
    t1 = solver.solve(p, 1, zeros_tec(system2))
    t2 = solver.solve(2 * p, 1, zeros_tec(system2))
    np.testing.assert_allclose(t2 - amb, 2 * (t1 - amb), rtol=1e-9)


def test_slower_fan_is_hotter(system2, solver):
    p = np.full(system2.nodes.n_components, 0.2)
    peaks = []
    for lv in range(1, system2.fan.n_levels + 1):
        t = solver.solve(p, lv, zeros_tec(system2))
        peaks.append(t[system2.nodes.component_slice].max())
    assert all(b > a for a, b in zip(peaks, peaks[1:]))


def test_tec_on_cools_the_hotspot(system2, solver):
    """Activating the devices over the hottest component must lower it."""
    nd = system2.nodes
    p = np.zeros(nd.n_components)
    hot_idx = 5
    p[hot_idx] = 1.0
    t0 = solver.solve(p, 2, zeros_tec(system2))
    tec = zeros_tec(system2)
    for dev in system2.tec.devices_over_component(hot_idx):
        tec[dev] = 1.0
    t1 = solver.solve(p, 2, tec)
    assert t1[hot_idx] < t0[hot_idx] - 0.5


def test_tec_heats_the_spreader(system2, solver):
    """The pumped heat plus Joule loss lands on the hot side."""
    nd = system2.nodes
    p = np.full(nd.n_components, 0.2)
    tec = np.ones(system2.n_tec_devices)
    t0 = solver.solve(p, 1, zeros_tec(system2))
    t1 = solver.solve(p, 1, tec)
    assert t1[nd.spreader_slice].mean() > t0[nd.spreader_slice].mean()


def test_lu_cache_reused_for_same_configuration(system2, solver):
    p = np.full(system2.nodes.n_components, 0.2)
    solver.solve(p, 1, zeros_tec(system2))
    n_fact = solver.n_factorizations
    for _ in range(5):
        solver.solve(p + np.random.default_rng(0).random(p.shape), 1,
                     zeros_tec(system2))
    assert solver.n_factorizations == n_fact  # same G -> no refactorization
    assert solver.n_solves == n_fact + 5


def test_cache_key_distinguishes_fan_and_tec(system2, solver):
    p = np.full(system2.nodes.n_components, 0.2)
    solver.solve(p, 1, zeros_tec(system2))
    solver.solve(p, 2, zeros_tec(system2))
    tec = zeros_tec(system2)
    tec[0] = 1.0
    solver.solve(p, 1, tec)
    assert solver.n_factorizations == 3


def test_cache_eviction(system2):
    solver = SteadyStateSolver(system2.cond, cache_size=2)
    p = np.full(system2.nodes.n_components, 0.2)
    for lv in (1, 2, 3):
        solver.solve(p, lv, zeros_tec(system2))
    solver.solve(p, 1, zeros_tec(system2))  # evicted -> refactorize
    assert solver.n_factorizations == 4


def test_fractional_activation_between_on_and_off(system2, solver):
    nd = system2.nodes
    p = np.full(nd.n_components, 0.3)
    t_off = solver.solve(p, 2, zeros_tec(system2))
    t_half = solver.solve(p, 2, np.full(system2.n_tec_devices, 0.5))
    t_on = solver.solve(p, 2, np.ones(system2.n_tec_devices))
    peak = lambda t: t[nd.component_slice].max()
    assert peak(t_on) <= peak(t_half) <= peak(t_off)
