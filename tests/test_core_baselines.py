"""Baseline policies: reactive TEC, reactive DVFS, their combination."""

import numpy as np
import pytest

from repro.core.baselines import (
    DVFS_RAISE_HYSTERESIS_C,
    DVFSTECController,
    FanDVFSController,
    FanOnlyController,
    FanTECController,
    TEC_OFF_HYSTERESIS_C,
)
from repro.core.estimator import NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.perf.ips import IPSTracker

TH = 80.0


@pytest.fixture()
def est(system2, base_state2):
    e = NextIntervalEstimator(
        system=system2, ips_predictor=IPSTracker(system2.dvfs)
    )
    n = system2.nodes.n_components
    e.begin_interval(
        np.full(n, 70.0), np.full(n, 0.1),
        np.full(system2.n_cores, 1e9), base_state2, 2e-3,
    )
    return e


@pytest.fixture()
def problem():
    return EnergyProblem(t_threshold_c=TH)


def temps(system, value):
    return np.full(system.nodes.n_components, float(value))


def test_fan_only_never_acts(system2, base_state2, est, problem):
    ctrl = FanOnlyController()
    out = ctrl.decide(base_state2, temps(system2, 150.0), est, problem)
    assert out is base_state2
    assert ctrl.decide_fan(base_state2, None, None, est, problem) == 1


def test_fantec_turns_on_over_violation(system2, base_state2, est, problem):
    t = temps(system2, 70.0)
    hot_comp = 3
    t[hot_comp] = TH + 2.0
    out = FanTECController().decide(base_state2, t, est, problem)
    over = system2.tec.devices_over_component(hot_comp)
    assert np.all(out.tec[over] == 1.0)
    # Devices elsewhere stay off.
    assert out.tec_on_count == len(over)


def test_fantec_hysteresis_band_holds(system2, est, problem):
    on = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    ).with_tec_vector(np.ones(system2.n_tec_devices))
    # Inside the band: below threshold but above threshold - hysteresis.
    t = temps(system2, TH - TEC_OFF_HYSTERESIS_C / 2)
    out = FanTECController().decide(on, t, est, problem)
    assert out.tec_on_count == system2.n_tec_devices
    # Below the band: all off.
    t2 = temps(system2, TH - TEC_OFF_HYSTERESIS_C - 1.0)
    out2 = FanTECController().decide(on, t2, est, problem)
    assert out2.tec_on_count == 0


def test_fandvfs_throttles_on_violation(system2, base_state2, est, problem):
    t = temps(system2, 70.0)
    sl = system2.chip.tile_slice(1)
    t[sl.start] = TH + 1.0  # core 1 violates
    out = FanDVFSController().decide(base_state2, t, est, problem)
    assert out.dvfs[1] == system2.dvfs.max_level - 1
    assert out.dvfs[0] == system2.dvfs.max_level


def test_fandvfs_raise_hysteresis(system2, est, problem):
    throttled = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    ).with_dvfs_vector(np.array([2, 2]))
    # Inside the hysteresis band: hold.
    t = temps(system2, TH - DVFS_RAISE_HYSTERESIS_C / 2)
    out = FanDVFSController().decide(throttled, t, est, problem)
    assert np.all(out.dvfs == 2)
    # Cool enough: raise one step.
    t2 = temps(system2, TH - DVFS_RAISE_HYSTERESIS_C - 1.0)
    out2 = FanDVFSController().decide(throttled, t2, est, problem)
    assert np.all(out2.dvfs == 3)


def test_fandvfs_clamps_at_bounds(system2, est, problem):
    bottom = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    ).with_dvfs_vector(np.zeros(system2.n_cores, dtype=int))
    out = FanDVFSController().decide(
        bottom, temps(system2, TH + 10.0), est, problem
    )
    assert np.all(out.dvfs == 0)


def test_dvfstec_is_the_uncoordinated_union(system2, base_state2, est,
                                            problem):
    t = temps(system2, TH + 1.0)  # everything hot
    out = DVFSTECController().decide(base_state2, t, est, problem)
    tec_only = FanTECController().decide(base_state2, t, est, problem)
    dvfs_only = FanDVFSController().decide(base_state2, t, est, problem)
    np.testing.assert_array_equal(out.tec, tec_only.tec)
    np.testing.assert_array_equal(out.dvfs, dvfs_only.dvfs)


def test_baselines_use_full_estimator_kind():
    for ctrl in (FanOnlyController(), FanTECController(),
                 FanDVFSController(), DVFSTECController()):
        assert ctrl.estimator_kind == "full"
