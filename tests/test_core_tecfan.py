"""TECfan heuristic: hot/cool iterations, ordering, fan loop."""

import numpy as np
import pytest

from repro.core.estimator import NextIntervalEstimator
from repro.core.problem import EnergyProblem
from repro.core.state import ActuatorState
from repro.core.tecfan import TECfanController
from repro.perf.ips import IPSTracker


def primed_estimator(system, state, temps_c, p_dyn_scale=1.0, ips=1.2e9):
    est = NextIntervalEstimator(
        system=system, ips_predictor=IPSTracker(system.dvfs)
    )
    n_comp = system.nodes.n_components
    p_dyn = np.full(n_comp, 0.15 * p_dyn_scale)
    est.begin_interval(
        np.full(n_comp, temps_c),
        p_dyn,
        np.full(system.n_cores, ips),
        state,
        2e-3,
    )
    return est


@pytest.fixture()
def controller():
    # Full-model estimator keeps these unit tests deterministic & fast.
    return TECfanController(estimator_kind="full")


def test_cool_chip_stays_at_max_dvfs(system2, base_state2, controller):
    """Well below threshold nothing should change: all cores already at
    max, no TECs on, nothing to save."""
    est = primed_estimator(system2, base_state2, temps_c=60.0)
    problem = EnergyProblem(t_threshold_c=95.0)
    out = controller.decide(base_state2, np.full(
        system2.nodes.n_components, 60.0), est, problem)
    assert np.all(out.dvfs == system2.dvfs.max_level)
    assert out.tec_on_count == 0


def test_hot_iteration_turns_tecs_on_first(system2, base_state2, controller):
    """Paper: 'our algorithm starts with turning on TEC devices'."""
    est = primed_estimator(system2, base_state2, temps_c=70.0,
                           p_dyn_scale=2.0)
    e0 = est.evaluate(base_state2)
    # Threshold just below the predicted peak: mild violation
    # (slightly beyond the 0.5 degC guard band).
    problem = EnergyProblem(t_threshold_c=e0.peak_temp_c - 0.7)
    out = controller.decide(
        base_state2,
        np.full(system2.nodes.n_components, 70.0),
        est,
        problem,
    )
    assert out.tec_on_count > 0
    # TECs engage before any deep throttling: at most one DVFS step.
    assert np.mean(system2.dvfs.max_level - out.dvfs) <= 1.0


def test_hot_iteration_falls_back_to_dvfs(system2, base_state2, controller):
    """When TECs cannot close the gap, DVFS lowering engages."""
    est = primed_estimator(system2, base_state2, temps_c=80.0,
                           p_dyn_scale=4.0)
    e0 = est.evaluate(base_state2)
    problem = EnergyProblem(t_threshold_c=e0.peak_temp_c - 12.0)
    out = controller.decide(
        base_state2,
        np.full(system2.nodes.n_components, 80.0),
        est,
        problem,
    )
    assert np.any(out.dvfs < system2.dvfs.max_level)
    e1 = est.evaluate(out)
    assert e1.peak_temp_c < e0.peak_temp_c


def test_cool_iteration_raises_throttled_cores(system2, controller):
    """Performance priority: a throttled core comes back up when the
    temperature allows."""
    throttled = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    ).with_dvfs_vector(np.zeros(system2.n_cores, dtype=int))
    est = primed_estimator(system2, throttled, temps_c=55.0)
    problem = EnergyProblem(t_threshold_c=95.0)
    out = controller.decide(
        throttled,
        np.full(system2.nodes.n_components, 55.0),
        est,
        problem,
    )
    assert np.all(out.dvfs > 0)


def test_cool_iteration_turns_off_useless_tecs(system2, controller):
    """With temps far below threshold, running TECs is wasted energy."""
    all_on = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level, 1
    ).with_tec_vector(np.ones(system2.n_tec_devices))
    est = primed_estimator(system2, all_on, temps_c=55.0)
    problem = EnergyProblem(t_threshold_c=95.0)
    out = controller.decide(
        all_on, np.full(system2.nodes.n_components, 55.0), est, problem
    )
    assert out.tec_on_count < system2.n_tec_devices


def test_dvfs_first_ablation_prefers_throttling(system2, base_state2):
    """tec_first=False must reach for DVFS before TECs."""
    ctrl = TECfanController(estimator_kind="full", tec_first=False)
    est = primed_estimator(system2, base_state2, temps_c=70.0,
                           p_dyn_scale=2.0)
    e0 = est.evaluate(base_state2)
    problem = EnergyProblem(t_threshold_c=e0.peak_temp_c - 1.0)
    out = ctrl.decide(
        base_state2, np.full(system2.nodes.n_components, 70.0), est, problem
    )
    assert np.any(out.dvfs < system2.dvfs.max_level)


def test_fan_loop_slows_when_cool(system2, base_state2, controller):
    est = primed_estimator(system2, base_state2, temps_c=50.0)
    problem = EnergyProblem(t_threshold_c=95.0)
    avg_p = np.full(system2.nodes.n_components, 0.05)
    level = controller.decide_fan(
        base_state2, avg_p, np.zeros(system2.n_tec_devices), est, problem
    )
    assert level > 1


def test_fan_loop_speeds_up_when_hot(system2, controller):
    state = ActuatorState.initial(
        system2.n_tec_devices, system2.n_cores, system2.dvfs.max_level,
        fan_level=4,
    )
    est = primed_estimator(system2, state, temps_c=80.0, p_dyn_scale=3.0)
    avg_p = np.full(system2.nodes.n_components, 0.45)
    # Threshold low enough that level 4 is estimated hot.
    peak4 = est.evaluate_fan_setting(
        avg_p, np.zeros(system2.n_tec_devices), 4
    )
    problem = EnergyProblem(t_threshold_c=peak4 - 2.0)
    level = controller.decide_fan(
        state, avg_p, np.zeros(system2.n_tec_devices), est, problem
    )
    assert level < 4


def test_iteration_counters(system2, base_state2, controller):
    controller.reset()
    est = primed_estimator(system2, base_state2, temps_c=60.0)
    problem = EnergyProblem(t_threshold_c=95.0)
    controller.decide(
        base_state2, np.full(system2.nodes.n_components, 60.0), est, problem
    )
    assert controller.n_cool_iterations > 0
    assert controller.n_hot_iterations == 0
