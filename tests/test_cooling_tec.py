"""TEC array: placement, footprint weights, Peltier accounting."""

import numpy as np
import pytest

from repro.cooling.datasheets import TEC_GRID_PER_TILE, TECDeviceSpec
from repro.cooling.tec import build_tec_array
from repro.exceptions import ConfigurationError
from repro.floorplan.chip import build_chip


@pytest.fixture(scope="module")
def chip():
    return build_chip(rows=1, cols=2)


@pytest.fixture(scope="module")
def tec(chip):
    return build_tec_array(chip)


def test_paper_grid_and_count(tec, chip):
    """Sec. IV-C: a 3 x 3 array of 0.5 mm devices per core tile."""
    assert TEC_GRID_PER_TILE == (3, 3)
    assert tec.devices_per_tile == 9
    assert tec.n_devices == 9 * chip.n_tiles
    assert tec.device.size_mm == pytest.approx(0.5)


def test_footprint_weights_sum_to_one(tec):
    for p in tec.placements:
        assert p.weights.sum() == pytest.approx(1.0)
        assert np.all(p.weights > 0)


def test_devices_stay_on_their_tile(tec, chip):
    for p in tec.placements:
        for ci in p.component_idx:
            assert chip.components[int(ci)].tile == p.tile


def test_tile_devices_partition(tec, chip):
    all_devices = np.concatenate(
        [tec.tile_devices(t) for t in range(chip.n_tiles)]
    )
    assert sorted(all_devices.tolist()) == list(range(tec.n_devices))


def test_devices_over_component_inverse_mapping(tec):
    for p in tec.placements:
        for ci in p.component_idx:
            assert p.device in tec.devices_over_component(int(ci))


def test_paper_drive_current_and_delay(tec):
    """Sec. III-B: 6 A drive (8 A deemed dangerous); Sec. IV-C: 20 us."""
    assert tec.device.current_a == pytest.approx(6.0)
    assert tec.device.engage_delay_s == pytest.approx(20e-6)


def test_electrical_power_eq9(tec):
    """Eq. (9): P = r I^2 + a I (Th - Tc)."""
    n = tec.n_devices
    state = np.zeros(n)
    state[0] = 1.0
    t_cold = np.full(n, 360.0)
    t_hot = np.full(n, 350.0)
    p = tec.electrical_power_w(state, t_cold, t_hot)
    expected = tec.joule_w + tec.alpha_i * (350.0 - 360.0)
    assert p[0] == pytest.approx(expected)
    assert np.all(p[1:] == 0.0)


def test_fractional_activation_scales_power(tec):
    n = tec.n_devices
    t = np.full(n, 350.0)
    full = tec.electrical_power_w(np.ones(n), t, t)
    half = tec.electrical_power_w(np.full(n, 0.5), t, t)
    np.testing.assert_allclose(half, 0.5 * full)


def test_activation_bounds_checked(tec):
    n = tec.n_devices
    t = np.full(n, 350.0)
    with pytest.raises(ConfigurationError):
        tec.electrical_power_w(np.full(n, 1.5), t, t)
    with pytest.raises(ConfigurationError):
        tec.electrical_power_w(np.full(n, -0.1), t, t)
    with pytest.raises(ConfigurationError):
        tec.electrical_power_w(np.ones(n - 1), t[:-1], t[:-1])


def test_cold_side_temperature_weighted(tec, chip):
    t_comp = np.arange(chip.n_components, dtype=float) + 300.0
    cold = tec.cold_side_temperature_k(t_comp)
    p = tec.placements[0]
    expected = float(np.dot(p.weights, t_comp[p.component_idx]))
    assert cold[0] == pytest.approx(expected)


def test_grid_must_fit_tile(chip):
    big = TECDeviceSpec(size_mm=2.0)
    with pytest.raises(ConfigurationError):
        build_tec_array(chip, device=big, grid=(3, 3))


def test_invalid_grid_rejected(chip):
    with pytest.raises(ConfigurationError):
        build_tec_array(chip, grid=(0, 3))


def test_custom_grid(chip):
    arr = build_tec_array(chip, grid=(2, 2))
    assert arr.devices_per_tile == 4
    assert arr.n_devices == 4 * chip.n_tiles
